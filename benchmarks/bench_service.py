"""Telemetry service benchmarks: ingest throughput, query latency, shed QC.

Two variants over the deterministic load harness
(:mod:`repro.service.load`):

* ``bench_service_load`` — the full topology x scale matrix, ending on
  the acceptance point: >= 1000 simulated nodes across >= 4 tenants
  publishing PowerSensor3-class batches, sustaining >= 50k samples/s
  with a p99 range-query latency < 50 ms *under concurrent ingest*,
  per-tenant memory inside ``memory_cap_bytes()``, and zero silent
  drops (the ingest ledger balances exactly);
* ``bench_smoke_service`` — a seconds-sized run committed as
  ``service_smoke.txt``.  Only deterministic text is written: ingest
  ledgers of a ``wait``-mode loopback run (byte-identical on every run —
  the CI determinism gate diffs it) plus a scripted queue-overflow
  scenario proving sheds are *accounted*, never silent.  Wall-clock
  numbers (the only nondeterministic part) are printed, never written.
"""

import time

import numpy as np
from conftest import write_result

from repro.instrumentation.reporting import service_qc_summary
from repro.service import (
    POWERSENSOR3_HZ,
    TOPOLOGY_SCALE_MATRIX,
    LoadSpec,
    SyntheticSource,
    Tenant,
    TenantConfig,
    run_load,
)

SMOKE_SPEC = LoadSpec(
    name="smoke 4x8 pm_counters",
    tenants=4,
    nodes_per_tenant=8,
    channels_per_node=1,
    rate_hz=10.0,
    batch_samples=25,
    batches_per_node=3,
    queries=8,
    query_workers=2,
)

#: The acceptance-criteria point: 4 tenants x 250 nodes = 1000 nodes at
#: the kHz-class PowerSensor3 cadence.
ACCEPTANCE_SPEC = LoadSpec(
    name="acceptance 4x250 powersensor3",
    tenants=4,
    nodes_per_tenant=250,
    channels_per_node=1,
    rate_hz=POWERSENSOR3_HZ,
    batch_samples=200,
    batches_per_node=3,
    queries=60,
    query_workers=4,
)


def _shed_scenario_text() -> str:
    """Deterministic queue-overflow ledger (direct synchronous feed).

    Network-path shedding depends on drain timing, so the committed
    demonstration drives :meth:`Tenant.offer` directly: 10 batches of 40
    samples into a 100-sample queue with no drain — exactly 2 queued,
    8 shed, all accounted.
    """
    tenant = Tenant("overflow", TenantConfig(max_pending_samples=100))
    src = SyntheticSource("overflow", 0, "p", 1000.0)
    queued = 0
    for _ in range(10):
        cols = src.batch(40)
        parsed = {
            "p": (
                np.asarray(cols["t"]),
                np.asarray(cols["watts"]),
                np.asarray(cols["joules"]),
                np.zeros(40, dtype=np.uint8),
            )
        }
        queued += int(tenant.offer(0, parsed))
    tenant.drain()
    c = tenant.counters
    assert queued == 2 and c.samples_shed == 320, (queued, c.samples_shed)
    assert c.samples_offered == (
        c.samples_ingested + c.samples_shed + c.samples_rejected
    )
    lines = [
        "shed scenario: 10 x 40-sample batches into a 100-sample queue, "
        "no drain between offers",
        f"queued: {queued} batches; "
        f"ledger: offered={c.samples_offered} ingested={c.samples_ingested} "
        f"shed={c.samples_shed} rejected={c.samples_rejected}",
        service_qc_summary([tenant.snapshot()]),
    ]
    return "\n".join(lines)


def bench_smoke_service(results_dir):
    """Deterministic service smoke (`make serve-smoke` / CI determinism gate)."""
    report = run_load(SMOKE_SPEC)  # no timer: deterministic output only
    assert report.accounting_identity_holds
    assert report.memory_within_cap
    assert report.shed_samples == 0, "wait mode must never shed"
    assert report.ingested_samples == SMOKE_SPEC.total_samples

    # The loopback run reproduces byte-for-byte.
    again = run_load(SMOKE_SPEC)
    assert report.deterministic_text() == again.deterministic_text()

    text = "\n".join(
        [
            report.deterministic_text(),
            "run-to-run: deterministic text byte-identical",
            "",
            _shed_scenario_text(),
        ]
    )
    write_result(results_dir, "service_smoke", text)


def bench_service_load(results_dir):
    """Full matrix + the acceptance point (wall-clock asserted, not committed)."""
    lines = []
    for spec in TOPOLOGY_SCALE_MATRIX:
        report = run_load(spec, timer=time.perf_counter)
        assert report.accounting_identity_holds, spec.name
        assert report.memory_within_cap, spec.name
        assert report.shed_samples == 0, spec.name
        lines.append(report.deterministic_text())
        lines.append(report.perf_text())
        lines.append("")

    report = run_load(ACCEPTANCE_SPEC, timer=time.perf_counter)
    assert report.accounting_identity_holds
    assert report.memory_within_cap
    assert report.shed_samples == 0, "zero silent (or any) drops required"
    assert ACCEPTANCE_SPEC.total_nodes >= 1000
    assert ACCEPTANCE_SPEC.tenants >= 4
    assert report.samples_per_sec >= 50_000, (
        f"sustained {report.samples_per_sec:,.0f} samples/s < 50k floor"
    )
    assert report.queries_served > 0
    assert report.query_p99_ms < 50.0, (
        f"p99 range query {report.query_p99_ms:.2f} ms >= 50 ms under ingest"
    )
    lines.append(report.deterministic_text())
    lines.append(report.perf_text())
    write_result(results_dir, "service_load", "\n".join(lines))
