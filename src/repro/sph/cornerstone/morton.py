"""Vectorized 3D Morton (Z-order) codes, 21 bits per dimension.

The 63-bit keys interleave the x, y, z integer coordinates (x in the most
significant positions), giving the space-filling curve cornerstone octrees
are built on: any octree node corresponds to a contiguous key range.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.sph.box import Box

#: Bits per dimension and the exclusive max integer coordinate.
BITS_PER_DIM = 21
MAX_COORD = 1 << BITS_PER_DIM  # 2_097_152


def _part1by2(x: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of each value to every third bit."""
    x = x.astype(np.uint64) & np.uint64(0x1FFFFF)
    x = (x | (x << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x << np.uint64(2))) & np.uint64(0x1249249249249249)
    return x


def _compact1by2(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_part1by2`."""
    x = x.astype(np.uint64) & np.uint64(0x1249249249249249)
    x = (x | (x >> np.uint64(2))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x >> np.uint64(4))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x >> np.uint64(8))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x >> np.uint64(16))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x >> np.uint64(32))) & np.uint64(0x1FFFFF)
    return x


def encode_morton(ix: np.ndarray, iy: np.ndarray, iz: np.ndarray) -> np.ndarray:
    """Interleave integer coordinates into 63-bit Morton keys."""
    for name, arr in (("ix", ix), ("iy", iy), ("iz", iz)):
        arr = np.asarray(arr)
        if np.any(arr < 0) or np.any(arr >= MAX_COORD):
            raise SimulationError(
                f"{name} coordinates outside [0, {MAX_COORD})"
            )
    return (
        (_part1by2(np.asarray(ix)) << np.uint64(2))
        | (_part1by2(np.asarray(iy)) << np.uint64(1))
        | _part1by2(np.asarray(iz))
    )


def decode_morton(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Recover the integer coordinates from Morton keys."""
    keys = np.asarray(keys, dtype=np.uint64)
    ix = _compact1by2(keys >> np.uint64(2))
    iy = _compact1by2(keys >> np.uint64(1))
    iz = _compact1by2(keys)
    return ix.astype(np.int64), iy.astype(np.int64), iz.astype(np.int64)


def normalize_positions(pos: np.ndarray, box: Box) -> np.ndarray:
    """Map positions in ``box`` to integer grid coordinates [0, 2^21)."""
    scaled = (pos - box.lo) / box.length * MAX_COORD
    coords = np.floor(scaled).astype(np.int64)
    np.clip(coords, 0, MAX_COORD - 1, out=coords)
    return coords


def sfc_keys(pos: np.ndarray, box: Box) -> np.ndarray:
    """Morton keys of positions (the SFC order SPH-EXA sorts by)."""
    coords = normalize_positions(pos, box)
    return encode_morton(coords[:, 0], coords[:, 1], coords[:, 2])
