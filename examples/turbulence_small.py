#!/usr/bin/env python
"""Run the real (small-N) SPH solver: driven subsonic turbulence.

Exercises the actual numerics the framework is built on — cubic-spline
SPH with IAD gradients, Ornstein-Uhlenbeck solenoidal driving, SFC domain
sync — and shows the profiling hooks the paper attaches PMT to, here in
their original role: per-function host timings.

Run:  python examples/turbulence_small.py
"""

import numpy as np

from repro.sph import Simulation
from repro.sph.driving import TurbulenceDriver
from repro.sph.initial_conditions import make_turbulence
from repro.sph.propagator import Propagator


def main() -> None:
    n_side = 10  # 1000 particles: seconds on a laptop
    steps = 25

    ps, box = make_turbulence(n_side=n_side, sound_speed=1.0, seed=42)
    driver = TurbulenceDriver(
        box, amplitude=2.0, correlation_time=0.5, seed=42
    )
    propagator = Propagator(box, driver=driver, n_target=100)
    sim = Simulation(ps, propagator)

    print(f"Subsonic turbulence: {ps.n} particles, {steps} steps")
    print(f"{'step':>5} {'dt':>9} {'Mach':>7} {'E_kin':>9} {'E_int':>9} {'<nbr>':>6}")
    for k in range(steps):
        stats = sim.step()
        if (k + 1) % 5 == 0:
            cs = float(np.mean(ps.c))
            vrms = float(
                np.sqrt(np.mean(np.sum(ps.vel**2, axis=1)))
            )
            print(
                f"{stats.step:>5} {stats.dt:>9.4f} {vrms / cs:>7.3f} "
                f"{stats.totals.kinetic:>9.4f} {stats.totals.internal:>9.4f} "
                f"{stats.mean_neighbors:>6.1f}"
            )

    print("\nPer-function host timings (the hooks PMT attaches to):")
    total = sum(sim.hooks.timings.values())
    for name in propagator.function_sequence:
        t = sim.hooks.timings[name]
        print(f"  {name:>24} {t:8.3f} s  {t / total:6.1%}")

    drift = np.abs(ps.momentum()).max()
    print(f"\nMomentum magnitude (driving injects some): {drift:.3e}")
    print(f"Simulated physical time: {sim.time:.3f} code units")

    # Physical diagnostics of the driven state.
    from repro.sph.observables import (
        density_pdf_stats,
        rms_mach_number,
        velocity_power_spectrum,
    )

    mach = rms_mach_number(ps)
    stats = density_pdf_stats(ps)
    k, spectrum = velocity_power_spectrum(ps, box, n_grid=16)
    low_k = spectrum[k <= 3].sum() / max(spectrum.sum(), 1e-300)
    print(f"RMS Mach number         : {mach:.3f} (subsonic)")
    print(f"log-density sigma       : {stats['sigma_s']:.3f} (narrow)")
    print(f"spectral energy at k<=3 : {low_k:.1%} (the driven shell)")


if __name__ == "__main__":
    main()
