"""Tests for the PMT measurement toolkit: state, base API, registry."""

import pytest

import repro.pmt as pmt
from repro.errors import BackendError, MeasurementError
from repro.hardware import VirtualClock
from repro.pmt import Measurement, PMT, State


def make_state(t, joules, watts, name="node"):
    return State(
        timestamp=t, measurements=(Measurement(name=name, joules=joules, watts=watts),)
    )


class TestState:
    def test_primary_is_first(self):
        s = State(
            timestamp=1.0,
            measurements=(
                Measurement("node", 100.0, 50.0),
                Measurement("cpu", 40.0, 20.0),
            ),
        )
        assert s.primary.name == "node"
        assert s.joules == 100.0
        assert s.watts == 50.0

    def test_lookup_by_name(self):
        s = State(
            timestamp=1.0,
            measurements=(
                Measurement("node", 100.0, 50.0),
                Measurement("cpu", 40.0, 20.0),
            ),
        )
        assert s.joules_of("cpu") == 40.0
        assert s.watts_of("cpu") == 20.0
        assert s.names() == ("node", "cpu")

    def test_unknown_name(self):
        s = make_state(0.0, 0.0, 0.0)
        with pytest.raises(MeasurementError):
            s.joules_of("gpu")

    def test_empty_state_rejected(self):
        with pytest.raises(MeasurementError):
            State(timestamp=0.0, measurements=())

    def test_duplicate_names_rejected(self):
        with pytest.raises(MeasurementError):
            State(
                timestamp=0.0,
                measurements=(
                    Measurement("x", 0.0, 0.0),
                    Measurement("x", 1.0, 1.0),
                ),
            )


class TestPmtArithmetic:
    def test_seconds(self):
        assert PMT.seconds(make_state(1.0, 0, 0), make_state(3.5, 0, 0)) == 2.5

    def test_seconds_reversed_rejected(self):
        with pytest.raises(MeasurementError):
            PMT.seconds(make_state(3.0, 0, 0), make_state(1.0, 0, 0))

    def test_joules(self):
        assert PMT.joules(make_state(0, 100, 0), make_state(1, 350, 0)) == 250

    def test_watts_is_average_power(self):
        start = make_state(0.0, 0.0, 0.0)
        end = make_state(5.0, 1000.0, 0.0)
        assert PMT.watts(start, end) == 200.0

    def test_watts_zero_interval(self):
        s = make_state(1.0, 100.0, 50.0)
        assert PMT.watts(s, s) == 0.0

    def test_named_counter_arithmetic(self):
        start = State(
            timestamp=0.0,
            measurements=(
                Measurement("node", 0.0, 0.0),
                Measurement("cpu", 10.0, 0.0),
            ),
        )
        end = State(
            timestamp=2.0,
            measurements=(
                Measurement("node", 100.0, 0.0),
                Measurement("cpu", 30.0, 0.0),
            ),
        )
        assert PMT.joules(start, end, "cpu") == 20.0
        assert PMT.watts(start, end, "cpu") == 10.0


class TestRegistry:
    def test_available_backends(self):
        names = pmt.available_backends()
        assert set(names) >= {"cray", "nvml", "rapl", "rocm", "dummy"}

    def test_unknown_backend(self):
        with pytest.raises(BackendError):
            pmt.create("powersensor3")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(BackendError):
            @pmt.register_backend("dummy")
            class Another(PMT):  # pragma: no cover - registration must fail
                def read_state(self):
                    raise NotImplementedError


class TestDummyBackend:
    def test_zero_measurements(self):
        meter = pmt.create("dummy")
        s = meter.read()
        assert s.joules == 0.0
        assert s.watts == 0.0
        assert meter.read_count == 1

    def test_start_stop_result(self):
        clock = VirtualClock()
        meter = pmt.create("dummy", clock=clock)
        meter.start()
        clock.advance(3.0)
        meter.stop()
        seconds, joules, watts = meter.result()
        assert seconds == 3.0
        assert joules == 0.0
        assert watts == 0.0

    def test_stop_without_start(self):
        meter = pmt.create("dummy")
        with pytest.raises(MeasurementError):
            meter.stop()

    def test_result_without_region(self):
        meter = pmt.create("dummy")
        with pytest.raises(MeasurementError):
            meter.result()
