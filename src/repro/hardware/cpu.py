"""CPU socket device."""

from __future__ import annotations

from repro.hardware.clock import VirtualClock
from repro.hardware.device import Device
from repro.hardware.dvfs import FrequencyDomain
from repro.hardware.specs import CpuSpec


class CpuDevice(Device):
    """One CPU socket.

    In the paper's GPU-centric setting the CPU mostly *drives* the GPUs
    (kernel launches, MPI progress) and runs the measurement tooling, so
    its utilization during GPU phases is low but nonzero.  CPU frequency
    is fixed at nominal — the paper only scales GPU frequency.
    """

    def __init__(self, name: str, clock: VirtualClock, spec: CpuSpec) -> None:
        self.spec = spec
        domain = FrequencyDomain(
            supported_hz=(spec.nominal_freq_hz,),
            nominal_hz=spec.nominal_freq_hz,
            user_controllable=False,
        )
        super().__init__(name, clock, spec.power_model, domain)
