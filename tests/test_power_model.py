"""Tests for the analytic device power model."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import HardwareError
from repro.hardware import PowerModel


def make_model(**overrides):
    params = dict(
        static_watts=40.0,
        clock_watts=20.0,
        compute_watts=200.0,
        memory_watts=80.0,
        alpha=2.4,
    )
    params.update(overrides)
    return PowerModel(**params)


class TestPowerModel:
    def test_idle_at_nominal(self):
        m = make_model()
        assert m.power(1.0, 0.0, 0.0) == pytest.approx(60.0)
        assert m.idle_watts_nominal == pytest.approx(60.0)

    def test_peak_at_nominal(self):
        m = make_model()
        assert m.power(1.0, 1.0, 1.0) == pytest.approx(340.0)
        assert m.peak_watts_nominal == pytest.approx(340.0)

    def test_compute_component_scales_superlinearly(self):
        m = make_model()
        half = m.power(0.5, 1.0, 0.0) - m.power(0.5, 0.0, 0.0)
        full = m.power(1.0, 1.0, 0.0) - m.power(1.0, 0.0, 0.0)
        assert half == pytest.approx(full * 0.5**2.4)

    def test_clock_component_scales_linearly(self):
        m = make_model(compute_watts=0.0, memory_watts=0.0)
        assert m.power(0.5, 0.0, 0.0) == pytest.approx(40.0 + 10.0)

    def test_memory_component_frequency_independent(self):
        m = make_model()
        at_full = m.power(1.0, 0.0, 1.0) - m.power(1.0, 0.0, 0.0)
        at_half = m.power(0.5, 0.0, 1.0) - m.power(0.5, 0.0, 0.0)
        assert at_full == pytest.approx(at_half)

    def test_downscaling_reduces_power_at_fixed_load(self):
        m = make_model()
        assert m.power(0.713, 0.9, 0.5) < m.power(1.0, 0.9, 0.5)

    def test_zero_freq_ratio_rejected(self):
        with pytest.raises(HardwareError):
            make_model().power(0.0, 0.5, 0.5)

    def test_utilization_out_of_range_rejected(self):
        m = make_model()
        with pytest.raises(HardwareError):
            m.power(1.0, 1.5, 0.0)
        with pytest.raises(HardwareError):
            m.power(1.0, 0.0, -0.1)

    def test_negative_coefficient_rejected(self):
        with pytest.raises(HardwareError):
            make_model(static_watts=-1.0)

    def test_alpha_below_one_rejected(self):
        with pytest.raises(HardwareError):
            make_model(alpha=0.5)

    @given(
        st.floats(min_value=0.2, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_power_bounded_by_idle_and_peak(self, ratio, u_c, u_m):
        m = make_model()
        p = m.power(ratio, u_c, u_m)
        assert m.static_watts <= p <= m.peak_watts_nominal + 1e-9

    @given(
        st.floats(min_value=0.2, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_power_monotone_in_compute_utilization(self, ratio, u_m):
        m = make_model()
        assert m.power(ratio, 0.3, u_m) <= m.power(ratio, 0.7, u_m)

    @given(st.floats(min_value=0.2, max_value=0.99))
    def test_power_monotone_in_frequency(self, ratio):
        m = make_model()
        assert m.power(ratio, 0.8, 0.4) < m.power(1.0, 0.8, 0.4)
