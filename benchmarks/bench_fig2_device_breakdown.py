"""Figure 2: device breakdown of consumed energy.

Paper shape to reproduce: GPUs consume ~74-77 % of the energy on both
systems; "Other" is the second-largest category; the memory category is
measured only on LUMI-G (CSCS-A100 folds it into Other); totals order as
LUMI-Turb > LUMI-Evr > CSCS-Turb > CSCS-Evr (paper: 24.4, 15.2, 12.5,
10.7 MJ).
"""

from conftest import write_result

from repro.experiments.breakdowns import figure2_breakdowns
from repro.units import joules_to_megajoules

NUM_STEPS = 100


def bench_figure2(benchmark, results_dir):
    cells = benchmark.pedantic(
        figure2_breakdowns, kwargs={"num_steps": NUM_STEPS}, rounds=1, iterations=1
    )
    by_label = {cell.label: cell for cell in cells}

    lines = [
        f"{'Run':>14} {'Total [MJ]':>11} {'GPU':>7} {'CPU':>7} "
        f"{'Memory':>7} {'Other':>7}"
    ]
    for cell in cells:
        shares = cell.devices.shares
        # GPU dominates in the paper's band.
        assert 0.65 < shares["GPU"] < 0.85, f"{cell.label}: GPU share {shares['GPU']}"
        ordered = sorted(shares, key=shares.get, reverse=True)
        assert ordered[0] == "GPU"
        assert ordered[1] == "Other"
        # Memory sensor only on LUMI-G.
        assert ("Memory" in shares) == cell.label.startswith("LUMI")
        lines.append(
            f"{cell.label:>14} "
            f"{joules_to_megajoules(cell.devices.total_joules):>11.2f} "
            f"{shares['GPU']:>6.1%} {shares['CPU']:>6.1%} "
            f"{shares.get('Memory', 0.0):>6.1%} {shares['Other']:>6.1%}"
        )

    totals = {label: by_label[label].devices.total_joules for label in by_label}
    # Paper ordering: LUMI-Turb > LUMI-Evr > CSCS-Turb > CSCS-Evr.
    assert totals["LUMI-Turb"] > totals["LUMI-Evr"]
    assert totals["LUMI-Evr"] > totals["CSCS-A100-Turb"]
    assert totals["CSCS-A100-Turb"] > totals["CSCS-A100-Evr"]

    lines.append("")
    lines.append("Paper totals (MJ): LUMI-Turb 24.4, LUMI-Evr 15.2, "
                 "CSCS-A100-Turb 12.5, CSCS-A100-Evr 10.7")
    lines.append("Paper GPU shares: 74.3% (LUMI-G), 76.4% (CSCS-A100)")
    write_result(results_dir, "fig2_device_breakdown", "\n".join(lines))


def bench_smoke_figure2(results_dir):
    cells = figure2_breakdowns(num_cards=8, num_steps=6)

    lines = [
        f"{'Run':>14} {'Total [MJ]':>11} {'GPU':>7} {'CPU':>7} "
        f"{'Memory':>7} {'Other':>7}"
    ]
    for cell in cells:
        shares = cell.devices.shares
        ordered = sorted(shares, key=shares.get, reverse=True)
        assert ordered[0] == "GPU", f"{cell.label}: GPU must dominate"
        assert ("Memory" in shares) == cell.label.startswith("LUMI")
        lines.append(
            f"{cell.label:>14} "
            f"{joules_to_megajoules(cell.devices.total_joules):>11.3f} "
            f"{shares['GPU']:>6.1%} {shares['CPU']:>6.1%} "
            f"{shares.get('Memory', 0.0):>6.1%} {shares['Other']:>6.1%}"
        )

    write_result(results_dir, "fig2_device_breakdown_smoke", "\n".join(lines))
