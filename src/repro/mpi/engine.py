"""Lockstep SPMD phase executor.

SPH-EXA's time-stepping loop is bulk-synchronous: every rank enters a
function, works for its own duration, then (explicitly or through data
dependencies) aligns with the others before the next function.  The engine
reproduces that structure on the virtual clock:

1. at phase start all ranks' devices take their busy loads;
2. the clock advances through the per-rank completion times in order; as
   each rank completes, its GPU drops to idle, node-shared device loads
   (CPU / DRAM / NIC) are re-aggregated over the still-running ranks, and
   the rank's ``on_end`` callback fires — *this* is the moment the real
   instrumentation reads its sensors, so straggler ranks genuinely burn
   idle-GPU energy that per-rank measurements then attribute correctly;
3. the phase ends when the slowest rank finishes.

The engine guarantees the sensor-layer invariant that all power-trace
appends for a time interval happen before any read of that interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.mpi.mapping import RankPlacement


@dataclass(frozen=True)
class RankWork:
    """One rank's work during one phase.

    ``gpu_compute`` / ``gpu_memory`` are utilizations of the rank's own GPU
    unit; ``cpu_share`` / ``mem_share`` / ``nic_share`` are this rank's
    contributions to the *node-shared* devices (summed over the node's
    running ranks, clipped to 1).
    """

    duration: float
    gpu_compute: float = 0.0
    gpu_memory: float = 0.0
    cpu_share: float = 0.0
    mem_share: float = 0.0
    nic_share: float = 0.0

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise SimulationError(f"negative phase duration {self.duration!r}")
        shares = ("gpu_compute", "gpu_memory", "cpu_share", "mem_share", "nic_share")
        for name in shares:
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise SimulationError(f"{name}={v!r} outside [0, 1]")


@dataclass(frozen=True)
class PhaseResult:
    """Timing of one executed phase."""

    t_start: float
    end_times: np.ndarray
    t_end: float

    def duration_of(self, rank: int) -> float:
        """How long ``rank`` worked in this phase."""
        return float(self.end_times[rank] - self.t_start)


class SpmdEngine:
    """Executes phases across all ranks of a placement (see module doc)."""

    def __init__(self, placement: RankPlacement) -> None:
        self.placement = placement
        self.clock = placement.cluster.clock

    def _set_node_loads(self, node_index: int) -> None:
        """Apply the aggregated shared loads of one node."""
        node = self.placement.cluster.nodes[node_index]
        cpu, mem, nic = self._node_shares[node_index]
        node.cpu.set_load(min(cpu, 1.0), min(0.5 * cpu, 1.0))
        node.memory.set_load(0.0, min(mem, 1.0))
        node.nic.set_load(0.0, min(nic, 1.0))

    def _init_shared_loads(self) -> None:
        """Aggregate shared-device loads over all ranks at phase start."""
        num_nodes = self.placement.cluster.num_nodes
        self._node_shares = [[0.0, 0.0, 0.0] for _ in range(num_nodes)]
        for rank, work in enumerate(self._works):
            shares = self._node_shares[self.placement.location(rank).node_index]
            shares[0] += work.cpu_share
            shares[1] += work.mem_share
            shares[2] += work.nic_share
        for node_index in range(num_nodes):
            self._set_node_loads(node_index)

    def _drop_rank_shares(self, rank: int) -> None:
        """Remove a finished rank's contribution from its node's loads."""
        node_index = self.placement.location(rank).node_index
        work = self._works[rank]
        shares = self._node_shares[node_index]
        shares[0] = max(shares[0] - work.cpu_share, 0.0)
        shares[1] = max(shares[1] - work.mem_share, 0.0)
        shares[2] = max(shares[2] - work.nic_share, 0.0)
        self._set_node_loads(node_index)

    def run_phase(
        self,
        works: Sequence[RankWork],
        on_start: Callable[[int], None] | None = None,
        on_end: Callable[[int], None] | None = None,
    ) -> PhaseResult:
        """Execute one phase and return its timing.

        ``on_start(rank)`` fires for every rank at phase start (after loads
        are applied); ``on_end(rank)`` fires at that rank's own completion
        time, with the clock positioned exactly there.
        """
        if len(works) != self.placement.size:
            raise SimulationError(
                f"phase needs one RankWork per rank: got {len(works)}, "
                f"communicator size {self.placement.size}"
            )
        self._works = list(works)
        t0 = self.clock.now

        for rank, work in enumerate(self._works):
            self.placement.gpu_of(rank).set_load(work.gpu_compute, work.gpu_memory)
        self._init_shared_loads()

        if on_start is not None:
            for rank in range(self.placement.size):
                on_start(rank)

        end_times = np.array(
            [t0 + w.duration for w in self._works], dtype=np.float64
        )
        order = np.argsort(end_times, kind="stable")
        for rank in order:
            rank = int(rank)
            self.clock.advance_to(float(end_times[rank]))
            self.placement.gpu_of(rank).set_idle()
            self._drop_rank_shares(rank)
            if on_end is not None:
                on_end(rank)

        t_end = self.clock.now
        return PhaseResult(t_start=t0, end_times=end_times, t_end=t_end)

    def run_idle(self, duration: float) -> None:
        """Advance time with every device idle (inter-phase gaps, setup)."""
        if duration < 0:
            raise SimulationError("idle duration must be >= 0")
        self.placement.cluster.all_idle()
        self.clock.advance(duration)
