"""Human-readable measurement reports.

Renders the gathered measurements the way a user would consume them after
a run: a per-device summary (the Figure 2 view) and a per-function table
(the Figure 3 view).
"""

from __future__ import annotations

from repro.instrumentation.records import RunMeasurements
from repro.units import format_duration, joules_to_megajoules


def device_report(run: RunMeasurements) -> str:
    """The device-level energy breakdown of one run."""
    # Imported lazily: the analysis package consumes instrumentation
    # records, so a top-level import here would be circular.
    from repro.analysis.breakdown import device_breakdown

    breakdown = device_breakdown(run)
    lines = [
        f"Run: {run.test_case} on {run.system_name} "
        f"({run.num_ranks} ranks / {run.num_nodes} nodes, "
        f"{run.gpu_freq_mhz:.0f} MHz)",
        f"Instrumented window: {format_duration(run.app_seconds)}",
        f"Total energy: {joules_to_megajoules(breakdown.total_joules):.2f} MJ",
        "",
        f"{'Device':>8} {'Energy [MJ]':>12} {'Share':>8}",
    ]
    for device, joules in breakdown.joules.items():
        share = breakdown.shares[device]
        lines.append(
            f"{device:>8} {joules_to_megajoules(joules):>12.3f} {share:>7.1%}"
        )
    return "\n".join(lines)


def function_report(run: RunMeasurements, device: str = "gpu") -> str:
    """The per-function energy breakdown for one device."""
    from repro.analysis.breakdown import function_breakdown

    rows = function_breakdown(run, device)
    total = sum(r.joules for r in rows)
    lines = [
        f"Function-level {device.upper()} energy, {run.test_case} on "
        f"{run.system_name}:",
        f"{'Function':>24} {'Energy [MJ]':>12} {'Share':>8} {'Time [s]':>10}",
    ]
    for row in rows:
        share = row.joules / total if total else 0.0
        lines.append(
            f"{row.function:>24} {joules_to_megajoules(row.joules):>12.3f} "
            f"{share:>7.1%} {row.seconds:>10.1f}"
        )
    return "\n".join(lines)
