"""AMD ROCm-SMI hwmon power telemetry.

AMD GPUs expose average socket power through hwmon sysfs::

    /sys/class/drm/card{i}/device/hwmon/hwmon0/power1_average   # microwatts

As with pm_counters, the file reports per *card* (per MI250X package, i.e.
both GCDs together).  There is no energy accumulator on older stacks, so a
consumer (PMT's ROCm backend) must poll power and integrate — our backend
does exactly that, exercising the polling-integration code path.
"""

from __future__ import annotations

from repro.hardware.gpu import GpuCard
from repro.sensors.base import SampledEnergyCounter, SensorReading
from repro.sensors.sysfs import VirtualSysfs

#: hwmon refresh period for the average-power register.
ROCM_PERIOD_S = 0.02


class RocmCard:
    """The ROCm-SMI hwmon view of one GPU card."""

    def __init__(
        self, card: GpuCard, index: int, sysfs: VirtualSysfs, seed: int = 0
    ) -> None:
        self.card = card
        self.index = index
        self.counter = SampledEnergyCounter(
            card.trace,
            refresh_period_s=ROCM_PERIOD_S,
            watts_quantum=1e-6,
            energy_quantum=1e-6,
            noise_sigma_watts=1.0,
            seed=seed + 1000 + index,
        )
        self.hwmon_path = (
            f"/sys/class/drm/card{index}/device/hwmon/hwmon0/power1_average"
        )
        sysfs.register(
            self.hwmon_path,
            lambda t: str(int(round(self.counter.read(t).watts * 1e6))),
        )

    def power_average_uw(self, t: float) -> int:
        """The ``power1_average`` register in microwatts."""
        return int(round(self.counter.read(t).watts * 1e6))

    def read(self, t: float) -> SensorReading:
        """Raw counter state (SI units) at time ``t``."""
        return self.counter.read(t)
