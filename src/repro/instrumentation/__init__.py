"""PMT instrumentation of SPH-EXA (the paper's core contribution).

Couples the solver's profiling hooks to PMT meters so that every loop
function, on every MPI rank, gets energy measurements for each compute
device — beyond the node-level number Slurm provides.  Records are kept
per rank throughout the run and gathered at the end of execution into a
single :class:`~repro.instrumentation.records.RunMeasurements` for
post-hoc analysis, exactly as Section 2 describes (measure-then-gather to
avoid perturbing the simulation).
"""

from repro.instrumentation.records import (
    FunctionEnergyRecord,
    RunMeasurements,
    TelemetryHealthRecord,
)
from repro.instrumentation.profiler import EnergyProfiler
from repro.instrumentation.reporting import (
    device_report,
    function_report,
    health_report,
)

__all__ = [
    "FunctionEnergyRecord",
    "RunMeasurements",
    "TelemetryHealthRecord",
    "EnergyProfiler",
    "function_report",
    "device_report",
    "health_report",
]
