"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ClockError(ReproError):
    """Raised when simulated time would move backwards or is otherwise invalid."""


class HardwareError(ReproError):
    """Raised for invalid hardware configuration or device operations."""


class DvfsError(HardwareError):
    """Raised when an unsupported frequency is requested on a device."""


class SensorError(ReproError):
    """Raised when a sensor read fails or a sensor path does not exist."""


class BackendError(ReproError):
    """Raised when a PMT backend cannot be created or used on a platform."""


class MeasurementError(ReproError):
    """Raised for invalid measurement usage (e.g. stop() before start())."""


class SchedulerError(ReproError):
    """Raised by the simulated Slurm scheduler for invalid job operations."""


class CommunicatorError(ReproError):
    """Raised by the simulated MPI communicator for invalid collective usage."""


class SimulationError(ReproError):
    """Raised by the SPH framework for invalid simulation states."""


class ConfigurationError(ReproError):
    """Raised when a system or experiment configuration is inconsistent."""


class AnalysisError(ReproError):
    """Raised by the analysis layer for inconsistent measurement records."""


class CampaignExecutionError(ReproError):
    """Raised when campaign points failed after the sweep finished draining.

    The executor never aborts a sweep on the first broken point: every
    other key keeps executing (and archiving), failures are recorded as
    typed :class:`~repro.campaign.queue.RunFailure` entries next to the
    results, and this summary error is raised once at the end.  It
    carries the completed ``results`` and ``stats`` so callers can still
    merge the surviving points, plus the ``failures`` tuple itself.
    """

    def __init__(
        self,
        message: str,
        failures: tuple = (),
        results: dict | None = None,
        stats: object | None = None,
    ) -> None:
        super().__init__(message)
        self.failures = failures
        self.results = results if results is not None else {}
        self.stats = stats


class AuditError(ReproError):
    """Raised by the energy-accounting auditor in strict mode.

    Carries the :class:`~repro.audit.findings.AuditFinding` that tripped
    it as ``finding`` (``None`` for usage errors inside the auditor).
    """

    def __init__(self, message: str, finding: object | None = None) -> None:
        super().__init__(message)
        self.finding = finding
