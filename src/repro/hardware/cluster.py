"""Cluster: a set of identical nodes plus an interconnect model.

The interconnect model is deliberately simple (per-message latency plus
bandwidth term, with an effective bisection factor for collectives); it is
consumed by the simulated MPI layer to cost halo exchanges and the
domain-synchronisation collectives that dominate
``DomainDecompAndSync``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareError
from repro.hardware.clock import VirtualClock
from repro.hardware.node import Node, NodeSpec


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth interconnect model.

    Parameters
    ----------
    latency_s:
        Per-message one-way latency in seconds.
    bandwidth_bytes_per_s:
        Per-link bandwidth in bytes/s.
    intra_node_factor:
        Speedup factor for messages that stay inside a node (NVLink /
        Infinity Fabric vs. the fabric NIC).
    """

    latency_s: float
    bandwidth_bytes_per_s: float
    intra_node_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise HardwareError("network latency must be >= 0")
        if self.bandwidth_bytes_per_s <= 0:
            raise HardwareError("network bandwidth must be positive")
        if self.intra_node_factor < 1:
            raise HardwareError("intra-node factor must be >= 1")

    def transfer_time(self, nbytes: float, intra_node: bool = False) -> float:
        """Time to move ``nbytes`` point-to-point."""
        if nbytes < 0:
            raise ValueError("cannot transfer a negative number of bytes")
        bw = self.bandwidth_bytes_per_s
        lat = self.latency_s
        if intra_node:
            bw *= self.intra_node_factor
            lat /= self.intra_node_factor
        return lat + nbytes / bw


class Cluster:
    """A homogeneous set of nodes sharing one clock and one interconnect."""

    def __init__(
        self,
        name: str,
        clock: VirtualClock,
        node_spec: NodeSpec,
        num_nodes: int,
        network: NetworkModel,
    ) -> None:
        if num_nodes <= 0:
            raise HardwareError("a cluster needs at least one node")
        self.name = name
        self.clock = clock
        self.network = network
        self.node_spec = node_spec
        self.nodes: list[Node] = [
            Node(f"{name}.node{i}", clock, node_spec) for i in range(num_nodes)
        ]

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the cluster."""
        return len(self.nodes)

    @property
    def total_gpu_units(self) -> int:
        """Total schedulable GPU units across the cluster."""
        return sum(n.num_gpu_units for n in self.nodes)

    @property
    def total_cards(self) -> int:
        """Total physical GPU cards across the cluster."""
        return sum(n.num_cards for n in self.nodes)

    def set_gpu_frequency(self, freq_hz: float, privileged: bool = False) -> None:
        """Set the GPU compute frequency cluster-wide."""
        for node in self.nodes:
            node.set_gpu_frequency(freq_hz, privileged=privileged)

    def all_idle(self) -> None:
        """Idle every device on every node."""
        for node in self.nodes:
            node.all_idle()

    def energy_between(self, t0: float, t1: float) -> float:
        """Ground-truth cluster energy over ``[t0, t1]``."""
        return sum(n.energy_between(t0, t1) for n in self.nodes)
