"""End-to-end per-function DVFS tuning.

The workflow the paper's conclusion sketches, made concrete:

1. **Sweep** — run the instrumented application at each available static
   frequency and gather per-function time/energy (exactly the Figure 5
   data).
2. **Decide** — build the per-function oracle policy (min-EDP or
   energy-under-slowdown-constraint).
3. **Apply** — re-run with dynamic per-function switching and measure the
   outcome with the same PMT instrumentation.
4. **Report** — savings against the nominal clock and against the best
   *static* frequency, i.e. whether per-function switching beats anything
   a whole-run setting could achieve.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.aggregate import function_seconds, function_totals
from repro.analysis.edp import run_edp
from repro.config import SystemConfig, TestCaseConfig
from repro.errors import ConfigurationError
from repro.experiments.runner import functions_for, run_scaled_experiment
from repro.hardware.cluster import Cluster
from repro.hardware.clock import VirtualClock
from repro.instrumentation.profiler import EnergyProfiler
from repro.instrumentation.records import RunMeasurements
from repro.mpi.costmodel import CommCostModel
from repro.mpi.engine import SpmdEngine
from repro.mpi.mapping import RankPlacement
from repro.sensors.telemetry import NodeTelemetry
from repro.sph.perfmodel import SphPerformanceModel
from repro.tuning.dynamic import DynamicDvfsApplication
from repro.tuning.policy import (
    FunctionSweepPoint,
    PerFunctionPolicy,
    build_oracle_policy,
)
from repro.units import mhz


@dataclass(frozen=True)
class TuningReport:
    """Outcome of one tuning campaign."""

    policy: PerFunctionPolicy
    baseline_mhz: float
    baseline_edp: float
    baseline_seconds: float
    best_static_mhz: float
    best_static_edp: float
    dynamic_edp: float
    dynamic_seconds: float
    dynamic_run: RunMeasurements
    switch_count: int

    @property
    def edp_vs_baseline(self) -> float:
        """Dynamic EDP / nominal-clock EDP (< 1 means savings)."""
        if self.baseline_edp <= 0:
            raise ConfigurationError(
                f"baseline EDP is {self.baseline_edp!r}: the sweep measured "
                "no energy at the baseline frequency (degenerate run?)"
            )
        return self.dynamic_edp / self.baseline_edp

    @property
    def edp_vs_best_static(self) -> float:
        """Dynamic EDP / best static-frequency EDP."""
        if self.best_static_edp <= 0:
            raise ConfigurationError(
                f"best-static EDP is {self.best_static_edp!r}: the sweep "
                "measured no energy at the best static frequency "
                "(degenerate run?)"
            )
        return self.dynamic_edp / self.best_static_edp


def sweep_points(run: RunMeasurements) -> list[FunctionSweepPoint]:
    energy = function_totals(run, "gpu")
    seconds = function_seconds(run)
    return [
        FunctionSweepPoint(
            function=name,
            freq_mhz=run.gpu_freq_mhz,
            seconds=seconds[name],
            joules=energy[name],
        )
        for name in energy
    ]


def run_dynamic(
    system: SystemConfig,
    test_case: TestCaseConfig,
    num_cards: int,
    policy,
    num_steps: int,
    particles_per_rank: float,
    seed: int = 0,
) -> tuple[RunMeasurements, int]:
    """Execute one dynamically re-clocked run; returns (run, switches)."""
    num_nodes = system.nodes_for_cards(num_cards)
    clock = VirtualClock()
    cluster = Cluster(
        system.name.lower(), clock, system.node_spec, num_nodes, system.network
    )
    start_mhz = getattr(policy, "default_mhz", None)
    if start_mhz is None:
        start_mhz = policy.frequency_for("") or 1410.0
    cluster.set_gpu_frequency(mhz(start_mhz))
    telemetries = [
        NodeTelemetry(node, system, clock, seed=seed + i)
        for i, node in enumerate(cluster.nodes)
    ]
    placement = RankPlacement(cluster)
    engine = SpmdEngine(placement)
    perfmodel = SphPerformanceModel(
        CommCostModel(system.network, placement), particles_per_rank, seed=seed
    )
    profiler = EnergyProfiler(placement, telemetries, system)
    app = DynamicDvfsApplication(
        engine=engine,
        profiler=profiler,
        perfmodel=perfmodel,
        functions=functions_for(test_case),
        num_steps=num_steps,
        test_case_name=test_case.name,
        policy=policy,
    )
    run = app.run()
    return run, app.switch_count


def tune_per_function(
    system: SystemConfig,
    test_case: TestCaseConfig,
    num_cards: int,
    freqs_mhz: tuple[float, ...],
    num_steps: int,
    particles_per_rank: float,
    objective: str = "edp",
    max_slowdown: float | None = None,
    tolerance: float = 0.04,
    seed: int = 0,
) -> TuningReport:
    """The full sweep -> decide -> apply -> report loop."""
    baseline_mhz = max(freqs_mhz)
    points: list[FunctionSweepPoint] = []
    static_edp: dict[float, float] = {}
    baseline_seconds = 0.0
    for freq in freqs_mhz:
        result = run_scaled_experiment(
            system,
            test_case,
            num_cards,
            gpu_freq_mhz=freq,
            num_steps=num_steps,
            particles_per_rank=particles_per_rank,
            seed=seed,
        )
        points.extend(sweep_points(result.run))
        static_edp[freq] = run_edp(result.run)
        if freq == baseline_mhz:
            baseline_seconds = result.run.app_seconds

    policy = build_oracle_policy(
        points,
        baseline_mhz,
        objective=objective,
        max_slowdown=max_slowdown,
        tolerance=tolerance,
        # Functions shorter than 2 % of the run are switch-exempt: their
        # sweep data is quantization noise and switches cost real time.
        min_function_seconds=0.02 * baseline_seconds,
    )
    dynamic_run, switches = run_dynamic(
        system,
        test_case,
        num_cards,
        policy,
        num_steps,
        particles_per_rank,
        seed=seed,
    )
    best_static_mhz = min(static_edp, key=static_edp.get)
    return TuningReport(
        policy=policy,
        baseline_mhz=baseline_mhz,
        baseline_edp=static_edp[baseline_mhz],
        baseline_seconds=baseline_seconds,
        best_static_mhz=best_static_mhz,
        best_static_edp=static_edp[best_static_mhz],
        dynamic_edp=run_edp(dynamic_run),
        dynamic_seconds=dynamic_run.app_seconds,
        dynamic_run=dynamic_run,
        switch_count=switches,
    )
