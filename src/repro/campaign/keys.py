"""Run identity and content-addressed cache keys.

A :class:`RunKey` names one independent instrumented run of a campaign:
the (system, test case, card count, GPU frequency, problem size, step
count, seed) tuple that fully determines the run's measurements — the
simulated cluster is deterministic, so two runs with equal keys produce
bit-identical results.

The cache address of a key is :func:`run_key_hash`: a SHA-256 over a
canonical JSON payload containing the key fields *and the full content*
of the referenced system and test-case configurations (power-model
coefficients, network latencies, Slurm timing, sensor backends, ...),
plus a code-version tag.  Hashing configuration *content* rather than
names means editing any physics- or measurement-relevant constant in
:mod:`repro.config` invalidates exactly the affected cache entries,
while purely cosmetic execution settings (cache directory, worker count,
output paths) never enter the payload and therefore never invalidate
anything.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass

from repro.config import (
    OBSERVABILITY_CASES,
    SystemConfig,
    TestCaseConfig,
    get_system,
)
from repro.errors import ConfigurationError

#: Layout version of the cache entry files.  Bump on incompatible
#: serialization changes; old entries then read as misses.
CACHE_SCHEMA_VERSION = 1

#: Version tag of the measurement/physics code paths.  Bump whenever a
#: change alters what a run *measures* (solver numerics, power models,
#: sensor semantics, profiler attribution) without any config field
#: changing — every cached result is then invalidated at once.
CODE_VERSION = "2"


@dataclass(frozen=True)
class RunKey:
    """Identity of one independent campaign run."""

    system: str
    test_case: str
    num_cards: int
    #: Requested compute clock; ``None`` runs at the system default.
    gpu_freq_mhz: float | None
    num_steps: int
    particles_per_rank: float
    seed: int
    #: Online governor policy steering the run's clocks, or ``None`` for
    #: the classic fixed-frequency run.  Part of the cache identity: a
    #: governed run measures something different from a static one.
    governor: str | None = None

    def __post_init__(self) -> None:
        if self.num_cards <= 0:
            raise ConfigurationError("num_cards must be positive")
        if self.num_steps <= 0:
            raise ConfigurationError("num_steps must be positive")
        if self.particles_per_rank <= 0:
            raise ConfigurationError("particles_per_rank must be positive")
        if self.governor is not None:
            from repro.tuning.governor import GOVERNOR_POLICIES

            if self.governor not in GOVERNOR_POLICIES:
                raise ConfigurationError(
                    f"unknown governor policy {self.governor!r}; "
                    f"available: {GOVERNOR_POLICIES}"
                )

    @property
    def label(self) -> str:
        """Compact human-readable identity for progress and summaries."""
        freq = "default" if self.gpu_freq_mhz is None else f"{self.gpu_freq_mhz:.0f}MHz"
        gov = "" if self.governor is None else f"/{self.governor}"
        return (
            f"{self.system}/{self.test_case}/{self.num_cards}c/{freq}/"
            f"{self.particles_per_rank:.0f}ppr/{self.num_steps}s/seed{self.seed}"
            f"{gov}"
        )


def sort_key(key: RunKey) -> tuple:
    """Deterministic total order over run keys (``None`` frequency first)."""
    return (
        key.system,
        key.test_case,
        key.num_cards,
        key.gpu_freq_mhz is not None,
        key.gpu_freq_mhz or 0.0,
        key.particles_per_rank,
        key.num_steps,
        key.seed,
        key.governor or "",
    )


def resolve_test_case(name: str) -> TestCaseConfig:
    """Look up a test case by name (paper cases plus observability demos)."""
    try:
        return OBSERVABILITY_CASES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown test case {name!r}; available: {sorted(OBSERVABILITY_CASES)}"
        ) from None


def canonical_payload(
    key: RunKey,
    system: SystemConfig | None = None,
    test_case: TestCaseConfig | None = None,
) -> dict:
    """The exact content the cache address commits to.

    ``system`` / ``test_case`` default to the registry entries named by
    the key; passing explicit configs lets callers (and the invalidation
    tests) hash hypothetical configurations.
    """
    system = system if system is not None else get_system(key.system)
    test_case = (
        test_case if test_case is not None else resolve_test_case(key.test_case)
    )
    return {
        "schema": CACHE_SCHEMA_VERSION,
        "code_version": CODE_VERSION,
        "key": asdict(key),
        "system": asdict(system),
        "test_case": asdict(test_case),
    }


def run_key_hash(
    key: RunKey,
    system: SystemConfig | None = None,
    test_case: TestCaseConfig | None = None,
) -> str:
    """Content address of a run: SHA-256 of the canonical payload."""
    payload = canonical_payload(key, system=system, test_case=test_case)
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()
