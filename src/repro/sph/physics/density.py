"""Density summation (the ``Density`` loop function).

Gather formulation with each particle's own smoothing length::

    rho_i = m_i W(0, h_i) + sum_j m_j W(|r_ij|, h_i)

The kernel's compact support makes out-of-range pair terms vanish, so the
union pair list can be used unmasked.
"""

from __future__ import annotations

import numpy as np

from repro.sph.kernels.cubic_spline import CubicSplineKernel
from repro.sph.neighbors import PairList
from repro.sph.particles import ParticleSet


def compute_density(
    ps: ParticleSet, pairs: PairList, kernel=CubicSplineKernel
) -> None:
    """Fill ``ps.rho`` from the pair list."""
    w = kernel.value(pairs.r, ps.h[pairs.i])
    contrib = ps.mass[pairs.j] * w
    rho = np.bincount(pairs.i, weights=contrib, minlength=ps.n).astype(
        np.float64
    )
    # Self-contribution W(0, h_i) = 1 / (pi h^3).
    rho += ps.mass * kernel.value(np.zeros(ps.n), ps.h)
    ps.rho = rho
