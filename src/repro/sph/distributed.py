"""Distributed (multi-rank) execution of the real solver.

SPMD-emulated in-process: each rank owns a contiguous SFC segment of the
particle set (from :class:`~repro.sph.cornerstone.domain.DomainDecomposition`)
and computes the hydro loop on its *local* set — owned particles plus the
halo particles within kernel support of its domain.  Between functions
that consume freshly computed neighbour fields (density before IAD, IAD
matrices before MomentumEnergy), halo copies are refreshed from their
owners — the halo exchanges a real MPI run performs.

This is the executable proof that the cornerstone decomposition and halo
discovery are *correct*: the distributed step must reproduce the serial
step to floating-point reordering tolerance, for any rank count — one of
the library's key integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.sph.box import Box
from repro.sph.cornerstone.domain import DomainDecomposition
from repro.sph.hooks import ProfilingHooks
from repro.sph.kernels.cubic_spline import CubicSplineKernel
from repro.sph.neighbors import HalfPairList, PairList, find_neighbors
from repro.sph.pair_cache import StepContext
from repro.sph.particles import ParticleSet
from repro.sph.physics import (
    compute_density,
    compute_iad_and_divcurl,
    compute_momentum_energy,
    compute_timestep,
    energy_conservation,
    ideal_gas_eos,
    update_quantities,
    update_smoothing_length,
)
from repro.sph.physics.eos import DEFAULT_GAMMA
from repro.sph.propagator import StepStats

#: Fields shipped in a halo refresh, with their per-particle byte cost.
_HALO_FIELD_BYTES = {
    "pos": 24,
    "vel": 24,
    "mass": 8,
    "h": 8,
    "rho": 8,
    "u": 8,
    "p": 8,
    "c": 8,
    "div_v": 8,
    "curl_v": 8,
    "c_iad": 72,
}


@dataclass
class CommStats:
    """Communication bookkeeping of one distributed step."""

    halo_particles: list[int] = field(default_factory=list)
    halo_exchanges: int = 0
    halo_bytes: float = 0.0
    allreduce_count: int = 0

    def record_exchange(self, halo_counts: list[int], fields: tuple[str, ...]) -> None:
        per_particle = sum(_HALO_FIELD_BYTES[f] for f in fields)
        self.halo_exchanges += 1
        self.halo_bytes += per_particle * sum(halo_counts)


class DistributedHydro:
    """Rank-decomposed hydro stepping over a shared global particle set."""

    _LOCAL_FIELDS = (
        "pos", "vel", "mass", "h", "rho", "u", "p", "c", "div_v", "curl_v",
    )

    def __init__(
        self,
        box: Box,
        n_ranks: int,
        gamma: float = DEFAULT_GAMMA,
        av_alpha: float = 1.0,
        n_target: int = 100,
        courant: float = 0.2,
        bucket_size: int = 32,
        kernel=CubicSplineKernel,
    ) -> None:
        if n_ranks <= 0:
            raise SimulationError("need at least one rank")
        self.box = box
        self.n_ranks = n_ranks
        self.domain = DomainDecomposition(box, n_ranks, bucket_size)
        self.gamma = gamma
        self.av_alpha = av_alpha
        self.n_target = n_target
        self.courant = courant
        self.kernel = kernel
        self._step = 0
        self._dt_prev: float | None = None
        #: Per-step communication statistics (appended each step).
        self.comm_history: list[CommStats] = []

    # -- local-view plumbing -----------------------------------------------------

    def _make_local(self, ps: ParticleSet, local_idx: np.ndarray) -> ParticleSet:
        """A rank-local copy of the global fields (a halo refresh)."""
        lps = ParticleSet(len(local_idx))
        for name in self._LOCAL_FIELDS:
            setattr(lps, name, getattr(ps, name)[local_idx].copy())
        lps.c_iad = ps.c_iad[local_idx].copy()
        return lps

    def _scatter(
        self,
        ps: ParticleSet,
        lps: ParticleSet,
        owned_global: np.ndarray,
        n_owned: int,
        fields: tuple[str, ...],
    ) -> None:
        """Write a rank's owned results back to the global arrays."""
        for name in fields:
            getattr(ps, name)[owned_global] = getattr(lps, name)[:n_owned]

    def _restrict_pairs(self, pairs: PairList, n_owned: int) -> PairList:
        """Keep only pair rows whose gather target is an owned particle."""
        keep = pairs.i < n_owned
        return PairList(
            i=pairs.i[keep],
            j=pairs.j[keep],
            dx=pairs.dx[keep],
            r=pairs.r[keep],
            n_particles=pairs.n_particles,
        )

    def _restrict_half(self, pairs: HalfPairList, n_owned: int) -> HalfPairList:
        """Keep undirected pairs with at least one owned endpoint.

        Owned rows then accumulate *complete* sums (every pair touching an
        owned particle is present); halo rows may be partial, but only the
        owned prefix ``[:n_owned]`` is ever scattered back to the global
        arrays, so the garbage halo sums are never observed.
        """
        keep = (pairs.i < n_owned) | (pairs.j < n_owned)
        return HalfPairList(
            i=pairs.i[keep],
            j=pairs.j[keep],
            dx=pairs.dx[keep],
            r=pairs.r[keep],
            n_particles=pairs.n_particles,
        )

    # -- the step -------------------------------------------------------------------

    def step(
        self, ps: ParticleSet, hooks: ProfilingHooks | None = None
    ) -> StepStats:
        """Advance the global particle set by one distributed step."""
        hooks = hooks if hooks is not None else ProfilingHooks()
        comm = CommStats()

        with hooks.region("DomainDecompAndSync"):
            sync = self.domain.sync(ps)
            owned_ranges = sync.rank_ranges
            halos = [
                self.domain.halo_indices(ps, rank) for rank in range(self.n_ranks)
            ]
            comm.halo_particles = [len(h) for h in halos]
            local_idx = [
                np.concatenate(
                    [np.arange(start, end, dtype=np.int64), halos[rank]]
                )
                for rank, (start, end) in enumerate(owned_ranges)
            ]
            owned_global = [
                np.arange(start, end, dtype=np.int64)
                for start, end in owned_ranges
            ]
            n_owned = [end - start for start, end in owned_ranges]
            comm.record_exchange(
                comm.halo_particles, ("pos", "vel", "mass", "h", "u")
            )

        with hooks.region("FindNeighbors"):
            # Each rank searches its local (owned + halo) set once per step
            # — local membership changes with the decomposition, so the
            # serial path's cross-step Verlet cache does not apply here —
            # and shares one StepContext (kernel values, IAD vectors)
            # across all subsequent loop functions.
            rank_ctxs: list[StepContext] = []
            for rank in range(self.n_ranks):
                lps = self._make_local(ps, local_idx[rank])
                half = self._restrict_half(
                    find_neighbors(lps.pos, lps.h, self.box, half=True),
                    n_owned[rank],
                )
                rank_ctxs.append(StepContext(half, lps.h, self.kernel))
                # Owned rows see every pair touching them, so the
                # undirected degree equals the directed neighbour count.
                counts = half.neighbor_counts()[: n_owned[rank]]
                ps.nc[owned_global[rank]] = counts

        with hooks.region("Density"):
            for rank in range(self.n_ranks):
                lps = self._make_local(ps, local_idx[rank])
                compute_density(lps, rank_ctxs[rank], self.kernel)
                self._scatter(
                    ps, lps, owned_global[rank], n_owned[rank], ("rho",)
                )
            comm.record_exchange(comm.halo_particles, ("rho",))

        with hooks.region("EquationOfState"):
            for rank in range(self.n_ranks):
                lps = self._make_local(ps, local_idx[rank])
                ideal_gas_eos(lps, self.gamma)
                self._scatter(
                    ps, lps, owned_global[rank], n_owned[rank], ("p", "c")
                )
            comm.record_exchange(comm.halo_particles, ("p", "c"))

        with hooks.region("IADVelocityDivCurl"):
            for rank in range(self.n_ranks):
                lps = self._make_local(ps, local_idx[rank])
                compute_iad_and_divcurl(lps, rank_ctxs[rank], self.kernel)
                self._scatter(
                    ps, lps, owned_global[rank], n_owned[rank],
                    ("div_v", "curl_v"),
                )
                ps.c_iad[owned_global[rank]] = lps.c_iad[: n_owned[rank]]
            comm.record_exchange(
                comm.halo_particles, ("c_iad", "div_v", "curl_v")
            )

        with hooks.region("MomentumEnergy"):
            v_sig = np.zeros(ps.n)
            for rank in range(self.n_ranks):
                lps = self._make_local(ps, local_idx[rank])
                compute_momentum_energy(
                    lps, rank_ctxs[rank], self.kernel, av_alpha=self.av_alpha
                )
                self._scatter(
                    ps, lps, owned_global[rank], n_owned[rank], ()
                )
                ps.acc[owned_global[rank]] = lps.acc[: n_owned[rank]]
                ps.du[owned_global[rank]] = lps.du[: n_owned[rank]]
                v_sig[owned_global[rank]] = lps.v_sig_max[: n_owned[rank]]
            ps.v_sig_max = v_sig

        with hooks.region("Timestep"):
            # Per-rank local minimum, then the global allreduce(min).
            local_dts = []
            for rank in range(self.n_ranks):
                sub = ParticleSet(max(n_owned[rank], 1))
                idx = owned_global[rank]
                if len(idx):
                    sub.h = ps.h[idx]
                    sub.acc = ps.acc[idx]
                    sub.v_sig_max = ps.v_sig_max[idx]
                    local_dts.append(
                        compute_timestep(sub, self._dt_prev, courant=self.courant)
                    )
            dt = min(local_dts)
            comm.allreduce_count += 1

        with hooks.region("UpdateQuantities"):
            update_quantities(ps, dt, self.box)

        with hooks.region("UpdateSmoothingLength"):
            h_max = 0.99 * self.box.length / 4.0 if self.box.periodic else None
            update_smoothing_length(ps, self.n_target, h_max=h_max)

        with hooks.region("EnergyConservation"):
            totals = energy_conservation(ps)
            comm.allreduce_count += 1

        self.comm_history.append(comm)
        self._dt_prev = dt
        self._step += 1
        n_pairs = sum(c.pairs.n_pairs for c in rank_ctxs)
        return StepStats(
            step=self._step,
            dt=dt,
            n_pairs=n_pairs,
            mean_neighbors=float(np.mean(ps.nc)),
            totals=totals,
        )
