"""State update (the ``UpdateQuantities`` loop function).

Semi-implicit (symplectic) Euler, as in SPH-EXA's position update::

    v <- v + a dt
    x <- x + v dt        (wrapped into periodic boxes)
    u <- u + du dt       (floored at a tiny positive value)
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.sph.box import Box
from repro.sph.particles import ParticleSet

#: Lowest admissible specific internal energy (keeps the EOS well-posed).
U_FLOOR = 1e-12


def update_quantities(ps: ParticleSet, dt: float, box: Box) -> None:
    """Advance velocities, positions and internal energy by ``dt``."""
    if dt <= 0:
        raise SimulationError(f"time step must be positive, got {dt!r}")
    ps.vel = ps.vel + ps.acc * dt
    ps.pos = box.wrap(ps.pos + ps.vel * dt)
    ps.u = np.maximum(ps.u + ps.du * dt, U_FLOOR)
