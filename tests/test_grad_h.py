"""Tests for the grad-h (Omega) correction."""

import numpy as np

from repro.sph import Simulation
from repro.sph.initial_conditions import make_evrard, make_turbulence
from repro.sph.kernels import CubicSplineKernel
from repro.sph.neighbors import find_neighbors
from repro.sph.physics import compute_density
from repro.sph.physics.grad_h import compute_omega, kernel_dh
from repro.sph.propagator import Propagator

class TestKernelDh:
    def test_matches_finite_difference(self):
        r = np.linspace(0.05, 1.3, 100)
        h = np.full_like(r, 0.7)
        eps = 1e-6
        numeric = (
            CubicSplineKernel.value(r, h + eps)
            - CubicSplineKernel.value(r, h - eps)
        ) / (2 * eps)
        analytic = kernel_dh(r, h)
        assert np.allclose(analytic, numeric, rtol=1e-4, atol=1e-7)

    def test_zero_beyond_support(self):
        assert kernel_dh(np.array([3.0]), np.array([1.0]))[0] == 0.0

    def test_negative_at_origin(self):
        """Growing h dilutes the central value: dW/dh < 0 at r = 0."""
        assert kernel_dh(np.array([0.0]), np.array([1.0]))[0] < 0


class TestOmega:
    def test_near_unity_for_uniform_gas(self):
        ps, box = make_turbulence(n_side=8, seed=31)
        pairs = find_neighbors(ps.pos, ps.h, box)
        compute_density(ps, pairs)
        omega = compute_omega(ps, pairs)
        assert np.median(np.abs(omega - 1.0)) < 0.15

    def test_deviates_in_density_gradient(self):
        ps, box = make_evrard(n=3000, seed=32)
        pairs = find_neighbors(ps.pos, ps.h, box)
        compute_density(ps, pairs)
        omega = compute_omega(ps, pairs)
        # The steep rho ~ 1/r profile makes Omega spread visibly.
        assert omega.std() > 0.01

    def test_clamped(self):
        ps, box = make_turbulence(n_side=6, seed=33)
        ps.h *= 3.0  # pathological: huge supports
        pairs = find_neighbors(ps.pos, ps.h, box)
        compute_density(ps, pairs)
        omega = compute_omega(ps, pairs)
        assert np.all(omega >= 0.4)
        assert np.all(omega <= 2.5)


class TestGradHInPropagator:
    def test_momentum_still_conserved(self):
        ps, box = make_turbulence(n_side=8, seed=34)
        rng = np.random.default_rng(34)
        ps.vel = rng.normal(0.0, 0.05, size=ps.vel.shape)
        p0 = ps.momentum().copy()
        sim = Simulation(ps, Propagator(box, use_grad_h=True))
        sim.run(5)
        assert np.abs(ps.momentum() - p0).max() < 1e-12

    def test_changes_dynamics_in_nonuniform_gas(self):
        def run(use_grad_h):
            ps, box = make_evrard(n=600, seed=35)
            sim = Simulation(
                ps, Propagator(box, gravity=True, use_grad_h=use_grad_h)
            )
            sim.run(5)
            return sim.ps.u.copy()

        assert not np.allclose(run(False), run(True))

    def test_energy_rate_cancellation_exact(self):
        """dE_kin/dt + dE_int/dt == 0 to round-off also with Omega."""
        from repro.sph.neighbors import find_neighbors
        from repro.sph.physics import (
            compute_density,
            compute_iad_and_divcurl,
            compute_momentum_energy,
            ideal_gas_eos,
        )

        ps, box = make_turbulence(n_side=8, seed=36)
        rng = np.random.default_rng(36)
        ps.vel = rng.normal(0.0, 0.1, size=ps.vel.shape)
        pairs = find_neighbors(ps.pos, ps.h, box)
        compute_density(ps, pairs)
        ideal_gas_eos(ps)
        compute_iad_and_divcurl(ps, pairs)
        omega = compute_omega(ps, pairs)
        compute_momentum_energy(ps, pairs, omega=omega)
        dekin = np.sum(ps.mass * np.einsum("ia,ia->i", ps.vel, ps.acc))
        deint = np.sum(ps.mass * ps.du)
        scale = abs(dekin) + abs(deint) + 1e-300
        assert abs(dekin + deint) / scale < 1e-12
