"""A/B comparison of instrumented runs.

The paper's punchline for Figure 3 is a *comparison*: MomentumEnergy
costs 45.8 % of GPU energy on LUMI-G but 25.3 % on CSCS-A100, therefore
the kernel "can further be optimized for AMD GPUs".  This module turns
that reasoning into a reusable report: given two measurement sets (two
systems, two code versions, two frequencies), it ranks functions by how
much worse they got — normalized per particle-step so different scales
compare fairly — and names the optimization targets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.aggregate import function_seconds, function_totals
from repro.errors import AnalysisError
from repro.instrumentation.records import RunMeasurements


@dataclass(frozen=True)
class FunctionDelta:
    """One function's A-vs-B comparison (per particle-step normalized)."""

    function: str
    a_joules_per_pstep: float
    b_joules_per_pstep: float
    a_seconds_share: float
    b_seconds_share: float

    @property
    def energy_ratio(self) -> float:
        """B / A energy per particle-step (> 1: B is worse)."""
        if self.a_joules_per_pstep <= 0:
            raise AnalysisError(
                f"function {self.function!r} has no energy in run A"
            )
        return self.b_joules_per_pstep / self.a_joules_per_pstep


def _per_pstep(run: RunMeasurements, counter: str) -> dict[str, float]:
    """Energy per (particle * step), so scales/dimensions cancel."""
    work = run.particles_per_rank * run.num_ranks * run.num_steps
    if work <= 0:
        raise AnalysisError("run has no work to normalize by")
    return {
        name: joules / work
        for name, joules in function_totals(run, counter).items()
    }


def compare_runs(
    run_a: RunMeasurements,
    run_b: RunMeasurements,
    counter: str = "gpu",
) -> list[FunctionDelta]:
    """Per-function comparison, sorted by B/A energy ratio (worst first).

    Only functions present in both runs are compared.
    """
    a_energy = _per_pstep(run_a, counter)
    b_energy = _per_pstep(run_b, counter)
    a_seconds = function_seconds(run_a)
    b_seconds = function_seconds(run_b)
    a_total = sum(a_seconds.values())
    b_total = sum(b_seconds.values())

    deltas = []
    for name in a_energy:
        if name not in b_energy or a_energy[name] <= 0:
            continue
        deltas.append(
            FunctionDelta(
                function=name,
                a_joules_per_pstep=a_energy[name],
                b_joules_per_pstep=b_energy[name],
                a_seconds_share=a_seconds[name] / a_total,
                b_seconds_share=b_seconds[name] / b_total,
            )
        )
    deltas.sort(key=lambda d: d.energy_ratio, reverse=True)
    return deltas


def optimization_targets(
    deltas: list[FunctionDelta],
    ratio_threshold: float = 1.5,
    min_share: float = 0.05,
) -> list[str]:
    """Functions that are both much worse in B and significant in B.

    This is the Figure 3 inference automated: a function whose
    per-particle energy is >= ``ratio_threshold`` times run A's *and*
    which holds at least ``min_share`` of run B's time is an optimization
    target on platform/version B.
    """
    return [
        d.function
        for d in deltas
        if d.energy_ratio >= ratio_threshold and d.b_seconds_share >= min_share
    ]


def comparison_report(
    run_a: RunMeasurements,
    run_b: RunMeasurements,
    counter: str = "gpu",
    label_a: str | None = None,
    label_b: str | None = None,
) -> str:
    """Human-readable A/B comparison table."""
    label_a = label_a or run_a.system_name
    label_b = label_b or run_b.system_name
    deltas = compare_runs(run_a, run_b, counter)
    lines = [
        f"Per-function {counter.upper()} energy per particle-step: "
        f"{label_b} vs {label_a}",
        f"{'Function':>24} {'B/A':>7} {'A share':>8} {'B share':>8}",
    ]
    for d in deltas:
        lines.append(
            f"{d.function:>24} {d.energy_ratio:>7.2f} "
            f"{d.a_seconds_share:>8.1%} {d.b_seconds_share:>8.1%}"
        )
    targets = optimization_targets(deltas)
    if targets:
        lines.append("")
        lines.append(
            f"Optimization targets on {label_b}: " + ", ".join(targets)
        )
    return "\n".join(lines)
