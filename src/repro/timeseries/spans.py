"""Function-region spans: the attribution context of the telemetry.

The :class:`~repro.instrumentation.profiler.EnergyProfiler` marks a region
open when a rank enters an instrumented function and closed when that
rank's call completes.  A :class:`SpanRecorder` attached to the profiler
turns those marks into retained :class:`Span` rows, so every telemetry
sample can be correlated with the function that was executing when it was
taken — the timeline currency the exporters (Chrome trace duration
events) and the live view (current-region annotation) are built on.

Span queries bisect a lazily-sorted index, so ``function_at(rank, t)``
stays O(log n) over million-span runs.  Export ordering is always
``(start, name, rank)`` — byte-identical output for identical runs.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.errors import MeasurementError


@dataclass(frozen=True)
class Span:
    """One completed function-region execution on one rank."""

    rank: int
    function: str
    t0: float
    t1: float
    #: Node the rank lives on (-1 when placement is unknown).
    node_index: int = -1

    @property
    def seconds(self) -> float:
        return self.t1 - self.t0


@dataclass(frozen=True)
class Instant:
    """A run-lifecycle mark (app window start/end)."""

    name: str
    t: float


class SpanRecorder:
    """Collects region spans from profiler begin/end marks."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        #: rank -> (t0, node_index) of the currently open region.
        self._open: dict[int, tuple[float, int]] = {}
        #: rank -> name of the most recently completed function.
        self._last_function: dict[int, str] = {}
        self._by_rank_cache: dict[int, tuple[list[float], list[Span]]] | None = None

    # -- recording ----------------------------------------------------------

    def begin(self, rank: int, t: float, node_index: int = -1) -> None:
        """Mark a region open on ``rank`` at time ``t``."""
        if rank in self._open:
            raise MeasurementError(f"rank {rank} already has an open span")
        self._open[rank] = (t, node_index)

    def end(self, rank: int, function: str, t: float) -> None:
        """Close the open region of ``rank`` as one execution of ``function``."""
        try:
            t0, node_index = self._open.pop(rank)
        except KeyError:
            raise MeasurementError(f"rank {rank} has no open span") from None
        if t < t0:
            raise MeasurementError(
                f"span end t={t!r} precedes its begin t={t0!r}"
            )
        self.spans.append(
            Span(rank=rank, function=function, t0=t0, t1=t, node_index=node_index)
        )
        self._last_function[rank] = function
        self._by_rank_cache = None

    def instant(self, name: str, t: float) -> None:
        """Record a run-lifecycle mark."""
        self.instants.append(Instant(name=name, t=t))

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def open_since(self, rank: int) -> float | None:
        """Begin time of the rank's open region, if any."""
        entry = self._open.get(rank)
        return entry[0] if entry is not None else None

    def last_function(self, rank: int) -> str | None:
        """Name of the rank's most recently completed function."""
        return self._last_function.get(rank)

    def current_annotation(self, rank: int) -> str | None:
        """Human annotation of what the rank is doing right now.

        The profiler only learns a region's name when it closes, so an
        open region is annotated with the previous function name plus an
        ellipsis (the steady-state loop repeats the same sequence).
        """
        since = self.open_since(rank)
        last = self.last_function(rank)
        if since is not None:
            return f"{last or '?'}…" if last else "…"
        return last

    def _by_rank(self, rank: int) -> tuple[list[float], list[Span]]:
        if self._by_rank_cache is None:
            self._by_rank_cache = {}
        entry = self._by_rank_cache.get(rank)
        if entry is None:
            spans = sorted(
                (s for s in self.spans if s.rank == rank), key=lambda s: s.t0
            )
            entry = ([s.t0 for s in spans], spans)
            self._by_rank_cache[rank] = entry
        return entry

    def function_at(self, rank: int, t: float) -> str | None:
        """The function ``rank`` was executing at time ``t`` (if any)."""
        starts, spans = self._by_rank(rank)
        idx = bisect.bisect_right(starts, t) - 1
        if idx < 0:
            return None
        span = spans[idx]
        return span.function if span.t0 <= t <= span.t1 else None

    def events_sorted(self) -> list[Span]:
        """All spans in canonical export order: ``(start, name, rank)``."""
        return sorted(self.spans, key=lambda s: (s.t0, s.function, s.rank))

    def functions(self) -> list[str]:
        """Distinct function names, sorted."""
        return sorted({s.function for s in self.spans})
