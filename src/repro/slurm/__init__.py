"""Simulated Slurm: job lifecycle and energy accounting.

Reproduces the measurement baseline the paper validates against: Slurm's
``AcctGatherEnergy`` plugin integrates *node-level* energy from job start
(submission/prolog) to job end, reading the same counters PMT's node-level
backend reads (``pm_counters`` on Cray, IPMI elsewhere).  Because PMT
instrumentation starts at the first time-step instead, Slurm >= PMT always,
and the gap is the launch + application-setup energy — Figure 1's subject.
"""

from repro.slurm.job import JobDescriptor, JobAccounting
from repro.slurm.energy_plugin import AcctGatherEnergyPlugin
from repro.slurm.scheduler import SlurmController
from repro.slurm.sacct import format_consumed_energy, sacct_report

__all__ = [
    "JobDescriptor",
    "JobAccounting",
    "AcctGatherEnergyPlugin",
    "SlurmController",
    "format_consumed_energy",
    "sacct_report",
]
