"""Command-line interface: ``python -m repro <command>``.

Every paper artifact is reachable from the shell:

* ``table1`` — the configuration inventory;
* ``fig1`` — PMT-vs-Slurm validation series;
* ``fig2`` / ``fig3`` — device and per-function breakdowns;
* ``fig4`` / ``fig5`` — the frequency-sweep EDP experiments;
* ``report`` — one instrumented run with sacct + PMT reports
  (optionally writing the raw measurement JSON; ``--timeseries`` also
  exports the retained telemetry timeline);
* ``export-trace`` — run a case and export Chrome-trace/Prometheus/CSV
  observability artifacts;
* ``watch`` — live per-node power sparklines while a run executes
  (or, with ``--url``, attached to a running telemetry service's SSE
  live stream);
* ``serve`` — the multi-tenant telemetry ingest/query service
  (framed-protocol stream port + HTTP query/metrics/watch port);
* ``publish`` — run a case and stream its telemetry to a ``serve``
  instance with zero measurement perturbation;
* ``campaign`` — sharded or federated sweep execution
  (``run``/``work``/``status``/``gc``/``clean``) with a
  content-addressed result cache shared by any number of workers on any
  hosts, so repeated sweeps only pay for cache misses;
* ``tune`` — the dynamic per-function DVFS extension;
* ``backends`` — the registered PMT backends.

Reduced ``--steps`` make every command laptop-quick; the defaults match
the paper's 100-step runs.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.validation import validate_pmt_against_slurm
from repro.config import (
    DEFAULT_CAMPAIGN,
    OBSERVABILITY_CASES,
    SYSTEMS,
    TEST_CASES,
    get_system,
)
from repro.errors import ReproError

def _add_steps(parser: argparse.ArgumentParser, default: int = 100) -> None:
    parser.add_argument(
        "--steps",
        type=int,
        default=default,
        help=f"time-steps per run (paper: 100; default {default})",
    )


def _add_audit(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--audit",
        action="store_true",
        help="check energy-accounting invariants and report findings",
    )
    parser.add_argument(
        "--audit-strict",
        action="store_true",
        help="like --audit, but abort on the first broken invariant",
    )


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments import table1_text

    print(table1_text())
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    import repro.pmt as pmt

    for name in pmt.available_backends():
        print(name)
    return 0


def _cmd_fig1(args: argparse.Namespace) -> int:
    from repro.experiments.validation import figure1_series, figure1_table

    all_series: dict[str, dict[float, float]] = {}
    for name in args.systems:
        system = get_system(name)
        points = figure1_series(
            system, tuple(args.cards), num_steps=args.steps
        )
        print(figure1_table(points))
        print()
        all_series[f"{name} PMT"] = {
            float(p.num_cards): p.pmt_joules / 1e6 for p in points
        }
        all_series[f"{name} Slurm"] = {
            float(p.num_cards): p.slurm_joules / 1e6 for p in points
        }
    if args.plot:
        from repro.analysis.ascii_plot import line_chart

        print(line_chart(all_series, y_label="energy [MJ] vs GPU cards"))
    return 0


def _cmd_fig2(args: argparse.Namespace) -> int:
    from repro.experiments.breakdowns import figure2_breakdowns
    from repro.units import joules_to_megajoules

    cells = figure2_breakdowns(num_cards=args.cards, num_steps=args.steps)
    header = f"{'Run':>16} {'Total [MJ]':>11} " + " ".join(
        f"{k:>8}" for k in ("GPU", "CPU", "Memory", "Other")
    )
    print(header)
    for cell in cells:
        shares = cell.devices.shares
        print(
            f"{cell.label:>16} "
            f"{joules_to_megajoules(cell.devices.total_joules):>11.2f} "
            f"{shares['GPU']:>8.1%} {shares['CPU']:>8.1%} "
            f"{shares.get('Memory', 0.0):>8.1%} {shares['Other']:>8.1%}"
        )
    if args.plot:
        from repro.analysis.ascii_plot import share_bars

        for cell in cells:
            print(f"\n{cell.label}:")
            print(share_bars(cell.devices.shares))
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    from repro.experiments.breakdowns import figure3_breakdowns
    from repro.units import joules_to_megajoules

    cells = figure3_breakdowns(num_cards=args.cards, num_steps=args.steps)
    for cell in cells:
        total = sum(r.joules for r in cell.gpu_functions)
        print(f"--- {cell.label} ---")
        for row in cell.gpu_functions[: args.top]:
            print(
                f"  {row.function:>24} "
                f"{joules_to_megajoules(row.joules):>8.3f} MJ "
                f"{row.joules / total:>7.2%}"
            )
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    from repro.experiments.frequency import figure4_series

    freqs = tuple(float(f) for f in args.freqs)
    series = figure4_series(
        cube_sides=tuple(args.sides), freqs_mhz=freqs, num_steps=args.steps
    )
    print("side^3  " + " ".join(f"{f:>7.0f}" for f in sorted(freqs, reverse=True)))
    for side, norm in series.items():
        print(
            f"{side:>5}^3 "
            + " ".join(f"{norm[f]:>7.3f}" for f in sorted(freqs, reverse=True))
        )
    if args.plot:
        from repro.analysis.ascii_plot import line_chart

        named = {f"{side}^3": norm for side, norm in series.items()}
        print(line_chart(named, y_label="normalized EDP vs MHz"))
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    from repro.experiments.frequency import figure5_series

    freqs = tuple(float(f) for f in args.freqs)
    series = figure5_series(freqs_mhz=freqs, num_steps=args.steps)
    ordered = sorted(freqs, reverse=True)
    print(f"{'Function':>24} " + " ".join(f"{f:>7.0f}" for f in ordered))
    for fn, norm in series.items():
        print(f"{fn:>24} " + " ".join(f"{norm[f]:>7.3f}" for f in ordered))
    if args.plot:
        from repro.analysis.ascii_plot import line_chart

        shown = {
            fn: norm
            for fn, norm in series.items()
            if fn in (
                "MomentumEnergy", "IADVelocityDivCurl",
                "DomainDecompAndSync", "Density",
            )
        }
        print(line_chart(shown, y_label="normalized EDP vs MHz"))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_scaled_experiment
    from repro.instrumentation import (
        device_report,
        function_report,
        health_report,
    )
    from repro.instrumentation.reporting import artifact_report
    from repro.slurm import sacct_report

    system = get_system(args.system)
    test_case = TEST_CASES[args.case]
    governor = None
    if args.governor is not None:
        from repro.tuning.governor import GovernorConfig

        governor = GovernorConfig.for_system(
            args.governor, system, power_cap_watts=args.power_cap
        )
    result = run_scaled_experiment(
        system,
        test_case,
        args.cards,
        num_steps=args.steps,
        resilient=not args.no_resilient,
        inject_fault=args.inject_fault,
        fault_target=args.fault_target,
        timeseries=args.timeseries,
        audit=_audit_mode(args),
        governor=governor,
    )
    print(sacct_report([result.accounting]))
    print()
    print(device_report(result.run))
    print()
    print(function_report(result.run, "gpu"))
    if result.run.telemetry_health:
        print()
        print(health_report(result.run))
    if result.governor is not None:
        from repro.instrumentation.reporting import governor_report

        print()
        print(governor_report(result.governor))
    point = validate_pmt_against_slurm(result.run, result.accounting, args.cards)
    print(f"\nPMT/Slurm = {point.ratio:.3f} (quality: {point.quality})")
    if result.audit is not None:
        print()
        print(result.audit.render())
    if args.timeseries:
        from repro.timeseries import export_bundle

        collector = result.timeseries
        artifacts = export_bundle(
            args.artifacts_dir,
            collector.store,
            collector.spans,
            metadata=_run_metadata(result),
            basename=_artifact_basename(args.case, args.cards),
        )
        print()
        print(artifact_report(artifacts))
    if args.out:
        result.run.write(args.out)
        print(f"measurements written to {args.out}")
    return 0


def _audit_mode(args: argparse.Namespace) -> "bool | str | None":
    """Map ``--audit`` / ``--audit-strict`` to the runner's audit arg.

    Neither flag defers to the ``REPRO_AUDIT`` environment (``None``).
    """
    if getattr(args, "audit_strict", False):
        return "strict"
    if getattr(args, "audit", False):
        return True
    return None


def _artifact_basename(case: str, cards: int) -> str:
    return f"{case.replace(' ', '-').lower()}-{cards}c"


def _run_metadata(result) -> dict:
    return {
        "system": result.system.name,
        "test_case": result.test_case.name,
        "num_cards": result.num_cards,
        "gpu_freq_mhz": result.gpu_freq_mhz,
        "num_steps": result.run.num_steps,
    }


def _run_with_collector(args: argparse.Namespace, collector=None):
    from repro.experiments.runner import run_scaled_experiment

    return run_scaled_experiment(
        get_system(args.system),
        OBSERVABILITY_CASES[args.case],
        args.cards,
        num_steps=args.steps,
        power_sample_interval_s=args.interval,
        timeseries=True,
        collector=collector,
    )


def _cmd_export_trace(args: argparse.Namespace) -> int:
    from repro.instrumentation.reporting import artifact_report
    from repro.timeseries import export_bundle

    result = _run_with_collector(args)
    collector = result.timeseries
    artifacts = export_bundle(
        args.out_dir,
        collector.store,
        collector.spans,
        metadata=_run_metadata(result),
        basename=_artifact_basename(args.case, args.cards),
    )
    summary = collector.summary()
    print(
        f"{args.case} on {args.system}: "
        f"{summary['samples']} samples over {summary['channels']} channels, "
        f"{summary['spans']} region spans "
        f"({summary['store_bytes'] / 1024:.0f} KiB retained)"
    )
    print(artifact_report(artifacts))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import threading

    from repro.instrumentation.reporting import service_qc_summary
    from repro.service import ServiceThread, TenantConfig

    config = TenantConfig(max_pending_samples=args.max_pending)
    with ServiceThread(
        host=args.host,
        port=args.port,
        http_port=args.http_port,
        tenant_config=config,
    ) as handle:
        print(
            f"telemetry service on {handle.host}: "
            f"stream :{handle.port}, http :{handle.http_port}"
        )
        print(
            f"  publish:   python -m repro publish --url "
            f"telemetry://{handle.host}:{handle.port}/<tenant>"
        )
        print(
            f"  watch:     python -m repro watch --url "
            f"{handle.host}:{handle.http_port} --tenant <name>"
        )
        print(
            f"  metrics:   http://{handle.host}:{handle.http_port}/metrics",
            flush=True,  # the banner must reach pipes before we block
        )
        try:
            threading.Event().wait()
        except KeyboardInterrupt:
            pass
        registry = handle.service.registry
        print()
        print(registry.accounting_summary())
        print(
            service_qc_summary(
                registry.snapshot(),
                handle.service.watch_frames_sent,
                handle.service.watch_frames_dropped,
            )
        )
    return 0


def _cmd_publish(args: argparse.Namespace) -> int:
    from repro.instrumentation.reporting import service_qc_summary
    from repro.service import (
        ServiceClient,
        ServiceCollector,
        endpoint_tenant,
        parse_endpoint,
    )

    host, port = parse_endpoint(args.url)
    tenant = endpoint_tenant(args.url) or args.tenant
    client = ServiceClient(
        host,
        port,
        tenant,
        source=f"publish:{args.case}",
        backpressure=args.backpressure,
    )
    collector = ServiceCollector(client, batch_ticks=args.batch_ticks)
    result = _run_with_collector(args, collector=collector)
    ack = collector.close()
    summary = collector.summary()
    print(
        f"{args.case} on {args.system}: {summary['samples']} samples "
        f"retained locally, {client.published_samples} published to "
        f"{host}:{port} as tenant {tenant!r} "
        f"({client.published_batches} batches)"
    )
    print(
        f"run window: {result.run.app_seconds:.0f} s instrumented, "
        f"{summary['channels']} channels"
    )
    snapshot = {k: v for k, v in ack.items() if k != "kind"}
    print(service_qc_summary([snapshot]))
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.timeseries import TimeseriesCollector, attach_live_printer

    if args.url:
        return _watch_remote(args)
    collector = TimeseriesCollector()
    view = attach_live_printer(
        collector, every_ticks=args.every, width=args.width
    )
    result = _run_with_collector(args, collector=collector)
    # Final frame: the completed run's full dashboard.
    print(view.render())
    summary = collector.summary()
    print(
        f"\nrun complete: {summary['samples']} samples, "
        f"{summary['spans']} spans, "
        f"{result.run.app_seconds:.0f} s instrumented window"
    )
    return 0


def _watch_remote(args: argparse.Namespace) -> int:
    """Attach ``watch`` to a running service's SSE live stream."""
    from repro.service import parse_endpoint, watch_sse

    if not args.tenant:
        print("error: watch --url needs --tenant", file=sys.stderr)
        return 1
    host, port = parse_endpoint(args.url)
    frames = 0
    for payload in watch_sse(
        host,
        port,
        args.tenant,
        every=args.every,
        width=args.width,
        max_frames=args.frames,
    ):
        print(payload["frame"])
        print(
            f"[{payload['tenant']}] {payload['samples']} samples over "
            f"{payload['channels']} channels"
        )
        frames += 1
    print(f"\nwatch closed after {frames} frames")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.compare import comparison_report
    from repro.experiments.runner import run_scaled_experiment

    case = TEST_CASES[args.case]
    run_a = run_scaled_experiment(
        get_system(args.system_a), case, args.cards, num_steps=args.steps
    ).run
    run_b = run_scaled_experiment(
        get_system(args.system_b), case, args.cards, num_steps=args.steps
    ).run
    print(comparison_report(run_a, run_b, counter=args.counter))
    return 0


def _campaign_spec(args: argparse.Namespace):
    """Build the declarative spec of the selected named sweep."""
    from dataclasses import replace

    from repro.experiments.frequency import figure4_spec, figure5_spec
    from repro.experiments.scaling import weak_scaling_spec
    from repro.experiments.validation import figure1_spec

    def _governed(spec):
        governor = getattr(args, "governor", None)
        return spec if governor is None else replace(spec, governor=governor)

    if args.sweep == "fig4":
        return _governed(
            figure4_spec(
                cube_sides=tuple(args.sides),
                freqs_mhz=tuple(float(f) for f in args.freqs),
                num_steps=args.steps,
                seed=args.seed,
            )
        )
    if args.sweep == "fig5":
        return _governed(
            figure5_spec(
                freqs_mhz=tuple(float(f) for f in args.freqs),
                cube_side=args.side,
                num_steps=args.steps,
                seed=args.seed,
            )
        )
    if args.sweep == "fig1":
        return _governed(
            figure1_spec(
                get_system(args.system),
                tuple(args.cards),
                num_steps=args.steps,
                seed=args.seed,
            )
        )
    # weak-scaling
    return _governed(
        weak_scaling_spec(
            get_system(args.system),
            tuple(args.cards),
            num_steps=args.steps if args.steps is not None else 100,
            seed=args.seed,
        )
    )


def _cache_dir(args: argparse.Namespace) -> str:
    """``--cache-dir``, falling back to ``$REPRO_CACHE_DIR`` then default.

    Resolved at command time (not parser-build time) so federated
    workers started from different shells agree on the shared root
    through the environment alone.
    """
    if args.cache_dir is not None:
        return args.cache_dir
    from repro.config import CampaignSettings

    return CampaignSettings.from_env().cache_dir


def _campaign_store(args: argparse.Namespace):
    from repro.campaign import ResultStore

    if getattr(args, "no_cache", False):
        return None
    return ResultStore(_cache_dir(args))


def _progress_printer(total: int):
    """A one-line ``\\r``-rewriting progress callback for the terminal."""

    def progress(stats, key) -> None:
        line = (
            f"\r[{stats.done}/{total}] "
            f"{stats.hits} cached, {stats.misses} executed  {key.label}"
        )
        print(f"{line[:117]:<117}", end="", flush=True)
        if stats.done == total:
            print(flush=True)

    return progress


def _render_fig4(series: dict[int, dict[float, float]], freqs) -> str:
    ordered = sorted(freqs, reverse=True)
    lines = ["side^3  " + " ".join(f"{f:>7.0f}" for f in ordered)]
    for side, norm in series.items():
        lines.append(
            f"{side:>5}^3 " + " ".join(f"{norm[f]:>7.3f}" for f in ordered)
        )
    return "\n".join(lines)


def _render_fig5(series: dict[str, dict[float, float]], freqs) -> str:
    ordered = sorted(freqs, reverse=True)
    lines = [f"{'Function':>24} " + " ".join(f"{f:>7.0f}" for f in ordered)]
    for fn, norm in series.items():
        lines.append(f"{fn:>24} " + " ".join(f"{norm[f]:>7.3f}" for f in ordered))
    return "\n".join(lines)


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.campaign import campaign_summary, execute, expand
    from repro.campaign.merge import (
        merge_figure1,
        merge_figure4,
        merge_figure5,
        merge_weak_scaling,
    )
    from repro.experiments.frequency import BASELINE_MHZ
    from repro.experiments.scaling import weak_scaling_table
    from repro.experiments.validation import figure1_table

    spec = _campaign_spec(args)
    keys = expand(spec)
    progress = None if args.quiet else _progress_printer(len(keys))
    audit_mode = _audit_mode(args)
    if audit_mode:
        # Worker processes inherit the env, so cache misses also run the
        # *runtime* audit hooks in situ (strict mode aborts the worker on
        # the first broken invariant, not just the post-hoc sweep).
        import os

        from repro.audit import AUDIT_ENV

        os.environ[AUDIT_ENV] = (
            "strict" if audit_mode == "strict" else "record"
        )
    from repro.config import CampaignSettings
    from repro.errors import CampaignExecutionError

    settings = CampaignSettings.from_env()
    try:
        results, stats = execute(
            keys,
            store=_campaign_store(args),
            workers=args.workers if args.workers is not None else settings.workers,
            progress=progress,
            audit=audit_mode,
            federate=args.federate,
            federation=settings.federation(),
            profile_systems=settings.worker_systems,
        )
    except CampaignExecutionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        for failure in exc.failures:
            print(f"  failed: {failure.label}", file=sys.stderr)
        return 1
    if args.sweep == "fig4":
        print(_render_fig4(merge_figure4(results, BASELINE_MHZ), spec.freqs_mhz))
    elif args.sweep == "fig5":
        print(_render_fig5(merge_figure5(results, BASELINE_MHZ), spec.freqs_mhz))
    elif args.sweep == "fig1":
        print(figure1_table(merge_figure1(results)))
    else:
        print(weak_scaling_table(merge_weak_scaling(results)))
    print()
    print(campaign_summary(spec.name, stats, results))
    if stats.audit_reports is not None:
        from repro.instrumentation.reporting import campaign_audit_summary

        print(campaign_audit_summary(stats))
        if stats.audit_findings:
            return 1
    return 0


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    from repro.campaign import ResultStore, expand
    from repro.campaign.queue import FailureLog, LeaseQueue

    spec = _campaign_spec(args)
    keys = expand(spec)
    cache_dir = _cache_dir(args)
    store = ResultStore(cache_dir)
    cached = sum(1 for key in keys if store.contains(key))
    print(
        f"Campaign {spec.name!r}: {len(keys)} points, {cached} cached, "
        f"{len(keys) - cached} to run (cache: {cache_dir})"
    )
    stats = store.stats()
    print(
        f"Store: {stats['entries']} entries, {stats['bytes'] / 1024:.0f} KiB, "
        f"{stats['corrupt']} corrupt, {stats['tmp_orphans']} orphaned temp "
        f"file{'s' if stats['tmp_orphans'] != 1 else ''}"
    )
    live, stale = LeaseQueue(store.root).active()
    failures = FailureLog(store.root).all_failures()
    poisoned = sum(1 for f in failures if f.poisoned)
    print(
        f"Federation: {live} live lease{'s' if live != 1 else ''}, "
        f"{stale} stale, {len(failures)} failure "
        f"record{'s' if len(failures) != 1 else ''} "
        f"({poisoned} poisoned)"
    )
    return 0


def _cmd_campaign_work(args: argparse.Namespace) -> int:
    """One federated worker: drain a sweep against the shared cache.

    Start any number of these (any hosts sharing the cache root): they
    coordinate through lease files alone and together drain the spec.
    """
    from repro.campaign import ResultStore, expand
    from repro.campaign.queue import WorkerProfile, drain
    from repro.config import CampaignSettings

    settings = CampaignSettings.from_env()
    systems = (
        tuple(args.profile_systems)
        if args.profile_systems
        else settings.worker_systems
    )
    profile = WorkerProfile.local(systems=systems)
    keys = expand(_campaign_spec(args))
    store = ResultStore(_cache_dir(args))
    stats = drain(
        keys, store, config=settings.federation(), profile=profile
    )
    print(
        f"Worker {stats.worker}: {stats.executed} executed "
        f"({stats.executed_steps} steps), {stats.hits_observed} taken by "
        f"peers/cache, {stats.steals} leases stolen, "
        f"{stats.failures} failures, {stats.poisoned_seen} poisoned, "
        f"{stats.corrupt_seen} corrupt entries seen"
    )
    return 1 if stats.poisoned_seen else 0


def _cmd_campaign_gc(args: argparse.Namespace) -> int:
    """Reap federation debris: orphan temps, stale leases, corrupt rot."""
    from repro.campaign import ResultStore
    from repro.campaign.queue import gc_sweep
    from repro.config import CampaignSettings

    cache_dir = _cache_dir(args)
    store = ResultStore(cache_dir)
    counts = gc_sweep(store, config=CampaignSettings.from_env().federation())
    print(
        f"gc {cache_dir}: {counts['tmp_reaped']} temp files reaped, "
        f"{counts['leases_swept']} stale leases swept, "
        f"{counts['corrupt_quarantined']} corrupt entries quarantined"
    )
    return 0


def _cmd_campaign_clean(args: argparse.Namespace) -> int:
    from repro.campaign import ResultStore, expand

    cache_dir = _cache_dir(args)
    store = ResultStore(cache_dir)
    if args.sweep is None:
        removed = store.clean()
        print(f"removed {removed} cache entries from {cache_dir}")
    else:
        removed = store.clean(expand(_campaign_spec(args)))
        print(
            f"removed {removed} {args.sweep!r} cache entries "
            f"from {cache_dir}"
        )
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.config import MINIHPC, SUBSONIC_TURBULENCE
    from repro.tuning import tune_per_function

    report = tune_per_function(
        MINIHPC,
        SUBSONIC_TURBULENCE,
        num_cards=2,
        freqs_mhz=tuple(float(f) for f in args.freqs),
        num_steps=args.steps,
        particles_per_rank=float(args.side) ** 3,
        objective=args.objective,
        max_slowdown=args.max_slowdown,
    )
    print("per-function policy (MHz):")
    for fn, freq in sorted(report.policy.table.items()):
        print(f"  {fn:>24} -> {freq:.0f}")
    dilation = report.dynamic_seconds / report.baseline_seconds
    print(f"switches          : {report.switch_count}")
    print(f"time dilation     : {dilation:.3f}x")
    print(f"EDP vs baseline   : {report.edp_vs_baseline:.3f}")
    print(f"EDP vs best static: {report.edp_vs_best_static:.3f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Application-level energy measurement for large-scale "
            "simulations (SC-W 2023 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print the Table 1 inventory").set_defaults(
        func=_cmd_table1
    )
    sub.add_parser("backends", help="list PMT backends").set_defaults(
        func=_cmd_backends
    )

    p = sub.add_parser("fig1", help="PMT vs Slurm validation series")
    p.add_argument("--plot", action="store_true", help="render an ASCII chart")
    p.add_argument(
        "--systems", nargs="+", default=["LUMI-G", "CSCS-A100"],
        choices=sorted(SYSTEMS),
    )
    p.add_argument("--cards", nargs="+", type=int, default=[8, 16, 24, 32, 40, 48])
    _add_steps(p)
    p.set_defaults(func=_cmd_fig1)

    p = sub.add_parser("fig2", help="device energy breakdown")
    p.add_argument("--plot", action="store_true", help="render ASCII bars")
    p.add_argument("--cards", type=int, default=48)
    _add_steps(p)
    p.set_defaults(func=_cmd_fig2)

    p = sub.add_parser("fig3", help="per-function energy breakdown")
    p.add_argument("--cards", type=int, default=48)
    p.add_argument("--top", type=int, default=6)
    _add_steps(p)
    p.set_defaults(func=_cmd_fig3)

    p = sub.add_parser("fig4", help="EDP vs frequency per problem size")
    p.add_argument("--plot", action="store_true", help="render an ASCII chart")
    p.add_argument("--sides", nargs="+", type=int, default=[200, 300, 450])
    p.add_argument("--freqs", nargs="+", default=[1410, 1230, 1005])
    _add_steps(p)
    p.set_defaults(func=_cmd_fig4)

    p = sub.add_parser("fig5", help="per-function EDP vs frequency")
    p.add_argument("--plot", action="store_true", help="render an ASCII chart")
    p.add_argument("--freqs", nargs="+", default=[1410, 1230, 1005])
    _add_steps(p)
    p.set_defaults(func=_cmd_fig5)

    p = sub.add_parser("report", help="one instrumented run, full reports")
    p.add_argument("--system", default="CSCS-A100", choices=sorted(SYSTEMS))
    p.add_argument(
        "--case", default="Subsonic Turbulence", choices=sorted(TEST_CASES)
    )
    p.add_argument("--cards", type=int, default=8)
    p.add_argument("--out", default=None, help="write measurement JSON here")
    p.add_argument(
        "--inject-fault",
        default=None,
        choices=["freeze", "dropout", "glitch"],
        help="break one sensor before the run (fault-injection ablation)",
    )
    p.add_argument(
        "--fault-target",
        default="gpu0",
        help="sensor to break: node/cpu/memory/gpu<K>/rocm<K> (default gpu0)",
    )
    p.add_argument(
        "--no-resilient",
        action="store_true",
        help="measure without the fault-tolerant layer (faults then abort)",
    )
    p.add_argument(
        "--timeseries",
        action="store_true",
        help="retain the telemetry timeline and export observability artifacts",
    )
    p.add_argument(
        "--artifacts-dir",
        default="artifacts",
        help="directory for --timeseries exports (default: artifacts/)",
    )
    p.add_argument(
        "--governor",
        default=None,
        choices=["min-energy", "min-edp", "power-cap"],
        help="steer GPU clocks online with the energy-aware governor",
    )
    p.add_argument(
        "--power-cap",
        type=float,
        default=None,
        help="rolling node-power budget in watts for --governor power-cap "
        "(default: 80%% of the node's nominal peak)",
    )
    _add_audit(p)
    _add_steps(p)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser(
        "export-trace",
        help="run a case, export Chrome-trace/Prometheus/CSV artifacts",
    )
    p.add_argument("--system", default="CSCS-A100", choices=sorted(SYSTEMS))
    p.add_argument(
        "--case", default="Sedov Blast", choices=sorted(OBSERVABILITY_CASES)
    )
    p.add_argument("--cards", type=int, default=8)
    p.add_argument(
        "--interval", type=float, default=None,
        help="sampling period in simulated seconds (default 1.0)",
    )
    p.add_argument(
        "--out-dir", default="artifacts", help="artifact directory"
    )
    _add_steps(p)
    p.set_defaults(func=_cmd_export_trace)

    p = sub.add_parser(
        "watch", help="live per-node power sparklines while a run executes"
    )
    p.add_argument("--system", default="CSCS-A100", choices=sorted(SYSTEMS))
    p.add_argument(
        "--case", default="Sedov Blast", choices=sorted(OBSERVABILITY_CASES)
    )
    p.add_argument("--cards", type=int, default=8)
    p.add_argument(
        "--interval", type=float, default=None,
        help="sampling period in simulated seconds (default 1.0)",
    )
    p.add_argument(
        "--every", type=int, default=50,
        help="render a frame every N sampler ticks (default 50)",
    )
    p.add_argument("--width", type=int, default=48, help="sparkline width")
    p.add_argument(
        "--url",
        default=None,
        help="attach to a running service's HTTP port (host:port) "
        "instead of running a local experiment",
    )
    p.add_argument(
        "--tenant", default=None, help="tenant to watch (with --url)"
    )
    p.add_argument(
        "--frames",
        type=int,
        default=None,
        help="stop after N frames (with --url; default: stream until close)",
    )
    _add_steps(p, default=20)
    p.set_defaults(func=_cmd_watch)

    p = sub.add_parser(
        "serve",
        help="run the multi-tenant telemetry ingest/query service",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=0,
        help="stream (framed protocol) port; 0 binds an ephemeral port",
    )
    p.add_argument(
        "--http-port", type=int, default=0,
        help="query/metrics/watch HTTP port; 0 binds an ephemeral port",
    )
    p.add_argument(
        "--max-pending",
        type=int,
        default=262_144,
        help="per-tenant write-queue bound in samples (default 262144)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "publish",
        help="run a case and stream its telemetry to a service",
    )
    p.add_argument(
        "--url",
        required=True,
        help="service stream endpoint: telemetry://host:port[/tenant] "
        "(a /tenant path overrides --tenant)",
    )
    p.add_argument("--tenant", default="default")
    p.add_argument(
        "--backpressure",
        default="wait",
        choices=["wait", "shed"],
        help="block when the tenant queue is full (wait) or let the "
        "service shed with accounting (shed)",
    )
    p.add_argument(
        "--batch-ticks", type=int, default=32,
        help="sampler ticks buffered per published batch (default 32)",
    )
    p.add_argument("--system", default="CSCS-A100", choices=sorted(SYSTEMS))
    p.add_argument(
        "--case", default="Sedov Blast", choices=sorted(OBSERVABILITY_CASES)
    )
    p.add_argument("--cards", type=int, default=8)
    p.add_argument(
        "--interval", type=float, default=None,
        help="sampling period in simulated seconds (default 1.0)",
    )
    _add_steps(p, default=20)
    p.set_defaults(func=_cmd_publish)

    p = sub.add_parser(
        "compare", help="A/B per-function comparison between two systems"
    )
    p.add_argument("--system-a", default="CSCS-A100", choices=sorted(SYSTEMS))
    p.add_argument("--system-b", default="LUMI-G", choices=sorted(SYSTEMS))
    p.add_argument(
        "--case", default="Subsonic Turbulence", choices=sorted(TEST_CASES)
    )
    p.add_argument("--cards", type=int, default=8)
    p.add_argument("--counter", default="gpu", choices=["gpu", "cpu", "node"])
    _add_steps(p)
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser(
        "campaign",
        help="sharded sweep execution with a content-addressed result cache",
    )
    action = p.add_subparsers(dest="action", required=True)

    def _add_campaign_options(cp, with_sweep: bool = True) -> None:
        if with_sweep:
            cp.add_argument(
                "sweep",
                choices=["fig1", "fig4", "fig5", "weak-scaling"],
                help="the named sweep to operate on",
            )
        cp.add_argument(
            "--cache-dir",
            default=None,
            help="result cache root (default: $REPRO_CACHE_DIR or "
            f"{DEFAULT_CAMPAIGN.cache_dir})",
        )
        cp.add_argument("--seed", type=int, default=0)
        cp.add_argument(
            "--steps",
            type=int,
            default=None,
            help="time-steps per run (default: the case's paper value)",
        )
        # Sweep-axis options (each sweep reads the ones it understands).
        cp.add_argument("--sides", nargs="+", type=int, default=[200, 300, 450])
        cp.add_argument("--freqs", nargs="+", default=[1410, 1230, 1005])
        cp.add_argument("--side", type=int, default=450)
        cp.add_argument(
            "--system", default="CSCS-A100", choices=sorted(SYSTEMS)
        )
        cp.add_argument(
            "--cards", nargs="+", type=int, default=[8, 16, 24, 32, 40, 48]
        )
        cp.add_argument(
            "--governor",
            default=None,
            choices=["min-energy", "min-edp", "power-cap"],
            help="run every point under the online governor "
            "(part of the cache identity)",
        )

    cp = action.add_parser("run", help="execute a sweep (cache misses only)")
    _add_campaign_options(cp)
    cp.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker shards for cache misses "
        "(default: $REPRO_CAMPAIGN_WORKERS or serial)",
    )
    cp.add_argument(
        "--federate",
        type=int,
        default=None,
        metavar="N",
        help="drain misses with N federated lease-queue workers instead "
        "of sharding (byte-identical results either way)",
    )
    cp.add_argument(
        "--no-cache",
        action="store_true",
        help="execute every point without reading or writing the cache",
    )
    cp.add_argument(
        "--quiet", action="store_true", help="suppress the progress line"
    )
    _add_audit(cp)
    cp.set_defaults(func=_cmd_campaign_run)

    cp = action.add_parser(
        "work",
        help="run one federated worker draining a sweep (start any number)",
    )
    _add_campaign_options(cp)
    cp.add_argument(
        "--profile-systems",
        nargs="*",
        default=None,
        choices=sorted(SYSTEMS),
        help="systems this worker prefers to execute "
        "(default: $REPRO_WORKER_SYSTEMS)",
    )
    cp.set_defaults(func=_cmd_campaign_work)

    cp = action.add_parser(
        "status", help="cached/missing point counts of a sweep"
    )
    _add_campaign_options(cp)
    cp.set_defaults(func=_cmd_campaign_status)

    cp = action.add_parser(
        "gc",
        help="reap orphan temp files, stale leases, and corrupt entries",
    )
    _add_campaign_options(cp, with_sweep=False)
    cp.set_defaults(func=_cmd_campaign_gc)

    cp = action.add_parser("clean", help="drop cache entries")
    cp.add_argument(
        "sweep",
        nargs="?",
        default=None,
        choices=["fig1", "fig4", "fig5", "weak-scaling"],
        help="only this sweep's entries (default: the whole cache)",
    )
    _add_campaign_options(cp, with_sweep=False)
    cp.set_defaults(func=_cmd_campaign_clean)

    p = sub.add_parser("tune", help="dynamic per-function DVFS (extension)")
    p.add_argument("--freqs", nargs="+", default=[1410, 1230, 1005])
    p.add_argument("--side", type=int, default=450)
    p.add_argument("--objective", default="edp", choices=["edp", "energy"])
    p.add_argument("--max-slowdown", type=float, default=None)
    _add_steps(p, default=40)
    p.set_defaults(func=_cmd_tune)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
