"""Experiment runners reproducing every table and figure of the paper."""

from repro.experiments.runner import ExperimentResult, run_scaled_experiment
from repro.experiments.validation import figure1_series
from repro.experiments.breakdowns import figure2_breakdowns, figure3_breakdowns
from repro.experiments.frequency import figure4_series, figure5_series
from repro.experiments.tables import table1_text

__all__ = [
    "ExperimentResult",
    "run_scaled_experiment",
    "figure1_series",
    "figure2_breakdowns",
    "figure3_breakdowns",
    "figure4_series",
    "figure5_series",
    "table1_text",
]
