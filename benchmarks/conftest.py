"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper, asserts its
qualitative shape, and writes the reproduced rows/series to
``benchmarks/results/<name>.txt`` so the output survives pytest's stdout
capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: Path, name: str, text: str) -> None:
    """Persist one benchmark's reproduced table/series."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}")
