"""Composable energy-accounting invariant checkers.

Each checker is a pure function: it takes completed measurement records
(plus the relevant tolerances) and returns the list of
:class:`~repro.audit.findings.AuditFinding` it detected — empty when the
books balance.  The runtime :class:`~repro.audit.hooks.EnergyAuditor`
composes them at region boundaries and end-of-run; they are equally
usable post hoc over archived campaign results, which is how cached runs
get audited without re-executing a single step.

The identities checked (Simsek et al., SC-W 2023, Sections 2-3):

* **function partition** — attributed per-function energies sum to the
  whole-run energy per counter, short only of the straggler gaps;
* **device partition** — CPU + GPU + memory never exceed the node
  sensor's energy ("Other" stays non-negative);
* **pmt-vs-slurm** — the instrumented window's energy stays below
  Slurm's ConsumedEnergy, and within the paper's per-system ratio
  bounds when the window dominates the job;
* **timeseries conservation** — tiered-store energy queries reproduce
  the joules the raw tick stream delivered.
"""

from __future__ import annotations

from repro.audit.findings import AuditFinding
from repro.audit.tolerances import AuditTolerances

#: Channel tally shape used by the conservation check:
#: ``(node_index, name) -> (first_t, first_joules, last_t, last_joules)``.
ChannelTallies = dict[tuple[int, str], tuple[float, float, float, float]]


def _window_totals(run) -> dict[str, float]:
    """Whole-app-window energy per canonical counter."""
    totals = {
        "node": sum(w.node_joules for w in run.node_windows),
        "cpu": sum(w.cpu_joules for w in run.node_windows),
        "gpu": sum(sum(w.card_joules) for w in run.node_windows),
    }
    memory = [
        w.memory_joules
        for w in run.node_windows
        if w.memory_joules is not None
    ]
    if memory:
        totals["memory"] = sum(memory)
    return totals


def check_function_partition(
    run, tol: AuditTolerances | None = None
) -> list[AuditFinding]:
    """Per-function attributed energies partition the app window.

    For every counter: the attributed (sharing-corrected) per-function
    sums telescope inside the window, so they may exceed the window total
    only by quantization fuzz, and fall short of it only by the straggler
    gaps between a rank's own region end and the phase barrier.
    """
    from repro.analysis.aggregate import function_totals

    tol = tol or AuditTolerances()
    findings: list[AuditFinding] = []
    slack = tol.counter_slack_joules * max(1, run.num_ranks)
    for counter, window in _window_totals(run).items():
        measured = sum(function_totals(run, counter).values())
        excess_cap = window * tol.function_partition_max_excess + slack
        deficit_cap = window * tol.function_partition_max_deficit + slack
        if measured > window + excess_cap:
            findings.append(
                AuditFinding(
                    invariant="function-partition",
                    scope=f"run / {counter}",
                    message=(
                        "per-function energies exceed the app-window "
                        "total (double counting)"
                    ),
                    measured=measured,
                    expected=window,
                    tolerance=tol.function_partition_max_excess,
                )
            )
        elif measured < window - deficit_cap:
            findings.append(
                AuditFinding(
                    invariant="function-partition",
                    scope=f"run / {counter}",
                    message=(
                        "per-function energies fall short of the "
                        "app-window total beyond the straggler-gap "
                        "allowance (lost energy)"
                    ),
                    measured=measured,
                    expected=window,
                    tolerance=tol.function_partition_max_deficit,
                )
            )
    return findings


def check_device_partition(
    run, tol: AuditTolerances | None = None
) -> list[AuditFinding]:
    """Per-device energies sum to at most the node sensor energy."""
    tol = tol or AuditTolerances()
    findings: list[AuditFinding] = []
    for w in run.node_windows:
        scope = f"node {w.node_index}"
        components = {
            "cpu": w.cpu_joules,
            **{f"gpu{i}": j for i, j in enumerate(w.card_joules)},
        }
        if w.memory_joules is not None:
            components["memory"] = w.memory_joules
        for name, joules in (("node", w.node_joules), *components.items()):
            if joules < -tol.counter_slack_joules:
                findings.append(
                    AuditFinding(
                        invariant="counter-monotone",
                        scope=f"{scope} / {name}",
                        message="negative app-window counter delta",
                        measured=joules,
                        expected=0.0,
                        tolerance=tol.counter_slack_joules,
                    )
                )
        device_sum = sum(components.values())
        cap = (
            w.node_joules * (1.0 + tol.device_partition_max_excess)
            + tol.counter_slack_joules * (1 + len(components))
        )
        if device_sum > cap:
            findings.append(
                AuditFinding(
                    invariant="device-partition",
                    scope=scope,
                    message=(
                        "device energies exceed the node sensor total "
                        "('Other' went negative)"
                    ),
                    measured=device_sum,
                    expected=w.node_joules,
                    tolerance=tol.device_partition_max_excess,
                )
            )
    return findings


def check_pmt_vs_slurm(
    run, accounting, tol: AuditTolerances | None = None
) -> list[AuditFinding]:
    """PMT's app-window total validates against Slurm's ConsumedEnergy.

    ``accounting`` is anything accounting-shaped: a
    :class:`~repro.slurm.job.JobAccounting` or a campaign
    :class:`~repro.campaign.store.AccountingSummary` (needs
    ``consumed_energy_joules``, ``start_time`` and ``end_time``).
    """
    from repro.analysis.validation import pmt_total_joules

    tol = tol or AuditTolerances()
    findings: list[AuditFinding] = []
    slurm = accounting.consumed_energy_joules
    if slurm <= 0:
        return [
            AuditFinding(
                invariant="pmt-vs-slurm",
                scope="run",
                message="Slurm accounted non-positive energy",
                measured=slurm,
                expected=0.0,
            )
        ]
    pmt = pmt_total_joules(run)
    ratio = pmt / slurm
    if ratio > tol.pmt_slurm_ratio_max:
        findings.append(
            AuditFinding(
                invariant="pmt-vs-slurm",
                scope="run",
                message=(
                    "PMT window energy exceeds Slurm's ConsumedEnergy "
                    "(the window is a sub-interval of the accounted job)"
                ),
                measured=ratio,
                expected=1.0,
                tolerance=tol.pmt_slurm_ratio_max - 1.0,
            )
        )
    job_seconds = accounting.end_time - accounting.start_time
    window_fraction = run.app_seconds / job_seconds if job_seconds > 0 else 0.0
    if (
        window_fraction >= tol.pmt_slurm_min_window_fraction
        and ratio < tol.pmt_slurm_ratio_min
    ):
        findings.append(
            AuditFinding(
                invariant="pmt-vs-slurm",
                scope="run",
                message=(
                    "PMT/Slurm ratio below the calibrated per-system "
                    "floor for a window-dominated job (lost window "
                    "energy or inflated accounting)"
                ),
                measured=ratio,
                expected=tol.pmt_slurm_ratio_min,
                tolerance=tol.pmt_slurm_ratio_min,
            )
        )
    return findings


def check_store_conservation(
    store, tallies: ChannelTallies, tol: AuditTolerances | None = None
) -> list[AuditFinding]:
    """Tiered-store energy queries conserve the raw stream's joules.

    ``tallies`` holds, per channel, the first and last (timestamp,
    joules) pair the raw tick stream delivered (the auditor accumulates
    them while listening to sampler ticks).  The store's
    ``energy_between`` over that span must reproduce the counter delta:
    downsampling is energy-preserving by construction, so any loss is a
    tiering bug.
    """
    tol = tol or AuditTolerances()
    findings: list[AuditFinding] = []
    for (node_index, name), (t0, j0, t1, j1) in sorted(tallies.items()):
        if t1 <= t0:
            continue  # single-sample channel: no span to conserve
        expected = j1 - j0
        measured = store.channel(node_index, name).energy_between(t0, t1)
        slack = (
            abs(expected) * tol.timeseries_conservation_rel
            + tol.counter_slack_joules
        )
        if abs(measured - expected) > slack:
            findings.append(
                AuditFinding(
                    invariant="timeseries-conservation",
                    scope=f"node {node_index} / {name}",
                    message=(
                        "tiered-store energy query disagrees with the "
                        "raw sample stream"
                    ),
                    measured=measured,
                    expected=expected,
                    tolerance=tol.timeseries_conservation_rel,
                )
            )
    return findings
