"""The AcctGatherEnergy plugin.

Slurm's energy accounting works off monotonic node-energy counters: the
plugin records the counter at job start and job end; ``ConsumedEnergy`` is
the difference, summed over the job's nodes.  The backend counter is
``pm_counters`` on HPE/Cray systems and IPMI elsewhere — both already
modelled in :mod:`repro.sensors`, so the plugin inherits their cadence and
quantization (IPMI's 1 Hz tick is why small jobs account a few hundred
joules of slop).

The plugin also keeps periodic samples (``AcctGatherNodeFreq``-style) so a
power profile per job is available, as on real systems.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulerError, SensorError
from repro.hardware.clock import VirtualClock
from repro.sensors.telemetry import NodeTelemetry

#: Default accounting sample interval (Slurm's AcctGatherNodeFreq).
DEFAULT_SAMPLE_INTERVAL_S = 10.0


@dataclass(frozen=True)
class EnergySample:
    """One periodic node-power sample."""

    timestamp: float
    node_index: int
    watts: float
    joules: float


class AcctGatherEnergyPlugin:
    """Energy accounting over one job's node set."""

    def __init__(
        self,
        telemetries: list[NodeTelemetry],
        clock: VirtualClock,
        sample_interval_s: float = DEFAULT_SAMPLE_INTERVAL_S,
    ) -> None:
        if not telemetries:
            raise SchedulerError("energy plugin needs at least one node")
        if sample_interval_s <= 0:
            raise SchedulerError("sample interval must be positive")
        self.telemetries = telemetries
        self.clock = clock
        self.sample_interval_s = float(sample_interval_s)
        self._base_joules: list[float] | None = None
        self._final_joules: list[float] | None = None
        self.samples: list[EnergySample] = []
        self._next_sample_t = 0.0
        self._active = False
        # Fault tolerance: a periodic sampler must survive transient sensor
        # outages — hold the last good reading per node and extrapolate its
        # energy at the last observed power, as real slurmd daemons do when
        # an IPMI read times out.  ``degraded_reads`` counts substitutions.
        self._last_good: list[EnergySample | None] = [None] * len(telemetries)
        self.degraded_reads = 0
        clock.on_advance(self._on_advance)

    @property
    def backend_name(self) -> str:
        """Which AcctGatherEnergyType this node set maps to."""
        return self.telemetries[0].slurm_plugin_name

    def _read_node(self, node_index: int, t: float) -> EnergySample:
        """One node's counter at ``t``, degrading to last-good on failure."""
        tel = self.telemetries[node_index]
        try:
            reading = tel.slurm_energy_reading(t)
        except SensorError:
            last = self._last_good[node_index]
            self.degraded_reads += 1
            if last is None:
                # An outage covering the very first read of this node's
                # counter: serve a zero-power, zero-energy baseline rather
                # than abort the job.  Accounting is differenced against
                # the baseline, the substitution is counted, and any
                # resulting imbalance is the audit layer's to flag — real
                # slurmd keeps the job alive through a dead IPMI too.
                return EnergySample(
                    timestamp=t, node_index=node_index, watts=0.0, joules=0.0
                )
            return EnergySample(
                timestamp=t,
                node_index=node_index,
                watts=last.watts,
                joules=last.joules + last.watts * max(0.0, t - last.timestamp),
            )
        sample = EnergySample(
            timestamp=t,
            node_index=node_index,
            watts=reading.watts,
            joules=reading.joules,
        )
        self._last_good[node_index] = sample
        return sample

    def job_start(self) -> None:
        """Record baseline counters (job allocated; prolog begins)."""
        if self._active:
            raise SchedulerError("energy plugin already started")
        t = self.clock.now
        self._base_joules = [
            self._read_node(i, t).joules for i in range(len(self.telemetries))
        ]
        self._final_joules = None
        self._active = True
        self._next_sample_t = t + self.sample_interval_s
        self._take_samples(t)

    def job_end(self) -> None:
        """Record final counters (epilog complete)."""
        if not self._active:
            raise SchedulerError("energy plugin was not started")
        t = self.clock.now
        self._take_samples(t)
        self._final_joules = [
            self._read_node(i, t).joules for i in range(len(self.telemetries))
        ]
        self._active = False

    def _take_samples(self, t: float) -> None:
        for i in range(len(self.telemetries)):
            self.samples.append(self._read_node(i, t))

    def _on_advance(self, now: float) -> None:
        if not self._active:
            return
        while self._next_sample_t <= now:
            self._take_samples(self._next_sample_t)
            self._next_sample_t += self.sample_interval_s

    def per_node_joules(self) -> list[float]:
        """Counter differences per node (requires a completed job)."""
        if self._base_joules is None or self._final_joules is None:
            raise SchedulerError("job has not completed energy accounting")
        return [
            final - base
            for base, final in zip(self._base_joules, self._final_joules)
        ]

    def consumed_energy_joules(self) -> float:
        """Slurm's ConsumedEnergy for the job."""
        return sum(self.per_node_joules())
