"""Tests for the streaming telemetry subsystem: store, spans, collector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.pmt as pmt
from repro.config import CSCS_A100, LUMI_G, SEDOV_BLAST
from repro.errors import AnalysisError, MeasurementError
from repro.hardware import Node, PowerTrace, VirtualClock
from repro.pmt import PmtSampler
from repro.pmt.sampler import SampleTick
from repro.sensors import NodeTelemetry
from repro.timeseries import (
    ChannelSeries,
    LiveView,
    SampleStore,
    SpanRecorder,
    TimeseriesCollector,
    attach_live_printer,
    lttb_indices,
)


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def lumi(clock):
    node = Node("n0", clock, LUMI_G.node_spec)
    return node, NodeTelemetry(node, LUMI_G, clock)


# ---------------------------------------------------------------------------
# SampleStore / ChannelSeries
# ---------------------------------------------------------------------------


class TestChannelSeries:
    def test_append_and_latest(self):
        ch = ChannelSeries()
        ch.append(0.0, 100.0, 0.0)
        ch.append(1.0, 110.0, 105.0, quality="interpolated")
        t, w, j, q = ch.latest
        assert (t, w, j, q) == (1.0, 110.0, 105.0, "interpolated")
        assert ch.total_appended == 2

    def test_rejects_time_regression(self):
        ch = ChannelSeries()
        ch.append(5.0, 1.0, 0.0)
        with pytest.raises(AnalysisError):
            ch.append(4.0, 1.0, 0.0)

    def test_rejects_unknown_quality(self):
        ch = ChannelSeries()
        with pytest.raises(AnalysisError):
            ch.append(0.0, 1.0, 0.0, quality="fabricated")

    def test_tiering_drains_raw_into_buckets(self):
        ch = ChannelSeries(raw_capacity=64, bucket_size=8, bucket_capacity=64)
        n = 200
        t = np.arange(n, dtype=float)
        w = np.full(n, 50.0)
        j = 50.0 * t
        ch.extend(t, w, j)
        stats = ch.stats()
        assert stats.total_appended == n
        assert stats.buckets > 0
        assert stats.raw <= 64
        # Every sample is represented: raw + bucketed counts add up.
        buckets = ch.tier_arrays("buckets")
        assert stats.raw + int(buckets["count"].sum()) == n

    def test_memory_strictly_bounded_on_million_samples(self):
        store = SampleStore()
        ch = store.channel(0, "node")
        n = 1_000_000
        t = np.linspace(0.0, 1e5, n)
        w = 200.0 + 50.0 * np.sin(t / 500.0)
        dt = np.diff(t)
        j = np.concatenate([[0.0], np.cumsum(0.5 * (w[1:] + w[:-1]) * dt)])
        ch.extend(t, w, j)
        assert ch.total_appended == n
        assert ch.nbytes <= store.memory_cap_bytes()
        # All three tiers are in play after a million samples.
        stats = ch.stats()
        assert stats.lttb > 0 and stats.buckets > 0 and stats.raw > 0

    def test_full_range_energy_exact_after_downsampling(self):
        ch = ChannelSeries(raw_capacity=64, bucket_size=8, bucket_capacity=32)
        n = 5000
        t = np.arange(n, dtype=float)
        w = 100.0 + (t % 7)
        j = np.concatenate([[0.0], np.cumsum(0.5 * (w[1:] + w[:-1]))])
        ch.extend(t, w, j)
        # First and last knots are always retained, so the full-range
        # energy query is exact regardless of compression.
        assert ch.energy_between(t[0], t[-1]) == pytest.approx(
            j[-1] - j[0], rel=1e-12
        )

    def test_range_query_bisects(self):
        ch = ChannelSeries()
        t = np.arange(100, dtype=float)
        ch.extend(t, np.full(100, 10.0), 10.0 * t)
        out = ch.range_query(10.0, 20.0)
        assert out["t"][0] == 10.0
        assert out["t"][-1] == 20.0
        assert len(out["t"]) == 11

    def test_energy_between_rejects_reversed(self):
        ch = ChannelSeries()
        ch.append(0.0, 1.0, 0.0)
        with pytest.raises(AnalysisError):
            ch.energy_between(2.0, 1.0)

    def test_bucket_mean_is_energy_preserving(self):
        ch = ChannelSeries(raw_capacity=64, bucket_size=8, bucket_capacity=64)
        n = 128
        t = np.arange(n, dtype=float)
        rng = np.random.default_rng(7)
        w = rng.uniform(50.0, 400.0, n)
        j = np.concatenate([[0.0], np.cumsum(0.5 * (w[1:] + w[:-1]))])
        ch.extend(t, w, j)
        b = ch.tier_arrays("buckets")
        span = b["t1"] - b["t0"]
        # Bucket rectangles integrate to the exact joules of their spans.
        np.testing.assert_allclose(
            b["watts_mean"] * span, b["joules1"] - b["joules0"], rtol=1e-12
        )

    def test_quality_worst_of_bucket(self):
        ch = ChannelSeries(raw_capacity=16, bucket_size=4, bucket_capacity=16)
        n = 64
        t = np.arange(n, dtype=float)
        q = np.zeros(n, dtype=np.uint8)
        q[5] = 3  # one "interpolated" sample early on
        ch.extend(t, np.full(n, 10.0), 10.0 * t, q)
        b = ch.tier_arrays("buckets")
        assert b["quality"].max() == 3
        assert ch.degraded_points() >= 1


class TestLttb:
    def test_keeps_endpoints(self):
        t = np.linspace(0, 10, 100)
        v = np.sin(t)
        idx = lttb_indices(t, v, 12)
        assert idx[0] == 0
        assert idx[-1] == 99
        assert len(idx) == 12
        assert np.all(np.diff(idx) > 0)

    def test_identity_when_small(self):
        t = np.arange(5.0)
        idx = lttb_indices(t, t, 10)
        assert len(idx) == 5

    def test_keeps_spike(self):
        t = np.arange(1000, dtype=float)
        v = np.zeros(1000)
        v[500] = 100.0  # a single spike must survive downsampling
        idx = lttb_indices(t, v, 50)
        assert 500 in idx


class TestSampleStore:
    def test_channels_sorted(self):
        store = SampleStore()
        store.record(1, "b", 0.0, 1.0, 0.0)
        store.record(0, "z", 0.0, 1.0, 0.0)
        store.record(0, "a", 0.0, 1.0, 0.0)
        assert store.channels() == [(0, "a"), (0, "z"), (1, "b")]
        assert (0, "a") in store
        assert len(store) == 3
        assert store.num_samples == 3


# ---------------------------------------------------------------------------
# Property: downsampled energy integral stays within 1 % of the raw trace
# ---------------------------------------------------------------------------


@st.composite
def power_profiles(draw):
    """A piecewise-constant power profile as (times, watts) breakpoints."""
    num_segments = draw(st.integers(min_value=2, max_value=12))
    durations = draw(
        st.lists(
            st.floats(min_value=1.0, max_value=500.0),
            min_size=num_segments,
            max_size=num_segments,
        )
    )
    watts = draw(
        st.lists(
            st.floats(min_value=10.0, max_value=700.0),
            min_size=num_segments,
            max_size=num_segments,
        )
    )
    return durations, watts


class TestDownsampledIntegralProperty:
    @settings(max_examples=25, deadline=None)
    @given(profile=power_profiles(), seed=st.integers(0, 2**16))
    def test_integral_within_one_percent_of_raw_trace(self, profile, seed):
        durations, watts = profile
        trace = PowerTrace(initial_watts=watts[0])
        t = 0.0
        for dur, w in zip(durations, watts):
            trace.set_power(t, w)
            t += dur
        total_t = t
        # Sample the ground-truth trace densely through a deliberately
        # tiny store so every tier is exercised.
        ch = ChannelSeries(raw_capacity=64, bucket_size=8, bucket_capacity=32)
        times = np.linspace(0.0, total_t, 4000)
        ch.extend(
            times,
            trace.sample(times),
            np.asarray([trace.energy_until(x) for x in times]),
        )
        raw_total = trace.energy_until(total_t)
        # Full range: exact (both endpoints are retained knots).
        assert ch.energy_between(0.0, total_t) == pytest.approx(
            raw_total, rel=1e-9
        )
        # Random sub-ranges: within 1 % of the raw-trace total.
        rng = np.random.default_rng(seed)
        for _ in range(5):
            a, b = np.sort(rng.uniform(0.0, total_t, 2))
            got = ch.energy_between(a, b)
            want = trace.energy_between(a, b)
            assert abs(got - want) <= 0.01 * raw_total + 1e-6

    @settings(max_examples=10, deadline=None)
    @given(profile=power_profiles())
    def test_every_tier_integral_matches_trace_over_its_span(self, profile):
        durations, watts = profile
        trace = PowerTrace(initial_watts=watts[0])
        t = 0.0
        for dur, w in zip(durations, watts):
            trace.set_power(t, w)
            t += dur
        ch = ChannelSeries(raw_capacity=64, bucket_size=8, bucket_capacity=32)
        times = np.linspace(0.0, t, 3000)
        ch.extend(
            times,
            trace.sample(times),
            np.asarray([trace.energy_until(x) for x in times]),
        )
        total = trace.energy_until(t)
        raw = ch.tier_arrays("raw")
        buckets = ch.tier_arrays("buckets")
        lttb = ch.tier_arrays("lttb")
        spans = []
        if len(raw["t"]) > 1:
            spans.append((raw["t"][0], raw["t"][-1], raw["joules"]))
        if len(buckets["t0"]):
            spans.append(
                (buckets["t0"][0], buckets["t1"][-1],
                 np.asarray([buckets["joules0"][0], buckets["joules1"][-1]]))
            )
        if len(lttb["t"]) > 1:
            spans.append((lttb["t"][0], lttb["t"][-1], lttb["joules"]))
        for t0, t1, joules in spans:
            tier_energy = joules[-1] - joules[0]
            want = trace.energy_between(float(t0), float(t1))
            assert abs(tier_energy - want) <= 0.01 * max(total, 1.0)


class TestOversizedBatchProperty:
    """One batch larger than the raw ring must stream through cleanly.

    A wire batch (the telemetry service's ingest unit) can be wider than
    the raw tier, and a raw drain can then produce more buckets than the
    bucket tier holds in total.  Demotion must chunk through both tiers
    instead of overflowing, the memory cap must hold at every instant,
    and the full-range energy must survive exactly.
    """

    @settings(max_examples=30, deadline=None)
    @given(
        bucket_size=st.integers(1, 16),
        raw_mult=st.integers(2, 8),
        bucket_capacity=st.integers(1, 48),
        batch_mult=st.integers(2, 20),
        watts=st.floats(min_value=1.0, max_value=900.0),
    )
    def test_single_oversized_batch_at_the_memory_cap(
        self, bucket_size, raw_mult, bucket_capacity, batch_mult, watts
    ):
        raw_capacity = bucket_size * raw_mult
        ch = ChannelSeries(
            raw_capacity=raw_capacity,
            bucket_size=bucket_size,
            bucket_capacity=bucket_capacity,
            lttb_capacity=8,
        )
        cap = ch.memory_cap_bytes()
        n = raw_capacity * batch_mult  # strictly wider than the raw ring
        times = np.linspace(0.0, 100.0, n)
        joules = watts * times
        ch.extend(times, np.full(n, watts), joules)
        assert ch.total_appended == n
        assert ch.nbytes <= cap
        # Both endpoints are retained knots: full-range energy is exact.
        assert ch.energy_between(0.0, 100.0) == pytest.approx(
            float(joules[-1]), rel=1e-12
        )

    def test_repeated_oversized_batches_stay_capped(self):
        ch = ChannelSeries(
            raw_capacity=64, bucket_size=8, bucket_capacity=8, lttb_capacity=16
        )
        cap = ch.memory_cap_bytes()
        t0 = 0.0
        for _ in range(20):
            times = np.linspace(t0, t0 + 10.0, 500)
            ch.extend(times, np.full(500, 100.0), 100.0 * times)
            t0 += 10.0
            assert ch.nbytes <= cap
        assert ch.total_appended == 10_000


# ---------------------------------------------------------------------------
# SpanRecorder
# ---------------------------------------------------------------------------


class TestSpanRecorder:
    def test_begin_end_roundtrip(self):
        rec = SpanRecorder()
        rec.begin(0, 1.0, node_index=2)
        rec.end(0, "Density", 3.5)
        assert len(rec) == 1
        span = rec.spans[0]
        assert span.function == "Density"
        assert span.seconds == pytest.approx(2.5)
        assert span.node_index == 2
        assert rec.last_function(0) == "Density"

    def test_double_begin_rejected(self):
        rec = SpanRecorder()
        rec.begin(0, 1.0)
        with pytest.raises(MeasurementError):
            rec.begin(0, 2.0)

    def test_end_without_begin_rejected(self):
        rec = SpanRecorder()
        with pytest.raises(MeasurementError):
            rec.end(0, "Density", 1.0)

    def test_function_at_bisects(self):
        rec = SpanRecorder()
        for k, name in enumerate(["A", "B", "C"]):
            rec.begin(0, float(2 * k))
            rec.end(0, name, float(2 * k + 1))
        assert rec.function_at(0, 0.5) == "A"
        assert rec.function_at(0, 2.5) == "B"
        assert rec.function_at(0, 4.5) == "C"
        assert rec.function_at(0, 1.5) is None  # gap between spans
        assert rec.function_at(0, -1.0) is None

    def test_events_sorted_canonical_order(self):
        rec = SpanRecorder()
        rec.begin(1, 0.0)
        rec.end(1, "B", 1.0)
        rec.begin(0, 0.0)
        rec.end(0, "A", 1.0)
        ordered = rec.events_sorted()
        assert [(s.t0, s.function, s.rank) for s in ordered] == [
            (0.0, "A", 0),
            (0.0, "B", 1),
        ]

    def test_current_annotation(self):
        rec = SpanRecorder()
        rec.begin(0, 0.0)
        rec.end(0, "Density", 1.0)
        assert rec.current_annotation(0) == "Density"
        rec.begin(0, 1.0)
        assert rec.current_annotation(0) == "Density…"

    def test_instants(self):
        rec = SpanRecorder()
        rec.instant("app_start", 10.0)
        assert rec.instants[0].name == "app_start"


# ---------------------------------------------------------------------------
# Sampler tick hook (satellite: structured per-tick callback)
# ---------------------------------------------------------------------------


class TestSamplerTickHook:
    def test_listener_receives_every_sample(self, clock, lumi):
        node, tel = lumi
        ticks: list[SampleTick] = []
        sampler = PmtSampler(
            pmt.create("cray", telemetry=tel),
            interval_s=1.0,
            on_sample=ticks.append,
        )
        sampler.start()
        for _ in range(10):
            clock.advance(0.5)
        sampler.stop()
        assert len(ticks) == len(sampler.rows) == 6
        assert [t.timestamp for t in ticks] == [
            r.timestamp for r in sampler.rows
        ]
        assert all(t.segment == 1 for t in ticks)
        assert [t.index for t in ticks] == list(range(6))
        # Structured fields mirror the row values and carry the state.
        assert ticks[0].joules == sampler.rows[0].joules
        assert ticks[0].state.names()[0] == "node"
        assert ticks[0].quality == "ok"
        assert ticks[0].healthy

    def test_restart_rearm_ordering(self, clock, lumi):
        """start → stop → start re-arms the grid; ticks stay ordered."""
        node, tel = lumi
        ticks: list[SampleTick] = []
        sampler = PmtSampler(pmt.create("cray", telemetry=tel), interval_s=1.0)
        sampler.add_listener(ticks.append)
        sampler.start()
        for _ in range(4):
            clock.advance(0.5)
        sampler.stop()  # lands exactly on the t=2.0 boundary: no duplicate
        clock.advance(0.7)  # gap while stopped: no ticks
        assert [t.timestamp for t in ticks] == [0.0, 1.0, 2.0]
        sampler.start()
        for _ in range(3):
            clock.advance(0.5)
        sampler.stop()
        times = [t.timestamp for t in ticks]
        assert times == sorted(times)
        # Second segment re-arms its boundary grid at the restart time
        # (2.7 + k: the old 0-based grid would tick at 3.0 and 4.0).
        second = [t.timestamp for t in ticks if t.segment == 2]
        assert second == pytest.approx([2.7, 3.7, 4.2])
        # Tick indices are globally monotonic across segments.
        assert [t.index for t in ticks] == list(range(len(ticks)))
        assert [t.segment for t in ticks] == [1, 1, 1, 2, 2, 2]

    def test_listeners_fire_in_registration_order(self, clock, lumi):
        node, tel = lumi
        order: list[str] = []
        sampler = PmtSampler(pmt.create("cray", telemetry=tel), interval_s=1.0)
        sampler.add_listener(lambda t: order.append("first"))
        sampler.add_listener(lambda t: order.append("second"))
        sampler.start()
        assert order == ["first", "second"]
        sampler.stop()  # stop() at t=0 emits one more sample
        assert order == ["first", "second"] * 2


# ---------------------------------------------------------------------------
# Collector + live view
# ---------------------------------------------------------------------------


class TestCollector:
    def test_streams_all_measurements(self, clock, lumi):
        node, tel = lumi
        collector = TimeseriesCollector()
        sampler = PmtSampler(pmt.create("cray", telemetry=tel), interval_s=1.0)
        collector.attach(0, sampler)
        sampler.start()
        clock.advance(3.0)
        sampler.stop()
        keys = collector.store.channels()
        # The cray meter exposes node/cpu/memory + one channel per card.
        assert (0, "node") in keys
        assert (0, "cpu") in keys
        assert any(name.startswith("accel") for _, name in keys)
        assert collector.store.num_samples == 4 * len(keys)
        assert collector.num_attached == 1

    def test_node_power_channel_prefers_aggregate(self, clock, lumi):
        node, tel = lumi
        collector = TimeseriesCollector()
        sampler = PmtSampler(pmt.create("cray", telemetry=tel), interval_s=1.0)
        collector.attach(0, sampler)
        sampler.start()
        sampler.stop()
        assert collector.node_power_channel(0) == (0, "node")
        assert collector.node_power_channel(9) is None
        assert collector.nodes() == [0]

    def test_on_sample_hook_fires(self, clock, lumi):
        node, tel = lumi
        collector = TimeseriesCollector()
        seen: list[int] = []
        collector.on_sample = lambda node_index, tick: seen.append(node_index)
        sampler = PmtSampler(pmt.create("cray", telemetry=tel), interval_s=1.0)
        collector.attach(0, sampler)
        sampler.start()
        clock.advance(1.0)
        sampler.stop()
        assert seen == [0, 0]


class TestLiveView:
    def _collector(self, clock, lumi, advance=5.0):
        node, tel = lumi
        collector = TimeseriesCollector()
        sampler = PmtSampler(pmt.create("cray", telemetry=tel), interval_s=1.0)
        collector.attach(0, sampler)
        sampler.start()
        clock.advance(advance)
        sampler.stop()
        return collector

    def test_render_contains_sparkline_and_stats(self, clock, lumi):
        collector = self._collector(clock, lumi)
        collector.spans.begin(0, 0.0, node_index=0)
        collector.spans.end(0, "Density", 1.0)
        frame = LiveView(collector, width=16).render()
        assert "node0" in frame
        assert "samples=" in frame
        assert "W" in frame
        assert "Density" in frame

    def test_render_empty(self):
        assert "no samples" in LiveView(TimeseriesCollector()).render()

    def test_attach_live_printer(self, clock, lumi):
        node, tel = lumi
        collector = TimeseriesCollector()
        frames: list[str] = []
        attach_live_printer(
            collector, every_ticks=2, width=8, print_fn=frames.append
        )
        sampler = PmtSampler(pmt.create("cray", telemetry=tel), interval_s=1.0)
        collector.attach(0, sampler)
        sampler.start()
        clock.advance(3.0)
        sampler.stop()
        rendered = [f for f in frames if f]
        assert rendered, "expected at least one rendered frame"
        assert "node0" in rendered[0]

    def test_rejects_bad_cadence(self):
        with pytest.raises(ValueError):
            attach_live_printer(TimeseriesCollector(), every_ticks=0)


# ---------------------------------------------------------------------------
# End-to-end: runner integration
# ---------------------------------------------------------------------------


@pytest.mark.filterwarnings("ignore::UserWarning")
class TestRunnerIntegration:
    def test_sedov_run_collects_samples_and_spans(self):
        from repro.experiments.runner import run_scaled_experiment

        result = run_scaled_experiment(
            CSCS_A100, SEDOV_BLAST, 8, num_steps=2, timeseries=True
        )
        collector = result.timeseries
        assert collector is not None
        assert collector.store.num_samples > 0
        assert len(collector.spans) > 0
        # Spans carry placement: every span knows its node.
        assert all(s.node_index >= 0 for s in collector.spans.spans)
        # Lifecycle instants bracket the app window.
        names = [i.name for i in collector.spans.instants]
        assert names == ["app_start", "app_end"]

    def test_collector_does_not_perturb_measured_energy(self):
        """Per-region energies are bit-identical with the collector on/off."""
        from repro.experiments.runner import run_scaled_experiment

        base = run_scaled_experiment(CSCS_A100, SEDOV_BLAST, 8, num_steps=2)
        with_ts = run_scaled_experiment(
            CSCS_A100, SEDOV_BLAST, 8, num_steps=2, timeseries=True
        )
        assert base.timeseries is None
        assert with_ts.timeseries is not None
        assert len(base.run.records) == len(with_ts.run.records)
        for a, b in zip(base.run.records, with_ts.run.records):
            assert a.rank == b.rank and a.function == b.function
            assert a.seconds == b.seconds
            assert a.joules == b.joules
