"""Ablation: neighbor-engine scaling — pairlist vs CSR vs CSR+C.

Sweeps the particle count on the turbulence box and reports, per engine,
the achieved steps/sec and the peak Python-side allocation of one full
propagator step (tracemalloc), up to the 10^6-particle target of the
hot-path round-2 work.  The recorded reference point is the PR-1
baseline at N = 27^3 = 19683 (0.347 steps/s, pairlist engine); the CSR
engine with the compiled fast path must clear 10x that number.

Engine caps are explicit, never silent:

* ``pairlist`` stops at N = 19683 — the half-pair materialization is the
  O(N) memory hog this ablation exists to retire;
* ``csr`` (pure NumPy) stops at N = 125000 — correct at any size, but
  the 10^6 rows belong to the compiled path that makes them tractable;
* ``csr+c`` runs the full sweep including N = 10^6 (skipped cleanly when
  no C toolchain is available).
"""

import time
import tracemalloc

import numpy as np
from conftest import write_result

from repro.sph import csolver
from repro.sph.driving import TurbulenceDriver
from repro.sph.hooks import ProfilingHooks
from repro.sph.initial_conditions import make_turbulence
from repro.sph.propagator import Propagator

#: PR-1's recorded throughput at N = 27^3 on this protocol (steps/s).
BASELINE_PR1_STEPS_PER_SEC = 0.347
BASELINE_N_SIDE = 27

#: Full-sweep sizes (cubes, so the lattice stays uniform).
N_SIDES = (12, 27, 50, 100)

#: Documented per-engine size caps (see module docstring).
PAIRLIST_MAX_N = 27**3
CSR_NUMPY_MAX_N = 50**3

#: Allocation ceiling for one smoke-sized CSR step (tracemalloc peak).
#: The measured peak is ~335 MiB — dominated by the engine's fixed-size
#: chunk buffers, not by N — so a regression past this budget means a
#: new unbounded temporary slipped into the hot path.
SMOKE_ALLOC_BUDGET_BYTES = 448 * 2**20

#: Verlet skin for this sweep, re-tuned for the round-2 engine: the
#: compiled filter makes per-step queries cheap relative to rebuilds,
#: moving the throughput optimum from the pairlist-era default 0.3 to
#: 0.45 (measured on the 27^3 box).  Pair sets and physics are skin
#: independent — every query re-filters to the exact cutoff.
SKIN_FACTOR = 0.45


def _setup(n_side: int):
    """The PR-1 baseline protocol: driven turbulence, no synthetic noise."""
    ps, box = make_turbulence(n_side=n_side, seed=3)
    return ps, box, TurbulenceDriver(box, seed=1)


def _propagator(box, driver, engine: str, accel: str) -> Propagator:
    return Propagator(
        box, driver=driver, engine=engine, accel=accel,
        skin_factor=SKIN_FACTOR,
    )


def _throughput(n_side: int, engine: str, accel: str, *, warmup: int, steps: int):
    """steps/s over ``steps`` timed steps after ``warmup`` untimed ones."""
    ps, box, driver = _setup(n_side)
    prop = _propagator(box, driver, engine, accel)
    hooks = ProfilingHooks()
    for _ in range(warmup):
        prop.step(ps, hooks)
    t0 = time.perf_counter()
    for _ in range(steps):
        prop.step(ps, hooks)
    elapsed = time.perf_counter() - t0
    return steps / elapsed


def _peak_alloc(n_side: int, engine: str, accel: str) -> int:
    """tracemalloc peak of one cold propagator step (list build + physics)."""
    ps, box, driver = _setup(n_side)
    prop = _propagator(box, driver, engine, accel)
    hooks = ProfilingHooks()
    tracemalloc.start()
    prop.step(ps, hooks)
    peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    return peak


def _engines():
    rows = [("pairlist", "pairlist", "numpy"), ("csr", "csr", "numpy")]
    if csolver.load() is not None:
        rows.append(("csr+c", "csr", "c"))
    return rows


def _cap(label: str, n: int) -> bool:
    if label == "pairlist":
        return n > PAIRLIST_MAX_N
    if label == "csr":
        return n > CSR_NUMPY_MAX_N
    return False


def bench_neighbor_scaling(results_dir):
    lines = [
        "neighbor-engine scaling: driven turbulence, steps/s and peak "
        "step allocation",
        f"protocol: PR-1 baseline conditions (driver seed 1, IC seed 3), "
        f"skin_factor={SKIN_FACTOR}",
        f"PR-1 baseline: {BASELINE_PR1_STEPS_PER_SEC:.3f} steps/s at "
        f"N={BASELINE_N_SIDE ** 3} (pairlist engine)",
        f"{'engine':>9} {'N':>8} {'steps/s':>9} {'peak MiB':>9}",
    ]
    at_target = {}
    for label, engine, accel in _engines():
        for n_side in N_SIDES:
            n = n_side**3
            if _cap(label, n):
                lines.append(
                    f"{label:>9} {n:>8} {'capped':>9} {'-':>9}  "
                    f"(documented engine cap, see module docstring)"
                )
                continue
            # Fewer timed steps at the big sizes: one step is seconds to
            # minutes there and the variance we care about is at 27^3,
            # where the window is long enough to amortize list rebuilds.
            steps = 15 if n <= 27**3 else (3 if n <= 50**3 else 2)
            warmup = 2 if n <= 27**3 else 1
            sps = _throughput(n_side, engine, accel, warmup=warmup, steps=steps)
            peak = _peak_alloc(n_side, engine, accel)
            lines.append(
                f"{label:>9} {n:>8} {sps:>9.3f} {peak / 2**20:>9.1f}"
            )
            if n_side == BASELINE_N_SIDE:
                at_target[label] = sps
    if "csr+c" in at_target:
        ratio = at_target["csr+c"] / BASELINE_PR1_STEPS_PER_SEC
        lines.append(
            f"csr+c at N={BASELINE_N_SIDE ** 3}: {ratio:.2f}x the PR-1 "
            "baseline"
        )
        assert ratio >= 10.0, (
            f"hot-path round 2 target is >= 10x PR-1 "
            f"({BASELINE_PR1_STEPS_PER_SEC} steps/s), got {ratio:.2f}x"
        )
    else:
        lines.append("csr+c: skipped (no C toolchain)")
    # The pure-NumPy CSR engine must at least hold the pairlist baseline.
    assert at_target["csr"] > 0.5 * BASELINE_PR1_STEPS_PER_SEC
    write_result(results_dir, "ablation_neighbor_scaling", "\n".join(lines))


def bench_smoke_neighbor_scaling(results_dir):
    """CI-sized variant: deterministic quantities plus the allocation gate.

    Pinned to ``accel="numpy"`` so the committed output is byte-identical
    on machines without a C toolchain; wall-clock throughput stays in the
    full run.  The tracemalloc assertion is the allocation-regression
    gate: the engine's step footprint is budgeted, not just its speed.
    """
    lines = ["neighbor-engine smoke: turbulence, engines agree, allocation "
             "within budget"]
    for n_side in (8, 12):
        finals = {}
        for engine in ("pairlist", "csr"):
            ps, box, driver = _setup(n_side)
            prop = _propagator(box, driver, engine, "numpy")
            hooks = ProfilingHooks()
            stats = None
            for _ in range(3):
                stats = prop.step(ps, hooks)
            finals[engine] = (ps, stats)
        ps_p, stats_p = finals["pairlist"]
        ps_c, stats_c = finals["csr"]
        # Same pair sets, same physics (<= 1e-12 of the oracle either way).
        assert stats_p.n_pairs == stats_c.n_pairs
        for field in ("pos", "vel", "u", "rho"):
            a, b = getattr(ps_p, field), getattr(ps_c, field)
            scale = max(float(np.max(np.abs(a))), 1e-300)
            assert float(np.max(np.abs(a - b))) / scale < 1e-12
        energy = float(np.sum(ps_c.mass * ps_c.u))
        lines.append(
            f"N={n_side ** 3}: pairs={stats_c.n_pairs} "
            f"energy={energy:.9e} engines-agree=yes"
        )
    peak = _peak_alloc(12, "csr", "numpy")
    assert peak < SMOKE_ALLOC_BUDGET_BYTES, (
        f"CSR step peak allocation {peak / 2**20:.0f} MiB exceeds the "
        f"{SMOKE_ALLOC_BUDGET_BYTES / 2**20:.0f} MiB budget"
    )
    lines.append(
        f"csr step peak allocation within "
        f"{SMOKE_ALLOC_BUDGET_BYTES / 2**20:.0f} MiB budget: yes"
    )
    write_result(
        results_dir, "ablation_neighbor_scaling_smoke", "\n".join(lines)
    )
