"""The Slurm controller: job lifecycle around an application callable.

The lifecycle models what energy accounting actually integrates over:

1. **launch** — prolog, container/binary startup, ``srun`` wire-up.  CPUs
   lightly busy, GPUs *idle* (but still drawing idle power — on a LUMI-G
   node that is several hundred watts of GPU idle draw, which is why setup
   time matters for the Figure 1 gap).
2. **application init** — IC generation, allocation, host-to-device copy.
   CPUs and DRAM busy, GPUs touching memory.  Scales with the per-rank
   problem size.
3. **application run** — the caller-provided callable (the instrumented
   simulation).  PMT measurement happens only inside this window.
4. **teardown** — result flush + epilog.

Energy accounting (``AcctGatherEnergy``) spans 1-4; PMT spans only 3's
time-stepping loop.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable

from repro.config import SystemConfig
from repro.errors import SchedulerError
from repro.mpi.engine import RankWork, SpmdEngine
from repro.sensors.telemetry import NodeTelemetry
from repro.slurm.energy_plugin import AcctGatherEnergyPlugin
from repro.slurm.job import JobAccounting, JobDescriptor

_job_ids = itertools.count(1000)


class SlurmController:
    """Runs jobs on a cluster with energy accounting."""

    def __init__(
        self,
        engine: SpmdEngine,
        telemetries: list[NodeTelemetry],
        system: SystemConfig,
    ) -> None:
        cluster = engine.placement.cluster
        if len(telemetries) != cluster.num_nodes:
            raise SchedulerError(
                f"need one telemetry per node: got {len(telemetries)} for "
                f"{cluster.num_nodes} nodes"
            )
        self.engine = engine
        self.telemetries = telemetries
        self.system = system
        self.clock = cluster.clock

    def _uniform_phase(self, duration: float, **work_kwargs) -> None:
        """Run all ranks through an identical setup/teardown phase."""
        if duration <= 0:
            return
        works = [
            RankWork(duration=duration, **work_kwargs)
            for _ in range(self.engine.placement.size)
        ]
        self.engine.run_phase(works)

    def run_job(
        self,
        job: JobDescriptor,
        app: Callable[[], Any],
    ) -> JobAccounting:
        """Execute ``job`` with ``app`` as the application payload.

        ``app`` is invoked after the launch+init phases; whatever it
        returns lands in :attr:`JobAccounting.app_result`.
        """
        cluster = self.engine.placement.cluster
        if job.num_nodes != cluster.num_nodes:
            raise SchedulerError(
                f"job requests {job.num_nodes} nodes but the allocation has "
                f"{cluster.num_nodes}"
            )
        timing = self.system.slurm_timing
        plugin = AcctGatherEnergyPlugin(self.telemetries, self.clock)

        submit_time = self.clock.now
        plugin.job_start()
        start_time = self.clock.now

        # Phase 1: prolog + launch. GPUs idle, CPUs lightly busy.
        launch_s = timing.launch_base_s + timing.launch_per_node_s * job.num_nodes
        self._uniform_phase(launch_s, cpu_share=0.04, mem_share=0.02)

        # Phase 2: application init (ICs, allocation, H2D).
        init_s = timing.init_base_s + timing.init_s_per_mparticle * (
            job.particles_per_rank / 1e6
        )
        self._uniform_phase(
            init_s,
            cpu_share=0.12,
            mem_share=0.10,
            gpu_memory=0.25,
        )

        # Phase 3: the instrumented application.
        app_start_time = self.clock.now
        app_result = app()
        app_end_time = self.clock.now

        # Phase 4: teardown + epilog.
        self._uniform_phase(timing.teardown_s, cpu_share=0.05)

        plugin.job_end()
        end_time = self.clock.now

        return JobAccounting(
            job_id=next(_job_ids),
            name=job.name,
            num_nodes=job.num_nodes,
            num_ranks=self.engine.placement.size,
            submit_time=submit_time,
            start_time=start_time,
            app_start_time=app_start_time,
            app_end_time=app_end_time,
            end_time=end_time,
            consumed_energy_joules=plugin.consumed_energy_joules(),
            per_node_joules=plugin.per_node_joules(),
            app_result=app_result,
        )
