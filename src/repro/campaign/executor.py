"""Campaign execution: cache lookup, worker shards, result collection.

:func:`execute` is the one substrate every sweep in the repo runs on.
It partitions the expanded keys into cache hits and misses, executes the
misses — serially for ``workers=1`` (the degenerate case, retained as
the reference path), across ``multiprocessing`` shards for
``workers=N``, or through the lease-based federated work queue
(``federate=N``, any number of extra ``repro campaign work`` processes
on any number of hosts welcome) — and archives each completed run
before moving on, so a killed sweep resumes from the completed subset.

Worker failures never abort a sweep: each failing key is recorded (a
typed :class:`~repro.campaign.queue.RunFailure`, archived next to the
results when a store is attached), every other key keeps draining, and
one :class:`~repro.errors.CampaignExecutionError` summarizing the
failed keys is raised at the end — with the completed results attached.

Sharding cannot change results: every run is an independent simulation
driven by its own :class:`~repro.hardware.clock.VirtualClock` and seeded
entirely from its :class:`~repro.campaign.keys.RunKey` (never from
worker identity or execution order), so sharded *and* federated sweeps
are bit-identical to the serial one by construction.  The property tests
and the campaign/federation benchmarks enforce this.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Callable

from repro.campaign.keys import RunKey, resolve_test_case, run_key_hash
from repro.campaign.store import (
    CORRUPT,
    AccountingSummary,
    CampaignResult,
    ResultStore,
)
from repro.config import get_system
from repro.errors import CampaignExecutionError, ConfigurationError


@dataclass
class CampaignStats:
    """What one :func:`execute` call did."""

    total: int = 0
    hits: int = 0
    misses: int = 0
    #: Simulation steps actually executed (0 on a fully-cached re-run).
    executed_steps: int = 0
    workers: int = 1
    #: Corrupt/foreign cache entries found at hit-scan time: quarantined
    #: and re-executed, never silently absorbed as plain misses.
    corrupt: int = 0
    #: Keys whose execution failed (their runs are *not* in the results;
    #: the summarizing CampaignExecutionError carries the details).
    failed: int = 0
    #: Whether the misses drained through the federated lease queue.
    federated: bool = False
    #: Post-hoc energy-audit coverage (``audit=`` on :func:`execute`):
    #: invariant evaluations run and findings raised across all results,
    #: cache hits included.
    audit_checks: int = 0
    audit_findings: int = 0
    #: Per-key :class:`~repro.audit.findings.AuditReport`, when audited.
    audit_reports: dict | None = None

    @property
    def done(self) -> int:
        return self.hits + self.misses


#: Progress callback: called after every completed point with the stats
#: so far (``stats.done`` of ``stats.total``) and the key just finished.
ProgressFn = Callable[[CampaignStats, RunKey], None]


def execute_key(key: RunKey) -> CampaignResult:
    """Run one campaign point and package the serializable outcome.

    The run is seeded from the key alone; frequency requests use
    privileged DVFS so campaigns can sweep clocks on any system (the
    user-facing ``fig4``/``fig5`` defaults still target miniHPC, the one
    system whose clocks are user controllable).
    """
    from repro.experiments.runner import run_scaled_experiment

    result = run_scaled_experiment(
        get_system(key.system),
        resolve_test_case(key.test_case),
        key.num_cards,
        gpu_freq_mhz=key.gpu_freq_mhz,
        num_steps=key.num_steps,
        particles_per_rank=key.particles_per_rank,
        seed=key.seed,
        privileged_dvfs=True,
        governor=key.governor,
    )
    return CampaignResult(
        key=key,
        run=result.run,
        accounting=AccountingSummary.from_accounting(result.accounting),
    )


def _worker(
    key: RunKey,
) -> tuple[RunKey, CampaignResult | None, tuple[str, str] | None]:
    """One pool shard's unit of work: never lets an exception escape.

    A raised exception inside ``imap_unordered`` would abort the whole
    sweep and discard the in-flight shards' progress; instead the error
    is shipped back as ``(type name, message)`` and handled per-key.
    """
    try:
        return key, execute_key(key), None
    except Exception as exc:
        return key, None, (type(exc).__name__, str(exc))


def _record_failures(
    store: ResultStore | None,
    failed: list[tuple[RunKey, str, str]],
) -> tuple:
    """Archive failures next to the results; returns RunFailure objects.

    With a store attached the records go through the shared
    :class:`~repro.campaign.queue.FailureLog`, so attempt counts
    accumulate across re-runs of the same spec and federated workers see
    the same record; without one they only live in the raised error.
    """
    if not failed:
        return ()
    from repro.campaign.queue import FailureLog, RunFailure, WorkerProfile

    profile = WorkerProfile.local()
    log = FailureLog(store.root) if store is not None else None
    failures = []
    for key, error_type, message in failed:
        digest = run_key_hash(key)
        if log is not None:
            failure = log.record_raw(
                key, digest, error_type, message, profile.worker_id
            )
        else:
            failure = RunFailure(
                digest=digest,
                key=key,
                error_type=error_type,
                message=message,
                attempts=1,
                poisoned=False,
                worker=profile.worker_id,
            )
        failures.append(failure)
    return tuple(failures)


def _raise_failures(
    failures: tuple,
    results: dict[RunKey, CampaignResult],
    stats: CampaignStats,
) -> None:
    stats.failed = len(failures)
    shown = ", ".join(
        f"{f.label} ({f.error_type}: {f.message})" for f in failures[:3]
    )
    more = "" if len(failures) <= 3 else f", and {len(failures) - 3} more"
    raise CampaignExecutionError(
        f"{len(failures)} of {stats.total} campaign runs failed: "
        f"{shown}{more}; {len(results)} completed runs stay archived",
        failures=failures,
        results=results,
        stats=stats,
    )


def _federated_child(
    keys: tuple[RunKey, ...],
    root: str,
    config,
    systems: tuple[str, ...],
    token: str,
) -> None:
    """One local federated worker process (module-level: picklable)."""
    from repro.campaign.queue import WorkerProfile, drain

    profile = WorkerProfile.local(systems=systems, token=token)
    drain(keys, ResultStore(root), config=config, profile=profile)


def _execute_federated(
    misses: list[RunKey],
    store: ResultStore,
    federate: int,
    federation,
    profile_systems: tuple[str, ...],
    collect: Callable[[RunKey, CampaignResult], None],
) -> tuple:
    """Drain the misses through ``federate`` local queue workers.

    Returns the failures (empty on a clean drain).  The parent never
    executes runs itself: it spawns the workers, watches the store for
    completions (for live progress), and collects/validates at the end.
    Extra ``repro campaign work`` processes — on this host or any other
    sharing the cache root — join the same drain transparently.
    """
    from repro.campaign.queue import FailureLog, FederationConfig

    config = federation if federation is not None else FederationConfig()
    ctx = multiprocessing.get_context()
    tokens = [f"fed{i}-{os.getpid()}" for i in range(federate)]
    procs = [
        ctx.Process(
            target=_federated_child,
            args=(tuple(misses), str(store.root), config, profile_systems, tok),
            daemon=False,
        )
        for tok in tokens
    ]
    for proc in procs:
        proc.start()

    pending = {key: store.path_for(key) for key in misses}
    try:
        while any(proc.is_alive() for proc in procs):
            for key in [k for k, p in pending.items() if p.is_file()]:
                result = store.get(key)
                if result is None:
                    continue  # mid-steal rewrite; re-check next tick
                del pending[key]
                collect(key, result)
            time.sleep(config.poll_s)
    finally:
        for proc in procs:
            proc.join()

    # Final collection pass: anything that completed after the last tick.
    for key in list(pending):
        result = store.get(key)
        if result is not None:
            del pending[key]
            collect(key, result)

    if not pending:
        return ()
    log = FailureLog(store.root, config=config)
    failures = []
    for key in pending:
        failure = log.load(run_key_hash(key))
        if failure is not None:
            failures.append(failure)
        else:  # worker died without recording (crashed drain itself)
            codes = sorted({proc.exitcode for proc in procs})
            raise CampaignExecutionError(
                f"federated drain left {len(pending)} keys unresolved with "
                f"no failure record (worker exit codes {codes}); "
                f"first: {key.label}"
            )
    return tuple(failures)


def execute(
    keys: tuple[RunKey, ...],
    store: ResultStore | None = None,
    workers: int = 1,
    progress: ProgressFn | None = None,
    audit: bool | str | None = None,
    federate: int | None = None,
    federation=None,
    profile_systems: tuple[str, ...] = (),
) -> tuple[dict[RunKey, CampaignResult], CampaignStats]:
    """Execute a campaign's keys, reusing every cached result.

    Returns the per-key results and the execution stats.  With a
    ``store``, every fresh run is archived the moment it completes.
    ``workers`` > 1 fans the cache misses out over that many OS
    processes; results are collected in completion order but keyed by
    :class:`RunKey`, so downstream merges are order-independent.

    ``federate=N`` drains the misses through the lease-based federated
    work queue instead: N worker processes (plus any number of external
    ``repro campaign work`` participants sharing the cache root) claim
    keys via atomic lease files, steal stale leases of dead workers, and
    archive into the shared store.  Requires ``store``.  ``federation``
    (a :class:`~repro.campaign.queue.FederationConfig`) tunes lease TTL
    and retry policy; ``profile_systems`` sets the spawned workers'
    placement preference.

    Failed keys never abort the drain: the rest of the sweep completes
    and one :class:`~repro.errors.CampaignExecutionError` is raised at
    the end, carrying the completed results, the stats, and the typed
    failures (archived in ``<root>/failures/`` when a store is
    attached).

    ``audit`` runs the post-hoc energy-accounting audit over *every*
    result — cache hits included, since the checkers work from the
    serialized records — and reports coverage in the stats
    (``audit_checks`` / ``audit_findings`` / ``audit_reports``).
    ``"strict"`` raises :class:`~repro.errors.AuditError` on the first
    error finding.  Runtime (in-situ) auditing of the executing workers
    is env-driven: set ``REPRO_AUDIT`` and the worker processes inherit
    it (the CLI's ``--audit`` flag does exactly that).
    """
    if workers < 1:
        raise ConfigurationError("workers must be >= 1")
    if federate is not None and federate < 1:
        raise ConfigurationError("federate must be >= 1")
    if federate is not None and store is None:
        raise ConfigurationError(
            "federated execution needs a shared result store"
        )
    if len(set(keys)) != len(keys):
        raise ConfigurationError("duplicate run keys in campaign")

    stats = CampaignStats(
        total=len(keys),
        workers=federate if federate is not None else workers,
        federated=federate is not None,
    )
    results: dict[RunKey, CampaignResult] = {}

    misses = []
    for key in keys:
        cached, status = (
            store.lookup(key) if store is not None else (None, "miss")
        )
        if cached is not None:
            results[key] = cached
            stats.hits += 1
            if progress is not None:
                progress(stats, key)
        else:
            if status == CORRUPT:
                # Quarantine the rot (bytes stay inspectable), count it,
                # and re-execute the key over a clean address.
                stats.corrupt += 1
                store.quarantine_entry(key)
            misses.append(key)

    def _collect(key: RunKey, result: CampaignResult) -> None:
        results[key] = result
        stats.misses += 1
        stats.executed_steps += result.run.num_steps
        if store is not None and not stats.federated:
            store.put(key, result)
        if progress is not None:
            progress(stats, key)

    failures: tuple = ()
    if federate is not None and misses:
        failures = _execute_federated(
            misses, store, federate, federation, profile_systems, _collect
        )
    elif federate is not None:
        pass  # fully cached: nothing to drain, no workers to spawn
    elif workers == 1 or len(misses) <= 1:
        failed: list[tuple[RunKey, str, str]] = []
        for key in misses:
            try:
                result = execute_key(key)
            except Exception as exc:
                failed.append((key, type(exc).__name__, str(exc)))
                continue
            _collect(key, result)
        failures = _record_failures(store, failed)
    else:
        failed = []
        ctx = multiprocessing.get_context()
        with ctx.Pool(processes=min(workers, len(misses))) as pool:
            for key, result, error in pool.imap_unordered(_worker, misses):
                if error is not None:
                    failed.append((key, error[0], error[1]))
                    continue
                _collect(key, result)
        failures = _record_failures(store, failed)

    if failures:
        _raise_failures(failures, results, stats)

    from repro.audit.hooks import AuditSettings, audit_campaign_result

    audit_settings = AuditSettings.resolve(audit)
    if audit_settings.enabled:
        stats.audit_reports = {}
        for key in keys:
            report = audit_campaign_result(
                results[key], strict=audit_settings.strict
            )
            stats.audit_reports[key] = report
            stats.audit_checks += report.checks_run
            stats.audit_findings += len(report.findings)

    return results, stats
