"""Fault-tolerant sensor reads: retry, interpolate, degrade — never crash.

Real telemetry fails in exactly the ways :mod:`repro.sensors.faults`
models: i2c/IPMI reads time out, BMC counters freeze, bus glitches spike
the instantaneous-power register.  A raw :class:`SensorError` anywhere in
the measurement path used to abort the whole instrumented run and silently
corrupt per-function attribution.  :class:`ResilientSensor` wraps any
sensor-shaped object (``read(t) -> SensorReading``) with the degradation
ladder production telemetry pipelines use:

1. **retry** — bounded re-reads on failure, with a deterministic backoff
   schedule (each retry reads at ``t + accumulated_backoff``, modelling the
   wall-clock a real retry burns; a short outage is stepped over entirely);
2. **interpolate** — if all retries fail, hold the last good value and
   extrapolate the energy accumulator at its last observed power, with
   per-gap accounting;
3. **degrade** — a stuck counter (identical energy reads while the caller's
   clock advances under nonzero load) or an implausible power reading
   (above the hardware's physical maximum) is flagged and substituted, and
   the sensor is marked degraded in its :class:`SensorHealth` record;
4. **zero-baseline** — when there is no last good value at all (an outage
   covering the very first read), serve a zero-power, zero-energy reading
   instead of raising: accumulators are differenced against this baseline,
   the gap is counted, and any imbalance is the audit layer's to flag —
   a crash would lose the whole run.

Every mitigation is counted in :class:`SensorHealth`, which the
instrumentation layer threads into the run's measurement records so every
analysis table can carry a data-quality column.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SensorError
from repro.sensors.base import SensorReading

#: Headroom over the hardware specs' nominal peak power before an
#: instantaneous reading is treated as physically implausible.  Covers
#: boost frequencies above nominal, sensor noise and quantization — a
#: legitimate reading never reaches twice the modelled peak, while glitch
#: spikes (tens of kilowatts) always do.
GLITCH_MARGIN = 2.0

#: Default number of re-read attempts after a failed read.
DEFAULT_MAX_RETRIES = 3

#: Default first-retry backoff in (simulated) seconds; doubles per attempt.
DEFAULT_BACKOFF_S = 0.05

#: Reads with identical accumulator values needed to declare a counter stuck.
DEFAULT_STUCK_READS = 3

#: Minimum energy (joules) the counter should have gained before a
#: zero-growth interval counts as suspicious.  Must sit comfortably above
#: the coarsest accumulator quantum (1 J on pm_counters/IPMI) so healthy
#: quantized counters at idle never trip the detector.
DEFAULT_STUCK_MIN_JOULES = 5.0

#: Minimum wall time (simulated seconds) an accumulator must show zero
#: growth before it can count as stuck.  A healthy sampled counter returns
#: identical values for reads inside one refresh period (IPMI refreshes at
#: 1 Hz), so the grace must exceed the coarsest refresh period in the
#: fleet; a genuinely frozen counter stays frozen far longer than this.
DEFAULT_STUCK_GRACE_S = 3.0


@dataclass
class SensorHealth:
    """Mitigation counters of one resilient sensor or meter.

    ``degraded`` latches once any substitution (gap interpolation, stuck
    extrapolation) has been served; glitch rejection alone does not degrade
    the sensor (the energy accumulator stays trustworthy).
    """

    reads: int = 0
    retries: int = 0
    retry_successes: int = 0
    gaps_interpolated: int = 0
    gap_seconds: float = 0.0
    glitches_rejected: int = 0
    stuck_reads: int = 0
    stuck_detections: int = 0
    degraded: bool = False

    #: Counter fields that make sense to difference/aggregate.
    COUNTER_FIELDS = (
        "reads",
        "retries",
        "retry_successes",
        "gaps_interpolated",
        "gap_seconds",
        "glitches_rejected",
        "stuck_reads",
        "stuck_detections",
    )

    @property
    def status(self) -> str:
        """``"ok"`` or ``"degraded"``."""
        return "degraded" if self.degraded else "ok"

    def counters(self) -> dict[str, float]:
        """The numeric counters as a plain dict (for records/diffs)."""
        return {name: getattr(self, name) for name in self.COUNTER_FIELDS}

    def add(self, other: "SensorHealth") -> None:
        """Accumulate another health record into this one."""
        for name in self.COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.degraded = self.degraded or other.degraded


def diff_counters(
    after: dict[str, float], before: dict[str, float]
) -> dict[str, float]:
    """Per-key difference of two counter snapshots, dropping zero entries."""
    out = {}
    for key, value in after.items():
        delta = value - before.get(key, 0.0)
        if delta:
            out[key] = delta
    return out


class ResilientSensor:
    """Degradation-ladder wrapper over any ``read(t)`` sensor.

    Parameters
    ----------
    inner:
        The sensor to protect (anything with ``read(t) -> SensorReading``).
    label:
        Name used when this sensor is reported in health records.
    max_retries / backoff_s:
        Bounded retry schedule: attempt ``k`` (1-based) re-reads at
        ``t + backoff_s * (2**k - 1)``.  Deterministic, so replays are
        bit-identical.
    plausible_max_watts:
        Physical power ceiling from the hardware specs; instantaneous
        readings above it are rejected and substituted with the last good
        power (``None`` disables glitch rejection).
    stuck_reads / min_expected_watts / stuck_min_joules / stuck_grace_s:
        Stuck-counter detection: after ``stuck_reads`` consecutive reads
        with an identical accumulator while the expected draw (at least
        ``min_expected_watts``) should have added ``stuck_min_joules``,
        and at least ``stuck_grace_s`` of zero growth (longer than any
        healthy sensor's refresh period), the counter is declared stuck
        and its energy extrapolated.
    """

    def __init__(
        self,
        inner,
        *,
        label: str = "sensor",
        max_retries: int = DEFAULT_MAX_RETRIES,
        backoff_s: float = DEFAULT_BACKOFF_S,
        plausible_max_watts: float | None = None,
        stuck_reads: int = DEFAULT_STUCK_READS,
        min_expected_watts: float = 1.0,
        stuck_min_joules: float = DEFAULT_STUCK_MIN_JOULES,
        stuck_grace_s: float = DEFAULT_STUCK_GRACE_S,
    ) -> None:
        if max_retries < 0:
            raise SensorError("max_retries must be >= 0")
        if backoff_s <= 0:
            raise SensorError("backoff_s must be positive")
        if stuck_reads < 1:
            raise SensorError("stuck_reads must be >= 1")
        if plausible_max_watts is not None and plausible_max_watts <= 0:
            raise SensorError("plausible_max_watts must be positive when set")
        self._inner = inner
        self.label = label
        self.max_retries = int(max_retries)
        self.backoff_s = float(backoff_s)
        self.plausible_max_watts = plausible_max_watts
        self.stuck_reads = int(stuck_reads)
        self.min_expected_watts = float(min_expected_watts)
        self.stuck_min_joules = float(stuck_min_joules)
        self.stuck_grace_s = float(stuck_grace_s)
        self.health = SensorHealth()
        self._last_good: SensorReading | None = None
        self._prev_t: float | None = None
        # Stuck-counter streak state: the first reading of the current
        # identical-accumulator run and the caller time it arrived at.
        self._anchor: SensorReading | None = None
        self._anchor_t = 0.0
        self._streak = 0
        self._stuck = False
        # Trailing (t, joules) reference at least one grace period old —
        # extrapolating a stuck counter at the *average* power over the
        # last few seconds is far more robust under bursty load than the
        # instantaneous power the sensor happened to report at the freeze.
        self._trail: tuple[float, float] | None = None
        self._trail_next: tuple[float, float] | None = None

    @property
    def inner(self):
        """The wrapped sensor."""
        return self._inner

    # -- the degradation ladder -------------------------------------------------

    def read(self, t: float) -> SensorReading:
        """Read at time ``t``; never raises — a failure before any good
        read degrades to a zero baseline, afterwards to interpolation."""
        self.health.reads += 1
        reading = self._attempt(t)
        if reading is None:
            reading = self._interpolate(t)
        else:
            reading = self._reject_glitch(reading)
            reading = self._track_stuck(t, reading)
        self._last_good = reading
        self._prev_t = t
        return reading

    def _attempt(self, t: float) -> SensorReading | None:
        """One read plus bounded, deterministically backed-off retries."""
        delay = 0.0
        for attempt in range(self.max_retries + 1):
            try:
                reading = self._inner.read(t + delay)
            except SensorError:
                if attempt == self.max_retries:
                    return None
                self.health.retries += 1
                delay += self.backoff_s * (2.0**attempt)
            else:
                if attempt > 0:
                    self.health.retry_successes += 1
                return reading
        return None

    def _interpolate(self, t: float) -> SensorReading:
        """Hold-last-good energy extrapolation across a read gap."""
        self.health.gaps_interpolated += 1
        if self._prev_t is not None:
            self.health.gap_seconds += max(0.0, t - self._prev_t)
        self.health.degraded = True
        last = self._last_good
        if last is None:
            # The sensor has never produced a value (an outage covering
            # the very first read).  Energy accumulators are relative —
            # consumers difference later reads against this baseline —
            # so a zero-power, zero-energy reading keeps the run alive
            # while the gap stays on the books; any resulting energy
            # imbalance surfaces through the audit layer rather than a
            # crash that loses the whole run.
            return SensorReading(timestamp=t, watts=0.0, joules=0.0)
        return SensorReading(
            timestamp=t,
            watts=last.watts,
            joules=last.joules + last.watts * max(0.0, t - last.timestamp),
        )

    def _reject_glitch(self, reading: SensorReading) -> SensorReading:
        """Plausibility-bound the instantaneous-power register."""
        bound = self.plausible_max_watts
        if bound is None or reading.watts <= bound:
            return reading
        self.health.glitches_rejected += 1
        substitute = self._last_good.watts if self._last_good else bound
        return SensorReading(
            timestamp=reading.timestamp,
            watts=substitute,
            joules=reading.joules,
        )

    def _track_stuck(self, t: float, reading: SensorReading) -> SensorReading:
        """Detect a frozen accumulator and extrapolate past it."""
        anchor = self._anchor
        if anchor is None or reading.joules != anchor.joules:
            # The accumulator moved: healthy (or thawed) — reset the streak.
            self._anchor = reading
            self._anchor_t = t
            self._streak = 0
            self._stuck = False
            if self._trail_next is None:
                self._trail = self._trail_next = (t, reading.joules)
            elif t - self._trail_next[0] >= self.stuck_grace_s:
                self._trail = self._trail_next
                self._trail_next = (t, reading.joules)
            return reading
        expected_watts = max(
            reading.watts, anchor.watts, self.min_expected_watts
        )
        zero_growth_s = t - self._anchor_t
        if (
            zero_growth_s >= self.stuck_grace_s
            and zero_growth_s * expected_watts >= self.stuck_min_joules
        ):
            self._streak += 1
            self.health.stuck_reads += 1
        if self._streak >= self.stuck_reads and not self._stuck:
            self._stuck = True
            self.health.stuck_detections += 1
            self.health.degraded = True
        if not self._stuck:
            return reading
        # A frozen sensor repeats its last completed tick, so the anchor's
        # own timestamp is the best estimate of the freeze instant.
        # Extrapolate at the trailing-average power (energy gained over the
        # last few grace periods) rather than the instantaneous power at
        # the freeze — identical under steady load, much less biased when
        # the freeze lands inside a burst or an idle gap.
        watts = anchor.watts
        if self._trail is not None and self._anchor_t > self._trail[0]:
            t_ref, j_ref = self._trail
            watts = (anchor.joules - j_ref) / (self._anchor_t - t_ref)
        return SensorReading(
            timestamp=t,
            watts=watts,
            joules=anchor.joules + watts * max(0.0, t - anchor.timestamp),
        )
