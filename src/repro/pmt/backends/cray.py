"""HPE/Cray PMT backend: reads ``pm_counters`` files.

This is the backend the paper highlights: Slurm only reports node-level
energy from the same counters, but PMT reads *all* of them — node, CPU,
memory and per-card accelerators — so a single ``read()`` carries the full
device breakdown (Figure 2) in one state.

The backend goes through the virtual sysfs string interface on purpose:
parsing ``"284 W 1663261174293871 us"`` is exactly what the real backend
does, and keeping that path honest means tests exercise the format too.
"""

from __future__ import annotations

from repro.errors import BackendError
from repro.pmt.base import PMT
from repro.pmt.registry import register_backend
from repro.pmt.state import Measurement, State
from repro.sensors.pm_counters import PM_COUNTERS_DIR, parse_pm_file
from repro.sensors.telemetry import NodeTelemetry


@register_backend("cray")
class CrayPMT(PMT):
    """PMT over HPE/Cray pm_counters.

    Parameters
    ----------
    telemetry:
        The node's telemetry (must have pm_counters, i.e. a Cray platform).
    """

    def __init__(self, telemetry: NodeTelemetry) -> None:
        if telemetry.pm_counters is None:
            raise BackendError(
                f"node {telemetry.node.name} has no pm_counters; the cray "
                "backend requires an HPE/Cray platform"
            )
        super().__init__(telemetry.node.clock)
        self.telemetry = telemetry
        self._sysfs = telemetry.sysfs
        stems = ["", "cpu"]
        if telemetry.pm_counters.memory_counter is not None:
            stems.append("memory")
        stems += [f"accel{i}" for i in range(len(telemetry.node.cards))]
        self._stems = stems

    def measurement_names(self) -> tuple[str, ...]:
        return tuple(stem or "node" for stem in self._stems)

    def _read_pair(self, stem: str) -> Measurement:
        prefix = f"{PM_COUNTERS_DIR}/{stem}_" if stem else f"{PM_COUNTERS_DIR}/"
        watts, w_unit, _ = parse_pm_file(self._sysfs.read(prefix + "power"))
        joules, j_unit, _ = parse_pm_file(self._sysfs.read(prefix + "energy"))
        if w_unit != "W" or j_unit != "J":
            raise BackendError(
                f"unexpected pm_counters units for {stem or 'node'}: "
                f"{w_unit!r}/{j_unit!r}"
            )
        return Measurement(name=stem or "node", joules=joules, watts=watts)

    def read_state(self) -> State:
        measurements = tuple(self._read_pair(stem) for stem in self._stems)
        return State(timestamp=self.clock.now, measurements=measurements)
