"""Noh spherical implosion initial conditions.

The Noh (1987) problem: a cold uniform gas with every particle moving at
unit speed toward the origin.  An infinitely strong accretion shock forms
at the centre and travels outward at speed ``(gamma - 1)/2``; behind it
the density is ::

    rho_post = rho0 * ((gamma + 1) / (gamma - 1))^3      (3D)

which is 64 * rho0 for gamma = 5/3 — a brutal test of artificial
viscosity and wall heating.  SPH resolves only a fraction of the analytic
jump at modest particle counts, so validation tests check for a large
(>> 1) central compression and the stagnated core rather than the full
factor 64.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.sph.box import Box
from repro.sph.initial_conditions.turbulence import smoothing_from_density
from repro.sph.particles import ParticleSet


def noh_post_shock_density(rho0: float = 1.0, gamma: float = 5.0 / 3.0) -> float:
    """Analytic post-shock density of the 3D Noh problem."""
    return rho0 * ((gamma + 1.0) / (gamma - 1.0)) ** 3


def noh_shock_speed(gamma: float = 5.0 / 3.0) -> float:
    """Analytic outward shock speed (infall speed 1)."""
    return 0.5 * (gamma - 1.0)


def make_noh(
    n_side: int,
    sphere_radius: float = 1.0,
    rho0: float = 1.0,
    u_background: float = 1e-8,
    n_target: int = 100,
    seed: int = 42,
):
    """Build the Noh sphere: uniform density, radial unit infall.

    Particles fill a sphere of ``sphere_radius`` (carved from a jittered
    lattice); the box is open and large enough for the full run.
    """
    if n_side < 4:
        raise SimulationError("need at least 4 particles per side")
    if sphere_radius <= 0 or rho0 <= 0:
        raise SimulationError("radius and density must be positive")
    rng = np.random.default_rng(seed)
    spacing = 2.0 * sphere_radius / n_side
    axis = -sphere_radius + (np.arange(n_side) + 0.5) * spacing
    grid = np.stack(np.meshgrid(axis, axis, axis, indexing="ij"), axis=-1)
    pos = grid.reshape(-1, 3)
    pos = pos + rng.uniform(-0.2, 0.2, size=pos.shape) * spacing
    r = np.linalg.norm(pos, axis=1)
    keep = r < sphere_radius
    pos = pos[keep]
    r = r[keep]
    n = len(pos)
    if n < 32:
        raise SimulationError("Noh sphere ended up with too few particles")

    ps = ParticleSet(n)
    ps.pos = pos
    ps.mass[:] = rho0 * (4.0 / 3.0) * np.pi * sphere_radius**3 / n
    ps.rho[:] = rho0
    ps.u[:] = u_background
    ps.h = smoothing_from_density(ps.mass, ps.rho, n_target)
    # Unit radial infall (regularized at the origin).
    r_safe = np.maximum(r, 1e-10)[:, None]
    ps.vel = -pos / r_safe

    box = Box(length=6.0 * sphere_radius, periodic=False)
    return ps, box
