"""Tests for the virtual simulation clock."""

import pytest

from repro.errors import ClockError
from repro.hardware import VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_starts_at_given_time(self):
        assert VirtualClock(start=5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            VirtualClock(start=-1.0)

    def test_advance(self):
        clock = VirtualClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now == 2.5

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.0)
        clock.advance(0.5)
        assert clock.now == 1.5

    def test_zero_advance_allowed(self):
        clock = VirtualClock()
        clock.advance(0.0)
        assert clock.now == 0.0

    def test_negative_advance_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ClockError):
            clock.advance(-0.1)

    def test_advance_to(self):
        clock = VirtualClock()
        clock.advance_to(7.0)
        assert clock.now == 7.0

    def test_advance_to_past_rejected(self):
        clock = VirtualClock(start=3.0)
        with pytest.raises(ClockError):
            clock.advance_to(2.0)

    def test_listener_called_on_advance(self):
        clock = VirtualClock()
        seen = []
        clock.on_advance(seen.append)
        clock.advance(1.0)
        clock.advance(2.0)
        assert seen == [1.0, 3.0]

    def test_listener_not_called_on_zero_advance(self):
        clock = VirtualClock()
        seen = []
        clock.on_advance(seen.append)
        clock.advance(0.0)
        assert seen == []
