"""Job descriptors and accounting records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import SchedulerError


@dataclass(frozen=True)
class JobDescriptor:
    """What the user submits (the interesting subset of ``sbatch`` options)."""

    name: str
    num_nodes: int
    #: Particles per rank, used to model application-init time (allocation
    #: and host-to-device transfer grow with the local problem size).
    particles_per_rank: float = 0.0

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise SchedulerError("a job needs at least one node")
        if self.particles_per_rank < 0:
            raise SchedulerError("particles_per_rank must be >= 0")


@dataclass
class JobAccounting:
    """What ``sacct`` can report about a completed job."""

    job_id: int
    name: str
    num_nodes: int
    num_ranks: int
    submit_time: float
    start_time: float
    app_start_time: float
    app_end_time: float
    end_time: float
    #: Slurm's ConsumedEnergy: node-counter difference summed over nodes.
    consumed_energy_joules: float
    #: Per-node consumed energy (diagnostics).
    per_node_joules: list[float] = field(default_factory=list)
    #: Whatever the application returned (measurement records, etc.).
    app_result: Any = None

    @property
    def elapsed(self) -> float:
        """Wall time Slurm accounts for (submit to end)."""
        return self.end_time - self.submit_time

    @property
    def setup_seconds(self) -> float:
        """Launch plus application-init time PMT never sees."""
        return self.app_start_time - self.submit_time
