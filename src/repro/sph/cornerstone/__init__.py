"""Cornerstone-style space-filling-curve octree (Keller et al. 2023).

SPH-EXA's domain layer is built on "cornerstone" octrees: a flat, sorted
array of Morton (SFC) keys whose consecutive entries delimit the leaf
nodes.  This subpackage provides the same structure in vectorized NumPy —
Morton encoding, bucketed leaf refinement, SFC domain partitioning and
halo discovery — and is shared by the SPH domain sync and the Barnes-Hut
gravity solver.
"""

from repro.sph.cornerstone.morton import (
    MAX_COORD,
    decode_morton,
    encode_morton,
    normalize_positions,
    sfc_keys,
)
from repro.sph.cornerstone.octree import (
    KEY_RANGE,
    build_cornerstone,
    leaf_counts,
    node_aligned,
)
from repro.sph.cornerstone.domain import DomainDecomposition, partition_leaves

__all__ = [
    "MAX_COORD",
    "encode_morton",
    "decode_morton",
    "normalize_positions",
    "sfc_keys",
    "KEY_RANGE",
    "build_cornerstone",
    "leaf_counts",
    "node_aligned",
    "DomainDecomposition",
    "partition_leaves",
]
