"""Extension benchmark: weak scaling of the simulated runs.

Constant particles-per-GPU while growing the machine (the paper's 8-48
card sweep, analysed for scaling rather than totals): time per step and
energy per card should stay near flat, with the DomainDecompAndSync share
creeping up as the log(p) collectives and halo surfaces grow.
"""

from conftest import write_result

from repro.config import CSCS_A100, LUMI_G
from repro.experiments.scaling import weak_scaling_series, weak_scaling_table

CARD_COUNTS = (8, 16, 32, 48)
NUM_STEPS = 50


def _sweep():
    return {
        system.name: weak_scaling_series(system, CARD_COUNTS, num_steps=NUM_STEPS)
        for system in (LUMI_G, CSCS_A100)
    }


def bench_weak_scaling(benchmark, results_dir):
    series = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    blocks = []
    for name, points in series.items():
        times = [p.seconds_per_step for p in points]
        per_card = [p.joules_per_card for p in points]
        # Near-ideal weak scaling.
        assert times[-1] < 1.2 * times[0], f"{name}: step time blew up"
        assert max(per_card) < 1.2 * min(per_card), f"{name}: energy/card drift"
        # Communication share does not shrink with scale.
        assert points[-1].domain_sync_share >= points[0].domain_sync_share - 0.01
        blocks.append(f"--- {name} ---\n" + weak_scaling_table(points))

    write_result(results_dir, "ext_weak_scaling", "\n\n".join(blocks))


def bench_smoke_weak_scaling(results_dir):
    points = weak_scaling_series(CSCS_A100, (8, 16), num_steps=6)

    times = [p.seconds_per_step for p in points]
    assert times[-1] < 1.3 * times[0], "step time blew up"
    # Communication share does not shrink with scale.
    assert points[-1].domain_sync_share >= points[0].domain_sync_share - 0.01

    text = "--- CSCS-A100 ---\n" + weak_scaling_table(points)
    write_result(results_dir, "ext_weak_scaling_smoke", text)
