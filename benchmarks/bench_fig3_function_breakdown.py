"""Figure 3: per-function energy breakdown on GPU and CPU.

Paper shape to reproduce: MomentumEnergy is the top GPU-energy function
everywhere, but its share of GPU energy is far larger on LUMI-G (45.80 %,
11.2 MJ) than on CSCS-A100 (25.29 %, 3.1 MJ) — the indication that the
kernel "can further be optimized for AMD GPUs".  The same functions also
dominate CPU energy, because the CPU draws power for each function's
duration even though the GPU does the work.
"""

from conftest import write_result

from repro.experiments.breakdowns import figure3_breakdowns
from repro.units import joules_to_megajoules

NUM_STEPS = 100


def bench_figure3(benchmark, results_dir):
    cells = benchmark.pedantic(
        figure3_breakdowns, kwargs={"num_steps": NUM_STEPS}, rounds=1, iterations=1
    )
    by_label = {cell.label: cell for cell in cells}
    lines = []

    def me_share(cell):
        total = sum(r.joules for r in cell.gpu_functions)
        me = next(r for r in cell.gpu_functions if r.function == "MomentumEnergy")
        return me.joules / total, me.joules

    for cell in cells:
        lines.append(f"--- {cell.label} ({cell.result.num_cards} cards) ---")
        total_gpu = sum(r.joules for r in cell.gpu_functions)
        for row in cell.gpu_functions:
            lines.append(
                f"  GPU {row.function:>22} "
                f"{joules_to_megajoules(row.joules):>8.3f} MJ "
                f"{row.joules / total_gpu:>7.2%}  t={row.seconds:>7.1f}s"
            )
        # MomentumEnergy dominates GPU energy in every cell.
        assert cell.gpu_functions[0].function == "MomentumEnergy"
        # CPU energy broadly tracks function duration (the CPU draws power
        # for as long as each function runs, even while the GPU works):
        # the top CPU-energy function is among the longest-running ones.
        top_cpu = cell.cpu_functions[0].function
        longest = [
            r.function
            for r in sorted(
                cell.gpu_functions, key=lambda r: r.seconds, reverse=True
            )[:3]
        ]
        assert top_cpu in longest, f"{cell.label}: {top_cpu} not in {longest}"
        lines.append("")

    lumi_share, lumi_me_mj = me_share(by_label["LUMI-Turb"])
    cscs_share, cscs_me_mj = me_share(by_label["CSCS-A100-Turb"])
    # The headline contrast, with generous tolerance around the paper's
    # 45.80 % vs 25.29 %.
    assert lumi_share > cscs_share + 0.08
    assert 0.35 < lumi_share < 0.55
    assert 0.18 < cscs_share < 0.35

    lines.append(
        f"MomentumEnergy share of GPU energy: LUMI-Turb {lumi_share:.2%} "
        f"({joules_to_megajoules(lumi_me_mj):.1f} MJ), CSCS-A100-Turb "
        f"{cscs_share:.2%} ({joules_to_megajoules(cscs_me_mj):.1f} MJ)"
    )
    lines.append("Paper: LUMI-G 45.80% (11.2 MJ), CSCS-A100 25.29% (3.1 MJ)")
    write_result(results_dir, "fig3_function_breakdown", "\n".join(lines))


def bench_smoke_figure3(results_dir):
    cells = figure3_breakdowns(num_cards=8, num_steps=6)
    by_label = {cell.label: cell for cell in cells}

    lines = []
    for cell in cells:
        assert cell.gpu_functions[0].function == "MomentumEnergy"
        total_gpu = sum(r.joules for r in cell.gpu_functions)
        top = cell.gpu_functions[0]
        lines.append(
            f"{cell.label:>14}: top GPU function {top.function} "
            f"{top.joules / total_gpu:.2%} of GPU energy"
        )

    def me_share(cell):
        total = sum(r.joules for r in cell.gpu_functions)
        me = next(r for r in cell.gpu_functions if r.function == "MomentumEnergy")
        return me.joules / total

    # The headline contrast survives at reduced scale.
    assert me_share(by_label["LUMI-Turb"]) > me_share(by_label["CSCS-A100-Turb"])

    write_result(results_dir, "fig3_function_breakdown_smoke", "\n".join(lines))
