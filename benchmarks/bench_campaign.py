"""Campaign engine: cache-hit speedup and serial≡sharded equality.

The acceptance properties of the sharded campaign engine:

* a repeated sweep is pure cache hits — zero simulation steps executed
  and at least a 5x wall-clock speedup over the cold sweep;
* a ``workers=4`` sharded sweep merges bit-identically (energies, EDP,
  rendered tables) to the serial ``workers=1`` sweep;
* a killed sweep resumes: pre-populating part of the cache leaves only
  the missing points to execute.

The result file records only deterministic quantities (point counts,
steps, the merged EDP table) so the determinism CI gate can diff it;
wall-clock timings are asserted, not persisted.
"""

from __future__ import annotations

import time

from conftest import write_result

from repro.campaign import ResultStore, execute, expand
from repro.campaign.merge import merge_figure4
from repro.experiments.frequency import BASELINE_MHZ, figure4_spec

CUBE_SIDES = (100, 140)
FREQS_MHZ = (1410.0, 1230.0, 1005.0)
NUM_STEPS = 8
SPEEDUP_FLOOR = 5.0


def _spec():
    return figure4_spec(
        cube_sides=CUBE_SIDES, freqs_mhz=FREQS_MHZ, num_steps=NUM_STEPS
    )


def bench_smoke_campaign(results_dir, tmp_path):
    """Fig. 4 sweep on the campaign engine (`make bench-smoke`)."""
    keys = expand(_spec())
    store = ResultStore(tmp_path / "cache")

    # Serial reference sweep (workers=1, no cache).
    serial, serial_stats = execute(keys, workers=1)
    assert serial_stats.misses == len(keys)

    # Sharded cold sweep, populating the cache.
    t0 = time.perf_counter()
    sharded, cold_stats = execute(keys, store=store, workers=4)
    cold_seconds = time.perf_counter() - t0
    assert cold_stats.misses == len(keys)
    assert cold_stats.executed_steps == NUM_STEPS * len(keys)

    # Bit-identical: every archived float, and the merged figure.
    assert sharded == serial, "sharded sweep diverged from serial"
    serial_fig = merge_figure4(serial, BASELINE_MHZ)
    sharded_fig = merge_figure4(sharded, BASELINE_MHZ)
    assert sharded_fig == serial_fig

    # Repeated sweep: all hits, zero steps, >= 5x faster.
    t0 = time.perf_counter()
    warm, warm_stats = execute(keys, store=store, workers=4)
    warm_seconds = time.perf_counter() - t0
    assert warm_stats.hits == len(keys)
    assert warm_stats.executed_steps == 0, (
        "a fully-cached campaign must execute zero simulation steps"
    )
    assert warm == serial
    speedup = cold_seconds / warm_seconds
    assert speedup >= SPEEDUP_FLOOR, (
        f"cache-hit sweep only {speedup:.1f}x faster than cold "
        f"({cold_seconds:.3f}s -> {warm_seconds:.3f}s)"
    )

    # Resume: half the cache gone, only the misses execute.
    removed = store.clean(keys[: len(keys) // 2])
    assert removed == len(keys) // 2
    resumed, resume_stats = execute(keys, store=store, workers=4)
    assert resume_stats.misses == removed
    assert resume_stats.hits == len(keys) - removed
    assert resumed == serial

    lines = [
        f"Campaign smoke: Fig. 4 sweep, {len(keys)} points "
        f"(sides {CUBE_SIDES}, {len(FREQS_MHZ)} freqs, {NUM_STEPS} steps)",
        f"cold sweep: {cold_stats.misses} executed, "
        f"{cold_stats.executed_steps} steps",
        f"warm sweep: {warm_stats.hits} cache hits, 0 steps",
        f"resume after dropping {removed}: {resume_stats.misses} executed, "
        f"{resume_stats.hits} hits",
        "serial == sharded(workers=4) == cached: bit-identical",
        "",
        "Normalized EDP (baseline 1410 MHz):",
        "side^3  " + " ".join(f"{f:>7.0f}" for f in FREQS_MHZ),
    ]
    for side in CUBE_SIDES:
        norm = serial_fig[side]
        lines.append(
            f"{side:>5}^3 " + " ".join(f"{norm[f]:>7.3f}" for f in FREQS_MHZ)
        )
    write_result(results_dir, "campaign_smoke", "\n".join(lines))
