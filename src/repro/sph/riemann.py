"""Exact Riemann solver for the 1D ideal-gas Euler equations (Toro 2009).

The analytic oracle for shock-tube validation: given left/right states
``(rho, u, p)``, the star-region pressure/velocity are found by Newton
iteration on the pressure function, and the full self-similar solution
``W(x/t)`` is sampled — rarefaction fans, contact discontinuity and
shocks, all exact.  Used by the Sod-tube tests to grade the SPH solver's
shock capturing against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError


@dataclass(frozen=True)
class GasState:
    """A constant 1D gas state."""

    rho: float
    u: float
    p: float

    def __post_init__(self) -> None:
        if self.rho <= 0 or self.p <= 0:
            raise SimulationError("density and pressure must be positive")

    def sound_speed(self, gamma: float) -> float:
        """Adiabatic sound speed."""
        return float(np.sqrt(gamma * self.p / self.rho))


def _pressure_function(
    p: float, state: GasState, gamma: float
) -> tuple[float, float]:
    """Toro's f(p, W_k) and its derivative df/dp."""
    a = state.sound_speed(gamma)
    if p > state.p:  # shock branch
        big_a = 2.0 / ((gamma + 1.0) * state.rho)
        big_b = (gamma - 1.0) / (gamma + 1.0) * state.p
        sqrt_term = np.sqrt(big_a / (p + big_b))
        f = (p - state.p) * sqrt_term
        df = sqrt_term * (1.0 - 0.5 * (p - state.p) / (p + big_b))
    else:  # rarefaction branch
        exponent = (gamma - 1.0) / (2.0 * gamma)
        f = (
            2.0
            * a
            / (gamma - 1.0)
            * ((p / state.p) ** exponent - 1.0)
        )
        df = 1.0 / (state.rho * a) * (p / state.p) ** (-(gamma + 1.0) / (2.0 * gamma))
    return float(f), float(df)


def solve_star_region(
    left: GasState, right: GasState, gamma: float = 5.0 / 3.0
) -> tuple[float, float]:
    """The star-region pressure and velocity ``(p*, u*)``."""
    du = right.u - left.u
    # Vacuum check (pressure positivity condition).
    a_l, a_r = left.sound_speed(gamma), right.sound_speed(gamma)
    if 2.0 * (a_l + a_r) / (gamma - 1.0) <= du:
        raise SimulationError("vacuum is generated; no star region exists")
    # Initial guess: two-rarefaction approximation (robust and positive).
    z = (gamma - 1.0) / (2.0 * gamma)
    p = (
        (a_l + a_r - 0.5 * (gamma - 1.0) * du)
        / (a_l / left.p**z + a_r / right.p**z)
    ) ** (1.0 / z)
    p = max(p, 1e-12)
    for _ in range(100):
        f_l, df_l = _pressure_function(p, left, gamma)
        f_r, df_r = _pressure_function(p, right, gamma)
        delta = (f_l + f_r + du) / (df_l + df_r)
        p_new = max(p - delta, 1e-14)
        if abs(p_new - p) < 1e-12 * (p + p_new):
            p = p_new
            break
        p = p_new
    f_l, _ = _pressure_function(p, left, gamma)
    f_r, _ = _pressure_function(p, right, gamma)
    u_star = 0.5 * (left.u + right.u) + 0.5 * (f_r - f_l)
    return float(p), float(u_star)


def sample_solution(
    left: GasState,
    right: GasState,
    xi: np.ndarray,
    gamma: float = 5.0 / 3.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample ``(rho, u, p)`` of the exact solution at ``xi = x / t``."""
    xi = np.asarray(xi, dtype=np.float64)
    p_star, u_star = solve_star_region(left, right, gamma)
    rho = np.empty_like(xi)
    vel = np.empty_like(xi)
    prs = np.empty_like(xi)

    gm1, gp1 = gamma - 1.0, gamma + 1.0
    a_l, a_r = left.sound_speed(gamma), right.sound_speed(gamma)

    left_side = xi <= u_star
    # --- left of the contact -------------------------------------------------
    if p_star > left.p:  # left shock
        s_l = left.u - a_l * np.sqrt(
            gp1 / (2 * gamma) * p_star / left.p + gm1 / (2 * gamma)
        )
        rho_star_l = left.rho * (
            (p_star / left.p + gm1 / gp1) / (gm1 / gp1 * p_star / left.p + 1.0)
        )
        pre = xi < s_l
        region = left_side & pre
        rho[region], vel[region], prs[region] = left.rho, left.u, left.p
        region = left_side & ~pre
        rho[region], vel[region], prs[region] = rho_star_l, u_star, p_star
    else:  # left rarefaction
        a_star_l = a_l * (p_star / left.p) ** (gm1 / (2 * gamma))
        head = left.u - a_l
        tail = u_star - a_star_l
        rho_star_l = left.rho * (p_star / left.p) ** (1.0 / gamma)
        pre = xi < head
        region = left_side & pre
        rho[region], vel[region], prs[region] = left.rho, left.u, left.p
        fan = left_side & (xi >= head) & (xi <= tail)
        factor = 2.0 / gp1 + gm1 / (gp1 * a_l) * (left.u - xi[fan])
        rho[fan] = left.rho * factor ** (2.0 / gm1)
        vel[fan] = 2.0 / gp1 * (a_l + gm1 / 2.0 * left.u + xi[fan])
        prs[fan] = left.p * factor ** (2.0 * gamma / gm1)
        post = left_side & (xi > tail)
        rho[post], vel[post], prs[post] = rho_star_l, u_star, p_star

    right_side = ~left_side
    # --- right of the contact ------------------------------------------------
    if p_star > right.p:  # right shock
        s_r = right.u + a_r * np.sqrt(
            gp1 / (2 * gamma) * p_star / right.p + gm1 / (2 * gamma)
        )
        rho_star_r = right.rho * (
            (p_star / right.p + gm1 / gp1)
            / (gm1 / gp1 * p_star / right.p + 1.0)
        )
        post = xi > s_r
        region = right_side & post
        rho[region], vel[region], prs[region] = right.rho, right.u, right.p
        region = right_side & ~post
        rho[region], vel[region], prs[region] = rho_star_r, u_star, p_star
    else:  # right rarefaction
        a_star_r = a_r * (p_star / right.p) ** (gm1 / (2 * gamma))
        head = right.u + a_r
        tail = u_star + a_star_r
        rho_star_r = right.rho * (p_star / right.p) ** (1.0 / gamma)
        post = xi > head
        region = right_side & post
        rho[region], vel[region], prs[region] = right.rho, right.u, right.p
        fan = right_side & (xi >= tail) & (xi <= head)
        factor = 2.0 / gp1 - gm1 / (gp1 * a_r) * (right.u - xi[fan])
        rho[fan] = right.rho * factor ** (2.0 / gm1)
        vel[fan] = 2.0 / gp1 * (-a_r + gm1 / 2.0 * right.u + xi[fan])
        prs[fan] = right.p * factor ** (2.0 * gamma / gm1)
        pre = right_side & (xi < tail)
        rho[pre], vel[pre], prs[pre] = rho_star_r, u_star, p_star

    return rho, vel, prs


#: The classic Sod (1978) initial states.
SOD_LEFT = GasState(rho=1.0, u=0.0, p=1.0)
SOD_RIGHT = GasState(rho=0.125, u=0.0, p=0.1)
