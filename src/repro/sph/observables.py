"""Turbulence observables: spectra, Mach number, density statistics.

The paper's main workload is driven subsonic turbulence; these are the
standard physical diagnostics of such runs — the quantities an
astrophysicist checks to know the driving is doing its job:

* RMS **Mach number** (subsonic means < 1);
* **velocity power spectrum** E(k) from a gridded velocity field (a
  driven cascade shows power concentrated at the driving scale, decaying
  toward high k);
* **density PDF** statistics (compressible turbulence broadens the
  log-density distribution; subsonic driving keeps it narrow).

All estimators are deposit-to-grid + FFT, vectorized, deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.sph.box import Box
from repro.sph.particles import ParticleSet


def rms_mach_number(ps: ParticleSet) -> float:
    """Mass-weighted RMS Mach number (requires ``ps.c`` from the EOS)."""
    if np.any(ps.c <= 0):
        raise SimulationError("sound speeds must be positive (run the EOS)")
    v2 = np.sum(ps.vel**2, axis=1)
    mach2 = np.sum(ps.mass * v2 / ps.c**2) / np.sum(ps.mass)
    return float(np.sqrt(mach2))


def deposit_to_grid(
    ps: ParticleSet, box: Box, n_grid: int, values: np.ndarray
) -> np.ndarray:
    """Mass-weighted cloud-in-cell (CIC) deposit of a per-particle value.

    Trilinear weights over the 8 surrounding cells (periodic wrap);
    returns ``sum(w m value) / sum(w m)`` per cell (zero where no mass
    lands).  CIC is the standard deposit for spectra: it suppresses the
    empty-cell shot noise a nearest-grid-point assignment aliases into
    high wavenumbers.
    """
    if not box.periodic:
        raise SimulationError("grid deposit assumes a periodic box")
    if n_grid < 2:
        raise SimulationError("need at least a 2^3 grid")
    # Position in grid units, cell centers at integer + 0.5.
    pos = (ps.pos - box.lo) / box.length * n_grid - 0.5
    base = np.floor(pos).astype(np.int64)
    frac = pos - base

    weights = np.zeros(n_grid**3)
    weighted = np.zeros(n_grid**3)
    for dx in (0, 1):
        wx = frac[:, 0] if dx else 1.0 - frac[:, 0]
        ix = (base[:, 0] + dx) % n_grid
        for dy in (0, 1):
            wy = frac[:, 1] if dy else 1.0 - frac[:, 1]
            iy = (base[:, 1] + dy) % n_grid
            for dz in (0, 1):
                wz = frac[:, 2] if dz else 1.0 - frac[:, 2]
                iz = (base[:, 2] + dz) % n_grid
                w = ps.mass * wx * wy * wz
                flat = (ix * n_grid + iy) * n_grid + iz
                weights += np.bincount(flat, weights=w, minlength=n_grid**3)
                weighted += np.bincount(
                    flat, weights=w * values, minlength=n_grid**3
                )
    out = np.zeros(n_grid**3)
    occupied = weights > 0
    out[occupied] = weighted[occupied] / weights[occupied]
    return out.reshape(n_grid, n_grid, n_grid)


def velocity_power_spectrum(
    ps: ParticleSet, box: Box, n_grid: int = 32
) -> tuple[np.ndarray, np.ndarray]:
    """Shell-averaged kinetic-energy spectrum ``E(k)``.

    Returns ``(k, E)`` with k in units of the fundamental ``2 pi / L``
    (i.e. integer wavenumbers 1 .. n_grid/2 - 1).
    """
    components = []
    for axis in range(3):
        grid = deposit_to_grid(ps, box, n_grid, ps.vel[:, axis])
        components.append(np.fft.fftn(grid) / n_grid**3)
    power = sum(np.abs(c) ** 2 for c in components)

    freqs = np.fft.fftfreq(n_grid) * n_grid  # integer wavenumbers
    kx, ky, kz = np.meshgrid(freqs, freqs, freqs, indexing="ij")
    k_mag = np.sqrt(kx**2 + ky**2 + kz**2)

    k_max = n_grid // 2
    k_bins = np.arange(0.5, k_max, 1.0)
    k_centers = np.arange(1, k_max)
    shell = np.digitize(k_mag.ravel(), k_bins)
    spectrum = np.zeros(len(k_centers))
    flat_power = power.ravel()
    for i in range(1, len(k_bins)):
        mask = shell == i
        spectrum[i - 1] = float(np.sum(flat_power[mask]))
    return k_centers.astype(np.float64), spectrum


def density_pdf_stats(ps: ParticleSet) -> dict[str, float]:
    """Moments of the log-density PDF (s = ln(rho / <rho>))."""
    if np.any(ps.rho <= 0):
        raise SimulationError("densities must be positive")
    mean_rho = float(np.sum(ps.mass * ps.rho) / np.sum(ps.mass))
    s = np.log(ps.rho / mean_rho)
    sigma = float(np.std(s))
    skew = float(np.mean((s - s.mean()) ** 3) / sigma**3) if sigma > 0 else 0.0
    return {"mean_rho": mean_rho, "sigma_s": sigma, "skew_s": skew}


def driving_scale_dominates(
    k: np.ndarray, spectrum: np.ndarray, k_drive_max: float = 3.0
) -> bool:
    """Whether most spectral energy sits at/below the driving shell."""
    total = float(np.sum(spectrum))
    if total <= 0:
        return False
    low = float(np.sum(spectrum[k <= k_drive_max]))
    return low > 0.5 * total
