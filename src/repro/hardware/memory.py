"""Node DRAM subsystem device."""

from __future__ import annotations

from repro.hardware.clock import VirtualClock
from repro.hardware.device import Device
from repro.hardware.dvfs import FrequencyDomain
from repro.hardware.specs import MemorySpec


class MemoryDevice(Device):
    """The node's DRAM subsystem as a single power-drawing device.

    LUMI-G pm_counters expose a dedicated memory power file; CSCS-A100 does
    not, which is why the paper's Figure 2 folds memory into "Other" on
    that system.  The device exists on both systems — only its *sensor*
    differs.
    """

    def __init__(self, name: str, clock: VirtualClock, spec: MemorySpec) -> None:
        self.spec = spec
        # DRAM has no user-facing DVFS in this model: single frequency.
        domain = FrequencyDomain(
            supported_hz=(1.0,), nominal_hz=1.0, user_controllable=False
        )
        super().__init__(name, clock, spec.power_model, domain)
