"""Order-independent merges of campaign results into figure structures.

Each merge consumes the ``{RunKey: CampaignResult}`` mapping the executor
returns and produces *exactly* the structure the corresponding serial
experiment function has always returned — iteration is over the sorted
key space, never over completion order, so a sweep sharded across any
number of workers merges to the same object as the serial sweep.
"""

from __future__ import annotations

from repro.analysis.edp import function_edp, normalized_edp_series, run_edp
from repro.analysis.validation import ValidationPoint, validate_pmt_against_slurm
from repro.campaign.keys import RunKey, sort_key
from repro.campaign.store import CampaignResult
from repro.errors import AnalysisError


def _sorted_results(
    results: dict[RunKey, CampaignResult],
) -> list[tuple[RunKey, CampaignResult]]:
    return sorted(results.items(), key=lambda item: sort_key(item[0]))


def cube_side_of(particles_per_rank: float) -> int:
    """Invert ``side**3`` particle counts back to the cube side."""
    side = round(particles_per_rank ** (1.0 / 3.0))
    if abs(float(side) ** 3 - particles_per_rank) > 0.5:
        raise AnalysisError(
            f"{particles_per_rank} particles/rank is not a side^3 cube"
        )
    return side


def merge_figure4(
    results: dict[RunKey, CampaignResult], baseline_mhz: float
) -> dict[int, dict[float, float]]:
    """``{side: {MHz: EDP / EDP(baseline)}}`` — Figure 4's structure."""
    by_side: dict[int, dict[float, float]] = {}
    for key, result in _sorted_results(results):
        side = cube_side_of(key.particles_per_rank)
        by_side.setdefault(side, {})[key.gpu_freq_mhz] = run_edp(result.run)
    return {
        side: normalized_edp_series(series, baseline_mhz)
        for side, series in by_side.items()
    }


def merge_figure5(
    results: dict[RunKey, CampaignResult], baseline_mhz: float
) -> dict[str, dict[float, float]]:
    """``{function: {MHz: EDP / EDP(baseline)}}`` — Figure 5's structure."""
    per_freq: dict[float, dict[str, float]] = {}
    for key, result in _sorted_results(results):
        per_freq[key.gpu_freq_mhz] = function_edp(result.run)
    if baseline_mhz not in per_freq:
        raise AnalysisError(
            f"baseline frequency {baseline_mhz!r} missing from campaign "
            f"results {sorted(per_freq)}"
        )
    out: dict[str, dict[float, float]] = {}
    for fn in per_freq[baseline_mhz]:
        series = {freq: edps[fn] for freq, edps in per_freq.items()}
        if series[baseline_mhz] <= 0:
            # Sub-resolution functions (sensor quantization reports zero
            # energy in short runs) cannot be normalized; skip them, as
            # the paper's Figure 5 plots only the time-consuming ones.
            continue
        out[fn] = normalized_edp_series(series, baseline_mhz)
    return out


def merge_figure1(
    results: dict[RunKey, CampaignResult],
) -> list[ValidationPoint]:
    """Figure 1's PMT-vs-Slurm points, ordered by card count."""
    return [
        validate_pmt_against_slurm(
            result.run, result.accounting.to_accounting(result.run), key.num_cards
        )
        for key, result in _sorted_results(results)
    ]


def merge_weak_scaling(results: dict[RunKey, CampaignResult]) -> list:
    """The weak-scaling points, ordered by card count."""
    # Imported here: scaling imports the campaign engine for execution,
    # so a top-level import would be circular.
    from repro.experiments.scaling import WeakScalingPoint, scaling_point

    points: list[WeakScalingPoint] = []
    for key, result in _sorted_results(results):
        points.append(scaling_point(result.run, key.num_cards))
    return points
