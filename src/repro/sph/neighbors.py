"""Neighbor search: brute force and cell-list implementations.

Produces pair lists with separation below the pair cutoff
``2 * max(h_i, h_j)`` — the union support needed by symmetrized SPH sums
(each term is then masked by its own kernel's compact support).  Two pair
representations exist:

* :class:`PairList` — *directed* pairs ``(i, j)`` and ``(j, i)`` both
  present.  This is the oracle representation the tests cross-validate
  against, and the format every physics kernel accepted historically.
* :class:`HalfPairList` — *undirected* pairs stored once with ``i < j``.
  Halves pair memory and kernel evaluations; consumers accumulate both
  gather targets with symmetric scatter-adds (see
  :mod:`repro.sph.pair_cache`).

The cell list is the production path (``FindNeighbors`` in the SPH-EXA
function inventory); the O(N^2) brute force is the oracle the tests
cross-validate against.  Both are fully vectorized: the cell list builds
candidate pairs per 27-stencil offset with a ``searchsorted`` over
SFC-sorted cell ids and a repeat/cumsum range-concatenation, no Python
per-particle loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.sph.box import Box
from repro.sph.kernels.cubic_spline import SUPPORT_RADIUS

#: Below this particle count ``find_neighbors`` uses the O(N^2) brute
#: force instead of the cell list.  At small N the brute force's single
#: fused distance pass beats the cell list's binning/stencil overhead;
#: the crossover sits near a few hundred particles on NumPy, so 128 keeps
#: a comfortable margin while still covering every tiny test problem.
BRUTE_FORCE_MAX_N = 128

#: Cap on the total linked-cell count.  ``coords @ strides`` silently
#: wraps int64 beyond this, producing wrong (not just slow) pair lists,
#: so the cell list refuses instead.
_MAX_TOTAL_CELLS = 2**62


@dataclass(frozen=True)
class PairList:
    """Directed interacting pairs and their geometry.

    ``dx[k] = pos[i[k]] - pos[j[k]]`` (minimum image), ``r[k] = |dx[k]|``.
    """

    i: np.ndarray
    j: np.ndarray
    dx: np.ndarray
    r: np.ndarray
    n_particles: int

    @property
    def n_pairs(self) -> int:
        """Number of directed pairs."""
        return len(self.i)

    def neighbor_counts(self) -> np.ndarray:
        """Per-particle neighbor counts."""
        return np.bincount(self.i, minlength=self.n_particles)


@dataclass(frozen=True)
class HalfPairList:
    """Undirected interacting pairs, stored once with ``i < j``.

    Geometry follows the directed convention for the stored direction:
    ``dx[k] = pos[i[k]] - pos[j[k]]`` (minimum image), ``r[k] = |dx[k]|``.
    The mirrored pair ``(j, i)`` has displacement ``-dx``.
    """

    i: np.ndarray
    j: np.ndarray
    dx: np.ndarray
    r: np.ndarray
    n_particles: int

    @property
    def n_pairs(self) -> int:
        """Number of undirected pairs (half the directed count)."""
        return len(self.i)

    def neighbor_counts(self) -> np.ndarray:
        """Per-particle neighbor counts (each pair counts for both ends)."""
        return np.bincount(self.i, minlength=self.n_particles) + np.bincount(
            self.j, minlength=self.n_particles
        )

    def to_directed(self) -> PairList:
        """Expand to the equivalent directed :class:`PairList`."""
        return PairList(
            i=np.concatenate([self.i, self.j]),
            j=np.concatenate([self.j, self.i]),
            dx=np.concatenate([self.dx, -self.dx]),
            r=np.concatenate([self.r, self.r]),
            n_particles=self.n_particles,
        )


def _pair_geometry(
    pos: np.ndarray, h: np.ndarray, box: Box, i: np.ndarray, j: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Filter candidate index pairs by the union cutoff; return geometry."""
    dx = box.displacement(pos[i] - pos[j])
    r2 = np.einsum("ij,ij->i", dx, dx)
    cutoff = SUPPORT_RADIUS * np.maximum(h[i], h[j])
    keep = r2 < cutoff**2
    return i[keep], j[keep], dx[keep], np.sqrt(r2[keep])


def _finalize_pairs(
    pos: np.ndarray,
    h: np.ndarray,
    box: Box,
    i: np.ndarray,
    j: np.ndarray,
    half: bool = False,
) -> PairList | HalfPairList:
    """Deduplicate/orient candidates, filter by cutoff, build geometry."""
    keep = (i < j) if half else (i != j)
    i, j, dx, r = _pair_geometry(pos, h, box, i[keep], j[keep])
    cls = HalfPairList if half else PairList
    return cls(i=i, j=j, dx=dx, r=r, n_particles=len(pos))


def brute_force_pairs(
    pos: np.ndarray, h: np.ndarray, box: Box, half: bool = False
) -> PairList | HalfPairList:
    """All-pairs O(N^2) neighbor search (test oracle, small N only).

    Enumerates only the strict upper triangle (``np.triu_indices``) and
    mirrors the surviving half pairs when a directed list is requested —
    half the candidate memory and distance work of the former full
    ``meshgrid`` (which also carried the i == j diagonal).
    """
    n = len(pos)
    if n != len(h):
        raise SimulationError("pos and h length mismatch")
    iu, ju = np.triu_indices(n, k=1)
    i, j, dx, r = _pair_geometry(pos, h, box, iu, ju)
    if half:
        return HalfPairList(i=i, j=j, dx=dx, r=r, n_particles=n)
    return HalfPairList(i=i, j=j, dx=dx, r=r, n_particles=n).to_directed()


def cell_list_pairs(
    pos: np.ndarray, h: np.ndarray, box: Box, half: bool = False
) -> PairList | HalfPairList:
    """Linked-cell neighbor search with a 27-cell stencil."""
    n = len(pos)
    if n != len(h):
        raise SimulationError("pos and h length mismatch")
    cutoff = SUPPORT_RADIUS * float(np.max(h))
    if cutoff <= 0:
        raise SimulationError("non-positive smoothing lengths in neighbor search")

    if box.periodic:
        origin = np.full(3, box.lo)
        extent = np.full(3, box.length)
    else:
        # Open boxes anchor the grid at the box's own (known) bounds so
        # successive calls bin identically; only particles that escaped
        # the nominal box extend the grid beyond them.
        lo = np.minimum(pos.min(axis=0), box.lo)
        hi = np.maximum(pos.max(axis=0), box.hi)
        origin = lo
        extent = np.maximum(hi - lo, 1e-300)

    ncell = np.maximum((extent / cutoff).astype(np.int64), 1)
    total_cells = int(ncell[0]) * int(ncell[1]) * int(ncell[2])  # Python ints
    if total_cells > _MAX_TOTAL_CELLS:
        raise SimulationError(
            f"cell grid {tuple(int(c) for c in ncell)} overflows the int64 "
            f"cell index: the pair cutoff {cutoff:.3e} is too small for the "
            f"domain extent {tuple(float(e) for e in np.round(extent, 6))}; "
            "increase the smoothing lengths or shrink the domain"
        )
    if box.periodic and np.any(ncell < 3):
        # With fewer than 3 cells per axis the periodic 27-stencil would
        # visit cells twice; the problem is tiny, brute force is exact.
        return brute_force_pairs(pos, h, box, half=half)
    width = extent / ncell

    coords = np.floor((pos - origin) / width).astype(np.int64)
    np.clip(coords, 0, ncell - 1, out=coords)
    strides = np.array(
        [ncell[1] * ncell[2], ncell[2], 1], dtype=np.int64
    )
    flat = coords @ strides

    order = np.argsort(flat, kind="stable")
    sorted_flat = flat[order]

    i_parts: list[np.ndarray] = []
    j_parts: list[np.ndarray] = []
    all_idx = np.arange(n, dtype=np.int64)
    for ox in (-1, 0, 1):
        for oy in (-1, 0, 1):
            for oz in (-1, 0, 1):
                ncoords = coords + np.array([ox, oy, oz], dtype=np.int64)
                if box.periodic:
                    ncoords %= ncell
                    valid = np.ones(n, dtype=bool)
                else:
                    valid = np.all((ncoords >= 0) & (ncoords < ncell), axis=1)
                    if not np.any(valid):
                        continue
                target = ncoords @ strides
                start = np.searchsorted(sorted_flat, target, side="left")
                end = np.searchsorted(sorted_flat, target, side="right")
                counts = np.where(valid, end - start, 0)
                total = int(counts.sum())
                if total == 0:
                    continue
                i_rep = np.repeat(all_idx, counts)
                # Concatenated ranges [start_k, end_k) without Python loops.
                offsets = np.arange(total) - np.repeat(
                    np.cumsum(counts) - counts, counts
                )
                j_sorted_pos = np.repeat(start, counts) + offsets
                i_parts.append(i_rep)
                j_parts.append(order[j_sorted_pos])

    if not i_parts:
        empty = np.zeros(0, dtype=np.int64)
        cls = HalfPairList if half else PairList
        return cls(
            i=empty, j=empty, dx=np.zeros((0, 3)), r=np.zeros(0), n_particles=n
        )
    return _finalize_pairs(
        pos, h, box, np.concatenate(i_parts), np.concatenate(j_parts), half=half
    )


def find_neighbors(
    pos: np.ndarray, h: np.ndarray, box: Box, half: bool = False
) -> PairList | HalfPairList:
    """The production neighbor search (cell list with brute-force fallback)."""
    if len(pos) <= BRUTE_FORCE_MAX_N:
        return brute_force_pairs(pos, h, box, half=half)
    return cell_list_pairs(pos, h, box, half=half)
