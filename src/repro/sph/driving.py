"""Stochastic turbulence driving (the ``TurbulenceDriving`` function).

The subsonic-turbulence test is driven the way SPH-EXA drives it
(following Federrath et al.): an Ornstein-Uhlenbeck process evolves
complex amplitudes on a shell of low-wavenumber Fourier modes; the
acceleration field is the real part of the mode sum, projected onto its
solenoidal (divergence-free) component so driving stirs without
compressing.

Everything is deterministic given the seed, and the per-step update is
vectorized over (particles x modes).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.sph.box import Box


class TurbulenceDriver:
    """Ornstein-Uhlenbeck solenoidal driving in a periodic box.

    Parameters
    ----------
    box:
        Periodic simulation box.
    amplitude:
        RMS target of the driving acceleration.
    correlation_time:
        OU autocorrelation time (in code units).
    k_min, k_max:
        Driven wavenumber shell in units of ``2 pi / L``.
    seed:
        RNG seed; two drivers with equal seeds produce identical forcing.
    """

    def __init__(
        self,
        box: Box,
        amplitude: float = 1.0,
        correlation_time: float = 0.5,
        k_min: int = 1,
        k_max: int = 3,
        seed: int = 0,
    ) -> None:
        if not box.periodic:
            raise SimulationError("turbulence driving needs a periodic box")
        if amplitude <= 0 or correlation_time <= 0:
            raise SimulationError("driver amplitude and time must be positive")
        if not 1 <= k_min <= k_max:
            raise SimulationError("need 1 <= k_min <= k_max")
        self.box = box
        self.amplitude = float(amplitude)
        self.correlation_time = float(correlation_time)
        self._rng = np.random.default_rng(seed)

        # Integer mode vectors on the driven shell (half space; the real
        # part of the mode sum covers the conjugates).
        modes = []
        weights = []
        for nx in range(0, k_max + 1):
            for ny in range(-k_max, k_max + 1):
                for nz in range(-k_max, k_max + 1):
                    if nx == 0 and (ny < 0 or (ny == 0 and nz <= 0)):
                        continue
                    k2 = nx * nx + ny * ny + nz * nz
                    if not k_min**2 <= k2 <= k_max**2:
                        continue
                    modes.append((nx, ny, nz))
                    # Parabolic spectrum peaked mid-shell.
                    knorm = np.sqrt(k2)
                    weights.append(
                        max(1e-3, 1.0 - ((knorm - 2.0) / max(k_max - 1, 1)) ** 2)
                    )
        if not modes:
            raise SimulationError("empty driving shell")
        self.k_int = np.array(modes, dtype=np.float64)
        self.k_vec = 2.0 * np.pi / box.length * self.k_int
        self.weights = np.array(weights) / np.sqrt(np.sum(weights))
        self.n_modes = len(modes)
        # OU state: complex amplitude per mode per component.
        self.state = np.zeros((self.n_modes, 3), dtype=np.complex128)

    def _solenoidal_project(self, f: np.ndarray) -> np.ndarray:
        """Remove the component of each mode amplitude parallel to k."""
        k_hat = self.k_vec / np.linalg.norm(self.k_vec, axis=1, keepdims=True)
        parallel = np.einsum("ma,ma->m", f, k_hat.astype(np.complex128))
        return f - parallel[:, None] * k_hat

    def step(self, dt: float) -> None:
        """Advance the OU process by ``dt``."""
        if dt <= 0:
            raise SimulationError("driver step needs positive dt")
        decay = np.exp(-dt / self.correlation_time)
        kick = np.sqrt(1.0 - decay**2)
        noise = self._rng.normal(size=(self.n_modes, 3, 2))
        complex_noise = (noise[..., 0] + 1j * noise[..., 1]) / np.sqrt(2.0)
        self.state = decay * self.state + kick * complex_noise
        self.state = self._solenoidal_project(self.state)

    def acceleration(self, pos: np.ndarray, cfast=None) -> np.ndarray:
        """Driving acceleration at the given positions.

        ``cfast`` optionally evaluates the mode sum with the compiled
        fast path (:mod:`repro.sph.csolver`), which needs no O(n x modes)
        phase matrix; it agrees with the NumPy sum to trig round-off.
        """
        amp = self.state * self.weights[:, None]  # (modes, 3)
        if cfast is not None:
            from repro.sph import csolver

            acc = csolver.driving_accel(cfast, pos, self.k_vec, amp)
        else:
            phases = np.exp(1j * pos @ self.k_vec.T)  # (n, modes)
            acc = np.real(phases @ amp)  # (n, 3)
        rms = np.sqrt(np.mean(np.sum(acc**2, axis=1))) if len(pos) else 0.0
        if rms > 0:
            acc *= self.amplitude / max(rms, 1e-12)
        return acc
