"""Communication cost model for the simulated MPI layer.

Standard alpha-beta (latency-bandwidth) estimates for the operations
SPH-EXA's time-stepping loop performs:

* small **allreduce** — global minimum time-step, energy conservation sums;
* **allgather** of domain metadata during domain synchronisation;
* neighbour **halo exchange** — point-to-point with the SFC-adjacent ranks;
* bulk **alltoallv** during particle redistribution after decomposition.

Tree-based collectives cost ``ceil(log2 p)`` latency rounds; bandwidth
terms use the classic dissemination formulas.  Intra-node messages ride
the faster links (NVLink / Infinity Fabric) via the network model's
``intra_node_factor``.
"""

from __future__ import annotations

import math

from repro.errors import CommunicatorError
from repro.hardware.cluster import NetworkModel
from repro.mpi.mapping import RankPlacement


class CommCostModel:
    """Time estimates for MPI operations on a placed communicator."""

    def __init__(self, network: NetworkModel, placement: RankPlacement) -> None:
        self.network = network
        self.placement = placement

    @property
    def size(self) -> int:
        """Communicator size."""
        return self.placement.size

    def _rounds(self) -> int:
        return max(1, math.ceil(math.log2(max(self.size, 2))))

    def barrier_time(self) -> float:
        """Dissemination barrier: log2(p) latency rounds."""
        return self._rounds() * self.network.latency_s

    def allreduce_time(self, nbytes: float) -> float:
        """Rabenseifner-style allreduce: log latency + 2x bandwidth term."""
        if nbytes < 0:
            raise CommunicatorError("allreduce payload must be >= 0 bytes")
        p = self.size
        if p == 1:
            return 0.0
        bw = self.network.bandwidth_bytes_per_s
        return (
            2 * self._rounds() * self.network.latency_s
            + 2.0 * nbytes * (p - 1) / p / bw
        )

    def allgather_time(self, nbytes_per_rank: float) -> float:
        """Ring allgather of ``nbytes_per_rank`` contributed by each rank."""
        if nbytes_per_rank < 0:
            raise CommunicatorError("allgather payload must be >= 0 bytes")
        p = self.size
        if p == 1:
            return 0.0
        bw = self.network.bandwidth_bytes_per_s
        return (p - 1) * (
            self.network.latency_s + nbytes_per_rank / bw
        )

    def p2p_time(self, src: int, dst: int, nbytes: float) -> float:
        """Point-to-point message time, honouring intra-node links."""
        if nbytes < 0:
            raise CommunicatorError("message size must be >= 0 bytes")
        intra = self.placement.same_node(src, dst)
        return self.network.transfer_time(nbytes, intra_node=intra)

    def halo_exchange_time(self, rank: int, neighbor_bytes: dict[int, float]) -> float:
        """Time for one rank's halo exchange.

        Messages to distinct neighbours overlap on the NIC up to a small
        concurrency factor; the result is the serialized time divided by
        that overlap, floored at the largest single message.
        """
        if not neighbor_bytes:
            return 0.0
        times = [
            self.p2p_time(rank, other, nbytes)
            for other, nbytes in neighbor_bytes.items()
        ]
        overlap = 2.0
        return max(max(times), sum(times) / overlap)

    def alltoallv_time(self, rank: int, send_bytes: dict[int, float]) -> float:
        """Time for one rank's alltoallv contribution (serialized sends)."""
        total = 0.0
        for other, nbytes in send_bytes.items():
            total += self.p2p_time(rank, other, nbytes)
        return total
