"""The runtime energy auditor and its opt-in wiring.

:class:`EnergyAuditor` attaches to the live measurement stack the same
way the span recorder does — as a passive extension attribute — and
watches the run from three vantage points:

* **profiler** (:class:`~repro.instrumentation.profiler.EnergyProfiler`):
  every node-counter snapshot is checked for monotonicity, every closed
  region for a sane window and non-negative counter deltas;
* **samplers** (:class:`~repro.pmt.sampler.PmtSampler`): every tick is
  checked for time ordering and monotone energy, and per-channel first /
  last tallies are kept for the store-conservation check;
* **end of run**: the pure checkers of :mod:`repro.audit.invariants`
  reconcile the gathered records against the app window, the Slurm
  accounting and the retained timeseries.

The auditor never takes a measurement of its own — it only observes
values the pipeline already produced, so an audited run reports
bit-identical energies to an unaudited one.

In ``record`` mode violations accumulate into the final
:class:`~repro.audit.findings.AuditReport`; in ``strict`` mode the first
error-severity finding raises :class:`~repro.errors.AuditError`.

Opt in per call (``audit=`` on the runner, ``--audit`` on the CLI) or
process-wide via ``REPRO_AUDIT`` (``1``/``record`` or ``strict``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.audit.findings import AuditFinding, AuditReport
from repro.audit.invariants import (
    check_device_partition,
    check_function_partition,
    check_pmt_vs_slurm,
    check_store_conservation,
)
from repro.audit.tolerances import AuditTolerances, tolerances_for
from repro.errors import AuditError

#: Environment variable controlling process-wide audit mode.
AUDIT_ENV = "REPRO_AUDIT"

_OFF = ("", "0", "off", "false", "no")
_STRICT = ("strict",)


@dataclass(frozen=True)
class AuditSettings:
    """Resolved audit mode: off, record, or strict."""

    enabled: bool = False
    strict: bool = False

    @classmethod
    def from_env(cls) -> "AuditSettings":
        """Mode from ``REPRO_AUDIT`` (off when unset)."""
        raw = os.environ.get(AUDIT_ENV, "").strip().lower()
        if raw in _OFF:
            return cls()
        return cls(enabled=True, strict=raw in _STRICT)

    @classmethod
    def resolve(cls, audit: "bool | str | None") -> "AuditSettings":
        """Resolve a runner-style ``audit`` argument.

        ``None`` defers to the environment; ``False`` disables;
        ``True`` / ``"record"`` records; ``"strict"`` raises on the
        first error finding.
        """
        if audit is None:
            return cls.from_env()
        if audit is False:
            return cls()
        if audit is True:
            return cls(enabled=True)
        raw = str(audit).strip().lower()
        if raw in _OFF:
            return cls()
        return cls(enabled=True, strict=raw in _STRICT)


class EnergyAuditor:
    """Records (or raises on) energy-accounting invariant violations."""

    def __init__(
        self,
        system: object | None = None,
        strict: bool = False,
        tolerances: AuditTolerances | None = None,
    ) -> None:
        system_name = getattr(system, "name", system)
        self.system_name = system_name
        self.strict = strict
        self.tolerances = (
            tolerances if tolerances is not None else tolerances_for(system_name)
        )
        self.findings: list[AuditFinding] = []
        self._checks: dict[str, int] = {}
        #: Last seen cumulative joules per (node, counter) snapshot name.
        self._last_counters: dict[tuple[int, str], float] = {}
        #: Last tick timestamp per sampler id.
        self._last_tick_t: dict[int, float] = {}
        #: Last joules per (node, measurement) seen on the tick stream.
        self._last_tick_joules: dict[tuple[int, str], float] = {}
        #: (node, measurement) -> (first_t, first_j, last_t, last_j).
        self._tallies: dict[tuple[int, str], tuple[float, float, float, float]] = {}

    # -- recording ------------------------------------------------------------

    def _checked(self, invariant: str, n: int = 1) -> None:
        self._checks[invariant] = self._checks.get(invariant, 0) + n

    def record(self, finding: AuditFinding) -> None:
        """Record one finding; in strict mode, raise on errors."""
        self.findings.append(finding)
        if self.strict and finding.severity == "error":
            raise AuditError(finding.render(), finding=finding)

    def extend(self, findings: list[AuditFinding]) -> None:
        for finding in findings:
            self.record(finding)

    # -- runtime hooks --------------------------------------------------------

    def on_counters(
        self, node_index: int, t: float, counters: dict[str, float]
    ) -> None:
        """Profiler hook: one node-counter snapshot was taken.

        Cumulative counters (PMT backends unwrap for us) must never move
        backwards between snapshots.
        """
        for name, joules in counters.items():
            key = (node_index, name)
            last = self._last_counters.get(key)
            self._checked("counter-monotone")
            slack = self.tolerances.counter_slack_joules
            if last is not None and joules < last - slack:
                self.record(
                    AuditFinding(
                        invariant="counter-monotone",
                        scope=f"node {node_index} / {name}",
                        message=(
                            "cumulative counter moved backwards between "
                            "snapshots (missed wrap or broken unwrap)"
                        ),
                        measured=joules,
                        expected=last,
                        tolerance=self.tolerances.counter_slack_joules,
                    )
                )
            if last is None or joules > last:
                self._last_counters[key] = joules

    def on_region(
        self,
        rank: int,
        function: str,
        t0: float,
        t1: float,
        deltas: dict[str, float],
    ) -> None:
        """Profiler hook: one instrumented region closed."""
        self._checked("region-window")
        if t1 < t0:
            self.record(
                AuditFinding(
                    invariant="region-window",
                    scope=f"rank {rank} / {function}",
                    message="region ended before it began",
                    measured=t1,
                    expected=t0,
                )
            )
        for name, joules in deltas.items():
            self._checked("region-window")
            if joules < -self.tolerances.counter_slack_joules:
                self.record(
                    AuditFinding(
                        invariant="region-window",
                        scope=f"rank {rank} / {function} / {name}",
                        message="negative region counter delta",
                        measured=joules,
                        expected=0.0,
                        tolerance=self.tolerances.counter_slack_joules,
                    )
                )

    def watch_sampler(self, node_index: int, sampler) -> None:
        """Subscribe to one node's sampler ticks."""
        sampler.add_listener(
            lambda tick, node=int(node_index): self.on_tick(node, tick)
        )

    def on_tick(self, node_index: int, tick) -> None:
        """Sampler hook: one structured sampling tick fired."""
        self._checked("tick-order")
        last_t = self._last_tick_t.get(node_index)
        if last_t is not None and tick.timestamp < last_t:
            self.record(
                AuditFinding(
                    invariant="tick-order",
                    scope=f"node {node_index}",
                    message="sampler tick timestamps moved backwards",
                    measured=tick.timestamp,
                    expected=last_t,
                )
            )
        self._last_tick_t[node_index] = tick.timestamp
        for m in tick.state.measurements:
            key = (node_index, m.name)
            self._checked("counter-monotone")
            last = self._last_tick_joules.get(key)
            if (
                last is not None
                and m.joules < last - self.tolerances.counter_slack_joules
            ):
                self.record(
                    AuditFinding(
                        invariant="counter-monotone",
                        scope=f"node {node_index} / {m.name}",
                        message=(
                            "sampled energy counter moved backwards "
                            f"(quality {m.quality!r})"
                        ),
                        measured=m.joules,
                        expected=last,
                        tolerance=self.tolerances.counter_slack_joules,
                    )
                )
            self._last_tick_joules[key] = max(last or m.joules, m.joules)
            tally = self._tallies.get(key)
            if tally is None:
                self._tallies[key] = (
                    tick.timestamp, m.joules, tick.timestamp, m.joules,
                )
            else:
                self._tallies[key] = (
                    tally[0], tally[1], tick.timestamp, m.joules,
                )

    # -- end-of-run reconciliation -------------------------------------------

    def audit_run(self, run) -> None:
        """Reconcile gathered records: function + device partitions."""
        self._checked("function-partition", len(_counters_of(run)))
        self.extend(check_function_partition(run, self.tolerances))
        self._checked("device-partition", len(run.node_windows))
        self.extend(check_device_partition(run, self.tolerances))

    def audit_accounting(self, run, accounting) -> None:
        """Validate the PMT window total against Slurm accounting."""
        self._checked("pmt-vs-slurm")
        self.extend(check_pmt_vs_slurm(run, accounting, self.tolerances))

    def audit_store(self, store) -> None:
        """Check tiered-store conservation against the tick tallies."""
        self._checked("timeseries-conservation", max(1, len(self._tallies)))
        self.extend(
            check_store_conservation(store, self._tallies, self.tolerances)
        )

    def report(self) -> AuditReport:
        """The accumulated audit outcome."""
        return AuditReport(
            findings=tuple(self.findings), checks=dict(self._checks)
        )


def _counters_of(run) -> tuple[str, ...]:
    names = ["node", "cpu", "gpu"]
    if any(w.memory_joules is not None for w in run.node_windows):
        names.append("memory")
    return tuple(names)


def audit_campaign_result(result, strict: bool = False) -> AuditReport:
    """Post-hoc audit of one archived campaign result.

    Runs every end-of-run checker that works from serialized records —
    function/device partitions and the PMT-vs-Slurm validation — so
    cache *hits* are audited without re-executing anything.  Runtime-only
    checks (tick order, live counter monotonicity, store conservation)
    need a live run and are covered by ``REPRO_AUDIT`` on the executing
    worker.
    """
    auditor = EnergyAuditor(system=result.run.system_name, strict=strict)
    auditor.audit_run(result.run)
    auditor.audit_accounting(result.run, result.accounting)
    return auditor.report()
