"""Simulation box with optional periodicity."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError


@dataclass(frozen=True)
class Box:
    """An axis-aligned cubic simulation box.

    Parameters
    ----------
    length:
        Edge length (the box spans ``[-length/2, length/2)`` per axis).
    periodic:
        Whether displacements use minimum-image convention and positions
        wrap (turbulence boxes are periodic; the Evrard sphere is open).
    """

    length: float
    periodic: bool = True

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise SimulationError(f"box length must be positive, got {self.length!r}")

    @property
    def lo(self) -> float:
        """Lower corner coordinate."""
        return -0.5 * self.length

    @property
    def hi(self) -> float:
        """Upper corner coordinate."""
        return 0.5 * self.length

    def displacement(self, dr: np.ndarray) -> np.ndarray:
        """Apply minimum-image convention to raw displacements ``dr``."""
        if not self.periodic:
            return dr
        # np.rint (round-half-even, same as np.round for this use) takes
        # the hardware rounding path; ndarray.round goes through a scaled
        # multiply/rint/divide and is ~2x slower on the multi-million-row
        # pair arrays this is called with every neighbor search.
        images = np.rint(dr * (1.0 / self.length))
        images *= -self.length
        images += dr
        return images

    def wrap(self, pos: np.ndarray) -> np.ndarray:
        """Wrap positions into the box (no-op for open boxes)."""
        if not self.periodic:
            return pos
        return (pos - self.lo) % self.length + self.lo

    def contains(self, pos: np.ndarray) -> np.ndarray:
        """Boolean mask of positions inside the box."""
        return np.all((pos >= self.lo) & (pos < self.hi), axis=-1)
