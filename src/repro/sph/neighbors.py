"""Neighbor search: brute force and cell-list implementations.

Produces directed pair lists ``(i, j)`` with separation below the pair
cutoff ``2 * max(h_i, h_j)`` — the union support needed by symmetrized SPH
sums (each term is then masked by its own kernel's compact support).

The cell list is the production path (``FindNeighbors`` in the SPH-EXA
function inventory); the O(N^2) brute force is the oracle the tests
cross-validate against.  Both are fully vectorized: the cell list builds
candidate pairs per 27-stencil offset with a ``searchsorted`` over
SFC-sorted cell ids and a repeat/cumsum range-concatenation, no Python
per-particle loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.sph.box import Box
from repro.sph.kernels.cubic_spline import SUPPORT_RADIUS


@dataclass(frozen=True)
class PairList:
    """Directed interacting pairs and their geometry.

    ``dx[k] = pos[i[k]] - pos[j[k]]`` (minimum image), ``r[k] = |dx[k]|``.
    """

    i: np.ndarray
    j: np.ndarray
    dx: np.ndarray
    r: np.ndarray
    n_particles: int

    @property
    def n_pairs(self) -> int:
        """Number of directed pairs."""
        return len(self.i)

    def neighbor_counts(self) -> np.ndarray:
        """Per-particle neighbor counts."""
        return np.bincount(self.i, minlength=self.n_particles)


def _finalize_pairs(
    pos: np.ndarray, h: np.ndarray, box: Box, i: np.ndarray, j: np.ndarray
) -> PairList:
    """Filter candidate pairs by the union cutoff and build geometry."""
    keep = i != j
    i, j = i[keep], j[keep]
    dx = box.displacement(pos[i] - pos[j])
    r2 = np.einsum("ij,ij->i", dx, dx)
    cutoff = SUPPORT_RADIUS * np.maximum(h[i], h[j])
    keep = r2 < cutoff**2
    i, j, dx, r2 = i[keep], j[keep], dx[keep], r2[keep]
    return PairList(i=i, j=j, dx=dx, r=np.sqrt(r2), n_particles=len(pos))


def brute_force_pairs(pos: np.ndarray, h: np.ndarray, box: Box) -> PairList:
    """All-pairs O(N^2) neighbor search (test oracle, small N only)."""
    n = len(pos)
    if n != len(h):
        raise SimulationError("pos and h length mismatch")
    ii, jj = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    return _finalize_pairs(pos, h, box, ii.ravel(), jj.ravel())


def cell_list_pairs(pos: np.ndarray, h: np.ndarray, box: Box) -> PairList:
    """Linked-cell neighbor search with a 27-cell stencil."""
    n = len(pos)
    if n != len(h):
        raise SimulationError("pos and h length mismatch")
    cutoff = SUPPORT_RADIUS * float(np.max(h))
    if cutoff <= 0:
        raise SimulationError("non-positive smoothing lengths in neighbor search")

    if box.periodic:
        origin = np.full(3, box.lo)
        extent = np.full(3, box.length)
    else:
        origin = pos.min(axis=0)
        extent = np.maximum(pos.max(axis=0) - origin, 1e-300)

    ncell = np.maximum((extent / cutoff).astype(np.int64), 1)
    if box.periodic and np.any(ncell < 3):
        # With fewer than 3 cells per axis the periodic 27-stencil would
        # visit cells twice; the problem is tiny, brute force is exact.
        return brute_force_pairs(pos, h, box)
    width = extent / ncell

    coords = np.floor((pos - origin) / width).astype(np.int64)
    np.clip(coords, 0, ncell - 1, out=coords)
    strides = np.array(
        [ncell[1] * ncell[2], ncell[2], 1], dtype=np.int64
    )
    flat = coords @ strides

    order = np.argsort(flat, kind="stable")
    sorted_flat = flat[order]

    i_parts: list[np.ndarray] = []
    j_parts: list[np.ndarray] = []
    all_idx = np.arange(n, dtype=np.int64)
    for ox in (-1, 0, 1):
        for oy in (-1, 0, 1):
            for oz in (-1, 0, 1):
                ncoords = coords + np.array([ox, oy, oz], dtype=np.int64)
                if box.periodic:
                    ncoords %= ncell
                    valid = np.ones(n, dtype=bool)
                else:
                    valid = np.all((ncoords >= 0) & (ncoords < ncell), axis=1)
                    if not np.any(valid):
                        continue
                target = ncoords @ strides
                start = np.searchsorted(sorted_flat, target, side="left")
                end = np.searchsorted(sorted_flat, target, side="right")
                counts = np.where(valid, end - start, 0)
                total = int(counts.sum())
                if total == 0:
                    continue
                i_rep = np.repeat(all_idx, counts)
                # Concatenated ranges [start_k, end_k) without Python loops.
                offsets = np.arange(total) - np.repeat(
                    np.cumsum(counts) - counts, counts
                )
                j_sorted_pos = np.repeat(start, counts) + offsets
                i_parts.append(i_rep)
                j_parts.append(order[j_sorted_pos])

    if not i_parts:
        empty = np.zeros(0, dtype=np.int64)
        return PairList(
            i=empty, j=empty, dx=np.zeros((0, 3)), r=np.zeros(0), n_particles=n
        )
    return _finalize_pairs(
        pos, h, box, np.concatenate(i_parts), np.concatenate(j_parts)
    )


def find_neighbors(pos: np.ndarray, h: np.ndarray, box: Box) -> PairList:
    """The production neighbor search (cell list with brute-force fallback)."""
    if len(pos) <= 64:
        return brute_force_pairs(pos, h, box)
    return cell_list_pairs(pos, h, box)
