"""Tests for the online energy-aware DVFS governor and its plumbing."""

from types import SimpleNamespace

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.edp import run_edp
from repro.campaign.keys import RunKey, run_key_hash
from repro.campaign.spec import CampaignSpec, expand
from repro.config import CSCS_A100, MINIHPC, SUBSONIC_TURBULENCE
from repro.errors import ConfigurationError, MeasurementError
from repro.experiments.runner import run_scaled_experiment
from repro.hardware.dvfs import snap_to_supported
from repro.timeseries.rolling import RollingMean
from repro.tuning.governor import (
    DEFAULT_CAP_FRACTION,
    GOVERNOR_POLICIES,
    EnergyAwareGovernor,
    GovernorConfig,
    GovernorReport,
)

A100_SUPPORTED = CSCS_A100.node_spec.gpu.supported_freqs_hz

SIDE = 450.0


def make_governor(policy="min-edp", **overrides):
    defaults = dict(
        policy=policy,
        candidates_mhz=(1410.0, 1140.0, 960.0, 700.0),
        dwell_s=0.0,
        hysteresis=0.0,
        explore_visits=1,
    )
    if policy == "power-cap":
        defaults["power_cap_watts"] = 1000.0
    defaults.update(overrides)
    config = GovernorConfig(**defaults)
    return EnergyAwareGovernor(config, A100_SUPPORTED, nominal_mhz=1410.0)


def observe(gov, function, seconds, joules, rank=0):
    """Feed one synthetic region completion at the governor's clock."""
    gov.observe_region(rank, function, 0.0, seconds, {"gpu": joules})


def tick(t, watts):
    return SimpleNamespace(timestamp=t, watts=watts)


class TestRollingMean:
    def test_mean_over_window(self):
        rm = RollingMean(10.0)
        for t, v in ((0.0, 100.0), (5.0, 200.0), (9.0, 300.0)):
            rm.add(t, v)
        assert rm.mean == pytest.approx(200.0)

    def test_eviction(self):
        rm = RollingMean(5.0)
        rm.add(0.0, 1000.0)
        rm.add(10.0, 100.0)  # the first sample is out of the window
        assert rm.mean == pytest.approx(100.0)
        assert len(rm) == 1

    def test_empty_mean_is_zero(self):
        assert RollingMean(1.0).mean == 0.0

    def test_out_of_order_rejected(self):
        rm = RollingMean(5.0)
        rm.add(2.0, 1.0)
        with pytest.raises(MeasurementError):
            rm.add(1.0, 1.0)

    @pytest.mark.parametrize("window", [0.0, -1.0, -0.001])
    def test_nonpositive_window_rejected(self, window):
        # A vacuous window is a configuration mistake, not a bad
        # measurement: it must raise the typed ConfigurationError.
        with pytest.raises(ConfigurationError, match="must be positive"):
            RollingMean(window)


class TestGovernorConfig:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            GovernorConfig(policy="turbo")

    def test_power_cap_requires_budget(self):
        with pytest.raises(ConfigurationError):
            GovernorConfig(policy="power-cap")
        with pytest.raises(ConfigurationError):
            GovernorConfig(policy="power-cap", power_cap_watts=-5.0)

    @pytest.mark.parametrize(
        "field, value",
        [
            ("candidates_mhz", ()),
            ("dwell_s", -0.1),
            ("hysteresis", 1.0),
            ("hysteresis", -0.1),
            ("explore_visits", 0),
            ("rolling_window_s", 0.0),
            ("cap_safety", 0.0),
            ("cap_safety", 1.5),
        ],
    )
    def test_field_validation(self, field, value):
        with pytest.raises(ConfigurationError):
            GovernorConfig(policy="min-edp", **{field: value})

    def test_for_system_candidates_supported(self):
        for policy in GOVERNOR_POLICIES:
            config = GovernorConfig.for_system(policy, CSCS_A100)
            supported = {f / 1e6 for f in A100_SUPPORTED}
            assert set(config.candidates_mhz) <= supported
            assert config.candidates_mhz == tuple(
                sorted(config.candidates_mhz, reverse=True)
            )

    def test_for_system_default_cap(self):
        config = GovernorConfig.for_system("power-cap", CSCS_A100)
        expected = DEFAULT_CAP_FRACTION * CSCS_A100.node_spec.peak_watts
        assert config.power_cap_watts == pytest.approx(expected)


class TestSnapToSupported:
    def test_ties_snap_to_lower_frequency(self):
        # 1000 MHz is equidistant from 800 and 1200: the tie must break
        # toward the lower clock (the energy-conservative choice).
        supported = (8e8, 1.2e9)
        assert snap_to_supported(supported, 1e9) == 8e8

    def test_empty_supported_rejected(self):
        from repro.errors import DvfsError

        with pytest.raises(DvfsError):
            snap_to_supported((), 1e9)

    @settings(max_examples=60, deadline=None)
    @given(
        freqs=st.lists(
            st.sampled_from([7e8, 8e8, 9.6e8, 1.1e9, 1.2e9, 1.41e9]),
            min_size=1,
            max_size=6,
            unique=True,
        ),
        target=st.floats(min_value=5e8, max_value=2e9),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_order_independent_and_minimal(self, freqs, target, seed):
        import random

        shuffled = list(freqs)
        random.Random(seed).shuffle(shuffled)
        snapped = snap_to_supported(tuple(shuffled), target)
        # Independent of presentation order.
        assert snapped == snap_to_supported(tuple(freqs), target)
        assert snapped in freqs
        # Minimizes the distance; among equidistant clocks, the lowest.
        best = min(abs(f - target) for f in freqs)
        assert abs(snapped - target) == best
        assert snapped == min(f for f in freqs if abs(f - target) == best)


class TestExplorationAndDecisions:
    def test_first_sighting_keeps_running_clock(self):
        gov = make_governor()
        assert gov.frequency_for("Density") is None

    def test_exploration_is_deterministic(self):
        a, b = make_governor(seed=7), make_governor(seed=7)
        assert a._explore_order("Density") == b._explore_order("Density")
        assert a._explore_order("Density") != a._explore_order("ME")

    def test_seed_changes_exploration_order(self):
        a, b = make_governor(seed=0), make_governor(seed=1)
        functions = ["Density", "ME", "IAD", "FindNeighbors"]
        assert any(
            a._explore_order(fn) != b._explore_order(fn) for fn in functions
        )

    def test_explores_every_candidate_then_exploits(self):
        gov = make_governor()
        observe(gov, "F", 1.0, 100.0)  # first sighting at the default clock
        visited = set()
        for _ in range(len(gov.candidates)):
            freq = gov.frequency_for("F")
            if freq is None:
                break
            visited.add(freq)
            observe(gov, "F", 1.0, 50.0 + freq / 100.0)
        assert visited == set(gov.candidates) - {gov.default_mhz}

    def test_min_energy_picks_lowest_energy(self):
        gov = make_governor("min-energy")
        for freq, joules in zip(gov.candidates, (400.0, 300.0, 200.0, 250.0)):
            gov._clock_mhz = freq
            observe(gov, "F", 1.0, joules)
        assert gov.frequency_for("F") == 960.0

    def test_min_edp_picks_lowest_energy_time_product(self):
        gov = make_governor("min-edp")
        # 960 has the lowest energy but stretches; 1140 wins on EDP.
        points = {1410.0: (1.0, 400.0), 1140.0: (1.1, 310.0), 960.0: (1.8, 300.0), 700.0: (2.5, 320.0)}
        for freq, (seconds, joules) in points.items():
            gov._clock_mhz = freq
            observe(gov, "F", seconds, joules)
        assert gov.frequency_for("F") == 1140.0

    def test_score_ties_break_toward_lower_clock(self):
        gov = make_governor("min-energy")
        for freq in gov.candidates:
            gov._clock_mhz = freq
            observe(gov, "F", 1.0, 100.0)  # all candidates score equal
        # Running clock outside the candidate set: no hysteresis anchor,
        # so the tie among equal scores resolves to the lowest clock.
        gov._clock_mhz = 1275.0
        assert gov.frequency_for("F") == 700.0

    def test_equal_score_never_leaves_current_clock(self):
        gov = make_governor("min-energy")
        for freq in gov.candidates:
            gov._clock_mhz = freq
            observe(gov, "F", 1.0, 100.0)
        gov._clock_mhz = 1410.0
        # A switch must be *earned*: all-equal scores keep the clock even
        # with zero hysteresis.
        assert gov.frequency_for("F") is None

    def test_hysteresis_keeps_current_clock(self):
        gov = make_governor(hysteresis=0.10)
        for freq, joules in zip(gov.candidates, (100.0, 95.0, 99.0, 98.0)):
            gov._clock_mhz = freq
            observe(gov, "F", 1.0, joules)
        gov._clock_mhz = 1410.0
        # Best (1140, 95 J) is only 5 % better than the current 100 J:
        # below the 10 % hysteresis bar, so no switch.
        assert gov.frequency_for("F") is None

    def test_large_improvement_beats_hysteresis(self):
        gov = make_governor(hysteresis=0.10)
        for freq, joules in zip(gov.candidates, (100.0, 50.0, 99.0, 98.0)):
            gov._clock_mhz = freq
            observe(gov, "F", 1.0, joules)
        gov._clock_mhz = 1410.0
        assert gov.frequency_for("F") == 1140.0

    def test_sub_dwell_function_never_switches(self):
        gov = make_governor(dwell_s=0.5)
        observe(gov, "Tiny", 0.01, 1.0)
        for _ in range(3):
            assert gov.frequency_for("Tiny") is None

    def test_warm_start_skips_exploration(self):
        from repro.tuning.policy import FunctionSweepPoint

        gov = make_governor("min-edp")
        points = [
            FunctionSweepPoint("F", freq, seconds, joules)
            for freq, seconds, joules in (
                (1410.0, 1.0, 400.0),
                (1140.0, 1.05, 290.0),
                (960.0, 1.6, 300.0),
                (700.0, 2.2, 310.0),
            )
        ]
        gov.warm_start(points)
        # No exploration pass: the first decision is already the exploit.
        assert gov.frequency_for("F") == 1140.0

    def test_switch_function_is_never_governed(self):
        from repro.tuning import SWITCH_FUNCTION

        gov = make_governor()
        observe(gov, SWITCH_FUNCTION, 0.01, 5.0)
        assert gov.frequency_for(SWITCH_FUNCTION) is None
        assert gov.switch_joules == pytest.approx(5.0)
        assert SWITCH_FUNCTION not in gov._stats


class TestPowerCap:
    def make_capped(self, cap=1000.0, **overrides):
        return make_governor("power-cap", power_cap_watts=cap, **overrides)

    def feed_step_cycle(self, gov, times=2):
        """Mark ``times`` completed step cycles (marker sightings)."""
        for _ in range(times):
            observe(gov, "Density", 1.0, 10.0)

    def test_starts_at_slowest_candidate(self):
        gov = self.make_capped()
        assert gov.default_mhz == 700.0
        assert gov.frequency_for("F") == 700.0

    def test_rolling_mean_exactly_at_cap_is_compliant(self):
        gov = self.make_capped(cap=1000.0)
        gov.on_tick(0, tick(0.0, 1000.0))
        assert gov.cap_violation_ticks == 0
        assert gov.max_rolling_watts == pytest.approx(1000.0)

    def test_excess_over_cap_is_counted_and_clamped(self):
        gov = self.make_capped(cap=1000.0)
        gov._ceiling_index = 1
        gov.on_tick(0, tick(0.0, 1100.0))
        assert gov.cap_violation_ticks == 1
        assert gov._ceiling_index == 2  # clamped one step down

    def test_safety_margin_clamps_before_the_cap(self):
        gov = self.make_capped(cap=1000.0, cap_safety=0.9)
        gov._ceiling_index = 1
        gov.on_tick(0, tick(0.0, 950.0))  # over 0.9 * cap, under cap
        assert gov.cap_violation_ticks == 0
        assert gov._ceiling_index == 2

    def test_no_raise_before_a_full_step_cycle(self):
        gov = self.make_capped(cap=5000.0, rolling_window_s=1.0)
        for i in range(30):
            gov.on_tick(0, tick(float(i), 100.0))
        # Plenty of settle time, trivial projection — but no region has
        # completed a step cycle, so the ceiling must not move.
        assert gov.frequency_for("F") == 700.0

    def test_raises_after_settle_and_step_cycle(self):
        gov = self.make_capped(cap=5000.0, rolling_window_s=1.0)
        self.feed_step_cycle(gov)
        for i in range(5):
            gov.on_tick(0, tick(float(i), 100.0))
        assert gov.frequency_for("F") == 960.0

    def test_projection_blocks_unaffordable_raise(self):
        # Quadratic prior from 700 -> 960 scales 600 W to ~1128 W,
        # above 0.97 * 1000: the raise must be refused.
        gov = self.make_capped(cap=1000.0, rolling_window_s=1.0)
        self.feed_step_cycle(gov)
        for i in range(5):
            gov.on_tick(0, tick(float(i), 600.0))
        assert gov.frequency_for("F") == 700.0

    def test_secant_refinement_uses_observed_curve(self):
        # The quadratic prior alone would block 960 -> 1140 at 800 W
        # (800 * (1140/960)^2 = 1128 > 970).  With the 700 MHz point
        # observed at 750 W the doubled secant projects
        # 800 + 2 * (50/260) * 180 = 869 W: affordable.
        gov = self.make_capped(cap=1000.0, rolling_window_s=1.0)
        gov._peak_at_clock[700.0] = 750.0
        gov._ceiling_index = 2  # at 960
        self.feed_step_cycle(gov)
        for i in range(5):
            gov.on_tick(0, tick(float(i), 800.0))
        assert gov.frequency_for("F") == 1140.0

    def test_worst_node_governs_the_cap(self):
        gov = self.make_capped(cap=1000.0)
        gov.on_tick(0, tick(0.0, 500.0))
        gov.on_tick(1, tick(0.0, 1200.0))
        assert gov.cap_violation_ticks == 1
        assert gov.max_rolling_watts == pytest.approx(1200.0)


class TestGovernedRuns:
    @pytest.fixture(scope="class")
    def governed(self):
        return run_scaled_experiment(
            MINIHPC,
            SUBSONIC_TURBULENCE,
            2,
            num_steps=12,
            particles_per_rank=SIDE**3,
            governor="min-edp",
            audit=True,
        )

    def test_report_populated(self, governed):
        report = governed.governor
        assert isinstance(report, GovernorReport)
        assert report.policy == "min-edp"
        assert report.decisions > 0
        assert report.switches > 0
        assert report.clock_table
        assert report.switch_joules > 0

    def test_switch_energy_isolated(self, governed):
        from repro.tuning import SWITCH_FUNCTION

        rec = governed.run.record(0, SWITCH_FUNCTION)
        assert rec.seconds > 0
        assert rec.joules["gpu"] > 0

    def test_audit_clean(self, governed):
        assert governed.audit is not None
        assert not governed.audit.findings

    def test_beats_nominal_static_edp(self, governed):
        static = run_scaled_experiment(
            MINIHPC,
            SUBSONIC_TURBULENCE,
            2,
            num_steps=12,
            particles_per_rank=SIDE**3,
        )
        assert run_edp(governed.run) < run_edp(static.run)

    def test_ungoverned_runs_unperturbed(self):
        kwargs = dict(
            num_steps=4, particles_per_rank=200.0**3
        )
        a = run_scaled_experiment(MINIHPC, SUBSONIC_TURBULENCE, 2, **kwargs)
        b = run_scaled_experiment(MINIHPC, SUBSONIC_TURBULENCE, 2, **kwargs)
        assert a.governor is None
        assert a.run.to_json() == b.run.to_json()
        functions = {r.function for r in a.run.records}
        assert "dvfs-switch" not in functions

    def test_power_cap_compliance(self):
        config = GovernorConfig.for_system(
            "power-cap", MINIHPC, power_cap_watts=500.0
        )
        result = run_scaled_experiment(
            MINIHPC,
            SUBSONIC_TURBULENCE,
            2,
            num_steps=12,
            particles_per_rank=SIDE**3,
            governor=config,
        )
        report = result.governor
        assert report.power_cap_watts == pytest.approx(500.0)
        assert report.max_rolling_watts <= 500.0
        assert report.cap_violation_ticks == 0

    def test_config_object_and_policy_name_agree(self):
        by_name = run_scaled_experiment(
            MINIHPC, SUBSONIC_TURBULENCE, 2, num_steps=4,
            particles_per_rank=200.0**3, governor="min-edp",
        )
        by_config = run_scaled_experiment(
            MINIHPC, SUBSONIC_TURBULENCE, 2, num_steps=4,
            particles_per_rank=200.0**3,
            governor=GovernorConfig.for_system("min-edp", MINIHPC),
        )
        assert by_name.run.to_json() == by_config.run.to_json()


class TestCampaignIdentity:
    def base_key(self, governor=None):
        return RunKey(
            system="miniHPC",
            test_case="Subsonic Turbulence",
            num_cards=2,
            gpu_freq_mhz=None,
            num_steps=4,
            particles_per_rank=200.0**3,
            seed=0,
            governor=governor,
        )

    def test_governor_changes_cache_identity(self):
        assert run_key_hash(self.base_key()) != run_key_hash(
            self.base_key("min-edp")
        )

    def test_governor_in_label(self):
        assert self.base_key("min-edp").label.endswith("/min-edp")
        assert "min-edp" not in self.base_key().label

    def test_unknown_governor_rejected(self):
        with pytest.raises(ConfigurationError):
            self.base_key("overclock")

    def test_spec_expands_governor_to_every_key(self):
        spec = CampaignSpec(
            name="gov",
            systems=("miniHPC",),
            test_cases=("Subsonic Turbulence",),
            card_counts=(2, 4),
            governor="min-energy",
        )
        keys = expand(spec)
        assert len(keys) == 2
        assert all(key.governor == "min-energy" for key in keys)
