#!/usr/bin/env python
"""Paper-scale instrumented run: the full measurement pipeline end to end.

Reproduces the paper's workflow on the simulated CSCS-A100 system:
submit a Slurm job, run PMT-instrumented SPH-EXA (Subsonic Turbulence,
150 M particles per GPU, 8 cards), gather the per-rank per-function
records, and print everything a user gets:

* the sacct view (what Slurm alone would tell you),
* the PMT device breakdown (Figure 2 view),
* the per-function GPU/CPU breakdown (Figure 3 view),
* the PMT-vs-Slurm validation point (Figure 1 view),

and writes the raw measurement file for post-hoc analysis.

Run:  python examples/paper_scale_energy_report.py
"""

from pathlib import Path

from repro.analysis.validation import validate_pmt_against_slurm
from repro.config import CSCS_A100, SUBSONIC_TURBULENCE
from repro.experiments.runner import run_scaled_experiment
from repro.instrumentation import device_report, function_report
from repro.slurm import sacct_report


def main() -> None:
    num_cards = 8
    num_steps = 50  # paper runs 100; halved to keep the example snappy

    print(
        f"Running {SUBSONIC_TURBULENCE.name} on {CSCS_A100.name}: "
        f"{num_cards} GPUs, {num_steps} steps, "
        f"{SUBSONIC_TURBULENCE.particles_per_gpu / 1e6:.0f} M particles/GPU"
    )
    result = run_scaled_experiment(
        CSCS_A100, SUBSONIC_TURBULENCE, num_cards, num_steps=num_steps
    )

    print("\n--- What Slurm alone reports (sacct) ---")
    print(sacct_report([result.accounting]))

    print("\n--- PMT device breakdown (Figure 2 view) ---")
    print(device_report(result.run))

    print("\n--- PMT per-function GPU breakdown (Figure 3 view) ---")
    print(function_report(result.run, "gpu"))

    print("\n--- PMT per-function CPU breakdown ---")
    print(function_report(result.run, "cpu"))

    point = validate_pmt_against_slurm(result.run, result.accounting, num_cards)
    print("\n--- Validation (Figure 1 view) ---")
    print(
        f"PMT total {point.pmt_joules / 1e6:.3f} MJ vs Slurm "
        f"{point.slurm_joules / 1e6:.3f} MJ  (PMT/Slurm = {point.ratio:.3f}; "
        f"the gap is the launch/init/teardown energy PMT never sees)"
    )

    out = Path("measurements_cscs_turbulence.json")
    result.run.write(out)
    print(f"\nRaw per-rank records written to {out}")


if __name__ == "__main__":
    main()
