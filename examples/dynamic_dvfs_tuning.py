#!/usr/bin/env python
"""Dynamic per-function DVFS: the paper's future work, end to end.

Uses the per-function measurements the PMT instrumentation gathers (the
Figure 5 data) to build a frequency policy and runs the simulation with
the GPU clock switched at function boundaries:

1. min-EDP, unconstrained — how much EDP the measurements buy;
2. min-energy under a 3 % slowdown budget — the Pareto trade-off the
   paper's conclusion points to: compute-bound kernels stay fast while
   memory-/communication-bound phases down-clock.

Run:  python examples/dynamic_dvfs_tuning.py
"""

from repro.config import MINIHPC, SUBSONIC_TURBULENCE
from repro.tuning import tune_per_function

FREQS = (1410.0, 1230.0, 1005.0)


def describe(title: str, report) -> None:
    dilation = report.dynamic_seconds / report.baseline_seconds
    print(f"\n--- {title} ---")
    print("per-function policy (MHz):")
    for fn, freq in sorted(report.policy.table.items()):
        print(f"  {fn:>22} -> {freq:.0f}")
    print(f"clock switches        : {report.switch_count}")
    print(f"time dilation         : {dilation:.3f}x")
    print(f"EDP vs 1410 MHz       : {report.edp_vs_baseline:.3f}")
    print(
        f"EDP vs best static    : {report.edp_vs_best_static:.3f} "
        f"(best static = {report.best_static_mhz:.0f} MHz)"
    )


def main() -> None:
    kwargs = dict(
        system=MINIHPC,
        test_case=SUBSONIC_TURBULENCE,
        num_cards=2,
        freqs_mhz=FREQS,
        num_steps=40,
        particles_per_rank=450.0**3,
    )
    print(
        "Sweeping the A100 clock on miniHPC, building per-function "
        "policies from the PMT measurements..."
    )
    describe("min-EDP, unconstrained", tune_per_function(**kwargs))
    describe(
        "min-energy, <=3% slowdown budget",
        tune_per_function(**kwargs, objective="energy", max_slowdown=1.03),
    )
    print(
        "\nReading: with a performance budget, per-function switching "
        "reaches operating points no whole-run frequency can (fast "
        "compute kernels, slow memory phases)."
    )


if __name__ == "__main__":
    main()
