"""Live-path tests: scripted LiveView frames, SSE watch, watch/serve CLI.

Everything that streams: the sparkline dashboard fed by scripted ticks,
the service's SSE live-watch endpoint over loopback, and the ``watch
--url`` / ``publish`` / ``serve`` CLI flows attached to a local service
(runs under the deterministic virtual clock)."""

import re
import signal
import subprocess
import sys
import threading

from repro.cli import main
from repro.service import (
    ServiceClient,
    ServiceThread,
    http_get_json,
    watch_sse,
)
from repro.timeseries import LiveView, TimeseriesCollector

#: The sparkline alphabet, lowest bar first (see analysis.ascii_plot).
BARS = "▁▂▃▄▅▆▇█"


def _ramp_columns(n=32, t0=0.0, lo=10.0, hi=100.0):
    t = [t0 + 0.5 * k for k in range(n)]
    watts = [lo + (hi - lo) * k / (n - 1) for k in range(n)]
    joules, total = [], 0.0
    for k in range(n):
        total = total + watts[k] * 0.5
        joules.append(total)
    return {"t": t, "watts": watts, "joules": joules}


class TestScriptedLiveView:
    def _collector(self, watts_of_k, n=24):
        collector = TimeseriesCollector()
        joules = 0.0
        for k in range(n):
            w = watts_of_k(k)
            joules = joules + w * 1.0
            collector.store.record(0, "node", float(k), w, joules)
        return collector

    def test_ramp_renders_monotone_sparkline(self):
        collector = self._collector(lambda k: 10.0 + 10.0 * k)
        frame = LiveView(collector, width=24).render()
        line = next(ln for ln in frame.splitlines() if "node0" in ln)
        spark = line.split("|")[1].strip()
        levels = [BARS.index(c) for c in spark]
        assert levels == sorted(levels), f"ramp must render monotone: {spark}"
        assert spark[0] == BARS[0] and spark[-1] == BARS[-1]

    def test_constant_power_renders_flat(self):
        collector = self._collector(lambda k: 150.0)
        frame = LiveView(collector, width=16).render()
        line = next(ln for ln in frame.splitlines() if "node0" in ln)
        spark = line.split("|")[1].strip()
        assert len(set(spark)) == 1, f"flat feed must render flat: {spark}"
        assert "150.0 W" in line

    def test_width_bounds_the_window(self):
        collector = self._collector(lambda k: float(k), n=100)
        frame = LiveView(collector, width=8).render()
        line = next(ln for ln in frame.splitlines() if "node0" in ln)
        assert len(line.split("|")[1]) == 8

    def test_header_counts_scripted_ticks(self):
        collector = self._collector(lambda k: 100.0, n=24)
        frame = LiveView(collector, width=8).render()
        assert "samples=24" in frame
        assert "channels=1" in frame


class TestSseWatch:
    def test_immediate_first_frame_on_empty_tenant(self):
        with ServiceThread() as handle:
            frames = list(
                watch_sse(
                    handle.host, handle.http_port, "empty",
                    max_frames=1, timeout_s=10.0,
                )
            )
        assert len(frames) == 1
        assert frames[0]["tenant"] == "empty"
        assert frames[0]["samples"] == 0
        assert "no samples" in frames[0]["frame"]

    def test_frames_follow_ingest(self):
        with ServiceThread() as handle:

            def feed():
                with ServiceClient(handle.host, handle.port, "sse") as c:
                    c.publish(0, {"node": _ramp_columns(32)})
                    c.sync()

            thread = threading.Thread(target=feed, daemon=True)
            frames = list(
                watch_sse(
                    handle.host, handle.http_port, "sse",
                    every=1, width=16, max_frames=2, timeout_s=10.0,
                    on_connect=thread.start,
                )
            )
            thread.join()
            ledger = http_get_json(handle.host, handle.http_port, "/tenants")
        assert len(frames) == 2
        # First frame is the immediate attach snapshot; the second one
        # reflects the applied batch.
        assert frames[1]["samples"] == 32
        assert "node0" in frames[1]["frame"]
        assert ledger["watch_frames_sent"].get("sse", 0) >= 1

    def test_every_throttles_frames(self):
        with ServiceThread() as handle:

            def feed():
                with ServiceClient(handle.host, handle.port, "thr") as c:
                    for b in range(4):
                        c.publish(0, {"node": _ramp_columns(8, t0=4.0 * b)})
                    c.sync()

            thread = threading.Thread(target=feed, daemon=True)
            frames = list(
                watch_sse(
                    handle.host, handle.http_port, "thr",
                    every=32, max_frames=2, timeout_s=10.0,
                    on_connect=thread.start,
                )
            )
            thread.join()
        # 32 samples between frames over a 32-sample feed: exactly one
        # post-attach frame.
        assert frames[1]["samples"] == 32

    def test_watcher_not_credited_by_other_tenants(self):
        # Regression: a watcher's `every` cadence counts only its own
        # tenant's ingest — tenant "other"'s 32 samples must not make a
        # watcher of tenant "mine" emit a frame.
        with ServiceThread() as handle:

            def feed():
                with ServiceClient(handle.host, handle.port, "other") as c:
                    for b in range(4):
                        c.publish(0, {"node": _ramp_columns(8, t0=4.0 * b)})
                    c.sync()
                with ServiceClient(handle.host, handle.port, "mine") as c:
                    c.publish(0, {"node": _ramp_columns(8)})
                    c.sync()

            thread = threading.Thread(target=feed, daemon=True)
            frames = list(
                watch_sse(
                    handle.host, handle.http_port, "mine",
                    every=8, max_frames=2, timeout_s=10.0,
                    on_connect=thread.start,
                )
            )
            thread.join()
        # The post-attach frame fires only once "mine" itself ingested
        # its 8 samples; under cross-tenant crediting it would fire on
        # "other"'s traffic with samples == 0.
        assert frames[1]["tenant"] == "mine"
        assert frames[1]["samples"] == 8


class TestWatchCli:
    def test_watch_url_streams_and_exits(self, capsys):
        with ServiceThread() as handle:

            def feed():
                main([
                    "publish",
                    "--url", f"{handle.host}:{handle.port}",
                    "--tenant", "live",
                    "--cards", "4",
                    "--steps", "4",
                ])

            thread = threading.Thread(target=feed, daemon=True)
            thread.start()
            rc = main([
                "watch",
                "--url", f"{handle.host}:{handle.http_port}",
                "--tenant", "live",
                "--frames", "2",
                "--every", "10",
            ])
            thread.join()
        out = capsys.readouterr().out
        assert rc == 0
        assert "[live]" in out
        assert "watch closed after 2 frames" in out
        assert "Service QC: ok" in out  # the publisher's ledger

    def test_watch_url_requires_tenant(self, capsys):
        rc = main(["watch", "--url", "127.0.0.1:1"])
        assert rc == 1
        assert "needs --tenant" in capsys.readouterr().err


class TestPublishCli:
    def test_publish_reports_clean_ledger(self, capsys):
        with ServiceThread() as handle:
            rc = main([
                "publish",
                "--url", f"{handle.host}:{handle.port}",
                "--tenant", "pub",
                "--cards", "4",
                "--steps", "4",
            ])
            snap = http_get_json(handle.host, handle.http_port, "/tenants")
        out = capsys.readouterr().out
        assert rc == 0
        assert "published to" in out
        assert "Service QC: ok" in out
        tenant = next(s for s in snap["tenants"] if s["tenant"] == "pub")
        assert tenant["samples_ingested"] > 0
        assert tenant["samples_shed"] == 0

    def test_publish_bad_endpoint_is_typed_error(self, capsys):
        rc = main(["publish", "--url", "nowhere", "--steps", "4"])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestServeCli:
    def test_serve_subprocess_roundtrip(self):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        try:
            banner = proc.stdout.readline()
            match = re.search(r"stream :(\d+), http :(\d+)", banner)
            assert match, banner
            with ServiceClient("127.0.0.1", int(match.group(1)), "t0") as c:
                c.publish(0, {"p": _ramp_columns(8)})
                ack = c.sync()
            assert ack["samples_ingested"] == 8
        finally:
            proc.send_signal(signal.SIGINT)
            out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0
        assert "Service QC: ok" in out
        assert "bytes<=cap" in out  # the final accounting summary table
