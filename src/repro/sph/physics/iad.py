"""Integral approach to derivatives (the ``IADVelocityDivCurl`` function).

Garcia-Senz et al. (2012), as used by SPH-EXA/SPHYNX: per particle, the
moment matrix ::

    tau_ab,i = sum_j (m_j / rho_j) (x_a,j - x_a,i)(x_b,j - x_b,i) W_ij(h_i)

is inverted to give the IAD correction matrix ``C_i = tau_i^{-1}``; the
corrected kernel-gradient estimate for pair (i, j) is then ::

    A_i,ij = C_i (x_j - x_i) W_ij(h_i)      (plays the role of grad_i W_ij)

This module also computes the velocity divergence and curl with the same
corrected gradients (they feed the Balsara viscosity switch), matching
SPH-EXA's fused ``IADVelocityDivCurl`` kernel.
"""

from __future__ import annotations

import numpy as np

from repro.sph.kernels.cubic_spline import CubicSplineKernel
from repro.sph.neighbors import PairList
from repro.sph.particles import ParticleSet


def iad_vectors(
    ps: ParticleSet, pairs: PairList, kernel=CubicSplineKernel
) -> tuple[np.ndarray, np.ndarray]:
    """The corrected gradient vectors ``A_i,ij`` and ``A_j,ij`` per pair.

    ``A_i`` uses particle i's matrix and smoothing length; ``A_j`` uses
    particle j's (both along ``x_j - x_i``).  Requires ``ps.c_iad``.
    """
    d = -pairs.dx  # x_j - x_i
    w_hi = kernel.value(pairs.r, ps.h[pairs.i])
    w_hj = kernel.value(pairs.r, ps.h[pairs.j])
    a_i = np.einsum("kab,kb->ka", ps.c_iad[pairs.i], d) * w_hi[:, None]
    a_j = np.einsum("kab,kb->ka", ps.c_iad[pairs.j], d) * w_hj[:, None]
    return a_i, a_j


def compute_iad_and_divcurl(
    ps: ParticleSet, pairs: PairList, kernel=CubicSplineKernel
) -> None:
    """Fill ``ps.c_iad``, ``ps.div_v`` and ``ps.curl_v``."""
    d = -pairs.dx  # x_j - x_i
    w = kernel.value(pairs.r, ps.h[pairs.i])
    vol = ps.mass[pairs.j] / ps.rho[pairs.j]
    weight = vol * w

    # Six unique entries of the symmetric tau matrix, accumulated per i.
    tau = np.zeros((ps.n, 3, 3), dtype=np.float64)
    for a in range(3):
        for b in range(a, 3):
            entry = np.bincount(
                pairs.i, weights=weight * d[:, a] * d[:, b], minlength=ps.n
            )
            tau[:, a, b] = entry
            tau[:, b, a] = entry

    # Regularize near-singular matrices (isolated particles, collinear
    # neighbour sets) before inversion.
    trace = np.trace(tau, axis1=1, axis2=2)
    scale = np.maximum(trace / 3.0, 1e-30)
    eye = np.eye(3)[None, :, :]
    det = np.linalg.det(tau)
    bad = np.abs(det) < (1e-10 * scale**3)
    tau[bad] += (1e-6 * scale[bad])[:, None, None] * eye
    ps.c_iad = np.linalg.inv(tau)

    # Velocity divergence and curl with corrected gradients.
    a_i = np.einsum("kab,kb->ka", ps.c_iad[pairs.i], d) * w[:, None]
    v_ji = ps.vel[pairs.j] - ps.vel[pairs.i]
    m_over_rho_i = ps.mass[pairs.j] / ps.rho[pairs.i]
    div_terms = m_over_rho_i * np.einsum("ka,ka->k", v_ji, a_i)
    ps.div_v = np.bincount(pairs.i, weights=div_terms, minlength=ps.n)
    curl_vec = np.cross(v_ji, a_i) * m_over_rho_i[:, None]
    curl = np.zeros((ps.n, 3))
    for a in range(3):
        curl[:, a] = np.bincount(pairs.i, weights=curl_vec[:, a], minlength=ps.n)
    ps.curl_v = np.linalg.norm(curl, axis=1)
