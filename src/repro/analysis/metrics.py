"""Energy-efficiency metrics beyond the EDP.

The DVFS literature the paper cites uses a family of figures of merit;
this module provides them over gathered measurements so users can rank
operating points by whichever trade-off they care about:

* **energy-to-solution** — total joules of the instrumented window;
* **EDP** (E*t) — the paper's metric (Section 3.2);
* **ED2P** (E*t^2) — weights performance harder; a down-clock that wins
  on EDP can lose on ED2P, which is exactly the compute-bound-kernel
  story of Figure 5;
* **average power** — for facility-level capping discussions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.aggregate import function_totals
from repro.errors import AnalysisError
from repro.instrumentation.records import RunMeasurements


@dataclass(frozen=True)
class EfficiencyMetrics:
    """Figures of merit of one instrumented run."""

    energy_joules: float
    seconds: float

    def __post_init__(self) -> None:
        if self.energy_joules < 0 or self.seconds <= 0:
            raise AnalysisError("metrics need positive time and energy >= 0")

    @property
    def edp(self) -> float:
        """Energy-delay product (E * t)."""
        return self.energy_joules * self.seconds

    @property
    def ed2p(self) -> float:
        """Energy-delay-squared product (E * t^2)."""
        return self.energy_joules * self.seconds**2

    @property
    def average_watts(self) -> float:
        """Mean power over the window."""
        return self.energy_joules / self.seconds


def run_metrics(
    run: RunMeasurements, counters: tuple[str, ...] = ("gpu", "cpu", "memory")
) -> EfficiencyMetrics:
    """Metrics from the PMT-measured device energies of a run."""
    total = 0.0
    for counter in counters:
        total += sum(function_totals(run, counter).values())
    return EfficiencyMetrics(energy_joules=total, seconds=run.app_seconds)


def rank_operating_points(
    metrics_by_point: dict[float, EfficiencyMetrics], objective: str = "edp"
) -> list[float]:
    """Operating points (e.g. frequencies) sorted best-first.

    ``objective`` is one of ``energy``, ``edp``, ``ed2p``, ``time``.
    """
    keys = {
        "energy": lambda m: m.energy_joules,
        "edp": lambda m: m.edp,
        "ed2p": lambda m: m.ed2p,
        "time": lambda m: m.seconds,
    }
    try:
        key = keys[objective]
    except KeyError:
        raise AnalysisError(
            f"unknown objective {objective!r}; pick from {sorted(keys)}"
        ) from None
    return sorted(metrics_by_point, key=lambda p: key(metrics_by_point[p]))


def pareto_front(
    metrics_by_point: dict[float, EfficiencyMetrics]
) -> list[float]:
    """Operating points not dominated in (time, energy).

    A point dominates another when it is at least as fast *and* at least
    as energy-frugal, and strictly better in one of the two — the
    Pareto-optimal trade-offs Section 3.2 alludes to.
    """
    points = list(metrics_by_point.items())
    front = []
    for p, m in points:
        dominated = any(
            (other.seconds <= m.seconds and other.energy_joules <= m.energy_joules)
            and (
                other.seconds < m.seconds or other.energy_joules < m.energy_joules
            )
            for q, other in points
            if q != p
        )
        if not dominated:
            front.append(p)
    return sorted(front)
