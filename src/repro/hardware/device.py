"""Base class for simulated devices.

A device couples a :class:`~repro.hardware.power_model.PowerModel`, a
:class:`~repro.hardware.dvfs.FrequencyDomain` and a
:class:`~repro.hardware.trace.PowerTrace` on a shared
:class:`~repro.hardware.clock.VirtualClock`.  The simulation driver sets the
device's *load* (compute / memory utilization) at phase boundaries; the
device translates load + frequency into watts and records the breakpoint in
its trace.  Sensors never see the load — only the resulting power.
"""

from __future__ import annotations

from repro.errors import HardwareError
from repro.hardware.clock import VirtualClock
from repro.hardware.dvfs import FrequencyDomain
from repro.hardware.power_model import PowerModel
from repro.hardware.trace import PowerTrace


class Device:
    """A simulated power-drawing device.

    Parameters
    ----------
    name:
        Unique human-readable identifier, e.g. ``"node0.gpu3"``.
    clock:
        The shared simulation clock.
    power_model:
        Analytic power model for this device.
    frequency_domain:
        DVFS state; pass a single-frequency domain for devices without DVFS.
    """

    def __init__(
        self,
        name: str,
        clock: VirtualClock,
        power_model: PowerModel,
        frequency_domain: FrequencyDomain,
    ) -> None:
        self.name = name
        self.clock = clock
        self.power_model = power_model
        self.frequency = frequency_domain
        self._compute_utilization = 0.0
        self._memory_utilization = 0.0
        self.trace = PowerTrace(initial_watts=self._current_watts())
        # Record the idle level at creation time so traces created after
        # t=0 still integrate correctly from 0 (power before creation is
        # the same idle level, which is the physically sensible default).
        self.trace.set_power(clock.now, self._current_watts())

    # -- state --------------------------------------------------------------

    @property
    def compute_utilization(self) -> float:
        """Current fraction of peak compute issue rate in use."""
        return self._compute_utilization

    @property
    def memory_utilization(self) -> float:
        """Current fraction of peak memory bandwidth in use."""
        return self._memory_utilization

    def _current_watts(self) -> float:
        return self.power_model.power(
            self.frequency.ratio,
            self._compute_utilization,
            self._memory_utilization,
        )

    # -- transitions --------------------------------------------------------

    def set_load(self, compute_utilization: float, memory_utilization: float) -> None:
        """Change the device load at the current simulated time."""
        if not 0.0 <= compute_utilization <= 1.0:
            raise HardwareError(
                f"compute utilization {compute_utilization!r} outside [0, 1]"
            )
        if not 0.0 <= memory_utilization <= 1.0:
            raise HardwareError(
                f"memory utilization {memory_utilization!r} outside [0, 1]"
            )
        self._compute_utilization = compute_utilization
        self._memory_utilization = memory_utilization
        self.trace.set_power(self.clock.now, self._current_watts())

    def set_idle(self) -> None:
        """Drop to idle load at the current simulated time."""
        self.set_load(0.0, 0.0)

    def set_frequency(self, freq_hz: float, privileged: bool = False) -> None:
        """Change the device frequency; power is re-evaluated immediately."""
        self.frequency.set_frequency(freq_hz, privileged=privileged)
        self.trace.set_power(self.clock.now, self._current_watts())

    # -- observation (ground truth) ------------------------------------------

    def power_now(self) -> float:
        """Ground-truth instantaneous power right now, in watts."""
        return self.trace.power_at(self.clock.now)

    def energy_between(self, t0: float, t1: float) -> float:
        """Ground-truth energy in joules over ``[t0, t1]``."""
        return self.trace.energy_between(t0, t1)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"P={self.power_now():.1f} W)"
        )
