"""Tests for turbulence driving and the initial-condition generators."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sph.box import Box
from repro.sph.driving import TurbulenceDriver
from repro.sph.initial_conditions import make_evrard, make_turbulence


class TestTurbulenceDriver:
    @pytest.fixture
    def box(self):
        return Box(length=1.0, periodic=True)

    def test_deterministic_given_seed(self, box):
        a = TurbulenceDriver(box, seed=5)
        b = TurbulenceDriver(box, seed=5)
        for _ in range(3):
            a.step(0.01)
            b.step(0.01)
        pos = np.random.default_rng(0).uniform(-0.5, 0.5, size=(50, 3))
        assert np.allclose(a.acceleration(pos), b.acceleration(pos))

    def test_different_seeds_differ(self, box):
        a = TurbulenceDriver(box, seed=5)
        b = TurbulenceDriver(box, seed=6)
        a.step(0.01)
        b.step(0.01)
        pos = np.random.default_rng(0).uniform(-0.5, 0.5, size=(50, 3))
        assert not np.allclose(a.acceleration(pos), b.acceleration(pos))

    def test_solenoidal_state(self, box):
        """OU amplitudes stay perpendicular to their wavevectors."""
        driver = TurbulenceDriver(box, seed=1)
        driver.step(0.05)
        k_hat = driver.k_vec / np.linalg.norm(driver.k_vec, axis=1, keepdims=True)
        parallel = np.einsum("ma,ma->m", driver.state, k_hat.astype(complex))
        assert np.abs(parallel).max() < 1e-12

    def test_rms_amplitude_normalized(self, box):
        driver = TurbulenceDriver(box, amplitude=2.5, seed=2)
        driver.step(0.05)
        pos = np.random.default_rng(1).uniform(-0.5, 0.5, size=(4000, 3))
        acc = driver.acceleration(pos)
        rms = np.sqrt(np.mean(np.sum(acc**2, axis=1)))
        assert rms == pytest.approx(2.5, rel=0.05)

    def test_field_is_periodic(self, box):
        driver = TurbulenceDriver(box, seed=3)
        driver.step(0.05)
        pos = np.array([[-0.5, 0.1, 0.2]])
        shifted = pos + np.array([[1.0, 0.0, 0.0]])
        assert np.allclose(driver.acceleration(pos), driver.acceleration(shifted))

    def test_driving_shell_bounds(self, box):
        driver = TurbulenceDriver(box, k_min=2, k_max=3, seed=4)
        norms = np.linalg.norm(driver.k_int, axis=1)
        assert np.all(norms >= 2.0 - 1e-12)
        assert np.all(norms <= 3.0 + 1e-12)

    def test_requires_periodic_box(self):
        with pytest.raises(SimulationError):
            TurbulenceDriver(Box(length=1.0, periodic=False))

    def test_invalid_parameters(self, box):
        with pytest.raises(SimulationError):
            TurbulenceDriver(box, amplitude=0.0)
        with pytest.raises(SimulationError):
            TurbulenceDriver(box, k_min=3, k_max=2)
        driver = TurbulenceDriver(box)
        with pytest.raises(SimulationError):
            driver.step(0.0)


class TestTurbulenceIC:
    def test_particle_count(self):
        ps, box = make_turbulence(n_side=6)
        assert ps.n == 216
        assert box.periodic

    def test_total_mass_matches_density(self):
        ps, box = make_turbulence(n_side=6, rho0=3.0, box_length=2.0)
        assert ps.total_mass() == pytest.approx(3.0 * 8.0)

    def test_positions_inside_box(self):
        ps, box = make_turbulence(n_side=6)
        assert box.contains(ps.pos).all()

    def test_at_rest(self):
        ps, _ = make_turbulence(n_side=6)
        assert np.all(ps.vel == 0)

    def test_sound_speed_via_eos(self):
        from repro.sph.physics import ideal_gas_eos

        ps, _ = make_turbulence(n_side=6, sound_speed=2.0)
        ideal_gas_eos(ps)
        assert np.allclose(ps.c, 2.0)

    def test_deterministic(self):
        a, _ = make_turbulence(n_side=5, seed=9)
        b, _ = make_turbulence(n_side=5, seed=9)
        assert np.allclose(a.pos, b.pos)

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            make_turbulence(n_side=1)
        with pytest.raises(SimulationError):
            make_turbulence(n_side=4, rho0=-1.0)


class TestEvrardIC:
    def test_total_mass(self):
        ps, _ = make_evrard(n=2000, total_mass=1.0)
        assert ps.total_mass() == pytest.approx(1.0)

    def test_all_inside_sphere(self):
        ps, _ = make_evrard(n=2000, radius=1.0)
        r = np.linalg.norm(ps.pos, axis=1)
        assert r.max() <= 1.0 + 1e-12

    def test_density_profile_one_over_r(self):
        """Enclosed mass grows like r^2 (rho ~ 1/r)."""
        ps, _ = make_evrard(n=20000, seed=3)
        r = np.sort(np.linalg.norm(ps.pos, axis=1))
        m_enclosed = np.arange(1, len(r) + 1) / len(r)
        for frac in (0.25, 0.5, 0.75):
            idx = int(frac * len(r))
            assert m_enclosed[idx] == pytest.approx(r[idx] ** 2, rel=0.05)

    def test_cold_start(self):
        ps, _ = make_evrard(n=500, u0=0.05)
        assert np.allclose(ps.u, 0.05)
        assert np.all(ps.vel == 0)

    def test_open_box(self):
        _, box = make_evrard(n=500)
        assert not box.periodic
        assert box.length >= 4.0

    def test_smoothing_length_grows_outward(self):
        """rho ~ 1/r means h ~ r^(1/3): outer particles have larger h."""
        ps, _ = make_evrard(n=5000, seed=4)
        r = np.linalg.norm(ps.pos, axis=1)
        inner = ps.h[r < 0.3].mean()
        outer = ps.h[r > 0.7].mean()
        assert outer > inner

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            make_evrard(n=4)
        with pytest.raises(SimulationError):
            make_evrard(n=100, u0=-0.1)
