"""NVML PMT backend: one NVIDIA GPU card.

Uses the card's total-energy counter (millijoules, Volta+) as the energy
source, so region energy is a counter difference rather than a power
integration — the accurate path the real backend prefers when available.
"""

from __future__ import annotations

from repro.errors import BackendError
from repro.pmt.base import PMT
from repro.pmt.registry import register_backend
from repro.pmt.state import Measurement, State
from repro.sensors.telemetry import NodeTelemetry


@register_backend("nvml")
class NvmlPMT(PMT):
    """PMT over NVML for one GPU.

    Parameters
    ----------
    telemetry:
        The node's telemetry (must expose NVML devices).
    device_index:
        Which GPU card to measure (the rank's card).
    """

    def __init__(self, telemetry: NodeTelemetry, device_index: int = 0) -> None:
        if not telemetry.nvml:
            raise BackendError(
                f"node {telemetry.node.name} exposes no NVML devices"
            )
        if not 0 <= device_index < len(telemetry.nvml):
            raise BackendError(
                f"NVML device index {device_index} out of range "
                f"(node has {len(telemetry.nvml)} GPUs)"
            )
        super().__init__(telemetry.node.clock)
        self._device = telemetry.nvml[device_index]
        self._name = f"gpu{device_index}"

    def measurement_names(self) -> tuple[str, ...]:
        return (self._name,)

    def read_state(self) -> State:
        t = self.clock.now
        joules = self._device.total_energy_consumption_mj(t) / 1e3
        watts = self._device.power_usage_mw(t) / 1e3
        return State(
            timestamp=t,
            measurements=(Measurement(name=self._name, joules=joules, watts=watts),),
        )
