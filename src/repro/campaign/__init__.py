"""Sharded campaign engine with a content-addressed result cache.

The campaign layer turns the paper's headline experiments — frequency ×
test-case × system sweeps of independent instrumented runs — into one
shared execution substrate:

* :mod:`~repro.campaign.spec` — declarative :class:`CampaignSpec` axes,
  expanded to fully-resolved :class:`RunKey` points;
* :mod:`~repro.campaign.keys` — run identity and the content-addressed
  cache hash (config content + code version);
* :mod:`~repro.campaign.store` — atomic on-disk result cache, so
  re-running a campaign only executes misses and a killed sweep resumes;
* :mod:`~repro.campaign.executor` — serial, ``multiprocessing``-sharded,
  or federated execution with deterministic per-run seeding;
* :mod:`~repro.campaign.queue` — the coordinator-free lease queue:
  any number of workers on any hosts drain one spec against one shared
  store, with heartbeat leases, failure records, and cache GC;
* :mod:`~repro.campaign.merge` — order-independent merges back into the
  exact structures the serial experiment functions return;
* :mod:`~repro.campaign.report` — execution stats and per-shard
  telemetry health.
"""

from repro.campaign.executor import (
    CampaignStats,
    ProgressFn,
    execute,
    execute_key,
)
from repro.campaign.keys import (
    CACHE_SCHEMA_VERSION,
    CODE_VERSION,
    RunKey,
    canonical_payload,
    run_key_hash,
    sort_key,
)
from repro.campaign.merge import (
    merge_figure1,
    merge_figure4,
    merge_figure5,
    merge_weak_scaling,
)
from repro.campaign.queue import (
    FailureLog,
    FederationConfig,
    Journal,
    LeaseQueue,
    RunFailure,
    WorkerProfile,
    WorkerStats,
    drain,
    gc_sweep,
    placement_order,
)
from repro.campaign.report import campaign_summary
from repro.campaign.spec import CampaignSpec, expand
from repro.campaign.store import (
    AccountingSummary,
    CampaignResult,
    ResultStore,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CODE_VERSION",
    "AccountingSummary",
    "CampaignResult",
    "CampaignSpec",
    "CampaignStats",
    "FailureLog",
    "FederationConfig",
    "Journal",
    "LeaseQueue",
    "ProgressFn",
    "ResultStore",
    "RunFailure",
    "RunKey",
    "WorkerProfile",
    "WorkerStats",
    "campaign_summary",
    "canonical_payload",
    "drain",
    "execute",
    "execute_key",
    "expand",
    "gc_sweep",
    "merge_figure1",
    "merge_figure4",
    "merge_figure5",
    "merge_weak_scaling",
    "placement_order",
    "run_key_hash",
    "sort_key",
]
