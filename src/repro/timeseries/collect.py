"""Streaming tap between the PMT samplers and the sample store.

A :class:`TimeseriesCollector` subscribes to the structured per-tick
callback of one :class:`~repro.pmt.sampler.PmtSampler` per node and
streams every named measurement of every tick into a
:class:`~repro.timeseries.store.SampleStore` channel, preserving the
measurement's quality tag (so interpolated/extrapolated/held reads from
the resilient layer stay visible in the timeline).

The collector is purely observational: it registers listeners on samplers
that own their *own* meter instances, never touches the profiler's
meters, and therefore cannot perturb measured per-region energy — a run
with the collector attached reports bit-identical energies to one
without.
"""

from __future__ import annotations

from typing import Callable

from repro.pmt.sampler import PmtSampler, SampleTick
from repro.timeseries.spans import SpanRecorder
from repro.timeseries.store import SampleStore


class TimeseriesCollector:
    """Retains the full telemetry timeline of one run.

    Parameters
    ----------
    store:
        The tiered sample store (created with defaults when omitted).
    spans:
        The region-span recorder (created when omitted); attach it to the
        profiler to correlate samples with function regions.
    """

    def __init__(
        self,
        store: SampleStore | None = None,
        spans: SpanRecorder | None = None,
    ) -> None:
        self.store = store if store is not None else SampleStore()
        self.spans = spans if spans is not None else SpanRecorder()
        #: Optional hook fired after each tick is stored — the live view
        #: uses it to re-render without polling.
        self.on_sample: Callable[[int, SampleTick], None] | None = None
        self._attached = 0

    @property
    def num_attached(self) -> int:
        """How many samplers feed this collector."""
        return self._attached

    def attach(self, node_index: int, sampler: PmtSampler) -> None:
        """Subscribe to one node's sampler ticks."""
        sampler.add_listener(
            lambda tick, node=int(node_index): self._on_tick(node, tick)
        )
        self._attached += 1

    def _on_tick(self, node_index: int, tick: SampleTick) -> None:
        for m in tick.state.measurements:
            self.store.record(
                node_index,
                m.name,
                tick.timestamp,
                m.watts,
                m.joules,
                m.quality,
            )
        if self.on_sample is not None:
            self.on_sample(node_index, tick)

    # -- summaries ----------------------------------------------------------

    def node_power_channel(self, node_index: int) -> tuple[int, str] | None:
        """The best whole-node power channel of one node.

        Prefers the composite/cray aggregate (``total``/``node``), falling
        back to the node's first channel in sorted order.
        """
        names = [name for node, name in self.store.channels() if node == node_index]
        if not names:
            return None
        for preferred in ("total", "node"):
            if preferred in names:
                return (node_index, preferred)
        return (node_index, names[0])

    def nodes(self) -> list[int]:
        """Node indices with at least one channel, sorted."""
        return sorted({node for node, _ in self.store.channels()})

    def summary(self) -> dict[str, float | int]:
        """Counts for reports and smoke benchmarks."""
        return {
            "channels": len(self.store),
            "samples": self.store.num_samples,
            "spans": len(self.spans),
            "store_bytes": self.store.nbytes,
        }
