"""Final coverage batch: error hierarchy, CLI plotting paths, sacct
multi-job reports, sampler dumps with counter baselines, engine idling."""

import pytest

import repro
from repro import errors
from repro.cli import main
from repro.config import CSCS_A100, LUMI_G
from repro.hardware import Cluster, VirtualClock
from repro.mpi import RankPlacement, RankWork, SpmdEngine
from repro.pmt import PmtSampler
import repro.pmt as pmt
from repro.sensors import NodeTelemetry
from repro.slurm import JobAccounting, sacct_report


class TestPackageMeta:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_error_hierarchy_rooted(self):
        for name in (
            "ClockError", "HardwareError", "DvfsError", "SensorError",
            "BackendError", "MeasurementError", "SchedulerError",
            "CommunicatorError", "SimulationError", "ConfigurationError",
            "AnalysisError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_dvfs_error_is_hardware_error(self):
        assert issubclass(errors.DvfsError, errors.HardwareError)


class TestCliPlots:
    def test_fig2_plot_bars(self, capsys):
        code = main(["fig2", "--cards", "8", "--steps", "2", "--plot"])
        assert code == 0
        out = capsys.readouterr().out
        assert "#" in out  # bar glyphs
        assert "LUMI-Turb" in out

    def test_fig1_plot_chart(self, capsys):
        code = main(
            [
                "fig1", "--systems", "CSCS-A100", "--cards", "8", "16",
                "--steps", "2", "--plot",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "energy [MJ] vs GPU cards" in out

    def test_fig5_plot_chart(self, capsys):
        code = main(
            ["fig5", "--freqs", "1410", "1005", "--steps", "3", "--plot"]
        )
        assert code == 0
        assert "normalized EDP vs MHz" in capsys.readouterr().out


class TestSacctMultiJob:
    def make(self, job_id, energy):
        return JobAccounting(
            job_id=job_id,
            name=f"job-{job_id}",
            num_nodes=1,
            num_ranks=4,
            submit_time=0.0,
            start_time=0.0,
            app_start_time=10.0,
            app_end_time=110.0,
            end_time=115.0,
            consumed_energy_joules=energy,
        )

    def test_multiple_rows(self):
        report = sacct_report([self.make(1, 1.5e6), self.make(2, 2.5e9)])
        assert "job-1" in report and "job-2" in report
        assert "1.50M" in report
        assert "2.50G" in report

    def test_empty_report_has_header(self):
        report = sacct_report([])
        assert "ConsumedEnergy" in report


class TestSamplerWithBaselines:
    def test_dump_joules_monotone_from_base(self):
        clock = VirtualClock()
        cluster = Cluster("c", clock, LUMI_G.node_spec, 1, LUMI_G.network)
        telemetry = NodeTelemetry(cluster.nodes[0], LUMI_G, clock, seed=9)
        meter = pmt.create("cray", telemetry=telemetry)
        sampler = PmtSampler(meter, interval_s=1.0)
        sampler.start()
        clock.advance(5.0)
        sampler.stop()
        joules = [row.joules for row in sampler.rows]
        assert joules[0] > 0  # counters count since boot
        assert all(b >= a for a, b in zip(joules, joules[1:]))
        # Differences reflect the idle node power.
        delta = joules[-1] - joules[0]
        assert delta == pytest.approx(cluster.nodes[0].idle_power() * 5.0, rel=0.05)


class TestEngineIdle:
    def test_idle_phase_draws_idle_power_everywhere(self):
        clock = VirtualClock()
        cluster = Cluster("c", clock, CSCS_A100.node_spec, 2, CSCS_A100.network)
        engine = SpmdEngine(RankPlacement(cluster))
        engine.run_phase(
            [RankWork(duration=3.0, gpu_compute=1.0, gpu_memory=1.0)] * 8
        )
        engine.run_idle(7.0)
        for node in cluster.nodes:
            assert node.power_at(9.9) == pytest.approx(node.idle_power())

    def test_negative_idle_rejected(self):
        clock = VirtualClock()
        cluster = Cluster("c", clock, CSCS_A100.node_spec, 1, CSCS_A100.network)
        engine = SpmdEngine(RankPlacement(cluster))
        with pytest.raises(errors.SimulationError):
            engine.run_idle(-1.0)
