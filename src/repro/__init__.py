"""repro — application-level energy measurement for large-scale simulations.

A complete Python reproduction of Simsek, Piccinali & Ciorba,
"Accurate Measurement of Application-level Energy Consumption for
Energy-Aware Large-Scale Simulations" (SC-W 2023): the PMT power
measurement toolkit, an SPH-EXA-style simulation framework (with a real
small-N solver), and the simulated CPU+GPU cluster substrate (hardware
power models, pm_counters/NVML/RAPL/IPMI sensors, Slurm accounting, MPI
runtime) the paper's experiments need.

Subpackages
-----------
``repro.hardware``
    Virtual clock, power traces, device/node/cluster models, DVFS.
``repro.sensors``
    Imperfect telemetry (cadence, quantization, wraparound, per-card
    attribution) over the ground-truth traces; fault injection.
``repro.pmt``
    The PMT-compatible measurement API with cray/nvml/rapl/rocm/
    composite/dummy backends and a background sampler.
``repro.mpi`` / ``repro.slurm``
    Rank placement, communication costs, the SPMD phase engine; job
    lifecycle with AcctGatherEnergy accounting and sacct reports.
``repro.sph``
    The SPH framework: real solver (kernels, IAD, artificial viscosity,
    Barnes-Hut gravity, turbulence driving, cornerstone octree domain),
    four validated test cases, and the roofline performance model for
    paper-scale runs.
``repro.instrumentation`` / ``repro.analysis`` / ``repro.experiments``
    Hooks-to-PMT glue and per-rank records; attribution, breakdowns, EDP,
    validation, comparisons, profiles; one runner per paper table/figure.
``repro.tuning``
    Dynamic per-function DVFS (the paper's future work).

See README.md for a quickstart and ``python -m repro --help`` for the CLI.
"""

__version__ = "1.0.0"
