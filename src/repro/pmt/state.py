"""PMT measurement state.

A :class:`State` is one atomic ``read()`` of a PMT backend: a timestamp and
one or more named ``(joules, watts)`` measurements.  The first measurement
is the backend's *primary* (aggregate) counter — the one the convenience
arithmetic in :class:`repro.pmt.base.PMT` operates on; additional entries
carry per-device detail (the Cray backend reports node, cpu, memory and
per-card accelerator counters in a single state).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MeasurementError


#: Data-quality grades a measurement can carry (see ``Measurement.quality``).
#:
#: * ``ok``           — read straight off the sensor;
#: * ``rejected``     — the power register failed plausibility bounds and
#:   was substituted (energy untouched);
#: * ``extrapolated`` — a stuck accumulator was detected; energy is
#:   extrapolated from the freeze point at the last good power;
#: * ``interpolated`` — the read failed entirely; the whole measurement is
#:   a hold-last-good estimate across the gap;
#: * ``degraded``     — a composite child failed; values are its last known
#:   state and are excluded from the composite's primary sum;
#: * ``suspect``      — the value may silently undercount (e.g. a RAPL
#:   interval long enough to span more than one counter wraparound).
MEASUREMENT_QUALITIES = (
    "ok",
    "rejected",
    "extrapolated",
    "interpolated",
    "degraded",
    "suspect",
)


@dataclass(frozen=True)
class Measurement:
    """One named counter sample within a state."""

    name: str
    joules: float
    watts: float
    #: Data-quality grade (one of :data:`MEASUREMENT_QUALITIES`).
    quality: str = "ok"


@dataclass(frozen=True)
class State:
    """One atomic PMT read."""

    timestamp: float
    measurements: tuple[Measurement, ...]

    def __post_init__(self) -> None:
        if not self.measurements:
            raise MeasurementError("a PMT state needs at least one measurement")
        names = [m.name for m in self.measurements]
        if len(set(names)) != len(names):
            raise MeasurementError(f"duplicate measurement names in state: {names}")

    @property
    def primary(self) -> Measurement:
        """The backend's aggregate measurement."""
        return self.measurements[0]

    @property
    def joules(self) -> float:
        """Aggregate cumulative energy at this state."""
        return self.primary.joules

    @property
    def watts(self) -> float:
        """Aggregate instantaneous power at this state."""
        return self.primary.watts

    def names(self) -> tuple[str, ...]:
        """All measurement names, primary first."""
        return tuple(m.name for m in self.measurements)

    def degraded_names(self) -> tuple[str, ...]:
        """Names of measurements that are not plain sensor reads."""
        return tuple(m.name for m in self.measurements if m.quality != "ok")

    def measurement(self, name: str) -> Measurement:
        """Look a measurement up by name."""
        for m in self.measurements:
            if m.name == name:
                return m
        raise MeasurementError(
            f"no measurement named {name!r}; available: {self.names()}"
        )

    def joules_of(self, name: str) -> float:
        """Cumulative energy of the named counter."""
        return self.measurement(name).joules

    def watts_of(self, name: str) -> float:
        """Instantaneous power of the named counter."""
        return self.measurement(name).watts
