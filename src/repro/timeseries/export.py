"""Tool-agnostic exporters for retained telemetry timelines.

Three formats, chosen for what energy practitioners actually load:

* **Chrome trace** (``chrome://tracing`` / Perfetto) — the Trace Event
  Format JSON: one counter track per sensor channel (``ph: "C"``), one
  complete duration event per function-region span (``ph: "X"``), plus
  process/thread metadata so nodes and ranks get readable labels;
* **Prometheus text exposition** — latest power gauge, cumulative energy
  counter and sample/degraded-sample counters per channel, ready for a
  ``node_exporter`` textfile collector or a pushgateway;
* **CSV / JSONL dumps** — every retained point of every tier, for pandas
  and ad-hoc scripts.

All exports are deterministic: channels are sorted by ``(node, name)``,
span events by ``(start, name, rank)``, and JSON keys are sorted — two
runs with the same seed produce byte-identical files.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.timeseries.spans import SpanRecorder
from repro.timeseries.store import SampleStore, quality_name

#: Seconds -> Trace Event Format microseconds.
_US = 1e6


# -- Chrome trace -----------------------------------------------------------


def chrome_trace_events(
    store: SampleStore,
    spans: SpanRecorder | None = None,
    node_names: dict[int, str] | None = None,
) -> list[dict]:
    """The ``traceEvents`` list of the Trace Event Format export."""
    events: list[dict] = []

    nodes = sorted({node for node, _ in store.channels()})
    if spans is not None:
        span_nodes = {s.node_index for s in spans.spans if s.node_index >= 0}
        nodes = sorted(set(nodes) | span_nodes)
    for node in nodes:
        label = (node_names or {}).get(node, f"node{node}")
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": node,
                "tid": 0,
                "ts": 0,
                "args": {"name": label},
            }
        )

    # Counter tracks: one per channel, samples in time order (ties broken
    # by the sorted channel iteration).
    for node, name in store.channels():
        series = store.channel(node, name)
        pts = series.points()
        for t, w, j in zip(pts["t"], pts["watts"], pts["joules"]):
            events.append(
                {
                    "ph": "C",
                    "name": f"{name} [W]",
                    "pid": node,
                    "tid": 0,
                    "ts": float(t) * _US,
                    "args": {"watts": float(w)},
                }
            )

    if spans is not None:
        ranks = sorted({s.rank for s in spans.spans})
        rank_nodes = {s.rank: s.node_index for s in spans.spans}
        for rank in ranks:
            node = rank_nodes.get(rank, -1)
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": node if node >= 0 else 0,
                    "tid": rank,
                    "ts": 0,
                    "args": {"name": f"rank{rank}"},
                }
            )
        for span in spans.events_sorted():
            events.append(
                {
                    "ph": "X",
                    "name": span.function,
                    "cat": "region",
                    "pid": span.node_index if span.node_index >= 0 else 0,
                    "tid": span.rank,
                    "ts": span.t0 * _US,
                    "dur": span.seconds * _US,
                    "args": {},
                }
            )
        for mark in spans.instants:
            events.append(
                {
                    "ph": "i",
                    "s": "g",
                    "name": mark.name,
                    "pid": 0,
                    "tid": 0,
                    "ts": mark.t * _US,
                    "args": {},
                }
            )
    # Canonical order: stable sort over the fields every event carries.
    events.sort(key=lambda e: (e["ts"], e["ph"], e["pid"], e["tid"], e["name"]))
    return events


def chrome_trace(
    store: SampleStore,
    spans: SpanRecorder | None = None,
    node_names: dict[int, str] | None = None,
    metadata: dict | None = None,
) -> dict:
    """The full Trace Event Format document (JSON-object flavour)."""
    doc = {
        "traceEvents": chrome_trace_events(store, spans, node_names),
        "displayTimeUnit": "ms",
    }
    if metadata:
        doc["otherData"] = {k: metadata[k] for k in sorted(metadata)}
    return doc


def write_chrome_trace(
    path: str | Path,
    store: SampleStore,
    spans: SpanRecorder | None = None,
    node_names: dict[int, str] | None = None,
    metadata: dict | None = None,
) -> Path:
    """Write the Chrome-trace JSON; returns the path."""
    path = Path(path)
    doc = chrome_trace(store, spans, node_names, metadata)
    path.write_text(json.dumps(doc, sort_keys=True, separators=(",", ":")))
    return path


# -- Prometheus text exposition ---------------------------------------------


def escape_label_value(value: str) -> str:
    """Escape one label value per the Prometheus exposition format.

    Backslash, double-quote and newline are the three characters the text
    format requires escaping inside quoted label values; anything else
    passes through verbatim (a hostile channel name must never corrupt
    the scrape output or smuggle in extra samples).
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """Escape a ``# HELP`` docstring (backslash and newline only)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _label_str(labels: dict[str, str]) -> str:
    inner = ",".join(
        f'{k}="{escape_label_value(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


#: The exposed metric families: suffix -> (type, help text).
_PROM_FAMILIES = {
    "power_watts": ("gauge", "Latest sampled power per sensor channel."),
    "energy_joules_total": ("counter", "Cumulative energy counter per channel."),
    "samples_total": ("counter", "Samples ingested per channel."),
    "degraded_points": ("gauge", "Retained points with a non-ok quality tag."),
}


def _store_samples(
    store: SampleStore, extra_labels: dict[str, str]
) -> dict[str, list[str]]:
    """``family suffix -> sample lines`` for one store (labels pre-applied)."""
    out: dict[str, list[str]] = {suffix: [] for suffix in _PROM_FAMILIES}
    for node, name in store.channels():
        series = store.channel(node, name)
        _t, watts, joules, _quality = series.latest
        labels = _label_str(
            {**extra_labels, "node": str(node), "channel": name}
        )
        out["power_watts"].append(f"{labels} {watts:.6g}")
        out["energy_joules_total"].append(f"{labels} {joules:.6g}")
        out["samples_total"].append(f"{labels} {series.total_appended}")
        out["degraded_points"].append(f"{labels} {series.degraded_points()}")
    return out


def _render_families(
    per_store: list[dict[str, list[str]]], prefix: str
) -> str:
    lines: list[str] = []
    for suffix, (kind, help_text) in _PROM_FAMILIES.items():
        metric = f"{prefix}_{suffix}"
        lines.append(f"# HELP {metric} {_escape_help(help_text)}")
        lines.append(f"# TYPE {metric} {kind}")
        for samples in per_store:
            lines.extend(f"{metric}{rest}" for rest in samples[suffix])
    return "\n".join(lines) + "\n"


def prometheus_text(
    store: SampleStore,
    prefix: str = "repro",
    extra_labels: dict[str, str] | None = None,
) -> str:
    """Render the store's current state in Prometheus text format.

    Exposes, per ``(node, channel)``: the newest power reading as a gauge,
    the cumulative energy counter, total samples ingested, and how many
    retained points carry a non-``ok`` quality tag.  ``extra_labels`` are
    added to every sample (the telemetry service scrapes with a
    ``tenant`` label); every ``# HELP``/``# TYPE`` header appears exactly
    once per metric family and label values are escaped per the
    exposition format.
    """
    return _render_families([_store_samples(store, extra_labels or {})], prefix)


def prometheus_text_multi(
    stores: dict[str, SampleStore], prefix: str = "repro"
) -> str:
    """One exposition document over many tenant stores.

    ``stores`` maps a tenant name to its store; samples carry a
    ``tenant`` label and each metric family keeps a single
    ``# HELP``/``# TYPE`` header (repeating headers per tenant would be
    an invalid exposition).  Tenants render in sorted order.
    """
    per_store = [
        _store_samples(stores[tenant], {"tenant": tenant})
        for tenant in sorted(stores)
    ]
    return _render_families(per_store, prefix)


def write_prometheus(
    path: str | Path, store: SampleStore, prefix: str = "repro"
) -> Path:
    """Write the Prometheus exposition file; returns the path."""
    path = Path(path)
    path.write_text(prometheus_text(store, prefix))
    return path


# -- flat dumps -------------------------------------------------------------

_DUMP_HEADER = ("node", "channel", "tier", "time_s", "watts", "joules", "quality")


def _dump_rows(store: SampleStore):
    from repro.timeseries.store import TIERS

    for node, name in store.channels():
        pts = store.channel(node, name).points()
        for t, w, j, q, tier in zip(
            pts["t"], pts["watts"], pts["joules"], pts["quality"], pts["tier"]
        ):
            yield (
                node,
                name,
                TIERS[int(tier)],
                float(t),
                float(w),
                float(j),
                quality_name(int(q)),
            )


def write_csv(path: str | Path, store: SampleStore) -> Path:
    """Write every retained point as CSV; returns the path."""
    path = Path(path)
    lines = [",".join(_DUMP_HEADER)]
    for node, name, tier, t, w, j, q in _dump_rows(store):
        lines.append(f"{node},{name},{tier},{t:.9g},{w:.9g},{j:.9g},{q}")
    path.write_text("\n".join(lines) + "\n")
    return path


def write_jsonl(path: str | Path, store: SampleStore) -> Path:
    """Write every retained point as JSON lines; returns the path."""
    path = Path(path)
    with path.open("w") as fh:
        for node, name, tier, t, w, j, q in _dump_rows(store):
            fh.write(
                json.dumps(
                    {
                        "node": node,
                        "channel": name,
                        "tier": tier,
                        "time_s": t,
                        "watts": w,
                        "joules": j,
                        "quality": q,
                    },
                    sort_keys=True,
                )
                + "\n"
            )
    return path


def write_trace_csv(path: str | Path, name: str, trace) -> Path:
    """Dump a ground-truth :class:`~repro.hardware.trace.PowerTrace`.

    Uses the trace's public :meth:`~repro.hardware.trace.PowerTrace.as_arrays`
    view — exporters never reach into the trace's private buffers.
    """
    path = Path(path)
    times, watts = trace.as_arrays()
    lines = ["time_s,watts"]
    lines += [f"{t:.9g},{w:.9g}" for t, w in zip(times, watts)]
    path.write_text("\n".join(lines) + "\n")
    return path


def export_bundle(
    out_dir: str | Path,
    store: SampleStore,
    spans: SpanRecorder | None = None,
    node_names: dict[int, str] | None = None,
    metadata: dict | None = None,
    basename: str = "run",
) -> dict[str, Path]:
    """Write the full artifact set into ``out_dir``.

    Returns ``{kind: path}`` for the trace JSON, Prometheus text, CSV and
    JSONL dumps — the dict the reporting layer links into the run report.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    return {
        "chrome-trace": write_chrome_trace(
            out_dir / f"{basename}.trace.json", store, spans, node_names, metadata
        ),
        "prometheus": write_prometheus(out_dir / f"{basename}.prom", store),
        "csv": write_csv(out_dir / f"{basename}.samples.csv", store),
        "jsonl": write_jsonl(out_dir / f"{basename}.samples.jsonl", store),
    }
