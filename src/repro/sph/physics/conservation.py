"""Conserved-quantity diagnostics (the ``EnergyConservation`` function).

Computes total kinetic, internal and (optionally) gravitational energy
plus linear/angular momentum.  In the distributed code these are global
reductions — cheap, communication-bound, and present in every step's
function breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sph.particles import ParticleSet


@dataclass(frozen=True)
class ConservationTotals:
    """Global conserved quantities at one step."""

    kinetic: float
    internal: float
    potential: float
    momentum: np.ndarray
    angular_momentum: np.ndarray

    @property
    def total_energy(self) -> float:
        """Kinetic + internal + potential."""
        return self.kinetic + self.internal + self.potential


def energy_conservation(
    ps: ParticleSet, potential: float = 0.0
) -> ConservationTotals:
    """Gather the conservation diagnostics of the current state."""
    return ConservationTotals(
        kinetic=ps.kinetic_energy(),
        internal=ps.internal_energy(),
        potential=potential,
        momentum=ps.momentum(),
        angular_momentum=ps.angular_momentum(),
    )
