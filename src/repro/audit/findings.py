"""Typed audit findings: the structured record of a broken invariant.

Every violation the audit layer detects — at a region boundary, on a
sampler tick, or in the end-of-run reconciliation — becomes one
:class:`AuditFinding`: which invariant broke, where, by how much, and
against which tolerance.  Findings are plain frozen dataclasses with a
stable JSON form, so they survive the campaign cache round-trip and can
be surfaced in reports without re-running anything.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

#: Canonical invariant names, in the order reports list them.
INVARIANTS = (
    "region-window",
    "counter-monotone",
    "tick-order",
    "function-partition",
    "device-partition",
    "timeseries-conservation",
    "pmt-vs-slurm",
)

#: Finding severities: ``error`` breaks the energy books, ``warning``
#: flags a tolerated-but-noteworthy condition (e.g. a suspect interval).
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class AuditFinding:
    """One detected invariant violation."""

    #: Which invariant broke (one of :data:`INVARIANTS`).
    invariant: str
    #: Where: ``"node 0 / cpu"``, ``"rank 3 / Density"``, ``"run"`` ...
    scope: str
    #: Human-readable statement of the violation.
    message: str
    #: The offending measured value, when the check is numeric.
    measured: float | None = None
    #: What the invariant expected the value to be (or stay within).
    expected: float | None = None
    #: The tolerance the comparison used.
    tolerance: float | None = None
    severity: str = "error"

    def __post_init__(self) -> None:
        if self.invariant not in INVARIANTS:
            raise ValueError(
                f"unknown invariant {self.invariant!r}; "
                f"expected one of {INVARIANTS}"
            )
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; "
                f"expected one of {SEVERITIES}"
            )

    def to_dict(self) -> dict:
        """JSON-serializable form (for campaign archival)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "AuditFinding":
        return cls(**payload)

    def render(self) -> str:
        """One report line."""
        detail = ""
        if self.measured is not None and self.expected is not None:
            detail = (
                f" (measured {self.measured:.6g}, "
                f"expected {self.expected:.6g}"
            )
            if self.tolerance is not None:
                detail += f", tolerance {self.tolerance:.3g}"
            detail += ")"
        return (
            f"[{self.severity}] {self.invariant} @ {self.scope}: "
            f"{self.message}{detail}"
        )


@dataclass(frozen=True)
class AuditReport:
    """The outcome of one audited run: findings plus check coverage.

    ``checks`` counts how many times each invariant was actually
    evaluated — a report with zero findings and zero checks is *not* a
    clean bill of health, and :meth:`render` says so.
    """

    findings: tuple[AuditFinding, ...] = ()
    checks: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when no error-severity finding was recorded."""
        return not any(f.severity == "error" for f in self.findings)

    @property
    def errors(self) -> tuple[AuditFinding, ...]:
        return tuple(f for f in self.findings if f.severity == "error")

    @property
    def warnings(self) -> tuple[AuditFinding, ...]:
        return tuple(f for f in self.findings if f.severity == "warning")

    @property
    def checks_run(self) -> int:
        return sum(self.checks.values())

    def render(self) -> str:
        """The multi-line audit section of a run report."""
        if not self.checks:
            return "Energy audit: no checks ran"
        coverage = ", ".join(
            f"{name}: {self.checks[name]}"
            for name in INVARIANTS
            if name in self.checks
        )
        if not self.findings:
            return (
                f"Energy audit: ok — {self.checks_run} checks, "
                f"0 findings ({coverage})"
            )
        head = (
            f"Energy audit: {len(self.errors)} errors, "
            f"{len(self.warnings)} warnings over {self.checks_run} checks "
            f"({coverage})"
        )
        return "\n".join([head] + [f"  {f.render()}" for f in self.findings])

    def to_dict(self) -> dict:
        return {
            "findings": [f.to_dict() for f in self.findings],
            "checks": dict(self.checks),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AuditReport":
        return cls(
            findings=tuple(
                AuditFinding.from_dict(f) for f in payload.get("findings", ())
            ),
            checks=dict(payload.get("checks", {})),
        )
