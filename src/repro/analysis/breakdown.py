"""Device and function energy breakdowns (Figures 2 and 3).

The device breakdown is computed from the per-node application-window
counter deltas: GPU is the sum of the card counters, CPU and memory are
their node counters, and **Other** is the calculated remainder
``node - GPU - CPU - memory`` (Section 2).  On systems without a memory
sensor (CSCS-A100, miniHPC), memory is *inside* Other — exactly the
asymmetry Figure 2 shows between the two systems.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.aggregate import function_seconds, function_totals
from repro.errors import AnalysisError
from repro.instrumentation.records import RunMeasurements


@dataclass(frozen=True)
class DeviceBreakdown:
    """Per-device energy over the instrumented window."""

    #: Joules per device category, insertion-ordered for reporting.
    joules: dict[str, float]
    total_joules: float

    @property
    def shares(self) -> dict[str, float]:
        """Fractions of the total per device category."""
        if self.total_joules <= 0:
            raise AnalysisError("non-positive total energy in breakdown")
        return {k: v / self.total_joules for k, v in self.joules.items()}


def device_breakdown(run: RunMeasurements) -> DeviceBreakdown:
    """Compute the Figure 2 device breakdown for one run."""
    if not run.node_windows:
        raise AnalysisError("run has no node-window records")
    gpu = sum(sum(w.card_joules) for w in run.node_windows)
    cpu = sum(w.cpu_joules for w in run.node_windows)
    node = sum(w.node_joules for w in run.node_windows)
    has_memory = run.node_windows[0].memory_joules is not None
    memory = (
        sum(w.memory_joules or 0.0 for w in run.node_windows)
        if has_memory
        else 0.0
    )
    other = max(node - gpu - cpu - memory, 0.0)
    joules = {"GPU": gpu, "CPU": cpu}
    if has_memory:
        joules["Memory"] = memory
    joules["Other"] = other
    return DeviceBreakdown(joules=joules, total_joules=node)


@dataclass(frozen=True)
class FunctionRow:
    """One function's attributed energy and time on one device."""

    function: str
    joules: float
    seconds: float


def function_breakdown(run: RunMeasurements, counter: str) -> list[FunctionRow]:
    """Compute the Figure 3 per-function breakdown for one counter.

    ``counter`` is one of ``gpu``, ``cpu``, ``memory``, ``node``.  Rows
    come back sorted by descending energy.
    """
    totals = function_totals(run, counter)
    seconds = function_seconds(run)
    rows = [
        FunctionRow(function=name, joules=joules, seconds=seconds[name])
        for name, joules in totals.items()
    ]
    rows.sort(key=lambda r: r.joules, reverse=True)
    return rows
