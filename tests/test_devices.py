"""Tests for device models, DVFS, and node/cluster assembly."""

import pytest

from repro.config import (
    A100_PCIE_40GB,
    A100_SXM4_80GB,
    CSCS_A100,
    LUMI_G,
    MI250X_GCD,
    MINIHPC,
)
from repro.errors import DvfsError, HardwareError
from repro.hardware import (
    Cluster,
    FrequencyDomain,
    GpuCard,
    GpuDevice,
    NetworkModel,
    Node,
    VirtualClock,
)
from repro.units import mhz


@pytest.fixture
def clock():
    return VirtualClock()


class TestFrequencyDomain:
    def test_starts_at_nominal(self):
        dom = FrequencyDomain((mhz(1000), mhz(1410)), mhz(1410))
        assert dom.current_hz == mhz(1410)
        assert dom.ratio == 1.0

    def test_set_supported_frequency(self):
        dom = FrequencyDomain((mhz(1000), mhz(1410)), mhz(1410))
        dom.set_frequency(mhz(1000))
        assert dom.current_hz == mhz(1000)
        assert dom.ratio == pytest.approx(1000 / 1410)

    def test_unsupported_frequency_rejected(self):
        dom = FrequencyDomain((mhz(1000), mhz(1410)), mhz(1410))
        with pytest.raises(DvfsError):
            dom.set_frequency(mhz(1234))

    def test_non_user_controllable_blocks_unprivileged(self):
        dom = FrequencyDomain(
            (mhz(1000), mhz(1410)), mhz(1410), user_controllable=False
        )
        with pytest.raises(DvfsError):
            dom.set_frequency(mhz(1000))
        dom.set_frequency(mhz(1000), privileged=True)
        assert dom.current_hz == mhz(1000)

    def test_nominal_must_be_supported(self):
        with pytest.raises(DvfsError):
            FrequencyDomain((mhz(1000),), mhz(1410))

    def test_reset(self):
        dom = FrequencyDomain((mhz(1000), mhz(1410)), mhz(1410))
        dom.set_frequency(mhz(1000))
        dom.reset()
        assert dom.current_hz == mhz(1410)

    def test_empty_supported_rejected(self):
        with pytest.raises(DvfsError):
            FrequencyDomain((), mhz(1410))


class TestGpuDevice:
    def test_idle_power_at_creation(self, clock):
        gpu = GpuDevice("g0", clock, A100_SXM4_80GB)
        assert gpu.power_now() == pytest.approx(
            A100_SXM4_80GB.power_model.idle_watts_nominal
        )

    def test_load_raises_power(self, clock):
        gpu = GpuDevice("g0", clock, A100_SXM4_80GB)
        idle = gpu.power_now()
        gpu.set_load(0.9, 0.5)
        assert gpu.power_now() > idle

    def test_energy_integrates_phases(self, clock):
        gpu = GpuDevice("g0", clock, A100_SXM4_80GB)
        idle = gpu.power_now()
        clock.advance(10.0)
        gpu.set_load(1.0, 1.0)
        busy = gpu.power_now()
        clock.advance(5.0)
        gpu.set_idle()
        expected = idle * 10.0 + busy * 5.0
        assert gpu.energy_between(0.0, 15.0) == pytest.approx(expected)

    def test_frequency_change_reduces_busy_power(self, clock):
        gpu = GpuDevice("g0", clock, A100_PCIE_40GB)
        gpu.set_load(1.0, 0.5)
        at_nominal = gpu.power_now()
        gpu.set_frequency(mhz(1005))
        assert gpu.power_now() < at_nominal

    def test_peak_flops_scales_with_frequency(self, clock):
        gpu = GpuDevice("g0", clock, A100_PCIE_40GB)
        nominal = gpu.peak_flops_now()
        gpu.set_frequency(mhz(1005))
        assert gpu.peak_flops_now() == pytest.approx(nominal * 1005 / 1410)

    def test_invalid_utilization_rejected(self, clock):
        gpu = GpuDevice("g0", clock, A100_SXM4_80GB)
        with pytest.raises(HardwareError):
            gpu.set_load(1.2, 0.0)


class TestGpuCard:
    def test_single_gcd_card(self, clock):
        gpu = GpuDevice("g0", clock, A100_SXM4_80GB)
        card = GpuCard("c0", [gpu])
        assert card.num_gcds == 1
        assert card.power_at(0.0) == pytest.approx(gpu.power_now())

    def test_dual_gcd_card_sums_gcds(self, clock):
        g0 = GpuDevice("g0", clock, MI250X_GCD)
        g1 = GpuDevice("g1", clock, MI250X_GCD)
        card = GpuCard("c0", [g0, g1], card_overhead_watts=16.0)
        expected = g0.power_now() + g1.power_now() + 16.0
        assert card.power_at(0.0) == pytest.approx(expected)

    def test_card_cannot_see_which_gcd_is_busy(self, clock):
        """The per-card sensor ambiguity at the heart of Section 3.1."""
        g0 = GpuDevice("g0", clock, MI250X_GCD)
        g1 = GpuDevice("g1", clock, MI250X_GCD)
        card = GpuCard("c0", [g0, g1])
        g0.set_load(1.0, 1.0)
        only_g0 = card.power_at(clock.now)
        g0.set_idle()
        g1.set_load(1.0, 1.0)
        only_g1 = card.power_at(clock.now)
        assert only_g0 == pytest.approx(only_g1)

    def test_wrong_gcd_count_rejected(self, clock):
        g0 = GpuDevice("g0", clock, MI250X_GCD)
        with pytest.raises(HardwareError):
            GpuCard("c0", [g0])  # MI250X spec expects 2 GCDs per card

    def test_empty_card_rejected(self, clock):
        with pytest.raises(HardwareError):
            GpuCard("c0", [])


class TestNode:
    def test_lumi_node_shape(self, clock):
        node = Node("n0", clock, LUMI_G.node_spec)
        assert node.num_gpu_units == 8
        assert node.num_cards == 4
        assert node.card_of(0) is node.cards[0]
        assert node.card_of(1) is node.cards[0]
        assert node.card_of(2) is node.cards[1]

    def test_cscs_node_shape(self, clock):
        node = Node("n0", clock, CSCS_A100.node_spec)
        assert node.num_gpu_units == 4
        assert node.num_cards == 4

    def test_node_power_includes_all_components(self, clock):
        node = Node("n0", clock, MINIHPC.node_spec)
        parts = (
            node.cpu.power_now()
            + node.memory.power_now()
            + node.nic.power_now()
            + sum(g.power_now() for g in node.gpus)
            + node.spec.aux_watts
        )
        assert node.power_at(0.0) == pytest.approx(parts)

    def test_idle_power_matches_trace(self, clock):
        node = Node("n0", clock, LUMI_G.node_spec)
        assert node.idle_power() == pytest.approx(node.power_at(0.0))

    def test_set_gpu_frequency_all_units(self, clock):
        node = Node("n0", clock, MINIHPC.node_spec)
        node.set_gpu_frequency(mhz(1005))
        assert all(g.frequency.current_hz == mhz(1005) for g in node.gpus)

    def test_lumi_frequency_not_user_controllable(self, clock):
        node = Node("n0", clock, LUMI_G.node_spec)
        with pytest.raises(DvfsError):
            node.set_gpu_frequency(mhz(1000))
        node.set_gpu_frequency(mhz(1000), privileged=True)

    def test_all_idle(self, clock):
        node = Node("n0", clock, MINIHPC.node_spec)
        for g in node.gpus:
            g.set_load(1.0, 1.0)
        node.all_idle()
        assert node.power_at(clock.now) == pytest.approx(node.idle_power())

    def test_energy_between(self, clock):
        node = Node("n0", clock, MINIHPC.node_spec)
        clock.advance(10.0)
        assert node.energy_between(0.0, 10.0) == pytest.approx(
            node.idle_power() * 10.0
        )


class TestNetworkModel:
    def test_transfer_time_latency_plus_bandwidth(self):
        net = NetworkModel(latency_s=1e-6, bandwidth_bytes_per_s=1e9)
        assert net.transfer_time(1e9) == pytest.approx(1.0 + 1e-6)

    def test_intra_node_faster(self):
        net = NetworkModel(
            latency_s=1e-6, bandwidth_bytes_per_s=1e9, intra_node_factor=4.0
        )
        assert net.transfer_time(1e6, intra_node=True) < net.transfer_time(1e6)

    def test_negative_bytes_rejected(self):
        net = NetworkModel(latency_s=0.0, bandwidth_bytes_per_s=1e9)
        with pytest.raises(ValueError):
            net.transfer_time(-1.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(HardwareError):
            NetworkModel(latency_s=-1.0, bandwidth_bytes_per_s=1e9)
        with pytest.raises(HardwareError):
            NetworkModel(latency_s=0.0, bandwidth_bytes_per_s=0.0)
        with pytest.raises(HardwareError):
            NetworkModel(
                latency_s=0.0, bandwidth_bytes_per_s=1e9, intra_node_factor=0.5
            )


class TestCluster:
    def test_cluster_assembly(self, clock):
        cluster = Cluster("c", clock, LUMI_G.node_spec, 3, LUMI_G.network)
        assert cluster.num_nodes == 3
        assert cluster.total_gpu_units == 24
        assert cluster.total_cards == 12

    def test_cluster_energy_sums_nodes(self, clock):
        cluster = Cluster("c", clock, MINIHPC.node_spec, 1, MINIHPC.network)
        clock.advance(4.0)
        expected = cluster.nodes[0].energy_between(0.0, 4.0)
        assert cluster.energy_between(0.0, 4.0) == pytest.approx(expected)

    def test_cluster_frequency_broadcast(self, clock):
        cluster = Cluster("c", clock, MINIHPC.node_spec, 1, MINIHPC.network)
        cluster.set_gpu_frequency(mhz(1050))
        for node in cluster.nodes:
            for gpu in node.gpus:
                assert gpu.frequency.current_hz == mhz(1050)

    def test_empty_cluster_rejected(self, clock):
        with pytest.raises(HardwareError):
            Cluster("c", clock, MINIHPC.node_spec, 0, MINIHPC.network)
