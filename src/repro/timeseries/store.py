"""Bounded, tiered time-series storage for telemetry samples.

A :class:`SampleStore` retains the power/energy timeline of every
``(node, channel)`` sensor stream of a run without letting memory grow
with run length.  Each channel is a :class:`ChannelSeries` holding three
tiers of NumPy-backed buffers:

* **raw** — the newest samples verbatim, in a bounded buffer.  When it
  fills, the oldest samples are drained into…
* **buckets** — fixed-size mean buckets.  Each bucket keeps its time span,
  the *energy-preserving* mean power (``ΔJ / Δt`` of the span, so the
  bucket's rectangle integrates to exactly the energy the raw samples
  covered), min/max power for envelope rendering, the cumulative-joules
  endpoints, and the worst sample quality seen.  When the bucket tier
  fills, the oldest half is compressed into…
* **LTTB** — representative points chosen by largest-triangle-three-buckets
  downsampling over ``(t, watts)``.  When this tier fills it is
  re-decimated in place to half its capacity, so total memory is strictly
  bounded no matter how many samples stream in.

Every tier retains true ``(time, cumulative joules)`` knots, so time-range
energy queries interpolate the monotone joules curve instead of
re-integrating lossy powers: full-range queries are exact, sub-range
queries are exact at retained knots and linear between them.  Queries are
O(log n) over a cached knot view (rebuilt lazily after appends).

Buffers grow by doubling up to their capacity; eviction compacts in blocks
(amortized O(1) per sample), keeping every tier contiguous and
time-ordered so ``np.searchsorted`` works directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.pmt.state import MEASUREMENT_QUALITIES

#: Quality-string -> compact uint8 code (index in MEASUREMENT_QUALITIES).
QUALITY_CODES: dict[str, int] = {
    name: code for code, name in enumerate(MEASUREMENT_QUALITIES)
}

#: Tier identifiers, oldest data first.
TIERS = ("lttb", "buckets", "raw")


def quality_code(quality: str) -> int:
    """The compact code of a quality string."""
    try:
        return QUALITY_CODES[quality]
    except KeyError:
        raise AnalysisError(
            f"unknown measurement quality {quality!r}; "
            f"expected one of {MEASUREMENT_QUALITIES}"
        ) from None


def quality_name(code: int) -> str:
    """The quality string of a compact code."""
    return MEASUREMENT_QUALITIES[code]


def lttb_indices(times: np.ndarray, values: np.ndarray, n_out: int) -> np.ndarray:
    """Largest-triangle-three-buckets point selection.

    Returns the sorted indices of the ``n_out`` points that best preserve
    the visual shape of ``(times, values)``: the first and last points are
    always kept; each interior bucket keeps the point forming the largest
    triangle with the previously selected point and the next bucket's mean.
    """
    n = len(times)
    if n_out >= n:
        return np.arange(n)
    if n_out < 3:
        raise AnalysisError("LTTB needs at least 3 output points")
    # Interior bucket boundaries (n_out - 2 buckets over points 1..n-1).
    edges = np.linspace(1, n - 1, n_out - 1).astype(np.int64)
    selected = np.empty(n_out, dtype=np.int64)
    selected[0] = 0
    a = 0
    for k in range(n_out - 2):
        lo, hi = edges[k], edges[k + 1]
        nxt_lo, nxt_hi = edges[k + 1], n if k == n_out - 3 else edges[k + 2]
        avg_t = times[nxt_lo:nxt_hi].mean()
        avg_v = values[nxt_lo:nxt_hi].mean()
        t_seg = times[lo:hi]
        v_seg = values[lo:hi]
        # Twice the triangle area of (a, candidate, next-bucket mean).
        area = np.abs(
            (times[a] - avg_t) * (v_seg - values[a])
            - (times[a] - t_seg) * (avg_v - values[a])
        )
        a = lo + int(np.argmax(area))
        selected[k + 1] = a
    selected[-1] = n - 1
    return selected


class _Columns:
    """A contiguous, growable-to-capacity columnar buffer.

    Arrays double in size until ``capacity``; ``pop_front`` copies the
    oldest rows out and compacts the remainder forward (block eviction, so
    the cost amortizes to O(1) per appended row).
    """

    def __init__(self, capacity: int, dtypes: dict[str, np.dtype]) -> None:
        if capacity < 1:
            raise AnalysisError("tier capacity must be >= 1")
        self.capacity = int(capacity)
        initial = min(64, self.capacity)
        self.arrays = {
            name: np.zeros(initial, dtype=dt) for name, dt in dtypes.items()
        }
        self.n = 0

    @property
    def free(self) -> int:
        return self.capacity - self.n

    @property
    def nbytes(self) -> int:
        return sum(a.nbytes for a in self.arrays.values())

    def _ensure(self, extra: int) -> None:
        need = self.n + extra
        size = len(next(iter(self.arrays.values())))
        if need <= size:
            return
        new_size = size
        while new_size < need:
            new_size *= 2
        new_size = min(new_size, self.capacity)
        for name, arr in self.arrays.items():
            grown = np.zeros(new_size, dtype=arr.dtype)
            grown[: self.n] = arr[: self.n]
            self.arrays[name] = grown

    def extend(self, columns: dict[str, np.ndarray]) -> None:
        k = len(next(iter(columns.values())))
        if k > self.free:
            raise AnalysisError("tier overflow: drain before extending")
        self._ensure(k)
        for name, values in columns.items():
            self.arrays[name][self.n : self.n + k] = values
        self.n += k

    def pop_front(self, k: int) -> dict[str, np.ndarray]:
        k = min(k, self.n)
        out = {name: arr[:k].copy() for name, arr in self.arrays.items()}
        for arr in self.arrays.values():
            arr[: self.n - k] = arr[k : self.n]
        self.n -= k
        return out

    def view(self, name: str) -> np.ndarray:
        return self.arrays[name][: self.n]


@dataclass(frozen=True)
class TierStats:
    """Occupancy summary of one channel's tiers."""

    raw: int
    buckets: int
    lttb: int
    total_appended: int


class ChannelSeries:
    """The tiered timeline of one ``(node, channel)`` sensor stream."""

    _RAW_FIELDS = {
        "t": np.float64,
        "watts": np.float64,
        "joules": np.float64,
        "quality": np.uint8,
    }
    _BUCKET_FIELDS = {
        "t0": np.float64,
        "t1": np.float64,
        "watts_mean": np.float64,
        "watts_min": np.float64,
        "watts_max": np.float64,
        "joules0": np.float64,
        "joules1": np.float64,
        "count": np.int64,
        "quality": np.uint8,
    }

    def __init__(
        self,
        raw_capacity: int = 4096,
        bucket_size: int = 32,
        bucket_capacity: int = 2048,
        lttb_capacity: int = 1024,
    ) -> None:
        if bucket_size < 1:
            raise AnalysisError("bucket_size must be >= 1")
        if raw_capacity < 2 * bucket_size:
            raise AnalysisError("raw_capacity must hold at least two buckets")
        if lttb_capacity < 8:
            raise AnalysisError("lttb_capacity must be >= 8")
        self.bucket_size = int(bucket_size)
        self._raw = _Columns(raw_capacity, self._RAW_FIELDS)
        self._buckets = _Columns(bucket_capacity, self._BUCKET_FIELDS)
        self._lttb = _Columns(lttb_capacity, self._RAW_FIELDS)
        self.total_appended = 0
        self._last_t: float | None = None
        self._knots: tuple[np.ndarray, np.ndarray] | None = None

    # -- ingest -------------------------------------------------------------

    def append(
        self, t: float, watts: float, joules: float, quality: str = "ok"
    ) -> None:
        """Record one sample."""
        self.extend(
            np.asarray([t], dtype=np.float64),
            np.asarray([watts], dtype=np.float64),
            np.asarray([joules], dtype=np.float64),
            np.asarray([quality_code(quality)], dtype=np.uint8),
        )

    def extend(
        self,
        times: np.ndarray,
        watts: np.ndarray,
        joules: np.ndarray,
        quality: np.ndarray | None = None,
    ) -> None:
        """Bulk-record samples (times must be non-decreasing)."""
        times = np.asarray(times, dtype=np.float64)
        watts = np.asarray(watts, dtype=np.float64)
        joules = np.asarray(joules, dtype=np.float64)
        if quality is None:
            quality = np.zeros(len(times), dtype=np.uint8)
        else:
            quality = np.asarray(quality, dtype=np.uint8)
        if not (len(times) == len(watts) == len(joules) == len(quality)):
            raise AnalysisError("sample columns must have equal length")
        if len(times) == 0:
            return
        if np.any(np.diff(times) < 0):
            raise AnalysisError("sample times must be non-decreasing")
        if self._last_t is not None and times[0] < self._last_t:
            raise AnalysisError(
                f"sample at t={times[0]!r} precedes last stored t={self._last_t!r}"
            )
        pos = 0
        n = len(times)
        while pos < n:
            if self._raw.free == 0:
                self._drain_raw()
            take = min(self._raw.free, n - pos)
            self._raw.extend(
                {
                    "t": times[pos : pos + take],
                    "watts": watts[pos : pos + take],
                    "joules": joules[pos : pos + take],
                    "quality": quality[pos : pos + take],
                }
            )
            pos += take
        self.total_appended += n
        self._last_t = float(times[-1])
        self._knots = None

    def _drain_raw(self) -> None:
        """Aggregate the oldest half of the raw tier into mean buckets."""
        num_buckets = max(1, (self._raw.n // 2) // self.bucket_size)
        drained = self._raw.pop_front(num_buckets * self.bucket_size)
        t = drained["t"].reshape(num_buckets, self.bucket_size)
        w = drained["watts"].reshape(num_buckets, self.bucket_size)
        j = drained["joules"].reshape(num_buckets, self.bucket_size)
        q = drained["quality"].reshape(num_buckets, self.bucket_size)
        t0, t1 = t[:, 0], t[:, -1]
        j0, j1 = j[:, 0], j[:, -1]
        span = t1 - t0
        # Energy-preserving mean: the bucket rectangle integrates to the
        # exact joules delta of its span; zero-length spans (all samples at
        # one instant) fall back to the arithmetic mean.
        rate = np.divide(j1 - j0, np.where(span > 0, span, 1.0))
        mean = np.where(span > 0, rate, w.mean(axis=1))
        columns = {
            "t0": t0,
            "t1": t1,
            "watts_mean": mean,
            "watts_min": w.min(axis=1),
            "watts_max": w.max(axis=1),
            "joules0": j0,
            "joules1": j1,
            "count": np.full(num_buckets, self.bucket_size, dtype=np.int64),
            "quality": q.max(axis=1),
        }
        # One drain can produce more buckets than the bucket tier holds
        # (a raw ring much wider than the bucket tier, or one oversized
        # batch streaming straight through): insert in chunks, compressing
        # the oldest buckets ahead of each chunk, instead of asking the
        # tier to absorb the whole drain at once and overflowing it.
        pos = 0
        while pos < num_buckets:
            if self._buckets.free == 0:
                self._drain_buckets(
                    min(num_buckets - pos, max(1, self._buckets.capacity // 2))
                )
            take = min(self._buckets.free, num_buckets - pos)
            self._buckets.extend(
                {name: arr[pos : pos + take] for name, arr in columns.items()}
            )
            pos += take

    def _drain_buckets(self, need: int) -> None:
        """Compress the oldest buckets into LTTB-selected points."""
        drain = max(need, self._buckets.n // 2)
        old = self._buckets.pop_front(drain)
        # Never ask for more LTTB points than half that tier's capacity, so
        # one re-decimation always frees enough room for them.
        n_out = max(3, min(drain // 4, self._lttb.capacity // 2))
        idx = lttb_indices(old["t0"], old["watts_mean"], n_out)
        cols = {
            "t": old["t0"][idx],
            "watts": old["watts_mean"][idx],
            "joules": old["joules0"][idx],
            "quality": old["quality"][idx],
        }
        if self._lttb.free < len(idx):
            self._redecimate_lttb(len(idx))
        self._lttb.extend(cols)

    def _redecimate_lttb(self, need: int) -> None:
        """Halve the LTTB tier in place (keeps memory strictly bounded)."""
        n_out = max(3, min(self._lttb.capacity - need, self._lttb.n // 2))
        old = self._lttb.pop_front(self._lttb.n)
        idx = lttb_indices(old["t"], old["watts"], n_out)
        self._lttb.extend({name: arr[idx] for name, arr in old.items()})

    # -- queries ------------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Current buffer memory of this channel."""
        return self._raw.nbytes + self._buckets.nbytes + self._lttb.nbytes

    def memory_cap_bytes(self) -> int:
        """Worst-case buffer memory of this channel (all tiers full)."""
        raw_row = sum(np.dtype(d).itemsize for d in self._RAW_FIELDS.values())
        bucket_row = sum(
            np.dtype(d).itemsize for d in self._BUCKET_FIELDS.values()
        )
        return (
            self._raw.capacity * raw_row
            + self._buckets.capacity * bucket_row
            + self._lttb.capacity * raw_row
        )

    @property
    def latest(self) -> tuple[float, float, float, str]:
        """``(t, watts, joules, quality)`` of the newest sample."""
        if self.total_appended == 0:
            raise AnalysisError("channel has no samples")
        for tier in (self._raw, self._lttb):
            if tier.n:
                i = tier.n - 1
                return (
                    float(tier.view("t")[i]),
                    float(tier.view("watts")[i]),
                    float(tier.view("joules")[i]),
                    quality_name(int(tier.view("quality")[i])),
                )
        i = self._buckets.n - 1
        return (
            float(self._buckets.view("t1")[i]),
            float(self._buckets.view("watts_mean")[i]),
            float(self._buckets.view("joules1")[i]),
            quality_name(int(self._buckets.view("quality")[i])),
        )

    def stats(self) -> TierStats:
        """Occupancy of each tier."""
        return TierStats(
            raw=self._raw.n,
            buckets=self._buckets.n,
            lttb=self._lttb.n,
            total_appended=self.total_appended,
        )

    def tier_arrays(
        self, tier: str
    ) -> dict[str, np.ndarray]:
        """Copies of one tier's columns (``lttb``/``buckets``/``raw``)."""
        if tier == "raw":
            src = self._raw
        elif tier == "lttb":
            src = self._lttb
        elif tier == "buckets":
            src = self._buckets
        else:
            raise AnalysisError(f"unknown tier {tier!r}; expected one of {TIERS}")
        return {name: src.view(name).copy() for name in src.arrays}

    def points(self) -> dict[str, np.ndarray]:
        """The full retained timeline, oldest first, one row per point.

        Bucket rows are represented by their span start with the
        energy-preserving mean power; ``tier`` codes the origin
        (0 = lttb, 1 = buckets, 2 = raw).
        """
        parts_t = [
            self._lttb.view("t"),
            self._buckets.view("t0"),
            self._raw.view("t"),
        ]
        parts_w = [
            self._lttb.view("watts"),
            self._buckets.view("watts_mean"),
            self._raw.view("watts"),
        ]
        parts_j = [
            self._lttb.view("joules"),
            self._buckets.view("joules0"),
            self._raw.view("joules"),
        ]
        parts_q = [
            self._lttb.view("quality"),
            self._buckets.view("quality"),
            self._raw.view("quality"),
        ]
        tier = np.concatenate(
            [np.full(len(p), code, dtype=np.uint8) for code, p in enumerate(parts_t)]
        )
        return {
            "t": np.concatenate(parts_t),
            "watts": np.concatenate(parts_w),
            "joules": np.concatenate(parts_j),
            "quality": np.concatenate(parts_q),
            "tier": tier,
        }

    def _knot_view(self) -> tuple[np.ndarray, np.ndarray]:
        """Time-ordered ``(t, cumulative joules)`` knots across all tiers."""
        if self._knots is None:
            # Bucket spans contribute both endpoints so the joules curve is
            # exact at bucket boundaries.
            bt = np.column_stack(
                (self._buckets.view("t0"), self._buckets.view("t1"))
            ).reshape(-1)
            bj = np.column_stack(
                (self._buckets.view("joules0"), self._buckets.view("joules1"))
            ).reshape(-1)
            t = np.concatenate([self._lttb.view("t"), bt, self._raw.view("t")])
            j = np.concatenate(
                [self._lttb.view("joules"), bj, self._raw.view("joules")]
            )
            # Tiers are time-ordered and non-overlapping by construction;
            # equal timestamps at tier seams are fine for interpolation.
            self._knots = (t, j)
        return self._knots

    def joules_at(self, t: float) -> float:
        """Cumulative joules at time ``t`` (interpolated between knots)."""
        knots_t, knots_j = self._knot_view()
        if len(knots_t) == 0:
            raise AnalysisError("channel has no samples")
        return float(np.interp(t, knots_t, knots_j))

    def energy_between(self, t0: float, t1: float) -> float:
        """Energy consumed on ``[t0, t1]`` from the retained joules curve."""
        if t1 < t0:
            raise AnalysisError(f"energy_between interval reversed: [{t0}, {t1}]")
        return self.joules_at(t1) - self.joules_at(t0)

    def range_query(self, t0: float, t1: float) -> dict[str, np.ndarray]:
        """All retained points with ``t0 <= t <= t1`` (O(log n) bisection)."""
        if t1 < t0:
            raise AnalysisError(f"range_query interval reversed: [{t0}, {t1}]")
        pts = self.points()
        lo = int(np.searchsorted(pts["t"], t0, side="left"))
        hi = int(np.searchsorted(pts["t"], t1, side="right"))
        return {name: arr[lo:hi] for name, arr in pts.items()}

    def degraded_points(self) -> int:
        """Retained points whose quality is not ``ok``."""
        pts = self.points()
        return int(np.count_nonzero(pts["quality"]))


class SampleStore:
    """All channels of a run, keyed by ``(node_index, channel_name)``."""

    def __init__(
        self,
        raw_capacity: int = 4096,
        bucket_size: int = 32,
        bucket_capacity: int = 2048,
        lttb_capacity: int = 1024,
    ) -> None:
        self.raw_capacity = int(raw_capacity)
        self.bucket_size = int(bucket_size)
        self.bucket_capacity = int(bucket_capacity)
        self.lttb_capacity = int(lttb_capacity)
        self._channels: dict[tuple[int, str], ChannelSeries] = {}

    def channel(self, node_index: int, name: str) -> ChannelSeries:
        """The series of ``(node_index, name)``, created on first use."""
        key = (int(node_index), str(name))
        series = self._channels.get(key)
        if series is None:
            series = ChannelSeries(
                raw_capacity=self.raw_capacity,
                bucket_size=self.bucket_size,
                bucket_capacity=self.bucket_capacity,
                lttb_capacity=self.lttb_capacity,
            )
            self._channels[key] = series
        return series

    def record(
        self,
        node_index: int,
        name: str,
        t: float,
        watts: float,
        joules: float,
        quality: str = "ok",
    ) -> None:
        """Record one sample into the named channel."""
        self.channel(node_index, name).append(t, watts, joules, quality)

    def channels(self) -> list[tuple[int, str]]:
        """All channel keys, sorted by ``(node, name)`` (deterministic)."""
        return sorted(self._channels)

    def __contains__(self, key: tuple[int, str]) -> bool:
        return key in self._channels

    def __len__(self) -> int:
        return len(self._channels)

    @property
    def num_samples(self) -> int:
        """Total samples ever appended across channels."""
        return sum(s.total_appended for s in self._channels.values())

    @property
    def nbytes(self) -> int:
        """Current buffer memory across channels."""
        return sum(s.nbytes for s in self._channels.values())

    def memory_cap_bytes(self) -> int:
        """The worst-case per-channel buffer memory this store permits."""
        raw_row = 8 + 8 + 8 + 1
        bucket_row = 7 * 8 + 8 + 1
        per_channel = (
            self.raw_capacity * raw_row
            + self.bucket_capacity * bucket_row
            + self.lttb_capacity * raw_row
        )
        return per_channel * max(1, len(self._channels))
