"""Sensor fault injection.

Real telemetry fails in characteristic ways — counters freeze (BMC hangs),
readings drop out (i2c timeouts), values spike (bus glitches).  These
wrappers inject such faults deterministically around any sensor-shaped
object (anything with ``read(t) -> SensorReading``), so the measurement
pipeline's robustness can be tested and the ablation benchmarks can
quantify how each failure mode corrupts per-function attribution.

All wrappers preserve the counter contract *shape* (monotone joules for
the freeze case; the glitch case intentionally violates instantaneous
power plausibility, which detectors should flag).
"""

from __future__ import annotations

from repro.errors import SensorError
from repro.sensors.base import SensorReading

class FrozenCounterFault:
    """After ``freeze_at`` the sensor returns its last-known state forever.

    Models a hung telemetry controller: the energy accumulator stops, so
    any region measured across the freeze reads as (near) zero energy.
    """

    def __init__(self, inner, freeze_at: float) -> None:
        if freeze_at < 0:
            raise SensorError("freeze time must be >= 0")
        self._inner = inner
        self.freeze_at = float(freeze_at)

    def read(self, t: float) -> SensorReading:
        return self._inner.read(min(t, self.freeze_at))

    def read_exact(self, t: float) -> SensorReading:
        """The exact-accumulator read path freezes identically."""
        return self._inner.read_exact(min(t, self.freeze_at))


class DropoutFault:
    """Reads fail entirely inside the outage window (raising SensorError).

    Models i2c/IPMI timeouts; consumers must either retry, interpolate, or
    surface the gap.
    """

    def __init__(self, inner, outage_start: float, outage_end: float) -> None:
        if outage_end <= outage_start:
            raise SensorError("outage window must have positive length")
        self._inner = inner
        self.outage_start = float(outage_start)
        self.outage_end = float(outage_end)

    def read(self, t: float) -> SensorReading:
        if self.outage_start <= t < self.outage_end:
            raise SensorError(
                f"sensor read timed out at t={t:.3f} "
                f"(outage [{self.outage_start}, {self.outage_end}))"
            )
        return self._inner.read(t)

    def read_exact(self, t: float) -> SensorReading:
        """The exact-accumulator read path times out identically."""
        if self.outage_start <= t < self.outage_end:
            raise SensorError(
                f"sensor read timed out at t={t:.3f} "
                f"(outage [{self.outage_start}, {self.outage_end}))"
            )
        return self._inner.read_exact(t)


class GlitchFault:
    """Occasional wild power readings (bus glitches), deterministic.

    The energy accumulator is untouched (glitches are in the instantaneous
    register only), matching how real glitches usually manifest.
    """

    def __init__(
        self,
        inner,
        probability: float = 0.01,
        magnitude_watts: float = 10_000.0,
        seed: int = 0,
    ) -> None:
        if not 0 <= probability <= 1:
            raise SensorError("glitch probability must be in [0, 1]")
        self._inner = inner
        self.probability = probability
        self.magnitude_watts = magnitude_watts
        self._seed = seed

    def read(self, t: float) -> SensorReading:
        return self._glitched(self._inner.read(t), t)

    def read_exact(self, t: float) -> SensorReading:
        """Exact-accumulator reads see the same glitched power register."""
        return self._glitched(self._inner.read_exact(t), t)

    def _glitched(self, reading: SensorReading, t: float) -> SensorReading:
        # Deterministic per-timestamp decision (stable across replays).
        unit = (hash((self._seed, round(t * 1e6))) % 10_000) / 10_000.0
        if unit < self.probability:
            return SensorReading(
                timestamp=reading.timestamp,
                watts=self.magnitude_watts,
                joules=reading.joules,
            )
        return reading


def detect_frozen_counter(
    read_times: list[float],
    readings: list[SensorReading],
    min_expected_watts: float = 1.0,
) -> bool:
    """Heuristic freeze detector: the counter stopped advancing while the
    caller's clock did.

    ``read_times`` are the times the caller issued the reads (a frozen
    sensor repeats its last internal timestamp, so the reading timestamps
    alone cannot witness the freeze).  Returns True when a nontrivial
    caller interval shows zero accumulator growth despite the device
    supposedly drawing at least ``min_expected_watts``.
    """
    if len(read_times) != len(readings):
        raise SensorError("read_times and readings length mismatch")
    for (t0, prev), (t1, curr) in zip(
        zip(read_times, readings), zip(read_times[1:], readings[1:])
    ):
        dt = t1 - t0
        if dt <= 0:
            continue
        if curr.joules == prev.joules and dt * min_expected_watts > 1.0:
            return True
    return False


def detect_glitches(
    readings: list[SensorReading], plausible_max_watts: float
) -> list[int]:
    """Indices of readings whose power exceeds the physical maximum."""
    return [
        k for k, r in enumerate(readings) if r.watts > plausible_max_watts
    ]


def interpolate_energy_across_dropout(
    before: SensorReading, after: SensorReading, t: float
) -> float:
    """Linear energy interpolation inside an outage window."""
    if not before.timestamp <= t <= after.timestamp:
        raise SensorError("interpolation time outside the bracketing reads")
    span = after.timestamp - before.timestamp
    if span == 0:
        return before.joules
    frac = (t - before.timestamp) / span
    return before.joules + frac * (after.joules - before.joules)
