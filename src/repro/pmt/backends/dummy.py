"""Dummy PMT backend: always-zero measurements.

Matches the original toolkit's ``dummy`` backend: lets applications keep
their instrumentation compiled in on platforms without any sensor, at zero
cost and zero values.  Also convenient in unit tests.
"""

from __future__ import annotations

from repro.hardware.clock import VirtualClock
from repro.pmt.base import PMT
from repro.pmt.registry import register_backend
from repro.pmt.state import Measurement, State


@register_backend("dummy")
class DummyPMT(PMT):
    """A meter that measures nothing."""

    def __init__(self, clock: VirtualClock | None = None) -> None:
        super().__init__(clock if clock is not None else VirtualClock())
        self.read_count = 0

    def measurement_names(self) -> tuple[str, ...]:
        return ("dummy",)

    def read_state(self) -> State:
        self.read_count += 1
        return State(
            timestamp=self.clock.now,
            measurements=(Measurement(name="dummy", joules=0.0, watts=0.0),),
        )
