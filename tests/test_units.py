"""Tests for repro.units conversions and formatting."""

import pytest
from hypothesis import given, strategies as st

from repro import units

class TestConversions:
    def test_mhz(self):
        assert units.mhz(1410) == 1.41e9

    def test_ghz(self):
        assert units.ghz(2.0) == 2.0e9

    def test_hz_to_mhz_roundtrip(self):
        assert units.hz_to_mhz(units.mhz(1700)) == pytest.approx(1700)

    def test_megajoules(self):
        assert units.megajoules(24.4) == pytest.approx(24.4e6)

    def test_joules_to_megajoules(self):
        assert units.joules_to_megajoules(12.5e6) == pytest.approx(12.5)

    def test_kilojoules(self):
        assert units.kilojoules(3) == 3000

    def test_milliwatts(self):
        assert units.milliwatts(250_000) == pytest.approx(250.0)

    def test_watts_to_milliwatts(self):
        assert units.watts_to_milliwatts(0.4) == pytest.approx(400.0)

    def test_microjoules(self):
        assert units.microjoules(15.3) == pytest.approx(15.3e-6)

    def test_watt_hours(self):
        assert units.watt_hours(1) == 3600

    def test_joules_to_watt_hours_roundtrip(self):
        assert units.joules_to_watt_hours(units.watt_hours(2.5)) == pytest.approx(2.5)

    def test_minutes(self):
        assert units.minutes(1.5) == 90

    def test_hours(self):
        assert units.hours(2) == 7200


class TestFormatting:
    def test_format_energy_mj(self):
        assert units.format_energy(24.4e6) == "24.4 MJ"

    def test_format_energy_j(self):
        assert units.format_energy(3.0) == "3 J"

    def test_format_power_w(self):
        assert units.format_power(560.0) == "560 W"

    def test_format_power_mw(self):
        assert units.format_power(0.25) == "250 mW"

    def test_format_zero(self):
        assert units.format_energy(0.0) == "0 J"

    def test_format_negative(self):
        assert units.format_si(-1500, "J") == "-1.5 kJ"

    def test_format_nan(self):
        assert "nan" in units.format_energy(float("nan"))

    def test_format_tiny_uses_smallest_prefix(self):
        assert units.format_si(2e-10, "J").endswith("nJ")

    def test_format_duration_seconds(self):
        assert units.format_duration(12.0) == "12 s"

    def test_format_duration_minutes(self):
        assert units.format_duration(125.0) == "0:02:05.0"

    def test_format_duration_hours(self):
        assert units.format_duration(3725.5) == "1:02:05.5"

    def test_format_duration_negative(self):
        assert units.format_duration(-61.0).startswith("-")

    @given(st.floats(min_value=1e-9, max_value=1e13, allow_nan=False))
    def test_format_si_always_parses_back(self, value):
        text = units.format_si(value, "J", precision=12)
        number, prefixed_unit = text.split(" ")
        factor = {
            "TJ": 1e12, "GJ": 1e9, "MJ": 1e6, "kJ": 1e3, "J": 1.0,
            "mJ": 1e-3, "uJ": 1e-6, "nJ": 1e-9,
        }[prefixed_unit]
        assert float(number) * factor == pytest.approx(value, rel=1e-9)
