"""Physical units and formatting helpers used throughout the library.

All internal computation is done in base SI units (seconds, joules, watts,
hertz).  This module provides explicit conversion helpers and human-readable
formatting so call sites never multiply by bare magic constants.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# SI prefixes
# ---------------------------------------------------------------------------

KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12

MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9

#: Ordered (factor, symbol) pairs used by the generic formatter.
_SI_STEPS = [
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
]


def mhz(value: float) -> float:
    """Convert a frequency in MHz to Hz."""
    return value * MEGA


def ghz(value: float) -> float:
    """Convert a frequency in GHz to Hz."""
    return value * GIGA


def hz_to_mhz(value: float) -> float:
    """Convert a frequency in Hz to MHz."""
    return value / MEGA


def kilojoules(value: float) -> float:
    """Convert kJ to J."""
    return value * KILO


def megajoules(value: float) -> float:
    """Convert MJ to J."""
    return value * MEGA


def joules_to_megajoules(value: float) -> float:
    """Convert J to MJ."""
    return value / MEGA


def milliwatts(value: float) -> float:
    """Convert mW to W."""
    return value * MILLI


def watts_to_milliwatts(value: float) -> float:
    """Convert W to mW."""
    return value / MILLI


def microjoules(value: float) -> float:
    """Convert uJ to J."""
    return value * MICRO


def watt_hours(value: float) -> float:
    """Convert Wh to J (1 Wh = 3600 J)."""
    return value * 3600.0


def joules_to_watt_hours(value: float) -> float:
    """Convert J to Wh."""
    return value / 3600.0


def minutes(value: float) -> float:
    """Convert minutes to seconds."""
    return value * 60.0


def hours(value: float) -> float:
    """Convert hours to seconds."""
    return value * 3600.0


def format_si(value: float, unit: str, precision: int = 3) -> str:
    """Format ``value`` with an SI prefix, e.g. ``format_si(24.4e6, "J")``
    returns ``"24.4 MJ"``.

    Negative values keep their sign; zero formats without a prefix.
    """
    if value == 0 or not math.isfinite(value):
        return f"{value:.{precision}g} {unit}"
    mag = abs(value)
    for factor, symbol in _SI_STEPS:
        if mag >= factor:
            return f"{value / factor:.{precision}g} {symbol}{unit}"
    factor, symbol = _SI_STEPS[-1]
    return f"{value / factor:.{precision}g} {symbol}{unit}"


def format_energy(joules: float, precision: int = 3) -> str:
    """Format an energy in joules with an SI prefix."""
    return format_si(joules, "J", precision)


def format_power(watts: float, precision: int = 3) -> str:
    """Format a power in watts with an SI prefix."""
    return format_si(watts, "W", precision)


def format_duration(seconds: float) -> str:
    """Format a duration as ``H:MM:SS.s`` for durations over a minute and
    as seconds otherwise."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 60:
        return f"{seconds:.3g} s"
    whole = int(seconds)
    hours_, rem = divmod(whole, 3600)
    mins, secs = divmod(rem, 60)
    frac = seconds - whole
    return f"{hours_:d}:{mins:02d}:{secs + frac:04.1f}"
