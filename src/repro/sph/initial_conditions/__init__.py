"""Initial conditions for the paper's two production test cases."""

from repro.sph.initial_conditions.turbulence import make_turbulence
from repro.sph.initial_conditions.evrard import make_evrard
from repro.sph.initial_conditions.sedov import make_sedov, sedov_front_radius
from repro.sph.initial_conditions.noh import (
    make_noh,
    noh_post_shock_density,
    noh_shock_speed,
)
from repro.sph.initial_conditions.sod import make_sod

__all__ = [
    "make_turbulence",
    "make_evrard",
    "make_sedov",
    "sedov_front_radius",
    "make_noh",
    "noh_post_shock_density",
    "noh_shock_speed",
    "make_sod",
]
