"""Piecewise-constant power traces with exact energy integration.

A :class:`PowerTrace` is the ground-truth power timeline of one device: a
sequence of ``(time, watts)`` breakpoints where the power holds the given
value from each breakpoint until the next.  Energy between two times is the
exact integral of this step function — sensors later *approximate* this
integral with their own cadence and quantization.

Traces are append-only (time moves forward) and integration is vectorized:
breakpoints are kept in growable NumPy buffers and a cumulative-energy
prefix array is cached and invalidated on append, so repeated queries over
long runs stay O(log n).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ClockError


class PowerTrace:
    """Append-only piecewise-constant power timeline.

    Parameters
    ----------
    initial_watts:
        Power level from time 0 until the first explicit breakpoint.
    """

    _INITIAL_CAPACITY = 256

    def __init__(self, initial_watts: float = 0.0) -> None:
        self._times = np.zeros(self._INITIAL_CAPACITY, dtype=np.float64)
        self._watts = np.zeros(self._INITIAL_CAPACITY, dtype=np.float64)
        self._watts[0] = float(initial_watts)
        self._n = 1
        self._cum_energy: np.ndarray | None = None

    # -- recording ----------------------------------------------------------

    def set_power(self, t: float, watts: float) -> None:
        """Record that power becomes ``watts`` at time ``t``.

        ``t`` must be >= the last breakpoint time.  Setting the same power
        again is a no-op; setting a different power at exactly the last
        breakpoint time overwrites it (zero-length segments are elided).
        """
        if watts < 0:
            raise ValueError(f"negative power {watts!r} W")
        last_t = self._times[self._n - 1]
        if t < last_t:
            raise ClockError(
                f"trace breakpoint at t={t!r} precedes last breakpoint {last_t!r}"
            )
        last_w = self._watts[self._n - 1]
        if watts == last_w:
            return
        if t == last_t:
            # Overwrite the zero-length segment in place.
            self._watts[self._n - 1] = watts
            # If the overwrite makes it equal to the previous segment, merge.
            if self._n >= 2 and self._watts[self._n - 2] == watts:
                self._n -= 1
            self._cum_energy = None
            return
        if self._n == len(self._times):
            self._grow()
        self._times[self._n] = t
        self._watts[self._n] = watts
        self._n += 1
        self._cum_energy = None

    def _grow(self) -> None:
        new_cap = len(self._times) * 2
        times = np.zeros(new_cap, dtype=np.float64)
        watts = np.zeros(new_cap, dtype=np.float64)
        times[: self._n] = self._times[: self._n]
        watts[: self._n] = self._watts[: self._n]
        self._times = times
        self._watts = watts

    # -- queries ------------------------------------------------------------

    @property
    def num_breakpoints(self) -> int:
        """Number of stored breakpoints (>= 1)."""
        return self._n

    @property
    def last_time(self) -> float:
        """Time of the most recent breakpoint."""
        return float(self._times[self._n - 1])

    def power_at(self, t: float) -> float:
        """Instantaneous power in watts at time ``t``.

        Times before 0 use the initial level; times after the last
        breakpoint hold the last level (the device keeps drawing it).
        """
        idx = int(np.searchsorted(self._times[: self._n], t, side="right")) - 1
        idx = max(idx, 0)
        return float(self._watts[idx])

    def _cumulative(self) -> np.ndarray:
        """Cumulative energy (J) consumed up to each breakpoint time."""
        if self._cum_energy is None or len(self._cum_energy) != self._n:
            t = self._times[: self._n]
            w = self._watts[: self._n]
            cum = np.zeros(self._n, dtype=np.float64)
            if self._n > 1:
                np.cumsum(w[:-1] * np.diff(t), out=cum[1:])
            self._cum_energy = cum
        return self._cum_energy

    def energy_until(self, t: float) -> float:
        """Exact energy in joules consumed on ``[0, t]``."""
        if t <= 0:
            return 0.0
        times = self._times[: self._n]
        cum = self._cumulative()
        idx = int(np.searchsorted(times, t, side="right")) - 1
        idx = max(idx, 0)
        return float(cum[idx] + self._watts[idx] * (t - times[idx]))

    def energy_between(self, t0: float, t1: float) -> float:
        """Exact energy in joules consumed on ``[t0, t1]``."""
        if t1 < t0:
            raise ValueError(f"energy_between interval reversed: [{t0}, {t1}]")
        return self.energy_until(t1) - self.energy_until(t0)

    def sample(self, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`power_at` over an array of times."""
        times = np.asarray(times, dtype=np.float64)
        idx = np.searchsorted(self._times[: self._n], times, side="right") - 1
        np.clip(idx, 0, None, out=idx)
        return self._watts[: self._n][idx]

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Read-only zero-copy views of the ``(times, watts)`` breakpoints.

        The public accessor for exporters and analysis code — nothing
        outside this class should reach into the private growable buffers
        (whose length exceeds the logical size, and whose cached
        cumulative-energy prefix is invalidated on append).  The views are
        snapshots: a later append may reallocate the backing buffers, so
        hold the views only for the duration of one export, and copy
        (:meth:`breakpoints`) to keep them.
        """
        times = self._times[: self._n].view()
        watts = self._watts[: self._n].view()
        times.flags.writeable = False
        watts.flags.writeable = False
        return times, watts

    def breakpoints(self) -> tuple[np.ndarray, np.ndarray]:
        """Copies of the ``(times, watts)`` breakpoint arrays."""
        times, watts = self.as_arrays()
        return times.copy(), watts.copy()


class SummedPowerTrace:
    """Read-only view that sums several traces (e.g. node = sum of devices).

    An optional constant offset models always-on draw that belongs to no
    individual device (fans, voltage regulators, board logic).
    """

    def __init__(self, traces: list[PowerTrace], constant_watts: float = 0.0) -> None:
        if constant_watts < 0:
            raise ValueError(f"negative constant power {constant_watts!r} W")
        self._traces = list(traces)
        self._constant = float(constant_watts)

    @property
    def constant_watts(self) -> float:
        """The constant always-on component in watts."""
        return self._constant

    def power_at(self, t: float) -> float:
        """Instantaneous summed power at time ``t``."""
        return self._constant + sum(tr.power_at(t) for tr in self._traces)

    def energy_until(self, t: float) -> float:
        """Summed energy on ``[0, t]`` including the constant component."""
        if t <= 0:
            return 0.0
        return self._constant * t + sum(tr.energy_until(t) for tr in self._traces)

    def energy_between(self, t0: float, t1: float) -> float:
        """Summed energy on ``[t0, t1]``."""
        if t1 < t0:
            raise ValueError(f"energy_between interval reversed: [{t0}, {t1}]")
        return self.energy_until(t1) - self.energy_until(t0)

    def sample(self, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`power_at`."""
        times = np.asarray(times, dtype=np.float64)
        total = np.full(times.shape, self._constant, dtype=np.float64)
        for tr in self._traces:
            total += tr.sample(times)
        return total
