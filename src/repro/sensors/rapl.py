"""Intel RAPL (Running Average Power Limit) energy counters.

RAPL exposes per-package (and DRAM) energy accumulators through powercap
sysfs files::

    /sys/class/powercap/intel-rapl:0/energy_uj
    /sys/class/powercap/intel-rapl:0/max_energy_range_uj

The counter counts *microjoules* in 15.3 uJ quanta and wraps around at
``max_energy_range_uj`` (32-bit microjoule register on classic parts, i.e.
~4295 J — at a 200 W package draw it wraps every ~21 s, so any consumer
must handle wraparound).  There is no power register: power is obtained by
differencing energy reads, which is exactly what PMT's RAPL backend does.
"""

from __future__ import annotations

from repro.hardware.cpu import CpuDevice
from repro.sensors.base import SampledEnergyCounter
from repro.sensors.sysfs import VirtualSysfs

#: RAPL energy quantum (microjoules -> joules).
RAPL_ENERGY_QUANTUM_J = 15.3e-6

#: Classic 32-bit microjoule register range, in joules.
RAPL_MAX_ENERGY_RANGE_J = (2**32 - 1) * 1e-6

#: Effective refresh period of the RAPL MSR (about 1 kHz on real parts;
#: 10 ms here keeps simulated tick buffers small without changing any
#: observable behaviour at the paper's >=100 ms measurement granularity).
RAPL_PERIOD_S = 0.01

RAPL_DIR = "/sys/class/powercap"


class RaplPackage:
    """The RAPL package-domain energy counter of one CPU socket."""

    def __init__(
        self,
        cpu: CpuDevice,
        sysfs: VirtualSysfs,
        package_index: int = 0,
        seed: int = 0,
    ) -> None:
        self.cpu = cpu
        self.package_index = package_index
        self.counter = SampledEnergyCounter(
            cpu.trace,
            refresh_period_s=RAPL_PERIOD_S,
            watts_quantum=0.1,
            energy_quantum=RAPL_ENERGY_QUANTUM_J,
            wrap_joules=RAPL_MAX_ENERGY_RANGE_J,
            seed=seed,
            # The register is mid-count at job start (it wraps every ~20 s
            # under load anyway); consumers must handle both base and wrap.
            initial_joules=(seed * 149.0 + 12.5) % RAPL_MAX_ENERGY_RANGE_J,
        )
        base = f"{RAPL_DIR}/intel-rapl:{package_index}"
        sysfs.register(
            f"{base}/energy_uj",
            lambda t: str(int(round(self.counter.read(t).joules * 1e6))),
        )
        sysfs.register(
            f"{base}/max_energy_range_uj",
            lambda t: str(int(RAPL_MAX_ENERGY_RANGE_J * 1e6)),
        )
        sysfs.register(f"{base}/name", lambda t: f"package-{package_index}")

    def energy_uj(self, t: float) -> int:
        """Current (wrapping) accumulator value in microjoules."""
        return int(round(self.counter.read(t).joules * 1e6))

    @staticmethod
    def unwrap(previous_uj: int, current_uj: int) -> int:
        """Microjoules elapsed between two reads, handling one wraparound."""
        max_range = int(RAPL_MAX_ENERGY_RANGE_J * 1e6)
        delta = current_uj - previous_uj
        if delta < 0:
            delta += max_range
        return delta
