"""Power-profile analysis over PMT sampler dumps.

The toolkit's background sampler (:class:`repro.pmt.PmtSampler`) produces
``timestamp joules watts`` rows; this module turns them into the views a
user wants after a run: summary statistics, energy cross-checks (counter
difference vs power integration), and a terminal timeline chart showing
the step structure (compute plateaus, communication dips).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.ascii_plot import line_chart
from repro.errors import AnalysisError
from repro.pmt.sampler import SampleRow


@dataclass(frozen=True)
class ProfileStats:
    """Summary of one power profile."""

    duration_s: float
    mean_watts: float
    max_watts: float
    min_watts: float
    #: Energy from the counter difference (first to last row).
    counter_joules: float
    #: Energy from trapezoidal integration of the sampled power.
    integrated_joules: float

    @property
    def integration_error(self) -> float:
        """Relative disagreement between the two energy estimates."""
        if self.counter_joules <= 0:
            raise AnalysisError("counter energy must be positive")
        return abs(self.integrated_joules - self.counter_joules) / self.counter_joules


def interpolated_row(rows: list[SampleRow], t: float) -> SampleRow:
    """The profile's linearly-interpolated sample at time ``t``.

    ``t`` must lie inside the sampled range: the sampler knows nothing
    about power outside its first and last row, so extrapolating would
    invent energy.
    """
    if len(rows) < 2:
        raise AnalysisError("interpolation needs at least two samples")
    times = np.array([r.timestamp for r in rows])
    if np.any(np.diff(times) < 0):
        raise AnalysisError("sampler rows must be time-ordered")
    if t < times[0] or t > times[-1]:
        raise AnalysisError(
            f"time {t!r} outside sampled range "
            f"[{times[0]!r}, {times[-1]!r}]"
        )
    watts = float(np.interp(t, times, [r.watts for r in rows]))
    joules = float(np.interp(t, times, [r.joules for r in rows]))
    return SampleRow(timestamp=float(t), joules=joules, watts=watts)


def clip_rows(rows: list[SampleRow], t0: float, t1: float) -> list[SampleRow]:
    """Rows covering exactly ``[t0, t1]``, endpoints interpolated in.

    A region whose boundaries fall *between* sampler ticks loses the
    partial interval at each end if the profile is naively restricted to
    the rows inside the window — the trapezoidal integral then undercounts
    the region's energy by up to one full sampling interval per boundary.
    Clamping with boundary-interpolated samples closes the books: the
    clipped profiles of adjacent regions tile their union exactly.
    """
    if t1 <= t0:
        raise AnalysisError(f"empty clip window [{t0!r}, {t1!r}]")
    first = interpolated_row(rows, t0)
    last = interpolated_row(rows, t1)
    inner = [r for r in rows if t0 < r.timestamp < t1]
    return [first, *inner, last]


def profile_stats(
    rows: list[SampleRow], window: tuple[float, float] | None = None
) -> ProfileStats:
    """Compute summary statistics of a sampler dump.

    With ``window=(t0, t1)`` the profile is clamped to that sub-range
    using boundary-interpolated endpoint samples (see :func:`clip_rows`),
    so per-region stats integrate the partial sampling intervals at both
    ends instead of dropping them.
    """
    if len(rows) < 2:
        raise AnalysisError("a power profile needs at least two samples")
    if window is not None:
        rows = clip_rows(rows, *window)
    times = np.array([r.timestamp for r in rows])
    watts = np.array([r.watts for r in rows])
    if np.any(np.diff(times) < 0):
        raise AnalysisError("sampler rows must be time-ordered")
    duration = float(times[-1] - times[0])
    if duration <= 0:
        raise AnalysisError("profile spans zero time")
    integrated = float(np.trapezoid(watts, times))
    return ProfileStats(
        duration_s=duration,
        mean_watts=float(watts.mean()),
        max_watts=float(watts.max()),
        min_watts=float(watts.min()),
        counter_joules=rows[-1].joules - rows[0].joules,
        integrated_joules=integrated,
    )


def power_timeline_chart(
    rows: list[SampleRow], height: int = 10, width: int = 70, label: str = "node"
) -> str:
    """Render the sampled power as a terminal timeline."""
    if len(rows) < 2:
        raise AnalysisError("a power timeline needs at least two samples")
    series = {label: {r.timestamp: r.watts for r in rows}}
    return line_chart(series, height=height, width=width, y_label="watts vs seconds")
