"""On-disk content-addressed store of campaign run results.

One completed run is one JSON file at ``<root>/<hh>/<hash>.json`` where
``hash = run_key_hash(key)`` — the address commits to the full run
identity *and* the content of the configurations it referenced, so a
physics- or measurement-relevant config edit reads as a cache miss while
cosmetic execution settings cannot perturb the address at all.

Writes are atomic (temp file + ``os.replace`` in the same directory), so
a campaign killed mid-sweep leaves either complete entries or nothing:
re-running the same spec resumes from the completed subset.  The temp
name embeds hostname, pid, and a random token, so any number of workers
on any number of hosts can share one root (NFS included) without ever
clobbering each other's in-flight writes.

Corrupt or foreign files still read as misses, never as errors — but no
longer *silently*: :meth:`ResultStore.lookup` distinguishes a corrupt
entry from a plain miss, :meth:`ResultStore.stats` counts corrupt
entries and orphaned temp files, and :meth:`ResultStore.quarantine_corrupt`
moves rot aside so a decaying shared cache is visible instead of just
slow.
"""

from __future__ import annotations

import json
import os
import socket
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.campaign.keys import CACHE_SCHEMA_VERSION, RunKey, run_key_hash
from repro.instrumentation.records import RunMeasurements
from repro.slurm.job import JobAccounting


@dataclass(frozen=True)
class AccountingSummary:
    """The serializable subset of :class:`~repro.slurm.job.JobAccounting`.

    Everything ``sacct`` reports except the in-memory ``app_result``
    back-reference and the process-global ``job_id`` (normalized to 0 so
    serial and sharded executions serialize identically).
    """

    name: str
    num_nodes: int
    num_ranks: int
    submit_time: float
    start_time: float
    app_start_time: float
    app_end_time: float
    end_time: float
    consumed_energy_joules: float
    per_node_joules: tuple[float, ...]

    @classmethod
    def from_accounting(cls, acct: JobAccounting) -> "AccountingSummary":
        return cls(
            name=acct.name,
            num_nodes=acct.num_nodes,
            num_ranks=acct.num_ranks,
            submit_time=acct.submit_time,
            start_time=acct.start_time,
            app_start_time=acct.app_start_time,
            app_end_time=acct.app_end_time,
            end_time=acct.end_time,
            consumed_energy_joules=acct.consumed_energy_joules,
            per_node_joules=tuple(acct.per_node_joules),
        )

    def to_accounting(self, run: RunMeasurements | None = None) -> JobAccounting:
        """Rebuild a :class:`JobAccounting` view (``job_id`` is always 0)."""
        return JobAccounting(
            job_id=0,
            name=self.name,
            num_nodes=self.num_nodes,
            num_ranks=self.num_ranks,
            submit_time=self.submit_time,
            start_time=self.start_time,
            app_start_time=self.app_start_time,
            app_end_time=self.app_end_time,
            end_time=self.end_time,
            consumed_energy_joules=self.consumed_energy_joules,
            per_node_joules=list(self.per_node_joules),
            app_result=run,
        )


@dataclass(frozen=True)
class CampaignResult:
    """One run's archived outcome: measurements plus accounting."""

    key: RunKey
    run: RunMeasurements
    accounting: AccountingSummary


def _serialize(key: RunKey, result: CampaignResult, digest: str) -> str:
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "hash": digest,
        "key": asdict(key),
        "run": json.loads(result.run.to_json()),
        "accounting": asdict(result.accounting),
    }
    return json.dumps(payload, sort_keys=True, indent=1)


def _deserialize(text: str) -> CampaignResult:
    payload = json.loads(text)
    if payload.get("schema") != CACHE_SCHEMA_VERSION:
        raise ValueError(f"cache schema {payload.get('schema')!r}")
    acct = payload["accounting"]
    acct["per_node_joules"] = tuple(acct["per_node_joules"])
    return CampaignResult(
        key=RunKey(**payload["key"]),
        run=RunMeasurements.from_json(json.dumps(payload["run"])),
        accounting=AccountingSummary(**acct),
    )


#: ``lookup`` status values: a complete entry, no entry at all, or a
#: file at the right address that does not deserialize to the key.
HIT, MISS, CORRUPT = "hit", "miss", "corrupt"


class ResultStore:
    """Content-addressed result cache rooted at one directory.

    Safe to share between any number of processes on any number of
    hosts: reads see either a complete entry or nothing (writes land via
    same-directory ``os.replace``), and temp names embed
    ``hostname-pid-token`` so concurrent writers can never collide.
    ``corrupt_seen`` counts the corrupt/foreign entries this instance
    ran into, so executors can report a rotting cache instead of
    silently re-executing through it.
    """

    #: Subdirectory corrupt entries are quarantined into.
    QUARANTINE_DIR = "quarantine"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        #: Corrupt/foreign entries seen by this instance's lookups.
        self.corrupt_seen = 0

    def path_for(self, key: RunKey) -> Path:
        digest = run_key_hash(key)
        return self.root / digest[:2] / f"{digest}.json"

    def contains(self, key: RunKey) -> bool:
        return self.path_for(key).is_file()

    def lookup(self, key: RunKey) -> tuple[CampaignResult | None, str]:
        """The cached result plus how the address resolved.

        Returns ``(result, "hit")``, ``(None, "miss")`` for an absent
        entry, or ``(None, "corrupt")`` when a file exists at the key's
        address but does not deserialize back to the key (rotten bytes,
        a foreign schema, or a tampered/colliding entry).  Corrupt reads
        bump :attr:`corrupt_seen`.
        """
        path = self.path_for(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None, MISS
        except OSError:
            return None, MISS  # transiently unreadable: retry as a miss
        try:
            result = _deserialize(text)
        except (ValueError, KeyError, TypeError):
            self.corrupt_seen += 1
            return None, CORRUPT
        if result.key != key:
            self.corrupt_seen += 1  # hash collision or tampered entry
            return None, CORRUPT
        return result, HIT

    def get(self, key: RunKey) -> CampaignResult | None:
        """The cached result of ``key``, or ``None`` on any kind of miss."""
        return self.lookup(key)[0]

    def put(self, key: RunKey, result: CampaignResult) -> Path:
        """Atomically archive one completed run."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        digest = path.stem
        tmp = self._tmp_path(path)
        tmp.write_text(_serialize(key, result, digest))
        os.replace(tmp, path)
        return path

    @staticmethod
    def _tmp_path(path: Path) -> Path:
        """A collision-proof temp name next to ``path``.

        ``pid`` alone is not unique across hosts sharing the root over
        NFS; the hostname plus a random token makes simultaneous writers
        of the same entry land on distinct temp files.
        """
        token = os.urandom(4).hex()
        host = socket.gethostname()
        return path.with_name(f".{path.name}.tmp-{host}-{os.getpid()}-{token}")

    # -- maintenance --------------------------------------------------------

    def entries(self) -> list[Path]:
        """Every complete cache entry under the root."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("??/*.json"))

    def tmp_orphans(self) -> list[Path]:
        """Leftover temp files from killed runs (never reaped by writes)."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("??/.*.tmp-*"))

    def stats(self) -> dict[str, int]:
        """Entry/byte counts plus the cache-health counters.

        ``corrupt`` re-parses every entry, so the count reflects the
        store as it is on disk right now (not just what this process
        happened to read); ``tmp_orphans`` counts temp files abandoned
        by killed writers.
        """
        entries = self.entries()
        corrupt = 0
        for path in entries:
            try:
                _deserialize(path.read_text())
            except (OSError, ValueError, KeyError, TypeError):
                corrupt += 1
        return {
            "entries": len(entries),
            "bytes": sum(p.stat().st_size for p in entries),
            "corrupt": corrupt,
            "tmp_orphans": len(self.tmp_orphans()),
        }

    def reap_tmp(self) -> int:
        """Remove orphaned temp files; returns how many were reaped."""
        reaped = 0
        for tmp in self.tmp_orphans():
            try:
                tmp.unlink()
                reaped += 1
            except OSError:
                continue
        return reaped

    def quarantine_entry(self, key: RunKey) -> bool:
        """Move one key's (corrupt) entry into the quarantine directory.

        Used by the executor when a lookup reports rot: the bytes stay
        inspectable, the address reads as a plain miss, and the key is
        re-executed.  Returns whether anything was moved.
        """
        path = self.path_for(key)
        target = self.root / self.QUARANTINE_DIR / path.name
        target.parent.mkdir(parents=True, exist_ok=True)
        try:
            os.replace(path, target)
            return True
        except OSError:
            return False

    def quarantine_corrupt(self) -> int:
        """Move corrupt entries into ``<root>/quarantine/``.

        The entries then read as plain misses (re-executed and
        re-archived by the next sweep) while the rotten bytes stay
        available for inspection.  Returns the number quarantined.
        """
        moved = 0
        for path in self.entries():
            try:
                _deserialize(path.read_text())
            except (OSError, ValueError, KeyError, TypeError):
                target = self.root / self.QUARANTINE_DIR / path.name
                target.parent.mkdir(parents=True, exist_ok=True)
                try:
                    os.replace(path, target)
                    moved += 1
                except OSError:
                    continue
        return moved

    def clean(self, keys: tuple[RunKey, ...] | None = None) -> int:
        """Remove entries (all of them, or just those of ``keys``).

        Returns the number of entries removed; empty shard directories
        are pruned, and orphaned temp files of killed runs are reaped
        alongside (they are not counted in the return value).
        """
        removed = 0
        targets = (
            self.entries()
            if keys is None
            else [self.path_for(k) for k in keys]
        )
        for path in targets:
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        self.reap_tmp()
        for path in targets:
            parent = path.parent
            try:
                if parent != self.root and not any(parent.iterdir()):
                    parent.rmdir()
            except OSError:
                continue
        return removed
