"""Campaign engine: spec expansion, content-addressed caching, sharding.

The load-bearing properties:

* the cache key commits to every physics- and measurement-relevant
  configuration field (changing one invalidates the entry) but to no
  cosmetic execution setting (cache location, worker count);
* a sharded sweep is bit-identical to the serial ``workers=1`` sweep;
* merges are order-independent and reproduce exactly what the serial
  experiment loops used to return;
* a fully-cached re-run executes zero simulation steps.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.analysis.edp import normalized_edp_series, run_edp
from repro.campaign import (
    CampaignSpec,
    ResultStore,
    RunKey,
    campaign_summary,
    canonical_payload,
    execute,
    execute_key,
    expand,
    merge_figure4,
    run_key_hash,
    sort_key,
)
from repro.campaign.executor import CampaignStats
from repro.config import (
    CampaignSettings,
    MINIHPC,
    SUBSONIC_TURBULENCE,
)
from repro.errors import AnalysisError, ConfigurationError
from repro.experiments.frequency import (
    BASELINE_MHZ,
    figure4_series,
    figure4_spec,
    particles_of_side,
)
from repro.experiments.runner import run_scaled_experiment
from repro.experiments.scaling import weak_scaling_series
from repro.experiments.validation import figure1_series
from repro.instrumentation.records import RunMeasurements, TelemetryHealthRecord
from repro.instrumentation.reporting import campaign_health_summary

STEPS = 4
SIDES = (100, 140)
FREQS = (1410.0, 1005.0)

def small_fig4_spec(**overrides) -> CampaignSpec:
    kwargs = dict(cube_sides=SIDES, freqs_mhz=FREQS, num_steps=STEPS)
    kwargs.update(overrides)
    return figure4_spec(**kwargs)


def a_key(**overrides) -> RunKey:
    kwargs = dict(
        system="miniHPC",
        test_case="Subsonic Turbulence",
        num_cards=2,
        gpu_freq_mhz=1410.0,
        num_steps=STEPS,
        particles_per_rank=particles_of_side(100),
        seed=0,
    )
    kwargs.update(overrides)
    return RunKey(**kwargs)


class TestSpecExpansion:
    def test_cartesian_product_size(self):
        spec = small_fig4_spec()
        assert spec.num_points == len(SIDES) * len(FREQS)
        assert len(expand(spec)) == spec.num_points

    def test_defaults_resolve_to_paper_values(self):
        spec = CampaignSpec(
            name="t",
            systems=("CSCS-A100",),
            test_cases=("Subsonic Turbulence",),
            card_counts=(8,),
        )
        (key,) = expand(spec)
        assert key.num_steps == SUBSONIC_TURBULENCE.num_steps
        assert key.particles_per_rank == SUBSONIC_TURBULENCE.particles_per_gpu
        assert key.gpu_freq_mhz is None

    def test_expansion_order_is_deterministic(self):
        spec = small_fig4_spec()
        assert expand(spec) == expand(spec)

    def test_unknown_system_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(
                name="t",
                systems=("NoSuchMachine",),
                test_cases=("Subsonic Turbulence",),
                card_counts=(8,),
            )

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(
                name="t", systems=(), test_cases=("Subsonic Turbulence",),
                card_counts=(8,),
            )

    def test_duplicate_points_rejected(self):
        spec = small_fig4_spec(freqs_mhz=(1410.0, 1410.0))
        with pytest.raises(ConfigurationError):
            expand(spec)

    def test_sort_key_totally_orders_none_frequency(self):
        keys = [a_key(gpu_freq_mhz=f) for f in (1410.0, None, 1005.0)]
        ordered = sorted(keys, key=sort_key)
        assert ordered[0].gpu_freq_mhz is None
        assert ordered[1].gpu_freq_mhz == 1005.0


class TestRunKeyHash:
    """Satellite: cache invalidation semantics of the content address."""

    def test_stable_across_calls(self):
        assert run_key_hash(a_key()) == run_key_hash(a_key())

    @pytest.mark.parametrize(
        "change",
        [
            {"seed": 1},
            {"gpu_freq_mhz": 1005.0},
            {"gpu_freq_mhz": None},
            {"num_steps": STEPS + 1},
            {"particles_per_rank": particles_of_side(140)},
            {"num_cards": 4},
            {"system": "CSCS-A100"},
            {"test_case": "Evrard Collapse"},
        ],
    )
    def test_every_key_field_changes_the_hash(self, change):
        assert run_key_hash(a_key(**change)) != run_key_hash(a_key())

    def test_physics_config_content_changes_the_hash(self):
        """A GPU power-model coefficient edit must invalidate the cache."""
        base = MINIHPC
        gpu = base.node_spec.gpu
        hotter = dataclasses.replace(
            gpu,
            power_model=dataclasses.replace(
                gpu.power_model, compute_watts=gpu.power_model.compute_watts + 1.0
            ),
        )
        modified = dataclasses.replace(
            base, node_spec=dataclasses.replace(base.node_spec, gpu=hotter)
        )
        assert run_key_hash(a_key(), system=modified) != run_key_hash(a_key())

    @pytest.mark.parametrize(
        "field, value",
        [
            ("pmt_backend", "dummy"),
            ("has_memory_sensor", True),
            ("max_nodes", 7),
        ],
    )
    def test_measurement_config_fields_change_the_hash(self, field, value):
        modified = dataclasses.replace(MINIHPC, **{field: value})
        assert run_key_hash(a_key(), system=modified) != run_key_hash(a_key())

    def test_slurm_timing_changes_the_hash(self):
        """Setup-phase timing feeds the Figure 1 gap: not cosmetic."""
        timing = dataclasses.replace(MINIHPC.slurm_timing, launch_base_s=99.0)
        modified = dataclasses.replace(MINIHPC, slurm_timing=timing)
        assert run_key_hash(a_key(), system=modified) != run_key_hash(a_key())

    def test_test_case_content_changes_the_hash(self):
        modified = dataclasses.replace(SUBSONIC_TURBULENCE, has_driving=False)
        assert (
            run_key_hash(a_key(), test_case=modified) != run_key_hash(a_key())
        )

    def test_code_version_changes_the_hash(self, monkeypatch):
        import repro.campaign.keys as keys_mod

        before = run_key_hash(a_key())
        monkeypatch.setattr(keys_mod, "CODE_VERSION", "test-bump")
        assert run_key_hash(a_key()) != before

    def test_cosmetic_settings_never_enter_the_payload(self):
        """Output paths and worker counts must not perturb the address."""
        payload = json.dumps(canonical_payload(a_key()))
        for needle in ("workers", "cache_dir", "cache-dir", "output"):
            assert needle not in payload

    def test_store_location_is_not_part_of_the_address(self, tmp_path):
        a = ResultStore(tmp_path / "a").path_for(a_key())
        b = ResultStore(tmp_path / "somewhere" / "else").path_for(a_key())
        assert a.name == b.name


class TestResultStore:
    def test_roundtrip_is_exact(self, tmp_path):
        key = a_key()
        result = execute_key(key)
        store = ResultStore(tmp_path)
        store.put(key, result)
        loaded = store.get(key)
        assert loaded == result  # dataclass equality: bit-identical floats

    def test_missing_and_corrupt_entries_read_as_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        key = a_key()
        assert store.get(key) is None
        path = store.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert store.get(key) is None

    def test_entry_for_wrong_key_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key, other = a_key(), a_key(seed=1)
        store.put(key, execute_key(key))
        # Simulate a collision/tamper: other's address holds key's entry.
        other_path = store.path_for(other)
        other_path.parent.mkdir(parents=True, exist_ok=True)
        other_path.write_text(store.path_for(key).read_text())
        assert store.get(other) is None

    def test_clean_by_keys_and_wholesale(self, tmp_path):
        store = ResultStore(tmp_path)
        keys = [a_key(seed=s) for s in (0, 1, 2)]
        for key in keys:
            store.put(key, execute_key(key))
        assert store.stats()["entries"] == 3
        assert store.clean(tuple(keys[:1])) == 1
        assert store.stats()["entries"] == 2
        assert store.clean() == 2
        assert store.stats() == {
            "entries": 0,
            "bytes": 0,
            "corrupt": 0,
            "tmp_orphans": 0,
        }


class TestExecutor:
    def test_sharded_equals_serial_bit_for_bit(self, tmp_path):
        keys = expand(small_fig4_spec())
        serial, serial_stats = execute(keys, workers=1)
        sharded, sharded_stats = execute(
            keys, store=ResultStore(tmp_path), workers=4
        )
        assert serial == sharded  # full dataclass equality, every float
        assert serial_stats.misses == sharded_stats.misses == len(keys)

    def test_repeat_run_executes_zero_steps(self, tmp_path):
        keys = expand(small_fig4_spec())
        store = ResultStore(tmp_path)
        _, cold = execute(keys, store=store)
        assert cold.executed_steps == STEPS * len(keys)
        results, warm = execute(keys, store=store)
        assert warm.executed_steps == 0
        assert warm.hits == len(keys)
        assert len(results) == len(keys)

    def test_resume_runs_only_the_missing_points(self, tmp_path):
        keys = expand(small_fig4_spec())
        store = ResultStore(tmp_path)
        execute(keys[:2], store=store)  # "killed" after two points
        _, stats = execute(keys, store=store)
        assert stats.hits == 2
        assert stats.misses == len(keys) - 2

    def test_progress_reports_every_point(self, tmp_path):
        keys = expand(small_fig4_spec())
        seen = []
        execute(
            keys,
            store=ResultStore(tmp_path),
            progress=lambda stats, key: seen.append((stats.done, key)),
        )
        assert [done for done, _ in seen] == list(range(1, len(keys) + 1))
        assert {key for _, key in seen} == set(keys)

    def test_duplicate_keys_rejected(self):
        key = a_key()
        with pytest.raises(ConfigurationError):
            execute((key, key))

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ConfigurationError):
            execute((a_key(),), workers=0)


class TestMerges:
    @pytest.fixture(scope="class")
    def results(self):
        results, _ = execute(expand(small_fig4_spec()))
        return results

    def test_merge_is_order_independent(self, results):
        forward = dict(sorted(results.items(), key=lambda i: sort_key(i[0])))
        backward = dict(
            sorted(results.items(), key=lambda i: sort_key(i[0]), reverse=True)
        )
        assert merge_figure4(forward, BASELINE_MHZ) == merge_figure4(
            backward, BASELINE_MHZ
        )

    def test_figure4_matches_the_preexisting_serial_loop(self, results):
        """The campaign path reproduces the old serial implementation."""
        expected = {}
        for side in SIDES:
            by_freq = {}
            for freq in FREQS:
                run = run_scaled_experiment(
                    MINIHPC,
                    SUBSONIC_TURBULENCE,
                    num_cards=MINIHPC.cards_per_node,
                    gpu_freq_mhz=freq,
                    num_steps=STEPS,
                    particles_per_rank=particles_of_side(side),
                    seed=0,
                ).run
                by_freq[freq] = run_edp(run)
            expected[side] = normalized_edp_series(by_freq, BASELINE_MHZ)
        assert merge_figure4(results, BASELINE_MHZ) == expected

    def test_figure4_series_sharded_equals_serial(self, tmp_path):
        serial = figure4_series(
            cube_sides=SIDES, freqs_mhz=FREQS, num_steps=STEPS
        )
        sharded = figure4_series(
            cube_sides=SIDES,
            freqs_mhz=FREQS,
            num_steps=STEPS,
            workers=4,
            store=ResultStore(tmp_path),
        )
        assert serial == sharded

    def test_weak_scaling_series_sharded_equals_serial(self, tmp_path):
        from repro.config import CSCS_A100

        serial = weak_scaling_series(CSCS_A100, (8, 16), num_steps=STEPS)
        sharded = weak_scaling_series(
            CSCS_A100,
            (8, 16),
            num_steps=STEPS,
            workers=2,
            store=ResultStore(tmp_path),
        )
        assert serial == sharded

    def test_figure1_series_cached_equals_serial(self, tmp_path):
        from repro.config import CSCS_A100

        store = ResultStore(tmp_path)
        serial = figure1_series(CSCS_A100, (8, 16), num_steps=STEPS)
        warm = figure1_series(
            CSCS_A100, (8, 16), num_steps=STEPS, store=store
        )
        cached = figure1_series(
            CSCS_A100, (8, 16), num_steps=STEPS, store=store
        )
        assert serial == warm == cached

    def test_non_cubic_particle_count_rejected(self, results):
        key, result = next(iter(results.items()))
        bad = dataclasses.replace(key, particles_per_rank=12345.0)
        with pytest.raises(AnalysisError):
            merge_figure4({bad: result}, BASELINE_MHZ)


class TestSummary:
    def _run(self, degraded: bool) -> RunMeasurements:
        health = TelemetryHealthRecord(
            node_index=0,
            reads=10,
            retries=2,
            degraded_children=["gpu0"] if degraded else [],
            status="degraded" if degraded else "ok",
        )
        return RunMeasurements(
            system_name="miniHPC",
            test_case="Subsonic Turbulence",
            num_ranks=2,
            num_nodes=1,
            gcds_per_card=1,
            gpu_freq_mhz=1410.0,
            num_steps=4,
            particles_per_rank=1e6,
            app_start=0.0,
            app_end=1.0,
            telemetry_health=[health],
        )

    def test_clean_campaign_reports_ok(self):
        text = campaign_health_summary({"a": self._run(False)})
        assert "ok across 1 runs" in text
        assert "2 transient mitigations" in text

    def test_degraded_shard_is_named(self):
        text = campaign_health_summary(
            {"good": self._run(False), "bad": self._run(True)}
        )
        assert "1 of 2 runs DEGRADED" in text
        assert "bad: node 0: gpu0" in text
        assert "good" not in text.split("\n")[1]

    def test_campaign_summary_surfaces_health_and_stats(self, tmp_path):
        keys = expand(small_fig4_spec())
        results, stats = execute(keys, store=ResultStore(tmp_path))
        text = campaign_summary("fig4", stats, results)
        assert f"{len(keys)} points" in text
        assert f"Simulation steps executed: {stats.executed_steps}" in text
        assert "Telemetry QC: ok" in text

    def test_empty_campaign(self):
        assert "no runs" in campaign_health_summary({})
        text = campaign_summary("empty", CampaignStats(), {})
        assert "0 points" in text


class TestCampaignSettings:
    def test_defaults_are_serial(self):
        settings = CampaignSettings()
        assert settings.workers == 1
        assert settings.cache_dir

    def test_invalid_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignSettings(workers=0)

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/elsewhere")
        monkeypatch.setenv("REPRO_CAMPAIGN_WORKERS", "3")
        settings = CampaignSettings.from_env()
        assert settings.cache_dir == "/tmp/elsewhere"
        assert settings.workers == 3

    def test_bad_env_worker_count_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_WORKERS", "many")
        with pytest.raises(ConfigurationError):
            CampaignSettings.from_env()


class TestCampaignCli:
    ARGS = [
        "--sides", "100", "140", "--freqs", "1410", "1005", "--steps", "4",
    ]

    def _main(self, argv):
        from repro.cli import main

        return main(argv)

    def test_run_status_clean_cycle(self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path / "cache")]
        assert self._main(["campaign", "run", "fig4", *self.ARGS, *cache]) == 0
        out = capsys.readouterr().out
        assert "side^3" in out
        assert "4 points (0 cached, 4 executed" in out

        assert self._main(["campaign", "status", "fig4", *self.ARGS, *cache]) == 0
        assert "4 cached, 0 to run" in capsys.readouterr().out

        assert self._main(["campaign", "run", "fig4", *self.ARGS, *cache]) == 0
        out = capsys.readouterr().out
        assert "4 cached, 0 executed" in out
        assert "Simulation steps executed: 0" in out

        assert self._main(
            ["campaign", "clean", "fig4", *self.ARGS, *cache]
        ) == 0
        assert "removed 4" in capsys.readouterr().out

    def test_run_without_cache(self, tmp_path, capsys):
        argv = [
            "campaign", "run", "fig4", *self.ARGS,
            "--no-cache", "--quiet",
            "--cache-dir", str(tmp_path / "unused"),
        ]
        assert self._main(argv) == 0
        assert not (tmp_path / "unused").exists()

    def test_get_system_error_is_reported(self, capsys):
        # Unknown sweep names are argparse errors, exercised elsewhere;
        # a campaign over a bad card count surfaces as a ReproError.
        rc = self._main(
            ["campaign", "run", "weak-scaling", "--cards", "3", "--quiet"]
        )
        assert rc == 1
        assert "error:" in capsys.readouterr().err
