"""One-stop experiment runner: cluster + Slurm + instrumented scaled run.

Assembles the full stack for one job — simulated cluster of the requested
size, per-node telemetry, rank placement, Slurm controller with energy
accounting, PMT profiler, performance model — runs the instrumented
application inside the Slurm job lifecycle, and returns both views of the
energy (Slurm accounting and PMT measurements).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig, TestCaseConfig
from repro.hardware.cluster import Cluster
from repro.hardware.clock import VirtualClock
from repro.instrumentation.profiler import EnergyProfiler
from repro.instrumentation.records import RunMeasurements
from repro.mpi.costmodel import CommCostModel
from repro.mpi.engine import SpmdEngine
from repro.mpi.mapping import RankPlacement
from repro.sensors.telemetry import NodeTelemetry
from repro.slurm.job import JobAccounting, JobDescriptor
from repro.slurm.scheduler import SlurmController
from repro.sph.perfmodel import SphPerformanceModel
from repro.sph.propagator import GRAVITY_FUNCTIONS, TURBULENCE_FUNCTIONS
from repro.sph.scaled import ScaledSphApplication
from repro.units import mhz


@dataclass(frozen=True)
class ExperimentResult:
    """Everything one experiment produced."""

    system: SystemConfig
    test_case: TestCaseConfig
    num_cards: int
    gpu_freq_mhz: float
    accounting: JobAccounting
    run: RunMeasurements
    #: Per-node PMT samplers (power profiles), when sampling was requested.
    power_samplers: tuple = ()


def functions_for(test_case: TestCaseConfig) -> tuple[str, ...]:
    """The propagator function sequence of a test case."""
    if test_case.has_gravity:
        return GRAVITY_FUNCTIONS
    if test_case.has_driving:
        return TURBULENCE_FUNCTIONS
    from repro.sph.propagator import HYDRO_FUNCTIONS

    return HYDRO_FUNCTIONS


def _node_meter(telemetry):
    """A whole-node PMT meter: cray where available, else a composite of
    the NVML devices plus the RAPL package."""
    import repro.pmt as pmt

    if telemetry.pm_counters is not None:
        return pmt.create("cray", telemetry=telemetry)
    children = {
        f"gpu{i}": pmt.create("nvml", telemetry=telemetry, device_index=i)
        for i in range(len(telemetry.nvml))
    }
    children["cpu"] = pmt.create("rapl", telemetry=telemetry)
    return pmt.create("composite", meters=children)


def run_scaled_experiment(
    system: SystemConfig,
    test_case: TestCaseConfig,
    num_cards: int,
    gpu_freq_mhz: float | None = None,
    num_steps: int | None = None,
    particles_per_rank: float | None = None,
    seed: int = 0,
    privileged_dvfs: bool = False,
    power_sample_interval_s: float | None = None,
) -> ExperimentResult:
    """Run one paper-scale instrumented job.

    ``gpu_freq_mhz`` requests a frequency change before the run; on
    systems whose GPU frequency is not user controllable this raises
    (as on the real LUMI-G / CSCS-A100) unless ``privileged_dvfs`` is set.
    """
    num_nodes = system.nodes_for_cards(num_cards)
    clock = VirtualClock()
    cluster = Cluster(
        system.name.lower(), clock, system.node_spec, num_nodes, system.network
    )
    if gpu_freq_mhz is not None:
        cluster.set_gpu_frequency(mhz(gpu_freq_mhz), privileged=privileged_dvfs)

    telemetries = [
        NodeTelemetry(node, system, clock, seed=seed + i)
        for i, node in enumerate(cluster.nodes)
    ]
    placement = RankPlacement(cluster)
    engine = SpmdEngine(placement)
    cost_model = CommCostModel(system.network, placement)

    n_per_rank = (
        particles_per_rank
        if particles_per_rank is not None
        else test_case.particles_per_gpu
    )
    steps = num_steps if num_steps is not None else test_case.num_steps

    perfmodel = SphPerformanceModel(cost_model, n_per_rank, seed=seed)
    profiler = EnergyProfiler(placement, telemetries, system)
    app = ScaledSphApplication(
        engine=engine,
        profiler=profiler,
        perfmodel=perfmodel,
        functions=functions_for(test_case),
        num_steps=steps,
        test_case_name=test_case.name,
    )

    samplers = ()
    if power_sample_interval_s is not None:
        from repro.pmt.sampler import PmtSampler

        samplers = tuple(
            PmtSampler(_node_meter(tel), interval_s=power_sample_interval_s)
            for tel in telemetries
        )
        for sampler in samplers:
            sampler.start()

    controller = SlurmController(engine, telemetries, system)
    job = JobDescriptor(
        name=f"{test_case.name.replace(' ', '-').lower()}-{num_cards}c",
        num_nodes=num_nodes,
        particles_per_rank=n_per_rank,
    )
    accounting = controller.run_job(job, app.run)
    run: RunMeasurements = accounting.app_result

    for sampler in samplers:
        sampler.stop()

    return ExperimentResult(
        system=system,
        test_case=test_case,
        num_cards=num_cards,
        gpu_freq_mhz=run.gpu_freq_mhz,
        accounting=accounting,
        run=run,
        power_samplers=samplers,
    )
