"""Energy-aware dynamic frequency tuning (the paper's future work).

The conclusion of the paper: *"Future work includes the utilization of the
gathered data per-function and employing a variety of dynamic approaches
from the literature that trade-off high performance and energy
consumption."*  This package implements that step on top of the
measurement infrastructure:

* :mod:`repro.tuning.policy` — frequency policies: static, and a
  per-function oracle built from a measured frequency sweep;
* :mod:`repro.tuning.dynamic` — an instrumented application that switches
  the GPU clock at function boundaries (with a switching-latency cost);
* :mod:`repro.tuning.optimizer` — the end-to-end loop: sweep, build the
  per-function policy, run it, and report savings against the static
  baseline.
"""

from repro.tuning.policy import (
    FrequencyPolicy,
    PerFunctionPolicy,
    StaticPolicy,
    build_oracle_policy,
)
from repro.tuning.dynamic import DVFS_SWITCH_LATENCY_S, DynamicDvfsApplication
from repro.tuning.optimizer import TuningReport, tune_per_function

__all__ = [
    "FrequencyPolicy",
    "StaticPolicy",
    "PerFunctionPolicy",
    "build_oracle_policy",
    "DynamicDvfsApplication",
    "DVFS_SWITCH_LATENCY_S",
    "TuningReport",
    "tune_per_function",
]
