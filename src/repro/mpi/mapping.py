"""Rank-to-hardware placement.

The general rule in GPU-centric codes — one MPI rank drives one GPU unit —
interacts badly with per-card power sensors: on LUMI-G one MI250X card
hosts two GCDs, so two ranks share one ``accel`` counter, while on A100
systems the mapping is one-to-one.  Section 2 of the paper explains that
the analysis scripts must take exactly this hardware configuration and
rank-to-GPU assignment into account; :class:`RankPlacement` is that
knowledge, used both by the execution engine and by the analysis layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CommunicatorError
from repro.hardware.cluster import Cluster


@dataclass(frozen=True)
class RankLocation:
    """Where one rank lives."""

    rank: int
    node_index: int
    local_rank: int
    gpu_index: int
    card_index: int

    @property
    def gcd_within_card(self) -> int:
        """0 or 1: which die of its card this rank drives."""
        return self.gpu_index - self.card_index_first_gpu

    @property
    def card_index_first_gpu(self) -> int:
        # Derived lazily by RankPlacement; stored here for convenience.
        return self._card_first_gpu  # type: ignore[attr-defined]


class RankPlacement:
    """Block placement of one rank per GPU unit across a cluster."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self._locations: list[RankLocation] = []
        gcds_per_card = cluster.node_spec.gpu.gcds_per_card
        rank = 0
        for node_index, node in enumerate(cluster.nodes):
            for gpu_index in range(node.num_gpu_units):
                card_index = gpu_index // gcds_per_card
                loc = RankLocation(
                    rank=rank,
                    node_index=node_index,
                    local_rank=gpu_index,
                    gpu_index=gpu_index,
                    card_index=card_index,
                )
                object.__setattr__(
                    loc, "_card_first_gpu", card_index * gcds_per_card
                )
                self._locations.append(loc)
                rank += 1

    @property
    def size(self) -> int:
        """Total number of ranks (== total GPU units)."""
        return len(self._locations)

    def location(self, rank: int) -> RankLocation:
        """The placement of ``rank``."""
        if not 0 <= rank < self.size:
            raise CommunicatorError(
                f"rank {rank} out of range (communicator size {self.size})"
            )
        return self._locations[rank]

    def node_of(self, rank: int):
        """The :class:`~repro.hardware.node.Node` hosting ``rank``."""
        return self.cluster.nodes[self.location(rank).node_index]

    def gpu_of(self, rank: int):
        """The GPU unit ``rank`` drives."""
        loc = self.location(rank)
        return self.cluster.nodes[loc.node_index].gpus[loc.gpu_index]

    def card_of(self, rank: int):
        """The physical card (sensor granularity) hosting ``rank``'s GPU."""
        loc = self.location(rank)
        return self.cluster.nodes[loc.node_index].cards[loc.card_index]

    def ranks_on_node(self, node_index: int) -> list[int]:
        """All ranks placed on ``node_index``."""
        return [
            loc.rank for loc in self._locations if loc.node_index == node_index
        ]

    def sensor_sharing_groups(self) -> list[list[int]]:
        """Groups of ranks that share one GPU power sensor.

        Singletons on A100 systems; pairs on MI250X systems.  This is the
        structure the analysis layer needs to attribute per-card readings
        to ranks.
        """
        groups: dict[tuple[int, int], list[int]] = {}
        for loc in self._locations:
            groups.setdefault((loc.node_index, loc.card_index), []).append(loc.rank)
        return [groups[key] for key in sorted(groups)]

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        """Whether two ranks share a node (affects message cost)."""
        return (
            self.location(rank_a).node_index == self.location(rank_b).node_index
        )
