"""Ablation: sensor faults under the resilient measurement pipeline.

Injects each failure mode from :mod:`repro.sensors.inject` (frozen counter,
read dropout, power glitches) into one sensor of one node of a full
instrumented SPH run and quantifies the attribution error the resilient
layer leaves behind, relative to a fault-free run of the same job.

Fault timing is derived from the fault-free baseline so the fault lands
*inside* the instrumented application window (the window starts minutes
into the job on Cray systems because of the prolog); a fault outside the
window would exercise nothing.

Documented error bounds (asserted):

* freeze   — affected counter within 10 % (extrapolation from the freeze
  anchor at the last good power; exact under constant load, the bound
  covers power drift between reads);
* dropout  — within 1 % (the counter keeps accumulating through the
  outage, so the first read after recovery restores the true total);
* glitch   — within 0.5 % (glitches live in the power register only; the
  energy path is untouched and rejected watts are substituted).

Counters the fault does not touch must be bit-identical to the baseline.
"""

from conftest import write_result

from repro.config import CSCS_A100, LUMI_G, SUBSONIC_TURBULENCE
from repro.experiments.runner import run_scaled_experiment

#: (kind, target) matrix per system; targets are platform-relative
#: (see repro.sensors.inject).  ``cpu`` on CSCS-A100 is the RAPL domain —
#: included for the glitch case to demonstrate RAPL's structural immunity
#: (no power register to spike).
MATRIX = {
    "LUMI-G": (
        ("freeze", "node"),
        ("freeze", "gpu0"),
        ("dropout", "node"),
        ("dropout", "gpu0"),
        ("glitch", "node"),
    ),
    "CSCS-A100": (
        ("freeze", "gpu0"),
        ("dropout", "gpu0"),
        ("dropout", "cpu"),
        ("glitch", "gpu0"),
        ("glitch", "cpu"),
    ),
}

ERROR_BOUNDS = {"freeze": 0.10, "dropout": 0.01, "glitch": 0.005}


def _fault_kwargs(kind, run):
    """Place the fault mid-way through the instrumented app window."""
    mid = 0.5 * (run.app_start + run.app_end)
    if kind == "freeze":
        return {"freeze_at": mid}
    if kind == "dropout":
        return {"outage_start": mid, "outage_end": mid + 0.25 * run.app_seconds}
    return {"probability": 0.05, "magnitude_watts": 50_000.0, "seed": 0}


def _window_errors(faulted, baseline):
    """Relative per-counter energy errors of the fault node's window."""
    f = faulted.node_windows[0]
    b = baseline.node_windows[0]
    errors = {
        "node": abs(f.node_joules - b.node_joules) / b.node_joules,
        "cpu": abs(f.cpu_joules - b.cpu_joules) / b.cpu_joules,
    }
    for k, (fj, bj) in enumerate(zip(f.card_joules, b.card_joules)):
        errors[f"gpu{k}"] = abs(fj - bj) / bj
    return errors


def _affected_counter(system, target):
    """Which window counter the fault should perturb."""
    return target if target in ("node", "cpu") or target.startswith("gpu") else "node"


def _run_matrix(system, num_cards, num_steps, matrix):
    baseline = run_scaled_experiment(
        system, SUBSONIC_TURBULENCE, num_cards, num_steps=num_steps
    )
    rows = []
    for kind, target in matrix:
        result = run_scaled_experiment(
            system,
            SUBSONIC_TURBULENCE,
            num_cards,
            num_steps=num_steps,
            inject_fault=kind,
            fault_target=target,
            fault_node=0,
            fault_kwargs=_fault_kwargs(kind, baseline.run),
        )
        errors = _window_errors(result.run, baseline.run)
        health = result.run.telemetry_health[0]
        affected = _affected_counter(system, target)
        rows.append(
            {
                "kind": kind,
                "target": target,
                "err": errors[affected],
                "max_other_err": max(
                    v for k, v in errors.items() if k != affected
                ),
                "health": health,
                "run": result.run,
            }
        )
    return baseline, rows


def _check_and_format(system, num_cards, num_steps, baseline, rows):
    base_health = baseline.run.telemetry_health[0]
    assert base_health.status == "ok", "fault-free run must not degrade"
    assert not baseline.run.telemetry_degraded

    lines = [
        f"fault-tolerance ablation: {system.name}, {num_cards} cards, "
        f"{num_steps} steps",
        f"{'fault':>8} {'target':>7} {'err[%]':>8} {'other[%]':>9} "
        f"{'gaps':>5} {'stuck':>6} {'glitch':>7} {'status':>9}",
    ]
    for row in rows:
        kind, health = row["kind"], row["health"]
        bound = ERROR_BOUNDS[kind]
        assert row["err"] <= bound, (
            f"{kind} on {row['target']}: {row['err']:.4f} > {bound}"
        )
        if kind == "freeze":
            assert health.stuck_detections >= 1
            assert health.status == "degraded"
        elif kind == "dropout":
            assert health.gaps_interpolated > 0
            assert health.status == "degraded"
        else:  # glitch: power-register only, never degrades
            assert health.status == "ok"
            if row["target"] != "cpu":
                assert health.glitches_rejected > 0
            else:
                # RAPL has no power register; glitches cannot reach it.
                assert health.glitches_rejected == 0
                assert row["err"] == 0.0
        if health.status == "degraded":
            assert health.degraded_children, "degraded node must name children"
        lines.append(
            f"{kind:>8} {row['target']:>7} {100 * row['err']:>8.3f} "
            f"{100 * row['max_other_err']:>9.3f} "
            f"{health.gaps_interpolated:>5} {health.stuck_detections:>6} "
            f"{health.glitches_rejected:>7} {health.status:>9}"
        )
    return "\n".join(lines)


def bench_fault_tolerance_ablation(results_dir):
    sections = []
    for system in (LUMI_G, CSCS_A100):
        baseline, rows = _run_matrix(
            system, num_cards=8, num_steps=6, matrix=MATRIX[system.name]
        )
        sections.append(
            _check_and_format(system, 8, 6, baseline, rows)
        )
    write_result(
        results_dir, "ablation_fault_tolerance", "\n\n".join(sections)
    )


def bench_smoke_fault_tolerance(results_dir):
    """CI-sized variant (`make bench-smoke`): one system, one target.

    Six steps minimum: the stuck-counter grace window (3 s) must be small
    against the instrumented window for the freeze bound to hold.
    """
    matrix = (("freeze", "gpu0"), ("dropout", "gpu0"), ("glitch", "gpu0"))
    baseline, rows = _run_matrix(
        CSCS_A100, num_cards=8, num_steps=6, matrix=matrix
    )
    text = _check_and_format(CSCS_A100, 8, 6, baseline, rows)
    write_result(results_dir, "ablation_fault_tolerance_smoke", text)
