"""Command-line interface: ``python -m repro <command>``.

Every paper artifact is reachable from the shell:

* ``table1`` — the configuration inventory;
* ``fig1`` — PMT-vs-Slurm validation series;
* ``fig2`` / ``fig3`` — device and per-function breakdowns;
* ``fig4`` / ``fig5`` — the frequency-sweep EDP experiments;
* ``report`` — one instrumented run with sacct + PMT reports
  (optionally writing the raw measurement JSON; ``--timeseries`` also
  exports the retained telemetry timeline);
* ``export-trace`` — run a case and export Chrome-trace/Prometheus/CSV
  observability artifacts;
* ``watch`` — live per-node power sparklines while a run executes;
* ``tune`` — the dynamic per-function DVFS extension;
* ``backends`` — the registered PMT backends.

Reduced ``--steps`` make every command laptop-quick; the defaults match
the paper's 100-step runs.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.breakdown import device_breakdown
from repro.analysis.edp import normalized_edp_series
from repro.analysis.validation import validate_pmt_against_slurm
from repro.config import OBSERVABILITY_CASES, SYSTEMS, TEST_CASES, get_system
from repro.errors import ReproError


def _add_steps(parser: argparse.ArgumentParser, default: int = 100) -> None:
    parser.add_argument(
        "--steps",
        type=int,
        default=default,
        help=f"time-steps per run (paper: 100; default {default})",
    )


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments import table1_text

    print(table1_text())
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    import repro.pmt as pmt

    for name in pmt.available_backends():
        print(name)
    return 0


def _cmd_fig1(args: argparse.Namespace) -> int:
    from repro.experiments.validation import figure1_series, figure1_table

    all_series: dict[str, dict[float, float]] = {}
    for name in args.systems:
        system = get_system(name)
        points = figure1_series(
            system, tuple(args.cards), num_steps=args.steps
        )
        print(figure1_table(points))
        print()
        all_series[f"{name} PMT"] = {
            float(p.num_cards): p.pmt_joules / 1e6 for p in points
        }
        all_series[f"{name} Slurm"] = {
            float(p.num_cards): p.slurm_joules / 1e6 for p in points
        }
    if args.plot:
        from repro.analysis.ascii_plot import line_chart

        print(line_chart(all_series, y_label="energy [MJ] vs GPU cards"))
    return 0


def _cmd_fig2(args: argparse.Namespace) -> int:
    from repro.experiments.breakdowns import figure2_breakdowns
    from repro.units import joules_to_megajoules

    cells = figure2_breakdowns(num_cards=args.cards, num_steps=args.steps)
    header = f"{'Run':>16} {'Total [MJ]':>11} " + " ".join(
        f"{k:>8}" for k in ("GPU", "CPU", "Memory", "Other")
    )
    print(header)
    for cell in cells:
        shares = cell.devices.shares
        print(
            f"{cell.label:>16} "
            f"{joules_to_megajoules(cell.devices.total_joules):>11.2f} "
            f"{shares['GPU']:>8.1%} {shares['CPU']:>8.1%} "
            f"{shares.get('Memory', 0.0):>8.1%} {shares['Other']:>8.1%}"
        )
    if args.plot:
        from repro.analysis.ascii_plot import share_bars

        for cell in cells:
            print(f"\n{cell.label}:")
            print(share_bars(cell.devices.shares))
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    from repro.experiments.breakdowns import figure3_breakdowns
    from repro.units import joules_to_megajoules

    cells = figure3_breakdowns(num_cards=args.cards, num_steps=args.steps)
    for cell in cells:
        total = sum(r.joules for r in cell.gpu_functions)
        print(f"--- {cell.label} ---")
        for row in cell.gpu_functions[: args.top]:
            print(
                f"  {row.function:>24} "
                f"{joules_to_megajoules(row.joules):>8.3f} MJ "
                f"{row.joules / total:>7.2%}"
            )
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    from repro.experiments.frequency import figure4_series

    freqs = tuple(float(f) for f in args.freqs)
    series = figure4_series(
        cube_sides=tuple(args.sides), freqs_mhz=freqs, num_steps=args.steps
    )
    print("side^3  " + " ".join(f"{f:>7.0f}" for f in sorted(freqs, reverse=True)))
    for side, norm in series.items():
        print(
            f"{side:>5}^3 "
            + " ".join(f"{norm[f]:>7.3f}" for f in sorted(freqs, reverse=True))
        )
    if args.plot:
        from repro.analysis.ascii_plot import line_chart

        named = {f"{side}^3": norm for side, norm in series.items()}
        print(line_chart(named, y_label="normalized EDP vs MHz"))
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    from repro.experiments.frequency import figure5_series

    freqs = tuple(float(f) for f in args.freqs)
    series = figure5_series(freqs_mhz=freqs, num_steps=args.steps)
    ordered = sorted(freqs, reverse=True)
    print(f"{'Function':>24} " + " ".join(f"{f:>7.0f}" for f in ordered))
    for fn, norm in series.items():
        print(f"{fn:>24} " + " ".join(f"{norm[f]:>7.3f}" for f in ordered))
    if args.plot:
        from repro.analysis.ascii_plot import line_chart

        shown = {
            fn: norm
            for fn, norm in series.items()
            if fn in (
                "MomentumEnergy", "IADVelocityDivCurl",
                "DomainDecompAndSync", "Density",
            )
        }
        print(line_chart(shown, y_label="normalized EDP vs MHz"))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_scaled_experiment
    from repro.instrumentation import (
        device_report,
        function_report,
        health_report,
    )
    from repro.instrumentation.reporting import artifact_report
    from repro.slurm import sacct_report

    system = get_system(args.system)
    test_case = TEST_CASES[args.case]
    result = run_scaled_experiment(
        system,
        test_case,
        args.cards,
        num_steps=args.steps,
        resilient=not args.no_resilient,
        inject_fault=args.inject_fault,
        fault_target=args.fault_target,
        timeseries=args.timeseries,
    )
    print(sacct_report([result.accounting]))
    print()
    print(device_report(result.run))
    print()
    print(function_report(result.run, "gpu"))
    if result.run.telemetry_health:
        print()
        print(health_report(result.run))
    point = validate_pmt_against_slurm(result.run, result.accounting, args.cards)
    print(f"\nPMT/Slurm = {point.ratio:.3f} (quality: {point.quality})")
    if args.timeseries:
        from repro.timeseries import export_bundle

        collector = result.timeseries
        artifacts = export_bundle(
            args.artifacts_dir,
            collector.store,
            collector.spans,
            metadata=_run_metadata(result),
            basename=_artifact_basename(args.case, args.cards),
        )
        print()
        print(artifact_report(artifacts))
    if args.out:
        result.run.write(args.out)
        print(f"measurements written to {args.out}")
    return 0


def _artifact_basename(case: str, cards: int) -> str:
    return f"{case.replace(' ', '-').lower()}-{cards}c"


def _run_metadata(result) -> dict:
    return {
        "system": result.system.name,
        "test_case": result.test_case.name,
        "num_cards": result.num_cards,
        "gpu_freq_mhz": result.gpu_freq_mhz,
        "num_steps": result.run.num_steps,
    }


def _run_with_collector(args: argparse.Namespace, collector=None):
    from repro.experiments.runner import run_scaled_experiment

    return run_scaled_experiment(
        get_system(args.system),
        OBSERVABILITY_CASES[args.case],
        args.cards,
        num_steps=args.steps,
        power_sample_interval_s=args.interval,
        timeseries=True,
        collector=collector,
    )


def _cmd_export_trace(args: argparse.Namespace) -> int:
    from repro.instrumentation.reporting import artifact_report
    from repro.timeseries import export_bundle

    result = _run_with_collector(args)
    collector = result.timeseries
    artifacts = export_bundle(
        args.out_dir,
        collector.store,
        collector.spans,
        metadata=_run_metadata(result),
        basename=_artifact_basename(args.case, args.cards),
    )
    summary = collector.summary()
    print(
        f"{args.case} on {args.system}: "
        f"{summary['samples']} samples over {summary['channels']} channels, "
        f"{summary['spans']} region spans "
        f"({summary['store_bytes'] / 1024:.0f} KiB retained)"
    )
    print(artifact_report(artifacts))
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.timeseries import TimeseriesCollector, attach_live_printer

    collector = TimeseriesCollector()
    view = attach_live_printer(
        collector, every_ticks=args.every, width=args.width
    )
    result = _run_with_collector(args, collector=collector)
    # Final frame: the completed run's full dashboard.
    print(view.render())
    summary = collector.summary()
    print(
        f"\nrun complete: {summary['samples']} samples, "
        f"{summary['spans']} spans, "
        f"{result.run.app_seconds:.0f} s instrumented window"
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.compare import comparison_report
    from repro.experiments.runner import run_scaled_experiment

    case = TEST_CASES[args.case]
    run_a = run_scaled_experiment(
        get_system(args.system_a), case, args.cards, num_steps=args.steps
    ).run
    run_b = run_scaled_experiment(
        get_system(args.system_b), case, args.cards, num_steps=args.steps
    ).run
    print(comparison_report(run_a, run_b, counter=args.counter))
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.config import MINIHPC, SUBSONIC_TURBULENCE
    from repro.tuning import tune_per_function

    report = tune_per_function(
        MINIHPC,
        SUBSONIC_TURBULENCE,
        num_cards=2,
        freqs_mhz=tuple(float(f) for f in args.freqs),
        num_steps=args.steps,
        particles_per_rank=float(args.side) ** 3,
        objective=args.objective,
        max_slowdown=args.max_slowdown,
    )
    print("per-function policy (MHz):")
    for fn, freq in sorted(report.policy.table.items()):
        print(f"  {fn:>24} -> {freq:.0f}")
    dilation = report.dynamic_seconds / report.baseline_seconds
    print(f"switches          : {report.switch_count}")
    print(f"time dilation     : {dilation:.3f}x")
    print(f"EDP vs baseline   : {report.edp_vs_baseline:.3f}")
    print(f"EDP vs best static: {report.edp_vs_best_static:.3f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Application-level energy measurement for large-scale "
            "simulations (SC-W 2023 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print the Table 1 inventory").set_defaults(
        func=_cmd_table1
    )
    sub.add_parser("backends", help="list PMT backends").set_defaults(
        func=_cmd_backends
    )

    p = sub.add_parser("fig1", help="PMT vs Slurm validation series")
    p.add_argument("--plot", action="store_true", help="render an ASCII chart")
    p.add_argument(
        "--systems", nargs="+", default=["LUMI-G", "CSCS-A100"],
        choices=sorted(SYSTEMS),
    )
    p.add_argument("--cards", nargs="+", type=int, default=[8, 16, 24, 32, 40, 48])
    _add_steps(p)
    p.set_defaults(func=_cmd_fig1)

    p = sub.add_parser("fig2", help="device energy breakdown")
    p.add_argument("--plot", action="store_true", help="render ASCII bars")
    p.add_argument("--cards", type=int, default=48)
    _add_steps(p)
    p.set_defaults(func=_cmd_fig2)

    p = sub.add_parser("fig3", help="per-function energy breakdown")
    p.add_argument("--cards", type=int, default=48)
    p.add_argument("--top", type=int, default=6)
    _add_steps(p)
    p.set_defaults(func=_cmd_fig3)

    p = sub.add_parser("fig4", help="EDP vs frequency per problem size")
    p.add_argument("--plot", action="store_true", help="render an ASCII chart")
    p.add_argument("--sides", nargs="+", type=int, default=[200, 300, 450])
    p.add_argument("--freqs", nargs="+", default=[1410, 1230, 1005])
    _add_steps(p)
    p.set_defaults(func=_cmd_fig4)

    p = sub.add_parser("fig5", help="per-function EDP vs frequency")
    p.add_argument("--plot", action="store_true", help="render an ASCII chart")
    p.add_argument("--freqs", nargs="+", default=[1410, 1230, 1005])
    _add_steps(p)
    p.set_defaults(func=_cmd_fig5)

    p = sub.add_parser("report", help="one instrumented run, full reports")
    p.add_argument("--system", default="CSCS-A100", choices=sorted(SYSTEMS))
    p.add_argument(
        "--case", default="Subsonic Turbulence", choices=sorted(TEST_CASES)
    )
    p.add_argument("--cards", type=int, default=8)
    p.add_argument("--out", default=None, help="write measurement JSON here")
    p.add_argument(
        "--inject-fault",
        default=None,
        choices=["freeze", "dropout", "glitch"],
        help="break one sensor before the run (fault-injection ablation)",
    )
    p.add_argument(
        "--fault-target",
        default="gpu0",
        help="sensor to break: node/cpu/memory/gpu<K>/rocm<K> (default gpu0)",
    )
    p.add_argument(
        "--no-resilient",
        action="store_true",
        help="measure without the fault-tolerant layer (faults then abort)",
    )
    p.add_argument(
        "--timeseries",
        action="store_true",
        help="retain the telemetry timeline and export observability artifacts",
    )
    p.add_argument(
        "--artifacts-dir",
        default="artifacts",
        help="directory for --timeseries exports (default: artifacts/)",
    )
    _add_steps(p)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser(
        "export-trace",
        help="run a case, export Chrome-trace/Prometheus/CSV artifacts",
    )
    p.add_argument("--system", default="CSCS-A100", choices=sorted(SYSTEMS))
    p.add_argument(
        "--case", default="Sedov Blast", choices=sorted(OBSERVABILITY_CASES)
    )
    p.add_argument("--cards", type=int, default=8)
    p.add_argument(
        "--interval", type=float, default=None,
        help="sampling period in simulated seconds (default 1.0)",
    )
    p.add_argument(
        "--out-dir", default="artifacts", help="artifact directory"
    )
    _add_steps(p)
    p.set_defaults(func=_cmd_export_trace)

    p = sub.add_parser(
        "watch", help="live per-node power sparklines while a run executes"
    )
    p.add_argument("--system", default="CSCS-A100", choices=sorted(SYSTEMS))
    p.add_argument(
        "--case", default="Sedov Blast", choices=sorted(OBSERVABILITY_CASES)
    )
    p.add_argument("--cards", type=int, default=8)
    p.add_argument(
        "--interval", type=float, default=None,
        help="sampling period in simulated seconds (default 1.0)",
    )
    p.add_argument(
        "--every", type=int, default=50,
        help="render a frame every N sampler ticks (default 50)",
    )
    p.add_argument("--width", type=int, default=48, help="sparkline width")
    _add_steps(p, default=20)
    p.set_defaults(func=_cmd_watch)

    p = sub.add_parser(
        "compare", help="A/B per-function comparison between two systems"
    )
    p.add_argument("--system-a", default="CSCS-A100", choices=sorted(SYSTEMS))
    p.add_argument("--system-b", default="LUMI-G", choices=sorted(SYSTEMS))
    p.add_argument(
        "--case", default="Subsonic Turbulence", choices=sorted(TEST_CASES)
    )
    p.add_argument("--cards", type=int, default=8)
    p.add_argument("--counter", default="gpu", choices=["gpu", "cpu", "node"])
    _add_steps(p)
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("tune", help="dynamic per-function DVFS (extension)")
    p.add_argument("--freqs", nargs="+", default=[1410, 1230, 1005])
    p.add_argument("--side", type=int, default=450)
    p.add_argument("--objective", default="edp", choices=["edp", "energy"])
    p.add_argument("--max-slowdown", type=float, default=None)
    _add_steps(p, default=40)
    p.set_defaults(func=_cmd_tune)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
