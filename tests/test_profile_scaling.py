"""Tests for power profiles and the weak-scaling extension experiment."""

import pytest

from repro.analysis.profile import power_timeline_chart, profile_stats
from repro.config import CSCS_A100, LUMI_G, SUBSONIC_TURBULENCE
from repro.errors import AnalysisError
from repro.experiments.runner import run_scaled_experiment
from repro.experiments.scaling import weak_scaling_series, weak_scaling_table
from repro.pmt.sampler import SampleRow


class TestPowerProfiles:
    @pytest.fixture(scope="class", params=[LUMI_G, CSCS_A100])
    def result(self, request):
        return run_scaled_experiment(
            request.param,
            SUBSONIC_TURBULENCE,
            8,
            num_steps=5,
            power_sample_interval_s=5.0,
        )

    def test_one_sampler_per_node(self, result):
        assert len(result.power_samplers) == result.run.num_nodes

    def test_profile_covers_whole_job(self, result):
        sampler = result.power_samplers[0]
        stats = profile_stats(sampler.rows)
        assert stats.duration_s == pytest.approx(
            result.accounting.elapsed, rel=0.01
        )

    def test_counter_and_integration_agree(self, result):
        stats = profile_stats(result.power_samplers[0].rows)
        # Two independent energy estimates from the same dump.
        assert stats.integration_error < 0.10

    def test_power_range_sane(self, result):
        stats = profile_stats(result.power_samplers[0].rows)
        node = result.system.node_spec
        assert stats.min_watts >= 0
        # Node-ish ceiling: GPUs + CPU + slack.
        ceiling = (
            node.num_gpu_units * node.gpu.power_model.peak_watts_nominal
            + 2_000.0
        )
        assert stats.max_watts < ceiling

    def test_profile_shows_setup_vs_run_contrast(self, result):
        """Power during the instrumented window exceeds launch-phase power
        (idle GPUs vs loaded GPUs) — the Figure 1 mechanism, visible in
        the profile."""
        rows = result.power_samplers[0].rows
        app_start = result.run.app_start
        setup = [r.watts for r in rows if r.timestamp < app_start * 0.8]
        running = [r.watts for r in rows if r.timestamp > app_start]
        assert setup and running
        assert max(running) > max(setup)

    def test_timeline_chart_renders(self, result):
        text = power_timeline_chart(result.power_samplers[0].rows)
        assert "watts" in text

    def test_no_sampling_by_default(self):
        result = run_scaled_experiment(
            CSCS_A100, SUBSONIC_TURBULENCE, 8, num_steps=1
        )
        assert result.power_samplers == ()


class TestProfileStats:
    def make_rows(self):
        return [
            SampleRow(timestamp=0.0, joules=0.0, watts=100.0),
            SampleRow(timestamp=1.0, joules=100.0, watts=100.0),
            SampleRow(timestamp=2.0, joules=200.0, watts=100.0),
        ]

    def test_constant_power(self):
        stats = profile_stats(self.make_rows())
        assert stats.mean_watts == 100.0
        assert stats.counter_joules == 200.0
        assert stats.integrated_joules == pytest.approx(200.0)
        assert stats.integration_error == pytest.approx(0.0)

    def test_too_few_rows(self):
        with pytest.raises(AnalysisError):
            profile_stats(self.make_rows()[:1])

    def test_unordered_rows_rejected(self):
        rows = self.make_rows()[::-1]
        with pytest.raises(AnalysisError):
            profile_stats(rows)


class TestWeakScaling:
    @pytest.fixture(scope="class")
    def points(self):
        return weak_scaling_series(
            CSCS_A100, (8, 16, 32), num_steps=10
        )

    def test_near_ideal_weak_scaling(self, points):
        """Time per step grows only mildly with scale."""
        times = [p.seconds_per_step for p in points]
        assert times[-1] < 1.25 * times[0]
        assert times[-1] >= times[0] * 0.95  # but does not shrink

    def test_energy_per_card_stable(self, points):
        per_card = [p.joules_per_card for p in points]
        assert max(per_card) < 1.25 * min(per_card)

    def test_total_energy_grows_linearly_ish(self, points):
        totals = [p.total_joules for p in points]
        assert totals[1] == pytest.approx(2 * totals[0], rel=0.2)
        assert totals[2] == pytest.approx(4 * totals[0], rel=0.25)

    def test_domain_share_grows_with_scale(self, points):
        shares = [p.domain_sync_share for p in points]
        assert shares[-1] >= shares[0]

    def test_table_rendering(self, points):
        table = weak_scaling_table(points)
        assert "MJ/card" in table
        assert "32" in table
