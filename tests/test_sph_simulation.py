"""End-to-end solver tests: hooks, propagator sequences, conservation."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sph import ProfilingHooks, Simulation
from repro.sph.driving import TurbulenceDriver
from repro.sph.initial_conditions import make_evrard, make_turbulence
from repro.sph.propagator import (
    GRAVITY_FUNCTIONS,
    HYDRO_FUNCTIONS,
    Propagator,
    TURBULENCE_FUNCTIONS,
)


class TestHooks:
    def test_regions_recorded(self):
        hooks = ProfilingHooks()
        with hooks.region("A"):
            pass
        with hooks.region("A"):
            pass
        with hooks.region("B"):
            pass
        assert hooks.counts == {"A": 2, "B": 1}
        assert hooks.region_names() == ["A", "B"]

    def test_subscriber_ordering(self):
        hooks = ProfilingHooks()
        events = []

        class Sub:
            def __init__(self, tag):
                self.tag = tag

            def on_enter(self, name):
                events.append(("enter", self.tag, name))

            def on_exit(self, name):
                events.append(("exit", self.tag, name))

        hooks.subscribe(Sub("x"))
        hooks.subscribe(Sub("y"))
        with hooks.region("F"):
            events.append(("body", None, "F"))
        assert events == [
            ("enter", "x", "F"),
            ("enter", "y", "F"),
            ("body", None, "F"),
            ("exit", "y", "F"),
            ("exit", "x", "F"),
        ]

    def test_nested_regions(self):
        hooks = ProfilingHooks()
        with hooks.region("outer"):
            assert hooks.active_region == "outer"
            with hooks.region("inner"):
                assert hooks.active_region == "inner"
        assert hooks.active_region is None

    def test_reentrant_region_rejected(self):
        hooks = ProfilingHooks()
        with pytest.raises(SimulationError):
            with hooks.region("A"):
                with hooks.region("A"):
                    pass

    def test_exit_fires_on_exception(self):
        hooks = ProfilingHooks()
        calls = []

        class Sub:
            def on_enter(self, name):
                calls.append("enter")

            def on_exit(self, name):
                calls.append("exit")

        hooks.subscribe(Sub())
        with pytest.raises(RuntimeError):
            with hooks.region("F"):
                raise RuntimeError("boom")
        assert calls == ["enter", "exit"]


class TestFunctionSequences:
    def test_turbulence_sequence(self):
        box_ps = make_turbulence(n_side=4)
        ps, box = box_ps
        prop = Propagator(box, driver=TurbulenceDriver(box))
        assert prop.function_sequence == TURBULENCE_FUNCTIONS
        assert "TurbulenceDriving" in prop.function_sequence
        assert "Gravity" not in prop.function_sequence

    def test_gravity_sequence(self):
        ps, box = make_evrard(n=100)
        prop = Propagator(box, gravity=True)
        assert prop.function_sequence == GRAVITY_FUNCTIONS
        assert "Gravity" in prop.function_sequence

    def test_plain_hydro_sequence(self):
        ps, box = make_turbulence(n_side=4)
        prop = Propagator(box)
        assert prop.function_sequence == HYDRO_FUNCTIONS

    def test_paper_function_names_present(self):
        """The Figure 3/5 function inventory is exactly reproduced."""
        for name in (
            "DomainDecompAndSync",
            "FindNeighbors",
            "MomentumEnergy",
            "IADVelocityDivCurl",
            "Timestep",
            "EnergyConservation",
        ):
            assert name in HYDRO_FUNCTIONS


class TestTurbulenceRun:
    def test_ten_steps_stable(self):
        ps, box = make_turbulence(n_side=8, seed=21)
        driver = TurbulenceDriver(box, amplitude=2.0, seed=21)
        sim = Simulation(ps, Propagator(box, driver=driver))
        sim.run(10, validate_every=5)
        assert len(sim.history) == 10
        assert sim.time > 0
        ps.validate()

    def test_driving_builds_kinetic_energy(self):
        ps, box = make_turbulence(n_side=8, seed=22)
        driver = TurbulenceDriver(box, amplitude=3.0, seed=22)
        sim = Simulation(ps, Propagator(box, driver=driver))
        sim.run(10)
        assert sim.history[-1].totals.kinetic > sim.history[0].totals.kinetic * 2

    def test_momentum_conserved_without_driving(self):
        ps, box = make_turbulence(n_side=8, seed=23)
        rng = np.random.default_rng(23)
        ps.vel = rng.normal(0.0, 0.05, size=ps.vel.shape)
        p0 = ps.momentum().copy()
        sim = Simulation(ps, Propagator(box))
        sim.run(8)
        drift = np.abs(sim.ps.momentum() - p0).max()
        assert drift < 1e-12

    def test_hooks_cover_every_function(self):
        ps, box = make_turbulence(n_side=6, seed=24)
        driver = TurbulenceDriver(box, seed=24)
        prop = Propagator(box, driver=driver)
        sim = Simulation(ps, prop)
        sim.run(3)
        for name in prop.function_sequence:
            assert sim.hooks.counts[name] == 3

    def test_neighbor_count_near_target(self):
        ps, box = make_turbulence(n_side=8, seed=25, n_target=64)
        sim = Simulation(ps, Propagator(box, n_target=64))
        sim.run(6)
        assert sim.history[-1].mean_neighbors == pytest.approx(64, rel=0.25)


class TestEvrardRun:
    def test_collapse_increases_kinetic_energy(self):
        ps, box = make_evrard(n=800, seed=31)
        sim = Simulation(ps, Propagator(box, gravity=True))
        sim.run(10)
        assert sim.history[-1].totals.kinetic > sim.history[0].totals.kinetic

    def test_total_energy_drift_bounded(self):
        ps, box = make_evrard(n=800, seed=32)
        sim = Simulation(ps, Propagator(box, gravity=True))
        sim.run(15)
        e = [s.totals.total_energy for s in sim.history]
        drift = abs(e[-1] - e[0]) / abs(e[0])
        assert drift < 0.05

    def test_infall_is_radial(self):
        ps, box = make_evrard(n=800, seed=33)
        sim = Simulation(ps, Propagator(box, gravity=True))
        sim.run(8)
        r_hat = sim.ps.pos / np.maximum(
            np.linalg.norm(sim.ps.pos, axis=1, keepdims=True), 1e-12
        )
        radial_v = np.einsum("ia,ia->i", sim.ps.vel, r_hat)
        # The bulk of the sphere falls inward.
        assert np.mean(radial_v < 0) > 0.8

    def test_angular_momentum_remains_small(self):
        ps, box = make_evrard(n=500, seed=34)
        sim = Simulation(ps, Propagator(box, gravity=True))
        sim.run(8)
        L = np.linalg.norm(sim.history[-1].totals.angular_momentum)
        # Started from rest; IAD-matrix and monopole tree forces are not
        # exactly central, so L drifts slightly — but it must stay far
        # below the characteristic scale M * R * v_infall ~ 0.1.
        assert L < 1e-3


class TestSimulationApi:
    def test_invalid_steps(self):
        ps, box = make_turbulence(n_side=4)
        sim = Simulation(ps, Propagator(box))
        with pytest.raises(SimulationError):
            sim.run(0)

    def test_history_grows(self):
        ps, box = make_turbulence(n_side=4)
        sim = Simulation(ps, Propagator(box))
        sim.run(2)
        sim.run(3)
        assert [s.step for s in sim.history] == [1, 2, 3, 4, 5]
