"""Virtual simulation clock.

All hardware, sensors, the Slurm scheduler and the MPI runtime share one
:class:`VirtualClock`.  Time only moves forward and only when the simulation
driver advances it; this makes every experiment fully deterministic and
independent of wall-clock time.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ClockError


class VirtualClock:
    """A monotonically non-decreasing simulated clock.

    Parameters
    ----------
    start:
        Initial simulated time in seconds (default ``0.0``).
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ClockError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)
        self._listeners: list[Callable[[float], None]] = []
        self._boundary_providers: list[
            Callable[[float, float], float | None]
        ] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, dt: float) -> float:
        """Advance the clock by ``dt`` seconds and return the new time.

        ``dt`` must be non-negative; a zero advance is allowed (it is used
        for instantaneous events such as back-to-back sensor reads).

        When boundary providers are registered, a coarse advance is split
        into segments: the clock stops at every boundary inside the span,
        notifying listeners each time, so a listener taking a reading
        always observes ``now`` equal to its own sampling boundary.  Time
        still only moves forward — segmentation changes *when* listeners
        observe the clock, never the final time.
        """
        if dt < 0:
            raise ClockError(f"cannot advance clock by negative dt {dt!r}")
        if dt == 0:
            return self._now
        target = self._now + dt
        while self._now < target:
            stop = target
            for provider in self._boundary_providers:
                boundary = provider(self._now, target)
                if boundary is None:
                    continue
                if boundary <= self._now or boundary > target:
                    raise ClockError(
                        f"boundary provider returned {boundary!r} outside "
                        f"({self._now!r}, {target!r}]"
                    )
                stop = min(stop, boundary)
            self._now = stop
            for listener in self._listeners:
                listener(self._now)
        return self._now

    def advance_to(self, t: float) -> float:
        """Advance the clock to absolute time ``t`` (must be >= now)."""
        if t < self._now:
            raise ClockError(
                f"cannot move clock backwards from {self._now!r} to {t!r}"
            )
        return self.advance(t - self._now)

    def on_advance(self, listener: Callable[[float], None]) -> None:
        """Register a callback invoked with the new time after each advance.

        Used by free-running samplers (e.g. the Slurm energy plugin) that
        must take periodic readings regardless of who advances time.
        """
        self._listeners.append(listener)

    def on_boundary(
        self, provider: Callable[[float, float], float | None]
    ) -> None:
        """Register a sampling-boundary provider.

        ``provider(now, target)`` must return the earliest time in
        ``(now, target]`` at which its owner needs to observe the clock,
        or ``None`` when it has no boundary in that span.  During an
        :meth:`advance`, the clock stops at each returned boundary before
        notifying listeners, so periodic samplers read their meters *at*
        the boundary instead of after the full (possibly coarse) jump —
        the difference between crediting a tick to the segment it belongs
        to and smearing it onto the advance's end time.
        """
        self._boundary_providers.append(provider)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"VirtualClock(now={self._now:.6f})"
