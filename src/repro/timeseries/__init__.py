"""Streaming telemetry: retained, queryable, exportable power timelines.

The measurement pipeline used to reduce every run to end-of-run scalar
tables; this package retains the *when*.  Sampler ticks stream through a
:class:`~repro.timeseries.collect.TimeseriesCollector` into a bounded,
tiered :class:`~repro.timeseries.store.SampleStore`; profiler region
marks become :class:`~repro.timeseries.spans.SpanRecorder` spans; the
exporters emit Chrome-trace JSON (Perfetto), Prometheus text and flat
dumps; and the live view renders rolling per-node power sparklines while
a run executes.
"""

from repro.timeseries.collect import TimeseriesCollector
from repro.timeseries.export import (
    chrome_trace,
    escape_label_value,
    export_bundle,
    prometheus_text,
    prometheus_text_multi,
    write_chrome_trace,
    write_csv,
    write_jsonl,
    write_prometheus,
    write_trace_csv,
)
from repro.timeseries.live import LiveView, attach_live_printer
from repro.timeseries.rolling import RollingMean
from repro.timeseries.spans import Instant, Span, SpanRecorder
from repro.timeseries.store import (
    ChannelSeries,
    SampleStore,
    TierStats,
    lttb_indices,
    quality_code,
    quality_name,
)

__all__ = [
    "ChannelSeries",
    "Instant",
    "LiveView",
    "RollingMean",
    "SampleStore",
    "Span",
    "SpanRecorder",
    "TierStats",
    "TimeseriesCollector",
    "attach_live_printer",
    "chrome_trace",
    "escape_label_value",
    "export_bundle",
    "lttb_indices",
    "prometheus_text",
    "prometheus_text_multi",
    "quality_code",
    "quality_name",
    "write_chrome_trace",
    "write_csv",
    "write_jsonl",
    "write_prometheus",
    "write_trace_csv",
]
