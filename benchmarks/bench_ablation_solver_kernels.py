"""Ablation/throughput: raw host performance of the real SPH kernels.

pytest-benchmark timings of the numerical building blocks at a fixed
problem size, so regressions in the vectorized implementations are
caught.  These benchmark the *actual solver* (the physics the scaled runs
stand on), not the simulated cluster.

``bench_solver_kernels_table`` writes the committed
``ablation_solver_kernels.txt``: per-kernel pairlist timings plus the
whole-step cost of the CSR/SoA engine (NumPy and, when a toolchain is
available, the compiled fast path) on one box.
"""

import time

import numpy as np
import pytest
from conftest import write_result

from repro.sph import csolver
from repro.sph.gravity import BarnesHutGravity
from repro.sph.hooks import ProfilingHooks
from repro.sph.initial_conditions import make_turbulence
from repro.sph.neighbors import cell_list_pairs, find_neighbors
from repro.sph.physics import (
    compute_density,
    compute_iad_and_divcurl,
    compute_momentum_energy,
    ideal_gas_eos,
)
from repro.sph.propagator import Propagator

N_SIDE = 16  # 4096 particles


@pytest.fixture(scope="module")
def state():
    ps, box = make_turbulence(n_side=N_SIDE, seed=5)
    rng = np.random.default_rng(5)
    ps.vel = rng.normal(0.0, 0.05, size=ps.vel.shape)
    pairs = find_neighbors(ps.pos, ps.h, box)
    ps.nc = pairs.neighbor_counts()
    compute_density(ps, pairs)
    ideal_gas_eos(ps)
    compute_iad_and_divcurl(ps, pairs)
    return ps, box, pairs


def bench_neighbor_search(benchmark, state):
    ps, box, _ = state
    pairs = benchmark(cell_list_pairs, ps.pos, ps.h, box)
    assert pairs.n_pairs > 0


def bench_density(benchmark, state):
    ps, box, pairs = state
    benchmark(compute_density, ps, pairs)
    assert np.all(ps.rho > 0)


def bench_iad(benchmark, state):
    ps, box, pairs = state
    benchmark(compute_iad_and_divcurl, ps, pairs)


def bench_momentum_energy(benchmark, state):
    ps, box, pairs = state
    benchmark(compute_momentum_energy, ps, pairs)
    assert np.all(np.isfinite(ps.acc))


def bench_barnes_hut(benchmark):
    rng = np.random.default_rng(11)
    pos = rng.normal(0.0, 1.0, size=(4096, 3))
    mass = np.full(4096, 1.0 / 4096)

    def build_and_evaluate():
        return BarnesHutGravity(pos, mass, theta=0.6, eps=0.02).acceleration()

    acc = benchmark(build_and_evaluate)
    assert np.all(np.isfinite(acc))


def _best_of(fn, repeats=5):
    """Best wall-clock of ``repeats`` calls, in milliseconds."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best * 1e3


def bench_solver_kernels_table(results_dir):
    """The committed full result: pairlist kernels + CSR engine steps."""
    ps, box = make_turbulence(n_side=N_SIDE, seed=5)
    rng = np.random.default_rng(5)
    ps.vel = rng.normal(0.0, 0.05, size=ps.vel.shape)
    pairs = find_neighbors(ps.pos, ps.h, box)
    ps.nc = pairs.neighbor_counts()
    compute_density(ps, pairs)
    ideal_gas_eos(ps)
    compute_iad_and_divcurl(ps, pairs)

    lines = [
        f"solver kernels: turbulence n={N_SIDE ** 3}, best-of-5 wall "
        "clock (ms)",
        "pairlist kernels:",
        f"  neighbor_search "
        f"{_best_of(lambda: cell_list_pairs(ps.pos, ps.h, box)):>9.2f}",
        f"  density         "
        f"{_best_of(lambda: compute_density(ps, pairs)):>9.2f}",
        f"  iad+divcurl     "
        f"{_best_of(lambda: compute_iad_and_divcurl(ps, pairs)):>9.2f}",
        f"  momentum+energy "
        f"{_best_of(lambda: compute_momentum_energy(ps, pairs)):>9.2f}",
    ]

    accels = ["numpy"] + (["c"] if csolver.load() is not None else [])
    lines.append("csr engine, steady-state step:")
    step_ms = {}
    for accel in accels:
        ps_e, box_e = make_turbulence(n_side=N_SIDE, seed=5)
        ps_e.vel = np.random.default_rng(5).normal(
            0.0, 0.05, size=ps_e.vel.shape
        )
        prop = Propagator(box_e, engine="csr", accel=accel)
        hooks = ProfilingHooks()
        for _ in range(2):  # build the list, warm the pools
            prop.step(ps_e, hooks)
        step_ms[accel] = _best_of(lambda: prop.step(ps_e, hooks))
        lines.append(f"  accel={accel:<6} {step_ms[accel]:>9.2f}")
    if "c" not in step_ms:
        lines.append("  accel=c      skipped (no C toolchain)")
    else:
        # The compiled path must actually pay for its complexity.
        assert step_ms["c"] < step_ms["numpy"]
    write_result(results_dir, "ablation_solver_kernels", "\n".join(lines))


def bench_smoke_solver_kernels(results_dir):
    # Run every kernel once at a small size; correctness only, no timing.
    ps, box = make_turbulence(n_side=8, seed=5)
    rng = np.random.default_rng(5)
    ps.vel = rng.normal(0.0, 0.05, size=ps.vel.shape)
    pairs = find_neighbors(ps.pos, ps.h, box)
    ps.nc = pairs.neighbor_counts()
    compute_density(ps, pairs)
    ideal_gas_eos(ps)
    compute_iad_and_divcurl(ps, pairs)
    compute_momentum_energy(ps, pairs)
    assert pairs.n_pairs > 0
    assert np.all(ps.rho > 0)
    assert np.all(np.isfinite(ps.acc))

    rng = np.random.default_rng(11)
    pos = rng.normal(0.0, 1.0, size=(512, 3))
    mass = np.full(512, 1.0 / 512)
    acc = BarnesHutGravity(pos, mass, theta=0.6, eps=0.02).acceleration()
    assert np.all(np.isfinite(acc))

    lines = [
        "Solver kernel smoke: 512 particles, every kernel runs and stays "
        "finite",
        f"neighbor pairs: {pairs.n_pairs}",
        f"mean density: {float(ps.rho.mean()):.6f}",
        f"max |acc|: {float(np.abs(ps.acc).max()):.6e}",
    ]
    write_result(results_dir, "ablation_solver_kernels_smoke", "\n".join(lines))
