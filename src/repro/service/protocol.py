"""Wire protocol of the telemetry service.

Frames are length-prefixed JSON: a 4-byte big-endian payload length
followed by a UTF-8 JSON object.  JSON keeps the protocol dependency-free
and debuggable (``nc`` + a hex dump reads it); the length prefix makes
framing trivial under partial reads and lets the receiver reject an
oversized frame *before* buffering it.  The same batch objects travel as
the body of the HTTP ``POST /ingest`` endpoint, so both ingest paths
share one validator.

Message kinds, client -> server:

* ``hello`` — opens a session: tenant name, a source label, the protocol
  version, and the backpressure mode (``wait`` blocks the socket when the
  tenant's write queue is saturated; ``shed`` never blocks and lets the
  server drop the batch *with accounting*);
* ``batch`` — one node's samples for one or more channels, columnar
  (``t``/``watts``/``joules`` and optional ``quality`` code arrays);
* ``sync`` — requests an ``ack`` carrying the tenant's ingest counters
  (the explicit backpressure/accounting handshake);
* ``bye`` — closes the session; the server acks and disconnects.

Server -> client: ``ack`` (counters snapshot) and ``error``.  ``error``
frames answer frame- and session-level violations: an undecodable
frame, a bad ``hello``, a ``batch`` before ``hello``, an unknown kind.
A structurally invalid *batch* on an established session is rejected
ledger-only — counted in the tenant's ``rejected`` counters and visible
in every ``ack``, but no ``error`` frame is sent, so the hot ingest
path never stalls behind a publisher that isn't reading.  Either way a
bad input is counted, never silently ignored.
"""

from __future__ import annotations

import json
import struct

import numpy as np

from repro.errors import ConfigurationError

#: Protocol version sent in ``hello`` and checked by the server.
PROTOCOL_VERSION = 1

#: Hard ceiling on one frame's JSON payload (16 MiB): a corrupt length
#: prefix must not make the server buffer gigabytes.
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Backpressure modes a session can request.
BACKPRESSURE_MODES = ("wait", "shed")

_LEN = struct.Struct(">I")


class ProtocolError(ConfigurationError):
    """Raised on malformed frames or invalid protocol usage."""


def encode_frame(message: dict) -> bytes:
    """One wire frame for ``message``."""
    payload = json.dumps(message, sort_keys=True, separators=(",", ":")).encode()
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame ceiling"
        )
    return _LEN.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame decoder over an arbitrary byte-chunk stream."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[dict]:
        """Buffer ``data`` and return every completed frame's message."""
        self._buf.extend(data)
        out: list[dict] = []
        while True:
            if len(self._buf) < _LEN.size:
                return out
            (length,) = _LEN.unpack_from(self._buf)
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"incoming frame of {length} bytes exceeds the "
                    f"{MAX_FRAME_BYTES}-byte frame ceiling"
                )
            if len(self._buf) < _LEN.size + length:
                return out
            payload = bytes(self._buf[_LEN.size : _LEN.size + length])
            del self._buf[: _LEN.size + length]
            try:
                message = json.loads(payload)
            except ValueError as exc:
                raise ProtocolError(f"frame payload is not JSON: {exc}") from None
            if not isinstance(message, dict) or "kind" not in message:
                raise ProtocolError("frame payload must be an object with 'kind'")
            out.append(message)

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buf)


# -- messages ---------------------------------------------------------------


def hello_message(
    tenant: str, source: str = "client", backpressure: str = "wait"
) -> dict:
    if backpressure not in BACKPRESSURE_MODES:
        raise ProtocolError(
            f"unknown backpressure mode {backpressure!r}; "
            f"expected one of {BACKPRESSURE_MODES}"
        )
    if not tenant:
        raise ProtocolError("tenant name must be non-empty")
    return {
        "kind": "hello",
        "tenant": str(tenant),
        "source": str(source),
        "protocol": PROTOCOL_VERSION,
        "backpressure": backpressure,
    }


def batch_message(node: int, channels: dict[str, dict[str, list]]) -> dict:
    """One ingest batch: ``channels`` maps a name to its sample columns."""
    return {"kind": "batch", "node": int(node), "channels": channels}


def sync_message() -> dict:
    return {"kind": "sync"}


def bye_message() -> dict:
    return {"kind": "bye"}


# -- batch validation -------------------------------------------------------


def batch_columns(channel_payload: dict) -> tuple[np.ndarray, ...]:
    """Validated ``(t, watts, joules, quality)`` columns of one channel.

    The quality column is optional on the wire (all-``ok`` when absent).
    Column lengths must agree and times must be non-decreasing *within
    the batch* (cross-batch ordering is the store's check).
    """
    try:
        t = np.asarray(channel_payload["t"], dtype=np.float64)
        watts = np.asarray(channel_payload["watts"], dtype=np.float64)
        joules = np.asarray(channel_payload["joules"], dtype=np.float64)
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed batch columns: {exc}") from None
    if "quality" in channel_payload:
        try:
            quality = np.asarray(channel_payload["quality"], dtype=np.uint8)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed quality column: {exc}") from None
    else:
        quality = np.zeros(len(t), dtype=np.uint8)
    if not (len(t) == len(watts) == len(joules) == len(quality)):
        raise ProtocolError(
            "batch columns must have equal length, got "
            f"t:{len(t)} watts:{len(watts)} joules:{len(joules)} "
            f"quality:{len(quality)}"
        )
    if len(t) == 0:
        raise ProtocolError("batch channel carries no samples")
    if np.any(np.diff(t) < 0):
        raise ProtocolError("batch sample times must be non-decreasing")
    return t, watts, joules, quality


def parse_batch(message: dict) -> tuple[int, dict[str, tuple[np.ndarray, ...]]]:
    """Validated ``(node, {channel: columns})`` of one batch message."""
    if message.get("kind") != "batch":
        raise ProtocolError(f"expected a batch message, got {message.get('kind')!r}")
    try:
        node = int(message["node"])
    except (KeyError, TypeError, ValueError):
        raise ProtocolError("batch message carries no integer 'node'") from None
    channels = message.get("channels")
    if not isinstance(channels, dict) or not channels:
        raise ProtocolError("batch message carries no channels")
    return node, {
        str(name): batch_columns(payload) for name, payload in channels.items()
    }


def batch_num_samples(message: dict) -> int:
    """Total samples a (structurally valid) batch message carries."""
    return sum(
        len(payload.get("t", ()))
        for payload in message.get("channels", {}).values()
    )
