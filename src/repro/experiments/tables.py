"""Table 1: simulation and computing-system parameters."""

from __future__ import annotations

from repro.config import SYSTEMS, TEST_CASES
from repro.units import hz_to_mhz


def table1_text() -> str:
    """Render the Table 1 inventory from the live configuration objects."""
    lines = ["Simulation Parameters", "====================="]
    for case in TEST_CASES.values():
        counts = "--".join(f"{b:g}" for b in case.global_particles_billions)
        lines.append(
            f"  {case.name}: {case.particles_per_gpu / 1e6:.0f} million "
            f"particles per GPU, -n {counts} billion particles, "
            f"-s {case.num_steps} time-steps"
        )
    lines += ["", "Hardware of each Node", "====================="]
    for system in SYSTEMS.values():
        spec = system.node_spec
        lines.append(f"  {system.name}:")
        lines.append(
            f"    1x {spec.cpu.cores} cores {spec.cpu.model} CPU with "
            f"{spec.memory.capacity_gib:.0f} GiB memory"
        )
        unit = "GPU half cards" if spec.gpu.gcds_per_card == 2 else "GPUs"
        lines.append(
            f"    {spec.num_gpu_units}x {spec.gpu.model} {unit} with "
            f"{spec.gpu.memory_gib:.0f} GB memory"
        )
        lines.append(
            f"    GPU compute frequency: "
            f"{hz_to_mhz(spec.gpu.nominal_freq_hz):.0f} MHz, "
            f"GPU memory frequency: "
            f"{hz_to_mhz(spec.gpu.memory_freq_hz):.0f} MHz"
        )
        lines.append(
            f"    PMT backend: {system.pmt_backend}, memory sensor: "
            f"{'yes' if system.has_memory_sensor else 'no'}, user DVFS: "
            f"{'yes' if spec.gpu_freq_user_controllable else 'no'}"
        )
    return "\n".join(lines)
