"""Tests for the paper-scale roofline performance model."""

import pytest

from repro.config import CSCS_A100, LUMI_G, MINIHPC
from repro.errors import SimulationError
from repro.hardware import Cluster, VirtualClock
from repro.mpi import CommCostModel, RankPlacement
from repro.sph import calibration as cal
from repro.sph.calibration import FUNCTION_COSTS, efficiency
from repro.sph.perfmodel import SphPerformanceModel
from repro.sph.propagator import TURBULENCE_FUNCTIONS
from repro.units import mhz


def make_model(system, num_nodes=1, particles=150e6, jitter=0.0):
    clock = VirtualClock()
    cluster = Cluster("c", clock, system.node_spec, num_nodes, system.network)
    placement = RankPlacement(cluster)
    cost_model = CommCostModel(system.network, placement)
    return cluster, SphPerformanceModel(cost_model, particles, jitter=jitter)


class TestCalibrationTables:
    def test_every_loop_function_has_costs(self):
        for name in TURBULENCE_FUNCTIONS + ("Gravity",):
            assert name in FUNCTION_COSTS

    def test_efficiency_lookup(self):
        nv = efficiency("nvidia", "MomentumEnergy")
        amd = efficiency("amd", "MomentumEnergy")
        assert 0 < amd.flop_efficiency < nv.flop_efficiency <= 1

    def test_unknown_vendor_gets_default(self):
        assert efficiency("intel", "MomentumEnergy").flop_efficiency > 0

    def test_unknown_function_gets_vendor_default(self):
        assert efficiency("amd", "SomethingNew").flop_efficiency > 0


class TestPhases:
    def test_unknown_function_rejected(self):
        cluster, model = make_model(CSCS_A100)
        with pytest.raises(SimulationError):
            model.phases("NotAFunction", cluster.nodes[0].gpus[0], 0, 0)

    def test_invalid_particles_rejected(self):
        clock = VirtualClock()
        cluster = Cluster("c", clock, CSCS_A100.node_spec, 1, CSCS_A100.network)
        cost_model = CommCostModel(CSCS_A100.network, RankPlacement(cluster))
        with pytest.raises(SimulationError):
            SphPerformanceModel(cost_model, 0.0)

    def test_momentum_energy_compute_bound_stretches_with_downclock(self):
        cluster, model = make_model(MINIHPC, particles=450.0**3)
        gpu = cluster.nodes[0].gpus[0]
        at_nominal = model.phases("MomentumEnergy", gpu, 0, 0).kernel_seconds
        gpu.set_frequency(mhz(1005))
        at_low = model.phases("MomentumEnergy", gpu, 0, 0).kernel_seconds
        assert at_low > at_nominal * 1.15

    def test_memory_bound_function_insensitive_to_downclock(self):
        cluster, model = make_model(MINIHPC, particles=450.0**3)
        gpu = cluster.nodes[0].gpus[0]
        at_nominal = model.phases("Density", gpu, 0, 0).kernel_seconds
        gpu.set_frequency(mhz(1005))
        at_low = model.phases("Density", gpu, 0, 0).kernel_seconds
        assert at_low == pytest.approx(at_nominal, rel=0.10)

    def test_small_problem_latency_bound(self):
        """Below saturation, down-clocking barely stretches even compute
        kernels (the Figure 4 200^3 mechanism)."""
        cluster_small, model_small = make_model(MINIHPC, particles=200.0**3)
        gpu = cluster_small.nodes[0].gpus[0]
        nominal = model_small.phases("MomentumEnergy", gpu, 0, 0).kernel_seconds
        gpu.set_frequency(mhz(1005))
        low = model_small.phases("MomentumEnergy", gpu, 0, 0).kernel_seconds
        stretch_small = low / nominal

        cluster_big, model_big = make_model(MINIHPC, particles=450.0**3)
        gpu_big = cluster_big.nodes[0].gpus[0]
        nominal_big = model_big.phases("MomentumEnergy", gpu_big, 0, 0).kernel_seconds
        gpu_big.set_frequency(mhz(1005))
        low_big = model_big.phases("MomentumEnergy", gpu_big, 0, 0).kernel_seconds
        assert stretch_small < low_big / nominal_big

    def test_amd_momentum_energy_slower_than_nvidia(self):
        """The Figure 3 contrast: less-tuned HIP kernels on the MI250X."""
        lumi, lumi_model = make_model(LUMI_G)
        cscs, cscs_model = make_model(CSCS_A100)
        t_amd = lumi_model.phases(
            "MomentumEnergy", lumi.nodes[0].gpus[0], 0, 0
        ).kernel_seconds
        t_nv = cscs_model.phases(
            "MomentumEnergy", cscs.nodes[0].gpus[0], 0, 0
        ).kernel_seconds
        assert t_amd > 1.5 * t_nv

    def test_durations_scale_with_particles(self):
        cluster, small = make_model(CSCS_A100, particles=10e6)
        _, large = make_model(CSCS_A100, particles=100e6)
        gpu = cluster.nodes[0].gpus[0]
        assert (
            large.phases("Density", gpu, 0, 0).kernel_seconds
            > 5 * small.phases("Density", gpu, 0, 0).kernel_seconds
        )

    def test_comm_only_on_comm_functions(self):
        cluster, model = make_model(CSCS_A100, num_nodes=2)
        gpu = cluster.nodes[0].gpus[0]
        assert model.phases("DomainDecompAndSync", gpu, 0, 0).comm_seconds > 0
        assert model.phases("Timestep", gpu, 0, 0).comm_seconds > 0
        assert model.phases("MomentumEnergy", gpu, 0, 0).comm_seconds == 0

    def test_utilizations_in_range(self):
        cluster, model = make_model(LUMI_G)
        gpu = cluster.nodes[0].gpus[0]
        for fn in TURBULENCE_FUNCTIONS:
            ph = model.phases(fn, gpu, 0, 0)
            assert 0.0 <= ph.gpu_compute <= 1.0
            assert 0.0 <= ph.gpu_memory <= 1.0
            assert ph.kernel_seconds > 0

    def test_jitter_deterministic_and_bounded(self):
        cluster, model = make_model(CSCS_A100, jitter=0.02)
        gpu = cluster.nodes[0].gpus[0]
        a = model.phases("Density", gpu, rank=3, step=7).kernel_seconds
        b = model.phases("Density", gpu, rank=3, step=7).kernel_seconds
        c = model.phases("Density", gpu, rank=4, step=7).kernel_seconds
        assert a == b
        assert a != c
        base = model.phases("Density", gpu, 0, 0).kernel_seconds / (
            1 + model._jitter_factor("Density", 0, 0) - 1
        )
        assert abs(a - c) / a < 0.1

    def test_total_seconds(self):
        cluster, model = make_model(CSCS_A100, num_nodes=2)
        ph = model.phases("DomainDecompAndSync", cluster.nodes[0].gpus[0], 0, 0)
        assert ph.total_seconds == pytest.approx(
            ph.kernel_seconds + ph.comm_seconds
        )

    def test_step_time_in_calibrated_range(self):
        """At 150 M particles/rank a step takes a few seconds (paper scale)."""
        cluster, model = make_model(CSCS_A100)
        gpu = cluster.nodes[0].gpus[0]
        step = sum(
            model.phases(fn, gpu, 0, 0).total_seconds
            for fn in TURBULENCE_FUNCTIONS
        )
        assert 2.0 < step < 12.0
