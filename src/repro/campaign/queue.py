"""Lease-based federated work queue over the shared result store.

Any number of worker processes on any number of hosts drain one expanded
campaign against one shared cache root with **no coordinator**: the only
shared state is the filesystem, and every coordination primitive is an
atomic filesystem operation.

Lease protocol
    One in-flight run is one claim file ``<root>/leases/<hash>.lease``
    created with ``O_CREAT | O_EXCL`` — exactly one worker can win the
    create, no matter how many race.  The file body names the holder
    (``host:pid:token``).  While the run executes, a heartbeat thread
    refreshes the lease's mtime; a lease whose mtime is older than the
    TTL belongs to a dead worker (SIGKILL stops heartbeats too) and may
    be *stolen*: the stealer atomically renames the stale lease to a
    private tombstone (only one rename can win), removes it, and
    re-acquires through the normal ``O_EXCL`` path.  A run is therefore
    executed by at most one live worker at a time, and a killed worker's
    key is recovered after at most one TTL.

Failure records
    A worker exception archives a typed :class:`RunFailure` at
    ``<root>/failures/<hash>.json`` instead of aborting the drain.
    Failed keys are retried up to ``max_attempts`` times with a
    blake2s-deterministic backoff (no host randomness); keys that
    exhaust their attempts are *poisoned* — quarantined from leasing
    forever rather than re-leased in a hot loop — and reported at the
    end.

Determinism
    Workers never influence results: every run is seeded from its
    :class:`~repro.campaign.keys.RunKey` alone and archived through the
    same serializer the serial path uses, so a federated drain is
    byte-identical to the serial reference no matter how many workers
    (or hosts, or steals) it took.  The federation benchmark and the
    hypothesis property test assert exactly this.

Wall-clock note: lease expiry is *host* time by design — it measures
worker liveness, not simulated physics — so this module is the one place
in the campaign engine allowed to read the host clock (waivered for the
accounting lint, which otherwise forbids wall-clock reads).
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.campaign.keys import RunKey, run_key_hash
from repro.campaign.store import MISS, ResultStore
from repro.errors import ConfigurationError


def _wall_now() -> float:
    """Host time for lease expiry (never enters any measurement)."""
    return time.time()  # audit-lint: allow[wallclock] worker liveness clock


def _worker_token() -> str:
    """A random per-worker token (cosmetic: never enters results)."""
    return os.urandom(4).hex()


@dataclass(frozen=True)
class FederationConfig:
    """Tuning knobs of the lease queue (cosmetic: never enter results)."""

    #: A lease whose mtime is older than this is considered abandoned.
    lease_ttl_s: float = 30.0
    #: Heartbeat period of the executing worker's mtime refresh.
    heartbeat_s: float = 2.0
    #: Attempts per key before it is poisoned (quarantined from leasing).
    max_attempts: int = 3
    #: Base backoff between retries of a failed key (scaled by attempt
    #: count and a blake2s-deterministic jitter).
    retry_backoff_s: float = 0.5
    #: Idle sleep between drain passes when every key is leased elsewhere.
    poll_s: float = 0.05

    def __post_init__(self) -> None:
        if self.lease_ttl_s <= 0:
            raise ConfigurationError("lease_ttl_s must be positive")
        if self.heartbeat_s <= 0 or self.heartbeat_s >= self.lease_ttl_s:
            raise ConfigurationError(
                "heartbeat_s must be positive and below lease_ttl_s "
                f"(got {self.heartbeat_s} vs ttl {self.lease_ttl_s})"
            )
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.retry_backoff_s < 0:
            raise ConfigurationError("retry_backoff_s must be >= 0")
        if self.poll_s <= 0:
            raise ConfigurationError("poll_s must be positive")


@dataclass(frozen=True)
class WorkerProfile:
    """Identity and machine profile one drain worker advertises.

    ``systems`` is the placement preference: keys whose
    :attr:`~repro.campaign.keys.RunKey.system` appears there are scanned
    (and therefore leased) first, so a worker on A100-class hardware
    drains the A100 keys while an MI250X-profiled peer starts from the
    LUMI-G end of the matrix.  Preference never partitions: once its
    preferred keys are done a worker takes anything, so a campaign
    always drains even when profiles and keys disagree.
    """

    host: str
    pid: int
    token: str
    systems: tuple[str, ...] = ()

    @classmethod
    def local(
        cls, systems: tuple[str, ...] = (), token: str | None = None
    ) -> "WorkerProfile":
        return cls(
            host=socket.gethostname(),
            pid=os.getpid(),
            token=token if token is not None else _worker_token(),
            systems=tuple(systems),
        )

    @property
    def worker_id(self) -> str:
        return f"{self.host}:{self.pid}:{self.token}"


def placement_order(
    keys: tuple[RunKey, ...], profile: WorkerProfile | None
) -> tuple[RunKey, ...]:
    """Keys reordered for one worker: preferred systems first.

    A stable partition — spec order is preserved inside each group — so
    the scan order stays deterministic given the profile.
    """
    if profile is None or not profile.systems:
        return tuple(keys)
    wanted = set(profile.systems)
    preferred = [k for k in keys if k.system in wanted]
    rest = [k for k in keys if k.system not in wanted]
    return tuple(preferred + rest)


# ---------------------------------------------------------------------------
# Leases
# ---------------------------------------------------------------------------


class Lease:
    """One held claim file, with an optional heartbeat thread.

    A holder that stalls past the TTL and gets its lease stolen must not
    refresh or unlink the *stealer's* re-created claim at the same path,
    so both the heartbeat and :meth:`release` verify the claim file
    still names this worker as the holder and stand down otherwise
    (inodes are no discriminator: tmpfs reuses them immediately).
    """

    def __init__(self, path: Path, worker_id: str) -> None:
        self.path = path
        self.worker_id = worker_id
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _still_ours(self) -> bool:
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return False  # gone or mid-steal: either way, not ours
        return payload.get("holder") == self.worker_id

    def start_heartbeat(self, interval_s: float) -> None:
        """Refresh the lease mtime every ``interval_s`` until released.

        The thread dies with the process: after a SIGKILL the mtime goes
        stale and the lease becomes stealable — exactly the recovery
        path the queue is built around.
        """

        def beat() -> None:
            while not self._stop.wait(interval_s):
                if not self._still_ours():
                    return  # released or stolen: stop
                try:
                    os.utime(self.path)
                except OSError:
                    return

        self._thread = threading.Thread(target=beat, daemon=True)
        self._thread.start()

    def release(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if not self._still_ours():
            return  # stolen and re-claimed: not ours to remove
        try:
            self.path.unlink()
        except OSError:
            pass  # already swept: nothing left to release


class LeaseQueue:
    """Atomic claim files under ``<root>/leases`` with steal-on-expiry."""

    LEASES_DIR = "leases"

    def __init__(
        self,
        root: str | Path,
        profile: WorkerProfile | None = None,
        config: FederationConfig | None = None,
    ) -> None:
        self.root = Path(root)
        self.profile = profile if profile is not None else WorkerProfile.local()
        self.config = config if config is not None else FederationConfig()
        self.leases = self.root / self.LEASES_DIR
        #: Stale leases this queue instance stole.
        self.stolen = 0

    def lease_path(self, digest: str) -> Path:
        return self.leases / f"{digest}.lease"

    def try_acquire(self, digest: str, steal: bool = True) -> Lease | None:
        """Claim ``digest``; ``None`` when another live worker holds it.

        A stale claim (mtime beyond the TTL — its holder stopped
        heartbeating) is stolen first when ``steal`` is set.
        """
        path = self.lease_path(digest)
        self.leases.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "holder": self.profile.worker_id,
                "host": self.profile.host,
                "pid": self.profile.pid,
                "token": self.profile.token,
            }
        )
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            if steal and self._is_stale(path):
                return self._steal(path, digest)
            return None
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
        return Lease(path, self.profile.worker_id)

    def _is_stale(self, path: Path) -> bool:
        try:
            mtime = path.stat().st_mtime
        except OSError:
            return False  # vanished: the holder released it normally
        return _wall_now() - mtime > self.config.lease_ttl_s

    def _steal(self, path: Path, digest: str) -> Lease | None:
        """Recover an abandoned claim; at most one stealer can win.

        The stale lease is renamed to a per-worker tombstone first —
        rename is atomic, so of N simultaneous stealers exactly one
        succeeds and the rest see ``FileNotFoundError`` — then the
        winner re-acquires through the ordinary ``O_EXCL`` create.
        """
        tomb = self.leases / f"{digest}.stolen-{self.profile.token}"
        try:
            os.rename(path, tomb)
        except OSError:
            return None  # lost the steal race (or the holder came back)
        try:
            tomb.unlink()
        except OSError:
            pass
        self.stolen += 1
        return self.try_acquire(digest, steal=False)

    def sweep(self) -> int:
        """Unlink stale leases and stale tombstones; returns the count.

        Fresh leases (live workers) and fresh tombstones (a steal in
        flight) are left alone.
        """
        if not self.leases.is_dir():
            return 0
        swept = 0
        for path in sorted(self.leases.iterdir()):
            if self._is_stale(path):
                try:
                    path.unlink()
                    swept += 1
                except OSError:
                    continue
        return swept

    def active(self) -> tuple[int, int]:
        """(live, stale) lease counts right now."""
        if not self.leases.is_dir():
            return 0, 0
        live = stale = 0
        for path in sorted(self.leases.glob("*.lease")):
            if self._is_stale(path):
                stale += 1
            else:
                live += 1
        return live, stale


# ---------------------------------------------------------------------------
# Failure records
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunFailure:
    """One key's archived execution failure."""

    digest: str
    key: RunKey
    error_type: str
    message: str
    attempts: int
    poisoned: bool
    worker: str

    @property
    def label(self) -> str:
        return self.key.label

    def to_payload(self) -> dict:
        payload = asdict(self)
        payload["schema"] = 1
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "RunFailure":
        if payload.get("schema") != 1:
            raise ValueError(f"failure schema {payload.get('schema')!r}")
        return cls(
            digest=payload["digest"],
            key=RunKey(**payload["key"]),
            error_type=payload["error_type"],
            message=payload["message"],
            attempts=int(payload["attempts"]),
            poisoned=bool(payload["poisoned"]),
            worker=payload["worker"],
        )


def failure_backoff_s(digest: str, attempts: int, base_s: float) -> float:
    """Deterministic backoff before re-leasing a failed key.

    Grows linearly with the attempt count, jittered into
    ``[0.5x, 1.5x)`` by a blake2s over ``(digest, attempts)`` — every
    worker on every host computes the *same* backoff for the same
    failure state, so there is no host randomness to desynchronize the
    record's retry schedule, yet distinct keys de-phase.
    """
    if base_s <= 0:
        return 0.0
    seed = hashlib.blake2s(f"{digest}:{attempts}".encode()).digest()
    jitter = int.from_bytes(seed[:4], "big") / 2**32  # [0, 1)
    return base_s * attempts * (0.5 + jitter)


#: ``FailureLog.blocked`` verdicts.
POISONED, BACKOFF = "poisoned", "backoff"


class FailureLog:
    """Typed per-key failure records under ``<root>/failures``."""

    FAILURES_DIR = "failures"

    def __init__(
        self, root: str | Path, config: FederationConfig | None = None
    ) -> None:
        self.root = Path(root)
        self.config = config if config is not None else FederationConfig()
        self.failures = self.root / self.FAILURES_DIR

    def path_for(self, digest: str) -> Path:
        return self.failures / f"{digest}.json"

    def load(self, digest: str) -> RunFailure | None:
        try:
            payload = json.loads(self.path_for(digest).read_text())
            return RunFailure.from_payload(payload)
        except (OSError, ValueError, KeyError, TypeError):
            return None  # absent or rotten record: treated as no failures

    def record(
        self, key: RunKey, digest: str, exc: BaseException, worker: str
    ) -> RunFailure:
        """Archive one more failed attempt; poisons on the last one."""
        return self.record_raw(
            key, digest, type(exc).__name__, str(exc), worker
        )

    def record_raw(
        self, key: RunKey, digest: str, error_type: str, message: str,
        worker: str,
    ) -> RunFailure:
        """Like :meth:`record`, from an already-serialized error.

        Pool shards ship exceptions back as ``(type name, message)``
        tuples (exception objects may not pickle); this entry point
        archives those with the same attempt accounting.
        """
        previous = self.load(digest)
        attempts = (previous.attempts if previous is not None else 0) + 1
        failure = RunFailure(
            digest=digest,
            key=key,
            error_type=error_type,
            message=message,
            attempts=attempts,
            poisoned=attempts >= self.config.max_attempts,
            worker=worker,
        )
        self.failures.mkdir(parents=True, exist_ok=True)
        path = self.path_for(digest)
        tmp = path.with_name(f".{path.name}.tmp-{worker.replace('/', '_')}")
        tmp.write_text(json.dumps(failure.to_payload(), sort_keys=True, indent=1))
        os.replace(tmp, path)
        return failure

    def clear(self, digest: str) -> None:
        """Drop the record (a retry succeeded)."""
        try:
            self.path_for(digest).unlink()
        except OSError:
            pass

    def blocked(self, digest: str) -> str | None:
        """Why ``digest`` must not be leased now, or ``None``.

        ``"poisoned"`` — attempts exhausted, quarantined from leasing;
        ``"backoff"`` — failed recently, the deterministic backoff since
        the record's mtime has not elapsed yet.
        """
        failure = self.load(digest)
        if failure is None:
            return None
        if failure.poisoned:
            return POISONED
        try:
            mtime = self.path_for(digest).stat().st_mtime
        except OSError:
            return None
        wait = failure_backoff_s(
            digest, failure.attempts, self.config.retry_backoff_s
        )
        if _wall_now() - mtime < wait:
            return BACKOFF
        return None

    def all_failures(self) -> tuple[RunFailure, ...]:
        if not self.failures.is_dir():
            return ()
        found = []
        for path in sorted(self.failures.glob("*.json")):
            try:
                found.append(RunFailure.from_payload(json.loads(path.read_text())))
            except (OSError, ValueError, KeyError, TypeError):
                continue
        return tuple(found)


# ---------------------------------------------------------------------------
# Journal (duplicate-execution accounting)
# ---------------------------------------------------------------------------


class Journal:
    """Append-only per-worker log of executed digests.

    Written *after* each successful archive, so the union of all
    journals proves zero-duplication: a digest appearing twice means two
    workers both ran the key to completion — the protocol violation the
    kill/steal tests assert never happens.
    """

    JOURNAL_DIR = "journal"

    def __init__(self, root: str | Path, worker_token: str) -> None:
        self.root = Path(root)
        self.path = self.root / self.JOURNAL_DIR / f"{worker_token}.log"

    def append(self, digest: str) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(digest + "\n")

    @classmethod
    def read_all(cls, root: str | Path) -> dict[str, list[str]]:
        """``{worker_token: [digest, ...]}`` across every journal."""
        journal_dir = Path(root) / cls.JOURNAL_DIR
        if not journal_dir.is_dir():
            return {}
        return {
            path.stem: path.read_text().split()
            for path in sorted(journal_dir.glob("*.log"))
        }

    @classmethod
    def executed_digests(cls, root: str | Path) -> list[str]:
        """Every journalled digest, across all workers (with repeats)."""
        digests: list[str] = []
        for lines in cls.read_all(root).values():
            digests.extend(lines)
        return digests


# ---------------------------------------------------------------------------
# The drain loop
# ---------------------------------------------------------------------------


@dataclass
class WorkerStats:
    """What one drain worker did."""

    worker: str
    executed: int = 0
    executed_steps: int = 0
    hits_observed: int = 0
    corrupt_seen: int = 0
    steals: int = 0
    failures: int = 0
    poisoned_seen: int = 0
    #: Digests this worker executed, in completion order.
    digests: list[str] = field(default_factory=list)


def drain(
    keys: tuple[RunKey, ...],
    store: ResultStore,
    config: FederationConfig | None = None,
    profile: WorkerProfile | None = None,
    execute_fn=None,
    journal: bool = True,
) -> WorkerStats:
    """Drain one campaign as one federated worker; returns what it did.

    Runs until every key is *resolved* — archived in the store (by
    anyone) or poisoned — leasing unclaimed keys, stealing stale leases,
    and recording failures along the way.  Any number of concurrent
    ``drain`` calls (processes, hosts) against the same root cooperate
    through the lease files alone.

    ``execute_fn`` defaults to the campaign executor's
    :func:`~repro.campaign.executor.execute_key`; tests inject failing
    or blocking substitutes through it.
    """
    if execute_fn is None:
        from repro.campaign.executor import execute_key

        execute_fn = execute_key
    config = config if config is not None else FederationConfig()
    profile = profile if profile is not None else WorkerProfile.local()
    queue = LeaseQueue(store.root, profile=profile, config=config)
    failure_log = FailureLog(store.root, config=config)
    log = Journal(store.root, profile.token) if journal else None

    stats = WorkerStats(worker=profile.worker_id)
    ordered = placement_order(keys, profile)
    digests = {key: run_key_hash(key) for key in ordered}
    unresolved = set(ordered)

    while unresolved:
        progressed = False
        for key in ordered:
            if key not in unresolved:
                continue
            digest = digests[key]
            cached, status = store.lookup(key)
            if cached is not None:
                unresolved.discard(key)
                stats.hits_observed += 1
                progressed = True
                continue
            if status != MISS:
                stats.corrupt_seen += 1  # will re-execute over the rot
            blocked = failure_log.blocked(digest)
            if blocked == POISONED:
                unresolved.discard(key)
                stats.poisoned_seen += 1
                progressed = True
                continue
            if blocked == BACKOFF:
                continue
            before = queue.stolen
            lease = queue.try_acquire(digest)
            if lease is None:
                continue
            stats.steals += queue.stolen - before
            try:
                if store.get(key) is not None:  # finished while we raced
                    unresolved.discard(key)
                    stats.hits_observed += 1
                    progressed = True
                    continue
                lease.start_heartbeat(config.heartbeat_s)
                try:
                    result = execute_fn(key)
                except Exception as exc:
                    failure = failure_log.record(
                        key, digest, exc, profile.worker_id
                    )
                    stats.failures += 1
                    if failure.poisoned:
                        unresolved.discard(key)
                        stats.poisoned_seen += 1
                    progressed = True
                    continue
                store.put(key, result)
                failure_log.clear(digest)
                if log is not None:
                    log.append(digest)
                stats.executed += 1
                stats.executed_steps += key.num_steps
                stats.digests.append(digest)
                unresolved.discard(key)
                progressed = True
            finally:
                lease.release()
        if unresolved and not progressed:
            time.sleep(config.poll_s)
    return stats


# ---------------------------------------------------------------------------
# Garbage collection
# ---------------------------------------------------------------------------


def gc_sweep(
    store: ResultStore, config: FederationConfig | None = None
) -> dict[str, int]:
    """Reap the debris a federated campaign can leave behind.

    * orphaned ``.tmp-*`` files of killed writers;
    * stale leases and tombstones of dead workers;
    * corrupt entries, quarantined (moved, not deleted) with counts.

    Complete entries, live leases, and failure records are never
    touched.  Returns the per-category counts.
    """
    config = config if config is not None else FederationConfig()
    queue = LeaseQueue(store.root, config=config)
    return {
        "tmp_reaped": store.reap_tmp(),
        "leases_swept": queue.sweep(),
        "corrupt_quarantined": store.quarantine_corrupt(),
    }


__all__ = [
    "BACKOFF",
    "POISONED",
    "FailureLog",
    "FederationConfig",
    "Journal",
    "Lease",
    "LeaseQueue",
    "RunFailure",
    "WorkerProfile",
    "WorkerStats",
    "drain",
    "failure_backoff_s",
    "gc_sweep",
    "placement_order",
]
