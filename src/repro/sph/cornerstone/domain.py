"""SFC domain decomposition and halo discovery.

``DomainDecompAndSync`` in SPH-EXA: sort particles along the space-filling
curve, build the cornerstone tree, split the curve into per-rank segments
with balanced particle counts, and determine each rank's *halo* particles —
remote particles within kernel support of the rank's domain, which must be
exchanged every step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.sph.box import Box
from repro.sph.cornerstone.morton import sfc_keys
from repro.sph.cornerstone.octree import build_cornerstone, leaf_counts
from repro.sph.kernels.cubic_spline import SUPPORT_RADIUS
from repro.sph.particles import ParticleSet


def partition_leaves(counts: np.ndarray, n_ranks: int) -> np.ndarray:
    """Split leaves into ``n_ranks`` contiguous segments of ~equal count.

    Returns ``n_ranks + 1`` leaf-boundary indices (first 0, last
    ``len(counts)``), monotonically non-decreasing; a rank may end up
    empty only if there are fewer non-empty leaves than ranks.
    """
    if n_ranks <= 0:
        raise SimulationError("need at least one rank")
    total = int(np.sum(counts))
    cum = np.cumsum(counts)
    targets = total * np.arange(1, n_ranks, dtype=np.float64) / n_ranks
    inner = np.searchsorted(cum, targets, side="left") + 1
    bounds = np.concatenate([[0], inner, [len(counts)]]).astype(np.int64)
    np.maximum.accumulate(bounds, out=bounds)
    np.clip(bounds, 0, len(counts), out=bounds)
    return bounds


@dataclass(frozen=True)
class SyncResult:
    """Outcome of one domain synchronisation."""

    #: Per-rank [start, end) particle index ranges (into the sorted set).
    rank_ranges: list[tuple[int, int]]
    #: Per-rank [start, end) SFC key ranges.
    rank_key_ranges: list[tuple[int, int]]
    #: The cornerstone leaf array of the global tree.
    leaves: np.ndarray
    #: The SFC sort permutation applied to the particle set
    #: (``new[k] = old[order[k]]``), so per-particle caches — e.g. the
    #: Verlet neighbor list — can follow the relabeling.
    order: np.ndarray | None = None

    def owned_count(self, rank: int) -> int:
        """Number of particles owned by ``rank``."""
        start, end = self.rank_ranges[rank]
        return end - start


class DomainDecomposition:
    """Global-view SFC domain decomposition for the in-process solver."""

    def __init__(self, box: Box, n_ranks: int, bucket_size: int = 64) -> None:
        if n_ranks <= 0:
            raise SimulationError("need at least one rank")
        self.box = box
        self.n_ranks = n_ranks
        self.bucket_size = bucket_size
        self.last_sync: SyncResult | None = None

    def sync(self, ps: ParticleSet) -> SyncResult:
        """Sort ``ps`` along the SFC and (re)compute the rank segments."""
        keys = sfc_keys(ps.pos, self.box)
        order = np.argsort(keys, kind="stable")
        if np.array_equal(order, np.arange(len(order), dtype=order.dtype)):
            # Already SFC-sorted (the common steady state): skip the
            # field reorder and report "no relabeling" so per-particle
            # caches (Verlet label maps) are not invalidated for free.
            order = None
        else:
            ps.reorder(order)
            keys = keys[order]

        leaves = build_cornerstone(keys, self.bucket_size)
        counts = leaf_counts(leaves, keys)
        bounds = partition_leaves(counts, self.n_ranks)
        boundary_keys = leaves[bounds]
        particle_bounds = np.searchsorted(keys, boundary_keys, side="left")

        rank_ranges = [
            (int(particle_bounds[r]), int(particle_bounds[r + 1]))
            for r in range(self.n_ranks)
        ]
        rank_key_ranges = [
            (int(boundary_keys[r]), int(boundary_keys[r + 1]))
            for r in range(self.n_ranks)
        ]
        self.last_sync = SyncResult(
            rank_ranges=rank_ranges,
            rank_key_ranges=rank_key_ranges,
            leaves=leaves,
            order=order,
        )
        return self.last_sync

    def halo_indices(self, ps: ParticleSet, rank: int) -> np.ndarray:
        """Remote particles within kernel support of ``rank``'s domain.

        Geometric criterion: Euclidean distance to the rank's particle
        AABB below ``2 * max(h)`` (the union pair cutoff), with
        minimum-image distances in periodic boxes.  Conservative (may
        include unneeded particles) but never misses a neighbour.
        """
        if self.last_sync is None:
            raise SimulationError("halo_indices requires a prior sync()")
        start, end = self.last_sync.rank_ranges[rank]
        if end <= start:
            return np.zeros(0, dtype=np.int64)
        own = ps.pos[start:end]
        lo = own.min(axis=0)
        hi = own.max(axis=0)
        center = 0.5 * (lo + hi)
        half = 0.5 * (hi - lo)
        cutoff = SUPPORT_RADIUS * float(np.max(ps.h))

        delta = ps.pos - center
        if self.box.periodic:
            delta = self.box.displacement(delta)
        axis_dist = np.maximum(np.abs(delta) - half, 0.0)
        dist2 = np.einsum("ij,ij->i", axis_dist, axis_dist)
        mask = dist2 < cutoff**2
        mask[start:end] = False
        return np.nonzero(mask)[0]

    def halo_bytes(
        self, ps: ParticleSet, rank: int, bytes_per_particle: int = 88
    ) -> float:
        """Approximate halo-exchange volume for ``rank`` (for comm costing)."""
        return float(len(self.halo_indices(ps, rank)) * bytes_per_particle)
