"""Tests for neighbor search: cell list cross-validated against brute force."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.sph.box import Box
from repro.sph.neighbors import (
    brute_force_pairs,
    cell_list_pairs,
    find_neighbors,
)


def pair_set(pairs):
    return set(zip(pairs.i.tolist(), pairs.j.tolist()))


def random_particles(n, box, h_value, seed):
    rng = np.random.default_rng(seed)
    pos = rng.uniform(box.lo, box.hi, size=(n, 3))
    h = np.full(n, h_value)
    return pos, h


class TestBox:
    def test_displacement_minimum_image(self):
        box = Box(length=1.0, periodic=True)
        dr = np.array([[0.9, -0.9, 0.2]])
        out = box.displacement(dr)
        assert np.allclose(out, [[-0.1, 0.1, 0.2]])

    def test_open_box_passthrough(self):
        box = Box(length=1.0, periodic=False)
        dr = np.array([[0.9, -0.9, 0.2]])
        assert np.allclose(box.displacement(dr), dr)

    def test_wrap(self):
        box = Box(length=2.0, periodic=True)
        pos = np.array([[1.5, -1.5, 0.0]])
        wrapped = box.wrap(pos)
        assert np.allclose(wrapped, [[-0.5, 0.5, 0.0]])
        assert np.all(box.contains(wrapped))

    def test_invalid_length(self):
        with pytest.raises(SimulationError):
            Box(length=0.0)


class TestNeighborSearch:
    def test_simple_pair(self):
        box = Box(length=10.0, periodic=False)
        pos = np.array([[0.0, 0.0, 0.0], [0.5, 0.0, 0.0], [5.0, 0.0, 0.0]])
        h = np.full(3, 0.5)
        pairs = brute_force_pairs(pos, h, box)
        assert pair_set(pairs) == {(0, 1), (1, 0)}

    def test_periodic_pair_across_boundary(self):
        box = Box(length=1.0, periodic=True)
        pos = np.array([[-0.49, 0.0, 0.0], [0.49, 0.0, 0.0]])
        h = np.full(2, 0.1)
        pairs = brute_force_pairs(pos, h, box)
        assert pair_set(pairs) == {(0, 1), (1, 0)}
        assert pairs.r[0] == pytest.approx(0.02)

    def test_union_cutoff_uses_larger_h(self):
        box = Box(length=10.0, periodic=False)
        pos = np.array([[0.0, 0.0, 0.0], [1.5, 0.0, 0.0]])
        h = np.array([0.25, 1.0])  # only 2*h_j reaches
        pairs = brute_force_pairs(pos, h, box)
        assert pair_set(pairs) == {(0, 1), (1, 0)}

    def test_dx_is_i_minus_j(self):
        box = Box(length=10.0, periodic=False)
        pos = np.array([[1.0, 0.0, 0.0], [0.0, 0.0, 0.0]])
        h = np.full(2, 1.0)
        pairs = brute_force_pairs(pos, h, box)
        k = np.where((pairs.i == 0) & (pairs.j == 1))[0][0]
        assert np.allclose(pairs.dx[k], [1.0, 0.0, 0.0])

    def test_neighbor_counts(self):
        box = Box(length=10.0, periodic=False)
        pos = np.array([[0.0, 0.0, 0.0], [0.5, 0.0, 0.0], [9.0, 0.0, 0.0]])
        h = np.full(3, 0.5)
        pairs = brute_force_pairs(pos, h, box)
        assert pairs.neighbor_counts().tolist() == [1, 1, 0]

    def test_cell_list_matches_brute_force_open(self):
        box = Box(length=1.0, periodic=False)
        pos, h = random_particles(400, box, 0.06, seed=1)
        bf = brute_force_pairs(pos, h, box)
        cl = cell_list_pairs(pos, h, box)
        assert pair_set(bf) == pair_set(cl)

    def test_cell_list_matches_brute_force_periodic(self):
        box = Box(length=1.0, periodic=True)
        pos, h = random_particles(400, box, 0.06, seed=2)
        bf = brute_force_pairs(pos, h, box)
        cl = cell_list_pairs(pos, h, box)
        assert pair_set(bf) == pair_set(cl)

    def test_cell_list_small_periodic_box_stencil_dedup(self):
        """Huge cutoffs collapse the grid to 1-2 cells per periodic axis;
        the deduplicated stencil must keep the candidate list exact (this
        regime used to fall back to brute force)."""
        box = Box(length=1.0, periodic=True)
        pos, h = random_particles(50, box, 0.25, seed=3)  # huge cutoff
        bf = brute_force_pairs(pos, h, box)
        cl = cell_list_pairs(pos, h, box)
        assert pair_set(bf) == pair_set(cl)

    def test_find_neighbors_is_cell_list(self):
        box = Box(length=1.0, periodic=True)
        pos, h = random_particles(200, box, 0.05, seed=4)
        pairs = find_neighbors(pos, h, box)
        assert pair_set(pairs) == pair_set(brute_force_pairs(pos, h, box))

    def test_mismatched_lengths_rejected(self):
        box = Box(length=1.0)
        with pytest.raises(SimulationError):
            brute_force_pairs(np.zeros((3, 3)), np.ones(2), box)

    @given(
        st.integers(min_value=5, max_value=120),
        st.floats(min_value=0.02, max_value=0.15),
        st.booleans(),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_cell_list_equivalence_property(self, n, h_value, periodic, seed):
        """Cell list and brute force agree for arbitrary configurations."""
        box = Box(length=1.0, periodic=periodic)
        pos, h = random_particles(n, box, h_value, seed)
        bf = brute_force_pairs(pos, h, box)
        cl = cell_list_pairs(pos, h, box)
        assert pair_set(bf) == pair_set(cl)

    def test_half_list_matches_directed(self):
        """half=True stores each undirected pair exactly once, i < j."""
        box = Box(length=1.0, periodic=True)
        for n in (64, 512):
            pos, h = random_particles(n, box, 0.07, seed=n)
            full = find_neighbors(pos, h, box)
            half = find_neighbors(pos, h, box, half=True)
            assert np.all(half.i < half.j)
            assert 2 * half.n_pairs == full.n_pairs
            assert pair_set(half.to_directed()) == pair_set(full)
            assert np.array_equal(
                half.neighbor_counts(), full.neighbor_counts()
            )

    def test_single_code_path_across_sizes(self):
        """The cell list is the only production path; it must agree with
        the brute-force oracle at any N (the old small-N dispatch to
        brute force is gone)."""
        box = Box(length=1.0, periodic=False)
        for n in (2, 8, 128, 513):
            pos, h = random_particles(n, box, 0.1, seed=5)
            assert pair_set(find_neighbors(pos, h, box)) == pair_set(
                brute_force_pairs(pos, h, box)
            )

    def test_open_box_grid_anchored_at_box_bounds(self):
        """Interior open-box configurations bin independently of strays:
        identical pair geometry whether or not a far-away particle exists."""
        box = Box(length=2.0, periodic=False)
        pos, h = random_particles(200, box, 0.1, seed=6)
        base = cell_list_pairs(pos, h, box)
        # The grid origin is the box bound, not the particle minimum.
        shifted = cell_list_pairs(pos - 0.01, h, box)
        assert pair_set(base) == pair_set(
            brute_force_pairs(pos, h, box)
        )
        assert pair_set(shifted) == pair_set(
            brute_force_pairs(pos - 0.01, h, box)
        )

    def test_cell_grid_overflow_guard(self):
        """A pathologically small cutoff raises instead of wrapping int64."""
        box = Box(length=1.0, periodic=True)
        pos = np.array([[0.0, 0.0, 0.0], [0.1, 0.0, 0.0]] * 100)
        h = np.full(len(pos), 1e-8)
        with pytest.raises(SimulationError, match="overflow"):
            cell_list_pairs(pos, h, box)

    @given(
        st.integers(min_value=2, max_value=60),
        st.integers(min_value=0, max_value=99),
    )
    @settings(max_examples=25, deadline=None)
    def test_pairs_symmetric_property(self, n, seed):
        """(i, j) present implies (j, i) present with equal distance."""
        box = Box(length=1.0, periodic=True)
        pos, h = random_particles(n, box, 0.1, seed)
        pairs = brute_force_pairs(pos, h, box)
        forward = pair_set(pairs)
        assert forward == {(j, i) for i, j in forward}
