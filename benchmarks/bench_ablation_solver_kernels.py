"""Ablation/throughput: raw host performance of the real SPH kernels.

pytest-benchmark timings of the numerical building blocks at a fixed
problem size, so regressions in the vectorized implementations are
caught.  These benchmark the *actual solver* (the physics the scaled runs
stand on), not the simulated cluster.
"""

import numpy as np
import pytest
from conftest import write_result

from repro.sph.gravity import BarnesHutGravity
from repro.sph.initial_conditions import make_turbulence
from repro.sph.neighbors import cell_list_pairs, find_neighbors
from repro.sph.physics import (
    compute_density,
    compute_iad_and_divcurl,
    compute_momentum_energy,
    ideal_gas_eos,
)

N_SIDE = 16  # 4096 particles


@pytest.fixture(scope="module")
def state():
    ps, box = make_turbulence(n_side=N_SIDE, seed=5)
    rng = np.random.default_rng(5)
    ps.vel = rng.normal(0.0, 0.05, size=ps.vel.shape)
    pairs = find_neighbors(ps.pos, ps.h, box)
    ps.nc = pairs.neighbor_counts()
    compute_density(ps, pairs)
    ideal_gas_eos(ps)
    compute_iad_and_divcurl(ps, pairs)
    return ps, box, pairs


def bench_neighbor_search(benchmark, state):
    ps, box, _ = state
    pairs = benchmark(cell_list_pairs, ps.pos, ps.h, box)
    assert pairs.n_pairs > 0


def bench_density(benchmark, state):
    ps, box, pairs = state
    benchmark(compute_density, ps, pairs)
    assert np.all(ps.rho > 0)


def bench_iad(benchmark, state):
    ps, box, pairs = state
    benchmark(compute_iad_and_divcurl, ps, pairs)


def bench_momentum_energy(benchmark, state):
    ps, box, pairs = state
    benchmark(compute_momentum_energy, ps, pairs)
    assert np.all(np.isfinite(ps.acc))


def bench_barnes_hut(benchmark):
    rng = np.random.default_rng(11)
    pos = rng.normal(0.0, 1.0, size=(4096, 3))
    mass = np.full(4096, 1.0 / 4096)

    def build_and_evaluate():
        return BarnesHutGravity(pos, mass, theta=0.6, eps=0.02).acceleration()

    acc = benchmark(build_and_evaluate)
    assert np.all(np.isfinite(acc))


def bench_smoke_solver_kernels(results_dir):
    # Run every kernel once at a small size; correctness only, no timing.
    ps, box = make_turbulence(n_side=8, seed=5)
    rng = np.random.default_rng(5)
    ps.vel = rng.normal(0.0, 0.05, size=ps.vel.shape)
    pairs = find_neighbors(ps.pos, ps.h, box)
    ps.nc = pairs.neighbor_counts()
    compute_density(ps, pairs)
    ideal_gas_eos(ps)
    compute_iad_and_divcurl(ps, pairs)
    compute_momentum_energy(ps, pairs)
    assert pairs.n_pairs > 0
    assert np.all(ps.rho > 0)
    assert np.all(np.isfinite(ps.acc))

    rng = np.random.default_rng(11)
    pos = rng.normal(0.0, 1.0, size=(512, 3))
    mass = np.full(512, 1.0 / 512)
    acc = BarnesHutGravity(pos, mass, theta=0.6, eps=0.02).acceleration()
    assert np.all(np.isfinite(acc))

    lines = [
        "Solver kernel smoke: 512 particles, every kernel runs and stays "
        "finite",
        f"neighbor pairs: {pairs.n_pairs}",
        f"mean density: {float(ps.rho.mean()):.6f}",
        f"max |acc|: {float(np.abs(ps.acc).max()):.6e}",
    ]
    write_result(results_dir, "ablation_solver_kernels_smoke", "\n".join(lines))
