"""The PMT base class: the common interface over all backends.

Mirrors the original toolkit's design: backends implement a single
``read_state()`` primitive; everything else (interval arithmetic,
start/stop convenience, per-counter deltas) is shared here.  The value of
this design — the reason the paper picked PMT over tool-specific
instrumentation — is that application code is written once against this
interface and the backend is chosen per platform at run time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import MeasurementError
from repro.hardware.clock import VirtualClock
from repro.pmt.state import State


class PMT(ABC):
    """Abstract power meter.

    Concrete backends provide :meth:`read_state` and a ``name``;
    :meth:`read` is the public entry point (kept separate so backends with
    internal state — RAPL unwrapping, ROCm polling integration — can hook
    it uniformly).
    """

    #: Backend name, set by subclasses (matches the factory key).
    name: str = "abstract"

    def __init__(self, clock: VirtualClock) -> None:
        self.clock = clock
        self._start_state: State | None = None

    # -- backend primitive ----------------------------------------------------

    @abstractmethod
    def read_state(self) -> State:
        """Take one atomic measurement at the current simulated time."""

    def measurement_names(self) -> tuple[str, ...] | None:
        """The measurement names this meter's states carry, primary first.

        Backends whose state shape is fixed at construction time override
        this so wrappers (the resilient layer, composites) can synthesize
        a correctly-shaped substitute state before the first successful
        read.  ``None`` means the shape is unknown until a read succeeds.
        """
        return None

    # -- public API -------------------------------------------------------------

    def read(self) -> State:
        """Read the meter now."""
        return self.read_state()

    def start(self) -> State:
        """Begin a measured region; returns (and remembers) the start state."""
        self._start_state = self.read()
        return self._start_state

    def stop(self) -> State:
        """End the region begun by :meth:`start`; returns the end state."""
        if self._start_state is None:
            raise MeasurementError("stop() called without a matching start()")
        end = self.read()
        self._end_state = end
        return end

    def result(self) -> tuple[float, float, float]:
        """``(seconds, joules, watts)`` of the last start/stop region."""
        if self._start_state is None or not hasattr(self, "_end_state"):
            raise MeasurementError("no completed start()/stop() region")
        s, e = self._start_state, self._end_state
        return self.seconds(s, e), self.joules(s, e), self.watts(s, e)

    # -- interval arithmetic (API-compatible statics) ----------------------------

    @staticmethod
    def seconds(start: State, end: State) -> float:
        """Elapsed seconds between two states."""
        dt = end.timestamp - start.timestamp
        if dt < 0:
            raise MeasurementError(
                f"end state ({end.timestamp}) precedes start ({start.timestamp})"
            )
        return dt

    @staticmethod
    def joules(start: State, end: State, name: str | None = None) -> float:
        """Energy consumed between two states (primary or named counter)."""
        if name is None:
            return end.joules - start.joules
        return end.joules_of(name) - start.joules_of(name)

    @staticmethod
    def watts(start: State, end: State, name: str | None = None) -> float:
        """Average power between two states (``deltaE / deltaT``).

        Returns 0 for zero-length intervals (matching the original
        toolkit's guard against division by zero).
        """
        dt = PMT.seconds(start, end)
        if dt == 0:
            return 0.0
        return PMT.joules(start, end, name) / dt
