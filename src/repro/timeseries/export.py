"""Tool-agnostic exporters for retained telemetry timelines.

Three formats, chosen for what energy practitioners actually load:

* **Chrome trace** (``chrome://tracing`` / Perfetto) — the Trace Event
  Format JSON: one counter track per sensor channel (``ph: "C"``), one
  complete duration event per function-region span (``ph: "X"``), plus
  process/thread metadata so nodes and ranks get readable labels;
* **Prometheus text exposition** — latest power gauge, cumulative energy
  counter and sample/degraded-sample counters per channel, ready for a
  ``node_exporter`` textfile collector or a pushgateway;
* **CSV / JSONL dumps** — every retained point of every tier, for pandas
  and ad-hoc scripts.

All exports are deterministic: channels are sorted by ``(node, name)``,
span events by ``(start, name, rank)``, and JSON keys are sorted — two
runs with the same seed produce byte-identical files.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.timeseries.spans import SpanRecorder
from repro.timeseries.store import SampleStore, quality_name

#: Seconds -> Trace Event Format microseconds.
_US = 1e6


# -- Chrome trace -----------------------------------------------------------


def chrome_trace_events(
    store: SampleStore,
    spans: SpanRecorder | None = None,
    node_names: dict[int, str] | None = None,
) -> list[dict]:
    """The ``traceEvents`` list of the Trace Event Format export."""
    events: list[dict] = []

    nodes = sorted({node for node, _ in store.channels()})
    if spans is not None:
        span_nodes = {s.node_index for s in spans.spans if s.node_index >= 0}
        nodes = sorted(set(nodes) | span_nodes)
    for node in nodes:
        label = (node_names or {}).get(node, f"node{node}")
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": node,
                "tid": 0,
                "ts": 0,
                "args": {"name": label},
            }
        )

    # Counter tracks: one per channel, samples in time order (ties broken
    # by the sorted channel iteration).
    for node, name in store.channels():
        series = store.channel(node, name)
        pts = series.points()
        for t, w, j in zip(pts["t"], pts["watts"], pts["joules"]):
            events.append(
                {
                    "ph": "C",
                    "name": f"{name} [W]",
                    "pid": node,
                    "tid": 0,
                    "ts": float(t) * _US,
                    "args": {"watts": float(w)},
                }
            )

    if spans is not None:
        ranks = sorted({s.rank for s in spans.spans})
        rank_nodes = {s.rank: s.node_index for s in spans.spans}
        for rank in ranks:
            node = rank_nodes.get(rank, -1)
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": node if node >= 0 else 0,
                    "tid": rank,
                    "ts": 0,
                    "args": {"name": f"rank{rank}"},
                }
            )
        for span in spans.events_sorted():
            events.append(
                {
                    "ph": "X",
                    "name": span.function,
                    "cat": "region",
                    "pid": span.node_index if span.node_index >= 0 else 0,
                    "tid": span.rank,
                    "ts": span.t0 * _US,
                    "dur": span.seconds * _US,
                    "args": {},
                }
            )
        for mark in spans.instants:
            events.append(
                {
                    "ph": "i",
                    "s": "g",
                    "name": mark.name,
                    "pid": 0,
                    "tid": 0,
                    "ts": mark.t * _US,
                    "args": {},
                }
            )
    # Canonical order: stable sort over the fields every event carries.
    events.sort(key=lambda e: (e["ts"], e["ph"], e["pid"], e["tid"], e["name"]))
    return events


def chrome_trace(
    store: SampleStore,
    spans: SpanRecorder | None = None,
    node_names: dict[int, str] | None = None,
    metadata: dict | None = None,
) -> dict:
    """The full Trace Event Format document (JSON-object flavour)."""
    doc = {
        "traceEvents": chrome_trace_events(store, spans, node_names),
        "displayTimeUnit": "ms",
    }
    if metadata:
        doc["otherData"] = {k: metadata[k] for k in sorted(metadata)}
    return doc


def write_chrome_trace(
    path: str | Path,
    store: SampleStore,
    spans: SpanRecorder | None = None,
    node_names: dict[int, str] | None = None,
    metadata: dict | None = None,
) -> Path:
    """Write the Chrome-trace JSON; returns the path."""
    path = Path(path)
    doc = chrome_trace(store, spans, node_names, metadata)
    path.write_text(json.dumps(doc, sort_keys=True, separators=(",", ":")))
    return path


# -- Prometheus text exposition ---------------------------------------------


def _label_str(labels: dict[str, str]) -> str:
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def prometheus_text(store: SampleStore, prefix: str = "repro") -> str:
    """Render the store's current state in Prometheus text format.

    Exposes, per ``(node, channel)``: the newest power reading as a gauge,
    the cumulative energy counter, total samples ingested, and how many
    retained points carry a non-``ok`` quality tag.
    """
    gauges: list[str] = []
    energy: list[str] = []
    samples: list[str] = []
    degraded: list[str] = []
    for node, name in store.channels():
        series = store.channel(node, name)
        t, watts, joules, _quality = series.latest
        labels = _label_str({"node": str(node), "channel": name})
        gauges.append(f"{prefix}_power_watts{labels} {watts:.6g}")
        energy.append(f"{prefix}_energy_joules_total{labels} {joules:.6g}")
        samples.append(
            f"{prefix}_samples_total{labels} {series.total_appended}"
        )
        degraded.append(
            f"{prefix}_degraded_points{labels} {series.degraded_points()}"
        )
    lines = [
        f"# HELP {prefix}_power_watts Latest sampled power per sensor channel.",
        f"# TYPE {prefix}_power_watts gauge",
        *gauges,
        f"# HELP {prefix}_energy_joules_total Cumulative energy counter per channel.",
        f"# TYPE {prefix}_energy_joules_total counter",
        *energy,
        f"# HELP {prefix}_samples_total Samples ingested per channel.",
        f"# TYPE {prefix}_samples_total counter",
        *samples,
        f"# HELP {prefix}_degraded_points Retained points with a non-ok quality tag.",
        f"# TYPE {prefix}_degraded_points gauge",
        *degraded,
    ]
    return "\n".join(lines) + "\n"


def write_prometheus(
    path: str | Path, store: SampleStore, prefix: str = "repro"
) -> Path:
    """Write the Prometheus exposition file; returns the path."""
    path = Path(path)
    path.write_text(prometheus_text(store, prefix))
    return path


# -- flat dumps -------------------------------------------------------------

_DUMP_HEADER = ("node", "channel", "tier", "time_s", "watts", "joules", "quality")


def _dump_rows(store: SampleStore):
    from repro.timeseries.store import TIERS

    for node, name in store.channels():
        pts = store.channel(node, name).points()
        for t, w, j, q, tier in zip(
            pts["t"], pts["watts"], pts["joules"], pts["quality"], pts["tier"]
        ):
            yield (
                node,
                name,
                TIERS[int(tier)],
                float(t),
                float(w),
                float(j),
                quality_name(int(q)),
            )


def write_csv(path: str | Path, store: SampleStore) -> Path:
    """Write every retained point as CSV; returns the path."""
    path = Path(path)
    lines = [",".join(_DUMP_HEADER)]
    for node, name, tier, t, w, j, q in _dump_rows(store):
        lines.append(f"{node},{name},{tier},{t:.9g},{w:.9g},{j:.9g},{q}")
    path.write_text("\n".join(lines) + "\n")
    return path


def write_jsonl(path: str | Path, store: SampleStore) -> Path:
    """Write every retained point as JSON lines; returns the path."""
    path = Path(path)
    with path.open("w") as fh:
        for node, name, tier, t, w, j, q in _dump_rows(store):
            fh.write(
                json.dumps(
                    {
                        "node": node,
                        "channel": name,
                        "tier": tier,
                        "time_s": t,
                        "watts": w,
                        "joules": j,
                        "quality": q,
                    },
                    sort_keys=True,
                )
                + "\n"
            )
    return path


def write_trace_csv(path: str | Path, name: str, trace) -> Path:
    """Dump a ground-truth :class:`~repro.hardware.trace.PowerTrace`.

    Uses the trace's public :meth:`~repro.hardware.trace.PowerTrace.as_arrays`
    view — exporters never reach into the trace's private buffers.
    """
    path = Path(path)
    times, watts = trace.as_arrays()
    lines = ["time_s,watts"]
    lines += [f"{t:.9g},{w:.9g}" for t, w in zip(times, watts)]
    path.write_text("\n".join(lines) + "\n")
    return path


def export_bundle(
    out_dir: str | Path,
    store: SampleStore,
    spans: SpanRecorder | None = None,
    node_names: dict[int, str] | None = None,
    metadata: dict | None = None,
    basename: str = "run",
) -> dict[str, Path]:
    """Write the full artifact set into ``out_dir``.

    Returns ``{kind: path}`` for the trace JSON, Prometheus text, CSV and
    JSONL dumps — the dict the reporting layer links into the run report.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    return {
        "chrome-trace": write_chrome_trace(
            out_dir / f"{basename}.trace.json", store, spans, node_names, metadata
        ),
        "prometheus": write_prometheus(out_dir / f"{basename}.prom", store),
        "csv": write_csv(out_dir / f"{basename}.samples.csv", store),
        "jsonl": write_jsonl(out_dir / f"{basename}.samples.jsonl", store),
    }
