"""Tests for the PMT instrumentation layer: profiler, records, reports."""

import pytest

from repro.config import CSCS_A100, LUMI_G, SUBSONIC_TURBULENCE
from repro.errors import AnalysisError, MeasurementError
from repro.hardware import Cluster, VirtualClock
from repro.instrumentation import (
    EnergyProfiler,
    FunctionEnergyRecord,
    RunMeasurements,
    device_report,
    function_report,
)
from repro.mpi import CommCostModel, RankPlacement, RankWork, SpmdEngine
from repro.sensors import NodeTelemetry
from repro.sph.perfmodel import SphPerformanceModel
from repro.sph.propagator import TURBULENCE_FUNCTIONS
from repro.sph.scaled import ScaledSphApplication


def make_stack(system, num_nodes=1):
    clock = VirtualClock()
    cluster = Cluster("c", clock, system.node_spec, num_nodes, system.network)
    telemetries = [
        NodeTelemetry(node, system, clock, seed=i)
        for i, node in enumerate(cluster.nodes)
    ]
    placement = RankPlacement(cluster)
    engine = SpmdEngine(placement)
    profiler = EnergyProfiler(placement, telemetries, system)
    return clock, cluster, placement, engine, profiler


def run_small_app(system, num_nodes=1, steps=3, particles=30e6):
    clock, cluster, placement, engine, profiler = make_stack(system, num_nodes)
    cost_model = CommCostModel(system.network, placement)
    perfmodel = SphPerformanceModel(cost_model, particles)
    app = ScaledSphApplication(
        engine=engine,
        profiler=profiler,
        perfmodel=perfmodel,
        functions=TURBULENCE_FUNCTIONS,
        num_steps=steps,
        test_case_name=SUBSONIC_TURBULENCE.name,
    )
    return cluster, app.run()


class TestProfilerBasics:
    def test_begin_end_cycle(self):
        clock, cluster, placement, engine, profiler = make_stack(CSCS_A100)
        profiler.begin(0)
        works = [RankWork(duration=5.0, gpu_compute=0.9)] * placement.size
        engine.run_phase(works)
        profiler.end(0, "MomentumEnergy")
        profiler.start_app()
        profiler.end_app()
        run = profiler.gather("t", 1, 1e6)
        rec = run.record(0, "MomentumEnergy")
        assert rec.calls == 1
        assert rec.seconds == pytest.approx(5.0)
        truth = cluster.nodes[0].cards[0].energy_between(0.0, 5.0)
        assert rec.joules["gpu"] == pytest.approx(truth, rel=0.05)

    def test_double_begin_rejected(self):
        *_, profiler = make_stack(CSCS_A100)
        profiler.begin(0)
        with pytest.raises(MeasurementError):
            profiler.begin(0)

    def test_end_without_begin_rejected(self):
        *_, profiler = make_stack(CSCS_A100)
        with pytest.raises(MeasurementError):
            profiler.end(0, "Density")

    def test_gather_requires_app_window(self):
        *_, profiler = make_stack(CSCS_A100)
        with pytest.raises(MeasurementError):
            profiler.gather("t", 1, 1e6)

    def test_counters_present_per_platform(self):
        for system, expect_memory in ((LUMI_G, True), (CSCS_A100, False)):
            *_, profiler = make_stack(system)
            snap = profiler.snapshot(0)
            assert {"gpu", "cpu", "node"} <= set(snap)
            assert ("memory" in snap) == expect_memory


class TestScaledApplication:
    def test_records_every_function_and_rank(self):
        cluster, run = run_small_app(CSCS_A100)
        assert set(run.functions()) == set(TURBULENCE_FUNCTIONS)
        for rank in range(run.num_ranks):
            rec = run.record(rank, "MomentumEnergy")
            assert rec.calls == 3

    def test_energy_nonnegative_and_positive_for_long_functions(self):
        """Counters never run backwards; pm_counters' 10 Hz / 1 J
        quantization may legitimately report 0 J for sub-100 ms functions
        (EquationOfState and friends), but anything that runs for a
        sizable fraction of a second must show energy."""
        _, run = run_small_app(LUMI_G)
        for rec in run.records:
            assert all(v >= 0 for v in rec.joules.values())
            if rec.seconds > 0.5:
                assert rec.joules["gpu"] > 0
                assert rec.joules["cpu"] > 0

    def test_app_window_covers_sum_of_functions(self):
        _, run = run_small_app(CSCS_A100)
        per_rank = {}
        for rec in run.records:
            per_rank[rec.rank] = per_rank.get(rec.rank, 0.0) + rec.seconds
        for total in per_rank.values():
            assert total <= run.app_seconds + 1e-9
            assert total > 0.9 * run.app_seconds  # little dead time

    def test_node_windows_match_ground_truth(self):
        cluster, run = run_small_app(LUMI_G)
        node = cluster.nodes[0]
        truth = node.energy_between(run.app_start, run.app_end)
        assert run.node_windows[0].node_joules == pytest.approx(truth, rel=0.03)

    def test_lumi_card_counters_cover_pairs_of_ranks(self):
        cluster, run = run_small_app(LUMI_G)
        rec0 = run.record(0, "MomentumEnergy")
        rec1 = run.record(1, "MomentumEnergy")
        # Both GCD ranks of card 0 measured the same (whole-card) counter,
        # so their raw readings are nearly identical.
        assert rec0.joules["gpu"] == pytest.approx(rec1.joules["gpu"], rel=0.1)

    def test_invalid_construction(self):
        clock, cluster, placement, engine, profiler = make_stack(CSCS_A100)
        cost_model = CommCostModel(CSCS_A100.network, placement)
        perfmodel = SphPerformanceModel(cost_model, 1e6)
        with pytest.raises(Exception):
            ScaledSphApplication(engine, profiler, perfmodel, (), 3, "t")
        with pytest.raises(Exception):
            ScaledSphApplication(
                engine, profiler, perfmodel, TURBULENCE_FUNCTIONS, 0, "t"
            )


class TestRecordsSerialization:
    def test_roundtrip(self, tmp_path):
        _, run = run_small_app(CSCS_A100, steps=2)
        path = tmp_path / "measurements.json"
        run.write(path)
        loaded = RunMeasurements.read(path)
        assert loaded.system_name == run.system_name
        assert loaded.num_ranks == run.num_ranks
        assert loaded.app_seconds == pytest.approx(run.app_seconds)
        rec = loaded.record(0, "Density")
        assert rec.joules == run.record(0, "Density").joules

    def test_malformed_file_rejected(self):
        with pytest.raises(AnalysisError):
            RunMeasurements.from_json("{\"bogus\": 1}")

    def test_record_lookup_missing(self):
        _, run = run_small_app(CSCS_A100, steps=1)
        with pytest.raises(AnalysisError):
            run.record(0, "NoSuchFunction")

    def test_accumulate_rejects_negative_time(self):
        rec = FunctionEnergyRecord(rank=0, function="f")
        with pytest.raises(AnalysisError):
            rec.accumulate(-1.0, {})


class TestReports:
    def test_device_report_contents(self):
        _, run = run_small_app(LUMI_G, steps=2)
        text = device_report(run)
        assert "LUMI-G" in text
        assert "GPU" in text and "Memory" in text and "Other" in text
        assert "MJ" in text

    def test_function_report_contents(self):
        _, run = run_small_app(CSCS_A100, steps=2)
        text = function_report(run, "gpu")
        assert "MomentumEnergy" in text
        assert "DomainDecompAndSync" in text


class TestInstrumentationOverhead:
    def test_negative_overhead_rejected(self):
        clock, cluster, placement, engine, profiler = make_stack(CSCS_A100)
        cost_model = CommCostModel(CSCS_A100.network, placement)
        perfmodel = SphPerformanceModel(cost_model, 1e6)
        with pytest.raises(Exception):
            ScaledSphApplication(
                engine, profiler, perfmodel, TURBULENCE_FUNCTIONS, 1, "t",
                instrumentation_overhead_s=-1.0,
            )

    def test_small_overhead_fully_hidden(self):
        def app_seconds(overhead):
            clock, cluster, placement, engine, profiler = make_stack(CSCS_A100)
            cost_model = CommCostModel(CSCS_A100.network, placement)
            perfmodel = SphPerformanceModel(cost_model, 30e6)
            app = ScaledSphApplication(
                engine, profiler, perfmodel, TURBULENCE_FUNCTIONS, 2,
                "t", instrumentation_overhead_s=overhead,
            )
            return app.run().app_seconds

        assert app_seconds(1e-4) == app_seconds(0.0)

    def test_huge_overhead_dilates(self):
        def app_seconds(overhead):
            clock, cluster, placement, engine, profiler = make_stack(CSCS_A100)
            cost_model = CommCostModel(CSCS_A100.network, placement)
            perfmodel = SphPerformanceModel(cost_model, 30e6)
            app = ScaledSphApplication(
                engine, profiler, perfmodel, TURBULENCE_FUNCTIONS, 2,
                "t", instrumentation_overhead_s=overhead,
            )
            return app.run().app_seconds

        assert app_seconds(2.0) > 1.5 * app_seconds(0.0)
