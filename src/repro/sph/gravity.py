"""Self-gravity: Barnes-Hut octree and the direct-sum oracle.

The Evrard collapse needs self-gravity.  SPH-EXA computes it with a
multipole traversal over the cornerstone octree; we implement the
Barnes-Hut monopole variant with a group-vectorized traversal: each tree
node is tested against *all* still-unresolved target particles at once
(opening criterion ``2 * half_width / distance < theta``), accepted
targets receive the node's monopole contribution in one vector operation,
and only the rejected subset recurses into children.  Plummer softening
``eps`` regularizes close encounters, as in production SPH codes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError

#: Gravitational constant in code units (G = 1 for the Evrard test).
G_CODE = 1.0


def direct_sum_acceleration(
    pos: np.ndarray, mass: np.ndarray, eps: float = 0.0, G: float = G_CODE
) -> np.ndarray:
    """O(N^2) softened gravitational acceleration (test oracle)."""
    n = len(pos)
    delta = pos[None, :, :] - pos[:, None, :]  # delta[i, j] = r_j - r_i
    dist2 = np.einsum("ijk,ijk->ij", delta, delta) + eps**2
    np.fill_diagonal(dist2, 1.0)  # avoid divide-by-zero on the diagonal
    inv_d3 = dist2**-1.5
    np.fill_diagonal(inv_d3, 0.0)
    return G * np.einsum("ij,j,ijk->ik", inv_d3, mass, delta)


def direct_sum_potential(
    pos: np.ndarray, mass: np.ndarray, eps: float = 0.0, G: float = G_CODE
) -> float:
    """Total softened gravitational potential energy (test oracle)."""
    delta = pos[None, :, :] - pos[:, None, :]
    dist = np.sqrt(np.einsum("ijk,ijk->ij", delta, delta) + eps**2)
    np.fill_diagonal(dist, np.inf)
    return float(-0.5 * G * np.sum(mass[:, None] * mass[None, :] / dist))


@dataclass
class _BhNode:
    """One Barnes-Hut node (center/half define its cube)."""

    center: np.ndarray
    half: float
    start: int
    end: int
    mass: float = 0.0
    com: np.ndarray = field(default_factory=lambda: np.zeros(3))
    children: list[int] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children


class BarnesHutGravity:
    """Monopole Barnes-Hut tree over a particle snapshot.

    Parameters
    ----------
    pos, mass:
        Particle positions and masses (the tree copies sorted views).
    theta:
        Opening angle; smaller is more accurate (0.5 is the classic value).
    eps:
        Plummer softening length.
    leaf_size:
        Maximum particles per leaf before splitting.
    """

    def __init__(
        self,
        pos: np.ndarray,
        mass: np.ndarray,
        theta: float = 0.5,
        eps: float = 0.0,
        G: float = G_CODE,
        leaf_size: int = 16,
    ) -> None:
        if len(pos) != len(mass):
            raise SimulationError("pos and mass length mismatch")
        if not 0 < theta < 2.0:
            raise SimulationError(f"theta must be in (0, 2), got {theta!r}")
        self.theta = theta
        self.eps = eps
        self.G = G
        self.leaf_size = max(int(leaf_size), 1)

        # Sort particles into tree order once; remember the permutation.
        center = 0.5 * (pos.min(axis=0) + pos.max(axis=0))
        half = 0.5 * float(np.max(pos.max(axis=0) - pos.min(axis=0)))
        half = max(half * 1.0001, 1e-12)
        self._order = np.arange(len(pos))
        self._pos = pos.copy()
        self._mass = mass.copy()
        self.nodes: list[_BhNode] = []
        self._build(np.arange(len(pos)), center, half)

    # -- construction -----------------------------------------------------------

    def _build(self, indices: np.ndarray, center: np.ndarray, half: float) -> int:
        node_id = len(self.nodes)
        node = _BhNode(center=center.copy(), half=half, start=0, end=len(indices))
        self.nodes.append(node)
        pts = self._pos[indices]
        m = self._mass[indices]
        node.mass = float(np.sum(m))
        node.com = (
            np.sum(pts * m[:, None], axis=0) / node.mass
            if node.mass > 0
            else center.copy()
        )
        node.start, node.end = 0, len(indices)
        node._indices = indices  # type: ignore[attr-defined]
        if len(indices) > self.leaf_size and half > 1e-9:
            octant = (
                (pts[:, 0] >= center[0]).astype(np.int64) * 4
                + (pts[:, 1] >= center[1]).astype(np.int64) * 2
                + (pts[:, 2] >= center[2]).astype(np.int64)
            )
            for o in range(8):
                sub = indices[octant == o]
                if len(sub) == 0:
                    continue
                offset = np.array(
                    [
                        half / 2 if o & 4 else -half / 2,
                        half / 2 if o & 2 else -half / 2,
                        half / 2 if o & 1 else -half / 2,
                    ]
                )
                child_id = self._build(sub, center + offset, half / 2)
                node.children.append(child_id)
        return node_id

    @property
    def num_nodes(self) -> int:
        """Total nodes in the tree."""
        return len(self.nodes)

    # -- traversal ----------------------------------------------------------------

    def acceleration(self, targets: np.ndarray | None = None) -> np.ndarray:
        """Gravitational acceleration at the target positions.

        ``targets`` defaults to the tree's own particles (with
        self-interaction excluded inside leaves via zero-distance masking).
        """
        pts = self._pos if targets is None else np.asarray(targets, dtype=np.float64)
        acc = np.zeros_like(pts)
        self._traverse(0, np.arange(len(pts)), pts, acc)
        return acc

    def _traverse(
        self, node_id: int, active: np.ndarray, pts: np.ndarray, acc: np.ndarray
    ) -> None:
        if len(active) == 0:
            return
        node = self.nodes[node_id]
        delta = node.com[None, :] - pts[active]
        dist2 = np.einsum("ij,ij->i", delta, delta)
        dist = np.sqrt(dist2)
        accepted = (2.0 * node.half) < (self.theta * dist)
        if node.is_leaf:
            # Direct sum over the leaf's particles for everyone still here.
            rejected = active
            self._leaf_direct(node, rejected, pts, acc)
            return
        take = active[accepted]
        if len(take):
            d = delta[accepted]
            d2 = dist2[accepted] + self.eps**2
            acc[take] += self.G * node.mass * d / d2[:, None] ** 1.5
        remain = active[~accepted]
        for child in node.children:
            self._traverse(child, remain, pts, acc)

    def potential(self) -> float:
        """Total gravitational potential energy via the tree (monopole).

        Same opening criterion as :meth:`acceleration`, so the Evrard
        diagnostic no longer needs the O(N^2) direct sum in the hot loop
        (:func:`direct_sum_potential` remains the test oracle).  Returns
        ``0.5 * sum_i m_i phi_i`` with Plummer-softened ``phi``.
        """
        phi = np.zeros(len(self._pos))
        self._traverse_potential(0, np.arange(len(self._pos)), phi)
        return float(0.5 * np.sum(self._mass * phi))

    def _traverse_potential(
        self, node_id: int, active: np.ndarray, phi: np.ndarray
    ) -> None:
        if len(active) == 0:
            return
        node = self.nodes[node_id]
        delta = node.com[None, :] - self._pos[active]
        dist2 = np.einsum("ij,ij->i", delta, delta)
        accepted = (2.0 * node.half) ** 2 < (self.theta**2 * dist2)
        if node.is_leaf:
            src_idx = node._indices  # type: ignore[attr-defined]
            d = self._pos[src_idx][None, :, :] - self._pos[active][:, None, :]
            d2 = np.einsum("ijk,ijk->ij", d, d)
            self_mask = d2 < 1e-24
            inv_d = (d2 + self.eps**2) ** -0.5
            inv_d[self_mask] = 0.0
            phi[active] += -self.G * inv_d @ self._mass[src_idx]
            return
        take = active[accepted]
        if len(take):
            phi[take] += -self.G * node.mass / np.sqrt(
                dist2[accepted] + self.eps**2
            )
        remain = active[~accepted]
        for child in node.children:
            self._traverse_potential(child, remain, phi)

    def _leaf_direct(
        self, node: _BhNode, active: np.ndarray, pts: np.ndarray, acc: np.ndarray
    ) -> None:
        src_idx = node._indices  # type: ignore[attr-defined]
        src_pos = self._pos[src_idx]
        src_mass = self._mass[src_idx]
        delta = src_pos[None, :, :] - pts[active][:, None, :]
        dist2 = np.einsum("ijk,ijk->ij", delta, delta)
        self_mask = dist2 < 1e-24
        dist2 = dist2 + self.eps**2
        inv_d3 = dist2**-1.5
        inv_d3[self_mask] = 0.0
        acc[active] += self.G * np.einsum("ij,j,ijk->ik", inv_d3, src_mass, delta)
