"""Ablation: instrumentation overhead vs time-to-solution.

Section 2 claims the instrumented code's performance is unaffected
because SPH-EXA runs on the GPU and the CPU is free to handle profiling.
This ablation makes the claim quantitative: sweep the host-side cost of
one PMT read and measure the run's dilation.  Realistic read costs
(pm_counters file reads are ~10-100 us, NVML calls ~1 ms) must be fully
hidden behind the multi-second GPU kernels; the dilation should only
appear when the artificial overhead approaches the *shortest* function
durations.
"""

from conftest import write_result

from repro.config import CSCS_A100, SUBSONIC_TURBULENCE
from repro.experiments.runner import functions_for
from repro.hardware.cluster import Cluster
from repro.hardware.clock import VirtualClock
from repro.instrumentation.profiler import EnergyProfiler
from repro.mpi.costmodel import CommCostModel
from repro.mpi.engine import SpmdEngine
from repro.mpi.mapping import RankPlacement
from repro.sensors.telemetry import NodeTelemetry
from repro.sph.perfmodel import SphPerformanceModel
from repro.sph.scaled import ScaledSphApplication

OVERHEADS_S = (0.0, 1e-4, 1e-3, 1e-2, 0.1, 1.0)
NUM_STEPS = 20

def _run_with_overhead(overhead_s: float, num_steps: int = NUM_STEPS) -> float:
    clock = VirtualClock()
    cluster = Cluster(
        "c", clock, CSCS_A100.node_spec, 2, CSCS_A100.network
    )
    telemetries = [
        NodeTelemetry(node, CSCS_A100, clock, seed=i)
        for i, node in enumerate(cluster.nodes)
    ]
    placement = RankPlacement(cluster)
    engine = SpmdEngine(placement)
    perfmodel = SphPerformanceModel(
        CommCostModel(CSCS_A100.network, placement), 150e6
    )
    profiler = EnergyProfiler(placement, telemetries, CSCS_A100)
    app = ScaledSphApplication(
        engine=engine,
        profiler=profiler,
        perfmodel=perfmodel,
        functions=functions_for(SUBSONIC_TURBULENCE),
        num_steps=num_steps,
        test_case_name=SUBSONIC_TURBULENCE.name,
        instrumentation_overhead_s=overhead_s,
    )
    run = app.run()
    return run.app_seconds


def bench_smoke_instrumentation_overhead(results_dir):
    times = {w: _run_with_overhead(w, num_steps=6) for w in (0.0, 1e-3, 1.0)}
    baseline = times[0.0]

    # Realistic read costs are completely hidden; second-scale ones not.
    assert times[1e-3] == baseline
    assert times[1.0] / baseline > 1.01

    lines = [
        "Run dilation vs per-read instrumentation overhead smoke "
        "(CSCS-A100, 6 steps)",
        f"{'read cost [s]':>14} {'run time [s]':>13} {'dilation':>9}",
    ]
    for overhead, t in times.items():
        lines.append(f"{overhead:>14.4f} {t:>13.1f} {t / baseline:>9.4f}")
    write_result(results_dir, "ablation_overhead_smoke", "\n".join(lines))


def _sweep():
    return {w: _run_with_overhead(w) for w in OVERHEADS_S}


def bench_instrumentation_overhead(benchmark, results_dir):
    times = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    baseline = times[0.0]

    lines = [
        "Run dilation vs per-read instrumentation overhead (CSCS-A100, "
        f"150M particles/GPU, {NUM_STEPS} steps)",
        f"{'read cost [s]':>14} {'run time [s]':>13} {'dilation':>9}",
    ]
    for overhead, t in times.items():
        lines.append(f"{overhead:>14.4f} {t:>13.1f} {t / baseline:>9.4f}")

    # Realistic read costs (<= 1 ms) are completely hidden.
    assert times[1e-4] == baseline
    assert times[1e-3] == baseline
    # 10 ms reads start to poke past the sub-10 ms functions (EOS,
    # Timestep, the update kernels) but stay under a few percent.
    assert times[1e-2] / baseline < 1.05
    # The claim breaks only when reads rival the shortest functions.
    assert times[1.0] / baseline > 1.05

    lines.append("")
    lines.append(
        "Realistic PMT read costs are fully hidden behind the GPU kernels "
        "(the Section 2 claim); dilation appears only for second-scale "
        "artificial read costs."
    )
    write_result(results_dir, "ablation_overhead", "\n".join(lines))
