"""The M4 cubic-spline kernel (Monaghan & Lattanzio 1985).

In 3D with compact support ``2h``::

    W(r, h) = (1 / (pi h^3)) * w(q),   q = r / h in [0, 2]

    w(q) = 1 - 1.5 q^2 + 0.75 q^3          for 0 <= q < 1
         = 0.25 (2 - q)^3                  for 1 <= q < 2
         = 0                               for q >= 2

All evaluations are vectorized over pair arrays; the gradient is returned
as the scalar ``dW/dr`` so callers form vector gradients with their own
(minimum-image) displacement unit vectors.
"""

from __future__ import annotations

import numpy as np

_SIGMA_3D = 1.0 / np.pi

#: Compact support radius in units of h.
SUPPORT_RADIUS = 2.0


class CubicSplineKernel:
    """Vectorized 3D cubic-spline kernel."""

    support = SUPPORT_RADIUS

    @staticmethod
    def w(q: np.ndarray) -> np.ndarray:
        """Dimensionless kernel shape ``w(q)``."""
        q = np.asarray(q, dtype=np.float64)
        out = np.zeros_like(q)
        inner = q < 1.0
        outer = (q >= 1.0) & (q < 2.0)
        qi = q[inner]
        out[inner] = 1.0 - 1.5 * qi**2 + 0.75 * qi**3
        qo = q[outer]
        out[outer] = 0.25 * (2.0 - qo) ** 3
        return out

    @staticmethod
    def dw(q: np.ndarray) -> np.ndarray:
        """Dimensionless shape derivative ``dw/dq``."""
        q = np.asarray(q, dtype=np.float64)
        out = np.zeros_like(q)
        inner = q < 1.0
        outer = (q >= 1.0) & (q < 2.0)
        qi = q[inner]
        out[inner] = -3.0 * qi + 2.25 * qi**2
        qo = q[outer]
        out[outer] = -0.75 * (2.0 - qo) ** 2
        return out

    @classmethod
    def value(cls, r: np.ndarray, h: np.ndarray) -> np.ndarray:
        """``W(r, h)`` with full dimensional normalization."""
        h = np.asarray(h, dtype=np.float64)
        q = np.asarray(r, dtype=np.float64) / h
        return _SIGMA_3D / h**3 * cls.w(q)

    @classmethod
    def grad_r(cls, r: np.ndarray, h: np.ndarray) -> np.ndarray:
        """Scalar radial gradient ``dW/dr`` (negative inside the support)."""
        h = np.asarray(h, dtype=np.float64)
        q = np.asarray(r, dtype=np.float64) / h
        return _SIGMA_3D / h**4 * cls.dw(q)
