"""Instrumented application with per-function dynamic DVFS.

Identical to :class:`~repro.sph.scaled.ScaledSphApplication` except that
before every loop function each rank's GPU clock is set to the policy's
frequency for that function.  Frequency transitions are not free: each
actual switch costs ``DVFS_SWITCH_LATENCY_S`` with the GPU idle, which is
why naive per-function switching can lose on very short functions — the
policy has to earn the switch.

The switch idle time is measured as its own profiler region,
``SWITCH_FUNCTION`` (``"dvfs-switch"``): the PLL-relock energy belongs to
the *transition*, not to whichever function happens to run next, and the
function-partition audit invariant accounts for it explicitly instead of
absorbing it into a neighbouring function's window.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.instrumentation.profiler import EnergyProfiler
from repro.mpi.engine import RankWork, SpmdEngine
from repro.sph.perfmodel import SphPerformanceModel
from repro.sph.scaled import ScaledSphApplication
from repro.tuning.policy import FrequencyPolicy
from repro.units import mhz

#: Time to reprogram the GPU clock (driver + PLL relock), per switch.
DVFS_SWITCH_LATENCY_S = 0.010

#: Profiler region that absorbs the switch-latency idle energy.
SWITCH_FUNCTION = "dvfs-switch"


class DynamicDvfsApplication(ScaledSphApplication):
    """Paper-scale run that re-clocks the GPU at function boundaries.

    ``privileged`` applies frequency changes with site privileges, the
    mode a system-operated governor runs in on machines whose clocks are
    not user controllable (LUMI-G, CSCS-A100).
    """

    def __init__(
        self,
        engine: SpmdEngine,
        profiler: EnergyProfiler,
        perfmodel: SphPerformanceModel,
        functions: tuple[str, ...],
        num_steps: int,
        test_case_name: str,
        policy: FrequencyPolicy,
        switch_latency_s: float = DVFS_SWITCH_LATENCY_S,
        privileged: bool = False,
    ) -> None:
        super().__init__(
            engine, profiler, perfmodel, functions, num_steps, test_case_name
        )
        if switch_latency_s < 0:
            raise SimulationError("switch latency must be >= 0")
        self.policy = policy
        self.switch_latency_s = switch_latency_s
        self.privileged = privileged
        #: Number of actual clock transitions performed.
        self.switch_count = 0

    def _snap_to_supported(self, freq_mhz: float) -> float:
        """Round the requested frequency to the nearest supported step."""
        gpu = self.engine.placement.gpu_of(0)
        return gpu.frequency.nearest_supported(mhz(freq_mhz))

    def _apply_policy(self, function: str) -> None:
        requested = self.policy.frequency_for(function)
        if requested is None:
            return  # the policy has no opinion: keep the running clock
        target_hz = self._snap_to_supported(requested)
        placement = self.engine.placement
        # Every rank's clock is checked: after a partially applied switch
        # (or a degraded rank) the domains can diverge, and deciding from
        # rank 0 alone would leave the stragglers at the wrong frequency.
        stale = [
            rank
            for rank in range(placement.size)
            if placement.gpu_of(rank).frequency.current_hz != target_hz
        ]
        if not stale:
            return
        # Pay the reprogramming latency with every GPU idle, then switch.
        # The idle runs as its own measured region so the relock energy is
        # attributed to the transition, not the next function's window.
        if self.switch_latency_s > 0:
            idle = [
                RankWork(duration=self.switch_latency_s, cpu_share=0.02)
                for _ in range(placement.size)
            ]
            self.engine.run_phase(
                idle,
                on_start=self.profiler.begin,
                on_end=lambda rank: self.profiler.end(rank, SWITCH_FUNCTION),
            )
        for rank in stale:
            placement.gpu_of(rank).set_frequency(
                target_hz, privileged=self.privileged
            )
        self.switch_count += 1
        if self.profiler.span_recorder is not None:
            self.profiler.span_recorder.instant(
                f"dvfs {target_hz / 1e6:.0f}MHz ({function})",
                self.engine.placement.cluster.clock.now,
            )

    def _run_function(self, function: str, step: int) -> None:
        self._apply_policy(function)
        super()._run_function(function, step)
