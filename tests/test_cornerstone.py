"""Tests for the cornerstone SFC octree: Morton codes, tree invariants,
domain partitioning and halo completeness."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.sph.box import Box
from repro.sph.cornerstone import (
    DomainDecomposition,
    KEY_RANGE,
    MAX_COORD,
    build_cornerstone,
    decode_morton,
    encode_morton,
    leaf_counts,
    node_aligned,
    partition_leaves,
    sfc_keys,
)
from repro.sph.cornerstone.octree import validate_cornerstone
from repro.sph.neighbors import brute_force_pairs
from repro.sph.particles import ParticleSet


class TestMorton:
    def test_origin(self):
        assert encode_morton(np.array([0]), np.array([0]), np.array([0]))[0] == 0

    def test_unit_coordinates(self):
        # x is the most significant dimension.
        x = encode_morton(np.array([1]), np.array([0]), np.array([0]))[0]
        y = encode_morton(np.array([0]), np.array([1]), np.array([0]))[0]
        z = encode_morton(np.array([0]), np.array([0]), np.array([1]))[0]
        assert (x, y, z) == (4, 2, 1)

    def test_max_coordinate(self):
        m = MAX_COORD - 1
        key = encode_morton(np.array([m]), np.array([m]), np.array([m]))[0]
        assert key == KEY_RANGE - np.uint64(1)

    def test_out_of_range_rejected(self):
        with pytest.raises(SimulationError):
            encode_morton(np.array([MAX_COORD]), np.array([0]), np.array([0]))
        with pytest.raises(SimulationError):
            encode_morton(np.array([-1]), np.array([0]), np.array([0]))

    @given(
        st.integers(min_value=0, max_value=MAX_COORD - 1),
        st.integers(min_value=0, max_value=MAX_COORD - 1),
        st.integers(min_value=0, max_value=MAX_COORD - 1),
    )
    @settings(max_examples=100)
    def test_roundtrip_property(self, ix, iy, iz):
        keys = encode_morton(np.array([ix]), np.array([iy]), np.array([iz]))
        dx, dy, dz = decode_morton(keys)
        assert (dx[0], dy[0], dz[0]) == (ix, iy, iz)

    def test_locality(self):
        """Adjacent cells in z differ in the low bits only."""
        a = encode_morton(np.array([5]), np.array([9]), np.array([2]))[0]
        b = encode_morton(np.array([5]), np.array([9]), np.array([3]))[0]
        assert b == a + np.uint64(1)

    def test_sfc_keys_span_box(self):
        box = Box(length=2.0, periodic=True)
        edge = 1.0 - 1e-9
        pos = np.array([[-1.0, -1.0, -1.0], [edge, edge, edge]])
        keys = sfc_keys(pos, box)
        assert keys[0] == 0
        assert keys[1] == KEY_RANGE - np.uint64(1)


class TestCornerstoneTree:
    def make_codes(self, n, seed=0):
        rng = np.random.default_rng(seed)
        return np.sort(
            rng.integers(0, int(KEY_RANGE), size=n, dtype=np.uint64)
        )

    def test_root_only_when_under_bucket(self):
        codes = self.make_codes(10)
        leaves = build_cornerstone(codes, bucket_size=64)
        assert len(leaves) == 2
        validate_cornerstone(leaves)

    def test_invariants_after_refinement(self):
        codes = self.make_codes(5000, seed=1)
        leaves = build_cornerstone(codes, bucket_size=64)
        validate_cornerstone(leaves)

    def test_bucket_respected(self):
        codes = self.make_codes(5000, seed=2)
        leaves = build_cornerstone(codes, bucket_size=64)
        counts = leaf_counts(leaves, codes)
        assert counts.max() <= 64

    def test_counts_sum_to_particles(self):
        codes = self.make_codes(3000, seed=3)
        leaves = build_cornerstone(codes, bucket_size=32)
        assert leaf_counts(leaves, codes).sum() == 3000

    def test_clustered_codes_refine_deeply(self):
        # All particles in one octant: the tree refines there only.
        rng = np.random.default_rng(4)
        codes = np.sort(
            rng.integers(0, int(KEY_RANGE) // 512, size=2000, dtype=np.uint64)
        )
        leaves = build_cornerstone(codes, bucket_size=64)
        validate_cornerstone(leaves)
        assert leaf_counts(leaves, codes).max() <= 64

    def test_unsorted_codes_rejected(self):
        with pytest.raises(SimulationError):
            build_cornerstone(np.array([5, 3], dtype=np.uint64), 8)

    def test_bad_bucket_rejected(self):
        with pytest.raises(SimulationError):
            build_cornerstone(np.array([], dtype=np.uint64), 0)

    def test_node_aligned(self):
        assert node_aligned(0, 8)
        assert node_aligned(8, 8)
        assert node_aligned(0, 64)
        assert not node_aligned(4, 8)   # misaligned start
        assert not node_aligned(0, 16)  # power of 2, not of 8
        assert not node_aligned(0, 0)

    @given(
        st.integers(min_value=1, max_value=2000),
        st.integers(min_value=1, max_value=128),
    )
    @settings(max_examples=25, deadline=None)
    def test_invariants_property(self, n, bucket):
        rng = np.random.default_rng(n * 1000 + bucket)
        codes = np.sort(rng.integers(0, int(KEY_RANGE), size=n, dtype=np.uint64))
        leaves = build_cornerstone(codes, bucket)
        validate_cornerstone(leaves)
        assert leaf_counts(leaves, codes).sum() == n


class TestPartition:
    def test_even_split(self):
        counts = np.full(8, 10)
        bounds = partition_leaves(counts, 4)
        assert bounds.tolist() == [0, 2, 4, 6, 8]

    def test_skewed_split_balances(self):
        counts = np.array([100, 1, 1, 1, 1, 1, 1, 100])
        bounds = partition_leaves(counts, 2)
        left = counts[bounds[0]:bounds[1]].sum()
        right = counts[bounds[1]:bounds[2]].sum()
        assert abs(int(left) - int(right)) <= 100

    def test_single_rank(self):
        bounds = partition_leaves(np.array([5, 5]), 1)
        assert bounds.tolist() == [0, 2]

    def test_invalid_ranks(self):
        with pytest.raises(SimulationError):
            partition_leaves(np.array([1]), 0)

    @given(
        st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=64),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50)
    def test_partition_property(self, counts, n_ranks):
        counts = np.array(counts)
        bounds = partition_leaves(counts, n_ranks)
        assert len(bounds) == n_ranks + 1
        assert bounds[0] == 0 and bounds[-1] == len(counts)
        assert np.all(np.diff(bounds) >= 0)


class TestDomainDecomposition:
    def make_particles(self, n, seed=0):
        rng = np.random.default_rng(seed)
        ps = ParticleSet(n)
        ps.pos = rng.uniform(-0.5, 0.5, size=(n, 3))
        ps.mass[:] = 1.0 / n
        ps.h[:] = 0.07
        ps.u[:] = 1.0
        return ps

    def test_sync_sorts_by_sfc(self):
        box = Box(length=1.0, periodic=True)
        ps = self.make_particles(500)
        domain = DomainDecomposition(box, n_ranks=4)
        domain.sync(ps)
        keys = sfc_keys(ps.pos, box)
        assert np.all(keys[1:] >= keys[:-1])

    def test_ranges_partition_particles(self):
        box = Box(length=1.0, periodic=True)
        ps = self.make_particles(500, seed=1)
        domain = DomainDecomposition(box, n_ranks=4)
        result = domain.sync(ps)
        starts = [r[0] for r in result.rank_ranges]
        ends = [r[1] for r in result.rank_ranges]
        assert starts[0] == 0 and ends[-1] == ps.n
        for k in range(3):
            assert ends[k] == starts[k + 1]

    def test_balance(self):
        box = Box(length=1.0, periodic=True)
        ps = self.make_particles(2000, seed=2)
        domain = DomainDecomposition(box, n_ranks=4, bucket_size=16)
        result = domain.sync(ps)
        owned = [result.owned_count(r) for r in range(4)]
        assert max(owned) <= 1.5 * min(owned)

    def test_halo_completeness(self):
        """Every neighbour of an owned particle is owned or in the halo."""
        box = Box(length=1.0, periodic=True)
        ps = self.make_particles(600, seed=3)
        domain = DomainDecomposition(box, n_ranks=4, bucket_size=16)
        result = domain.sync(ps)
        pairs = brute_force_pairs(ps.pos, ps.h, box)
        for rank in range(4):
            start, end = result.rank_ranges[rank]
            halos = set(domain.halo_indices(ps, rank).tolist())
            owned = set(range(start, end))
            mask = (pairs.i >= start) & (pairs.i < end)
            needed = set(pairs.j[mask].tolist())
            assert needed <= owned | halos

    def test_halos_exclude_owned(self):
        box = Box(length=1.0, periodic=True)
        ps = self.make_particles(500, seed=4)
        domain = DomainDecomposition(box, n_ranks=2)
        result = domain.sync(ps)
        start, end = result.rank_ranges[0]
        halos = domain.halo_indices(ps, 0)
        assert np.all((halos < start) | (halos >= end))

    def test_halo_bytes_positive(self):
        box = Box(length=1.0, periodic=True)
        ps = self.make_particles(500, seed=5)
        domain = DomainDecomposition(box, n_ranks=4)
        domain.sync(ps)
        assert domain.halo_bytes(ps, 0) > 0

    def test_halo_requires_sync(self):
        box = Box(length=1.0, periodic=True)
        ps = self.make_particles(100)
        domain = DomainDecomposition(box, n_ranks=2)
        with pytest.raises(SimulationError):
            domain.halo_indices(ps, 0)

    def test_single_rank_owns_everything(self):
        box = Box(length=1.0, periodic=True)
        ps = self.make_particles(300, seed=6)
        domain = DomainDecomposition(box, n_ranks=1)
        result = domain.sync(ps)
        assert result.rank_ranges == [(0, 300)]
        assert len(domain.halo_indices(ps, 0)) == 0
