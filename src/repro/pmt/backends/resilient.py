"""Resilient PMT wrapper: the degradation ladder at the meter level.

Wraps any concrete :class:`~repro.pmt.base.PMT` backend so that one failing
or lying sensor cannot abort an instrumented run or silently corrupt the
per-function attribution:

1. **retry** — a failed ``read_state()`` is retried a bounded number of
   times (counted; under the shared virtual clock a retry re-reads at the
   same instant, so purely time-windowed faults fall through to step 2 —
   exactly like a real retry storm inside a long outage);
2. **interpolate** — on persistent failure, every measurement of the last
   good state is extrapolated at its last observed power and flagged
   ``interpolated``;
3. **degrade** — per-measurement stuck-counter detection (identical energy
   across advancing time under nonzero load) substitutes extrapolated
   energy flagged ``extrapolated``; instantaneous powers above the
   hardware's plausibility bound are substituted and flagged ``rejected``;
4. **zero-baseline** — a failure before the very first good read serves a
   zero-power, zero-energy state shaped after the inner backend's
   :meth:`~repro.pmt.base.PMT.measurement_names` (energy accounting is
   relative, so a zero baseline keeps the run alive while the gap stays
   on the books); only a shapeless inner meter still raises.

All mitigations are tallied in a :class:`~repro.sensors.resilient.SensorHealth`
record, which the instrumentation layer surfaces in the run's telemetry
health table.

Composition note: wrap *leaf* meters and feed the wrapped children to
:class:`~repro.pmt.backends.composite.CompositePMT` — the composite then
sums extrapolated child values into a still-plausible primary, and its own
per-child isolation handles children that raise before any good read.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BackendError, SensorError
from repro.pmt.base import PMT
from repro.pmt.registry import register_backend
from repro.pmt.state import Measurement, State
from repro.sensors.resilient import (
    DEFAULT_MAX_RETRIES,
    DEFAULT_STUCK_GRACE_S,
    DEFAULT_STUCK_MIN_JOULES,
    DEFAULT_STUCK_READS,
    SensorHealth,
)


@dataclass
class _StuckTrack:
    """Per-measurement stuck-counter streak state.

    ``trail_*`` hold a (time, joules) reference at least one grace period
    older than the anchor, so a detected freeze can be extrapolated at the
    trailing-average power instead of the instantaneous power the sensor
    happened to report at the freeze instant.
    """

    joules: float
    watts: float
    anchor_t: float
    trail_t: float
    trail_joules: float
    trail_next_t: float
    trail_next_joules: float
    streak: int = 0
    stuck: bool = False


@register_backend("resilient")
class ResilientPMT(PMT):
    """Fault-tolerant wrapper over one PMT backend.

    Parameters
    ----------
    inner:
        The meter to protect.
    label:
        Name used for this meter in health records (defaults to the inner
        backend's registry name).
    max_retries:
        Bounded ``read_state()`` re-attempts per read.
    plausible_max_watts:
        Physical ceiling for any single measurement's instantaneous power,
        from the hardware specs (``None`` disables glitch rejection).
    stuck_reads / min_expected_watts / stuck_min_joules / stuck_grace_s:
        Stuck-accumulator detection thresholds, applied per measurement
        (see :class:`~repro.sensors.resilient.ResilientSensor`).
    """

    def __init__(
        self,
        inner: PMT,
        *,
        label: str | None = None,
        max_retries: int = DEFAULT_MAX_RETRIES,
        plausible_max_watts: float | None = None,
        stuck_reads: int = DEFAULT_STUCK_READS,
        min_expected_watts: float = 1.0,
        stuck_min_joules: float = DEFAULT_STUCK_MIN_JOULES,
        stuck_grace_s: float = DEFAULT_STUCK_GRACE_S,
    ) -> None:
        if max_retries < 0:
            raise BackendError("max_retries must be >= 0")
        if stuck_reads < 1:
            raise BackendError("stuck_reads must be >= 1")
        if plausible_max_watts is not None and plausible_max_watts <= 0:
            raise BackendError("plausible_max_watts must be positive when set")
        super().__init__(inner.clock)
        self.inner = inner
        self.label = label if label is not None else inner.name
        self.max_retries = int(max_retries)
        self.plausible_max_watts = plausible_max_watts
        self.stuck_reads = int(stuck_reads)
        self.min_expected_watts = float(min_expected_watts)
        self.stuck_min_joules = float(stuck_min_joules)
        self.stuck_grace_s = float(stuck_grace_s)
        self.health = SensorHealth()
        self._last_good: State | None = None
        self._prev_t: float | None = None
        self._tracks: dict[str, _StuckTrack] = {}

    # -- degradation ladder -----------------------------------------------------

    def read_state(self) -> State:
        t = self.clock.now
        self.health.reads += 1
        state = self._attempt()
        if state is None:
            state = self._interpolate_state(t)
        else:
            state = State(
                timestamp=state.timestamp,
                measurements=tuple(
                    self._track_stuck(t, self._reject_glitch(m))
                    for m in state.measurements
                ),
            )
        self._last_good = state
        self._prev_t = t
        return state

    def _attempt(self) -> State | None:
        """Bounded retries.  The clock is shared with the application, so a
        retry cannot wait it out; time-windowed faults (dropouts) always
        exhaust the budget and fall through to interpolation — the counted
        retries still record how hard the meter was poked."""
        for attempt in range(self.max_retries + 1):
            try:
                state = self.inner.read_state()
            except SensorError:
                if attempt == self.max_retries:
                    return None
                self.health.retries += 1
            else:
                if attempt > 0:
                    self.health.retry_successes += 1
                return state
        return None

    def measurement_names(self) -> tuple[str, ...] | None:
        return self.inner.measurement_names()

    def _interpolate_state(self, t: float) -> State:
        last = self._last_good
        if last is None:
            # An outage covering the very first read: synthesize a zero
            # baseline in the inner backend's state shape.  Consumers
            # difference later states against this one, the gap is
            # counted, and any resulting imbalance is the audit layer's
            # to flag — a crash here would lose the whole run.
            names = self.inner.measurement_names()
            if names is None:
                raise SensorError(
                    f"meter {self.label!r} failed before its first good "
                    "read and does not declare its measurement names"
                )
            self.health.gaps_interpolated += 1
            self.health.degraded = True
            return State(
                timestamp=t,
                measurements=tuple(
                    Measurement(
                        name=name,
                        joules=0.0,
                        watts=0.0,
                        quality="interpolated",
                    )
                    for name in names
                ),
            )
        self.health.gaps_interpolated += 1
        if self._prev_t is not None:
            self.health.gap_seconds += max(0.0, t - self._prev_t)
        self.health.degraded = True
        dt = max(0.0, t - last.timestamp)
        return State(
            timestamp=t,
            measurements=tuple(
                Measurement(
                    name=m.name,
                    joules=m.joules + m.watts * dt,
                    watts=m.watts,
                    quality="interpolated",
                )
                for m in last.measurements
            ),
        )

    def _reject_glitch(self, m: Measurement) -> Measurement:
        bound = self.plausible_max_watts
        if bound is None or m.watts <= bound:
            return m
        self.health.glitches_rejected += 1
        substitute = bound
        if self._last_good is not None and m.name in self._last_good.names():
            substitute = self._last_good.watts_of(m.name)
        return Measurement(
            name=m.name, joules=m.joules, watts=substitute, quality="rejected"
        )

    def _track_stuck(self, t: float, m: Measurement) -> Measurement:
        track = self._tracks.get(m.name)
        if track is None:
            self._tracks[m.name] = _StuckTrack(
                joules=m.joules,
                watts=m.watts,
                anchor_t=t,
                trail_t=t,
                trail_joules=m.joules,
                trail_next_t=t,
                trail_next_joules=m.joules,
            )
            return m
        if m.joules != track.joules:
            # Accumulator moved (or thawed): healthy, reset the streak but
            # keep the trailing reference rolling forward.
            track.joules = m.joules
            track.watts = m.watts
            track.anchor_t = t
            track.streak = 0
            track.stuck = False
            if t - track.trail_next_t >= self.stuck_grace_s:
                track.trail_t = track.trail_next_t
                track.trail_joules = track.trail_next_joules
                track.trail_next_t = t
                track.trail_next_joules = m.joules
            return m
        expected_watts = max(m.watts, track.watts, self.min_expected_watts)
        zero_growth_s = t - track.anchor_t
        if (
            zero_growth_s >= self.stuck_grace_s
            and zero_growth_s * expected_watts >= self.stuck_min_joules
        ):
            track.streak += 1
            self.health.stuck_reads += 1
        if track.streak >= self.stuck_reads and not track.stuck:
            track.stuck = True
            self.health.stuck_detections += 1
            self.health.degraded = True
        if not track.stuck:
            return m
        # The freeze happened at most one read interval before the anchor.
        # Extrapolate at the trailing-average power (identical to the
        # frozen instantaneous power under steady load, far less biased
        # when the freeze lands inside a burst or an idle gap); the error
        # stays bounded by (read spacing + power drift) * elapsed time.
        watts = track.watts
        if track.anchor_t > track.trail_t:
            watts = (track.joules - track.trail_joules) / (
                track.anchor_t - track.trail_t
            )
        return Measurement(
            name=m.name,
            joules=track.joules + watts * max(0.0, t - track.anchor_t),
            watts=watts,
            quality="extrapolated",
        )
