"""Density summation (the ``Density`` loop function).

Gather formulation with each particle's own smoothing length::

    rho_i = m_i W(0, h_i) + sum_j m_j W(|r_ij|, h_i)

The kernel's compact support makes out-of-range pair terms vanish, so the
union pair list can be used unmasked.

Accepts a :class:`~repro.sph.pair_cache.CsrStepContext` (the production
SoA path: one gather, one in-place multiply, one float64 segment
reduction), a :class:`~repro.sph.pair_cache.StepContext` over a
half-pair list (the previous cached generation), or a directed
:class:`~repro.sph.neighbors.PairList` (the oracle path).
"""

from __future__ import annotations

import numpy as np

from repro.sph import csolver
from repro.sph.kernels.cubic_spline import _SIGMA_3D, CubicSplineKernel
from repro.sph.neighbors import PairList
from repro.sph.pair_cache import CsrStepContext, StepContext, scatter_sum_sym
from repro.sph.particles import ParticleSet


def _density_csr(ps: ParticleSet, ctx: CsrStepContext) -> None:
    if ctx.cfast is not None:
        rho = csolver.density(ctx.cfast, ctx, ps.mass, _SIGMA_3D)
    else:
        contrib = ctx.gather(ps.mass, "col", "ph_mj")
        contrib *= ctx.w_own
        rho = ctx.reduce_sum(contrib)
    rho += ps.mass * ctx.kernel.value(np.zeros(ps.n), ps.h)
    ps.rho = rho


def _density_cached(ps: ParticleSet, ctx: StepContext) -> None:
    hp = ctx.pairs
    rho = scatter_sum_sym(
        hp.i,
        hp.j,
        ps.mass[hp.j] * ctx.w_i,
        ps.mass[hp.i] * ctx.w_j,
        ps.n,
    )
    rho += ps.mass * ctx.kernel.value(np.zeros(ps.n), ps.h)
    ps.rho = rho


def compute_density(
    ps: ParticleSet, pairs: PairList | StepContext, kernel=CubicSplineKernel
) -> None:
    """Fill ``ps.rho`` from the pair list."""
    if isinstance(pairs, CsrStepContext):
        _density_csr(ps, pairs)
        return
    if isinstance(pairs, StepContext):
        _density_cached(ps, pairs)
        return
    w = kernel.value(pairs.r, ps.h[pairs.i])
    contrib = ps.mass[pairs.j] * w
    rho = np.bincount(pairs.i, weights=contrib, minlength=ps.n).astype(
        np.float64
    )
    # Self-contribution W(0, h_i) = 1 / (pi h^3).
    rho += ps.mass * kernel.value(np.zeros(ps.n), ps.h)
    ps.rho = rho
