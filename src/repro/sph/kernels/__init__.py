"""SPH smoothing kernels."""

from repro.sph.kernels.cubic_spline import CubicSplineKernel
from repro.sph.kernels.wendland import WendlandC2Kernel

__all__ = ["CubicSplineKernel", "WendlandC2Kernel"]
