"""Core sensor mechanism: a sampling energy counter over a power trace.

Real power telemetry controllers (Cray BMC, NVML, RAPL) sample device power
at a fixed cadence, quantize it, and integrate it into a monotonically
increasing energy accumulator.  :class:`SampledEnergyCounter` reproduces
that pipeline over a ground-truth :class:`~repro.hardware.trace.PowerTrace`:

* at every tick ``k * refresh_period`` the controller reads instantaneous
  power (left-rectangle sample), adds optional Gaussian sensor noise, and
  quantizes to ``watts_quantum``;
* the energy accumulator advances by ``power * refresh_period`` per tick and
  is exposed quantized to ``energy_quantum`` (optionally wrapping at
  ``wrap_joules``, like RAPL's 32-bit microjoule registers);
* a read at time ``t`` reflects the state as of the *last completed tick* —
  data between ticks is invisible, which is exactly why short instrumented
  regions see quantization error.

The per-tick quantized powers are cached in a growable prefix-sum buffer so
reads may arrive in any time order (two MPI ranks sharing one card sensor
read it at slightly different times).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SensorError


@dataclass(frozen=True)
class SensorReading:
    """One sensor read: the controller state at its last completed tick."""

    #: Time of the tick this reading reflects (seconds).
    timestamp: float
    #: Instantaneous power register (quantized; noisy if the sensor is).
    watts: float
    #: Cumulative energy accumulator (quantized; may wrap if configured).
    joules: float


class SampledEnergyCounter:
    """Sampling, quantizing, integrating power sensor (see module docstring).

    Parameters
    ----------
    trace:
        Ground-truth power source; anything with a ``sample(times)`` method
        (:class:`PowerTrace` or :class:`SummedPowerTrace`).
    refresh_period_s:
        Controller tick period in seconds.
    watts_quantum:
        Power register resolution in watts (e.g. 1.0 for pm_counters,
        1e-3 for NVML).
    energy_quantum:
        Energy accumulator resolution in joules (e.g. 1.0 for pm_counters,
        15.3e-6 for RAPL).
    noise_sigma_watts:
        Standard deviation of per-tick Gaussian sensor noise.
    wrap_joules:
        If set, the exposed accumulator wraps modulo this value.
    seed:
        Seed for the deterministic noise stream.
    initial_joules:
        Accumulator value at t = 0.  Real counters count since boot (or
        driver load), not since the job started, so consumers must always
        difference two reads; a nonzero base catches code that forgets.
    """

    def __init__(
        self,
        trace,
        refresh_period_s: float,
        watts_quantum: float = 1.0,
        energy_quantum: float = 1.0,
        noise_sigma_watts: float = 0.0,
        wrap_joules: float | None = None,
        seed: int = 0,
        initial_joules: float = 0.0,
    ) -> None:
        if refresh_period_s <= 0:
            raise SensorError("refresh period must be positive")
        if watts_quantum <= 0 or energy_quantum <= 0:
            raise SensorError("quantization steps must be positive")
        if noise_sigma_watts < 0:
            raise SensorError("noise sigma must be >= 0")
        if wrap_joules is not None and wrap_joules <= 0:
            raise SensorError("wrap_joules must be positive when set")
        if initial_joules < 0:
            raise SensorError("initial_joules must be >= 0")
        self.initial_joules = float(initial_joules)
        self._trace = trace
        self.refresh_period_s = float(refresh_period_s)
        self.watts_quantum = float(watts_quantum)
        self.energy_quantum = float(energy_quantum)
        self.noise_sigma_watts = float(noise_sigma_watts)
        self.wrap_joules = wrap_joules
        self._rng = np.random.default_rng(seed)
        # Quantized tick powers and their running energy integral.
        self._tick_watts = np.zeros(0, dtype=np.float64)
        self._cum_joules = np.zeros(0, dtype=np.float64)

    # -- internal ------------------------------------------------------------

    def _ensure_ticks(self, upto_tick: int) -> None:
        """Extend the cached tick buffers through tick index ``upto_tick``.

        Tick ``k`` samples ground truth at ``k * period``; the accumulator
        at tick ``k`` integrates powers of ticks ``0 .. k-1``.
        """
        have = len(self._tick_watts)
        if upto_tick < have:
            return
        new_ticks = np.arange(have, upto_tick + 1, dtype=np.float64)
        times = new_ticks * self.refresh_period_s
        watts = np.asarray(self._trace.sample(times), dtype=np.float64)
        if self.noise_sigma_watts > 0:
            watts = watts + self._rng.normal(
                0.0, self.noise_sigma_watts, size=watts.shape
            )
            np.clip(watts, 0.0, None, out=watts)
        watts = np.round(watts / self.watts_quantum) * self.watts_quantum
        prev_cum = self._cum_joules[-1] if have else 0.0
        prev_watt = self._tick_watts[-1] if have else 0.0
        # cum[k] = cum[k-1] + watts[k-1] * period
        increments = np.empty(len(watts))
        increments[0] = prev_watt * self.refresh_period_s if have else 0.0
        increments[1:] = watts[:-1] * self.refresh_period_s
        cum = prev_cum + np.cumsum(increments)
        self._tick_watts = np.concatenate([self._tick_watts, watts])
        self._cum_joules = np.concatenate([self._cum_joules, cum])

    # -- public --------------------------------------------------------------

    def tick_index(self, t: float) -> int:
        """Index of the last completed tick at or before time ``t``."""
        if t < 0:
            raise SensorError(f"cannot read sensor at negative time {t!r}")
        # Guard against float fuzz right below a tick boundary.
        return int(math.floor(t / self.refresh_period_s + 1e-9))

    def read(self, t: float) -> SensorReading:
        """Read the sensor at simulated time ``t``."""
        k = self.tick_index(t)
        self._ensure_ticks(k)
        joules = self.initial_joules + self._cum_joules[k]
        joules = math.floor(joules / self.energy_quantum) * self.energy_quantum
        if self.wrap_joules is not None:
            joules = joules % self.wrap_joules
        return SensorReading(
            timestamp=k * self.refresh_period_s,
            watts=float(self._tick_watts[k]),
            joules=float(joules),
        )

    def read_exact(self, t: float) -> SensorReading:
        """Read the sensor at ``t`` with the accumulator at full precision.

        Integer-register front-ends (NVML's millijoule counter) must
        quantize *once*, directly from the exact accumulator, so the
        sub-quantum residual stays in the accumulator and carries into the
        next read.  Quantizing an already-quantized float a second time
        (floor to ``energy_quantum``, then round to integer millijoules)
        re-rounds the representation error of the first step and can shift
        single units per read — summed deltas then drift below the
        integrated power curve on long runs.  The exposed wrap still
        applies; only the ``energy_quantum`` floor is skipped.
        """
        k = self.tick_index(t)
        self._ensure_ticks(k)
        joules = self.initial_joules + self._cum_joules[k]
        if self.wrap_joules is not None:
            joules = joules % self.wrap_joules
        return SensorReading(
            timestamp=k * self.refresh_period_s,
            watts=float(self._tick_watts[k]),
            joules=float(joules),
        )

    def true_energy(self, t: float) -> float:
        """Ground-truth energy on ``[0, t]`` (for validation tests)."""
        return self._trace.energy_until(t)
