"""ROCm PMT backend: AMD GPU card power via hwmon, integrated to energy.

Older ROCm stacks expose only an average-power register (microwatts), not
an energy accumulator, so this backend integrates power across its own
``read()`` calls with the trapezoidal rule — the polling-integration path
of the real toolkit.  Accuracy therefore depends on read cadence, which is
exactly why the instrumentation layer reads at region boundaries *and* the
background sampler exists.

Because the backend *integrates* what it reads, a glitched power register
(bus spike) would poison the energy accumulator permanently — so the
plausibility check must run before integration, here, not in an outer
wrapper.  Readings above the card's physical ceiling (spec peak times
:data:`~repro.sensors.resilient.GLITCH_MARGIN`) are substituted with the
last good power, counted in ``glitches_rejected`` and flagged
``rejected``.
"""

from __future__ import annotations

from repro.errors import BackendError
from repro.pmt.base import PMT
from repro.pmt.registry import register_backend
from repro.pmt.state import Measurement, State
from repro.sensors.resilient import GLITCH_MARGIN
from repro.sensors.telemetry import NodeTelemetry


@register_backend("rocm")
class RocmPMT(PMT):
    """PMT over ROCm hwmon for one GPU card."""

    def __init__(self, telemetry: NodeTelemetry, device_index: int = 0) -> None:
        if not telemetry.rocm:
            raise BackendError(
                f"node {telemetry.node.name} exposes no ROCm hwmon devices"
            )
        if not 0 <= device_index < len(telemetry.rocm):
            raise BackendError(
                f"ROCm device index {device_index} out of range "
                f"(node has {len(telemetry.rocm)} cards)"
            )
        super().__init__(telemetry.node.clock)
        self._sysfs = telemetry.sysfs
        self._path = telemetry.rocm[device_index].hwmon_path
        self._name = f"card{device_index}"
        self._joules = 0.0
        self._last: tuple[float, float] | None = None  # (t, watts)
        self._max_watts = GLITCH_MARGIN * telemetry.node.spec.card_peak_watts
        self.glitches_rejected = 0

    def measurement_names(self) -> tuple[str, ...]:
        return (self._name,)

    def read_state(self) -> State:
        t = self.clock.now
        watts = int(self._sysfs.read(self._path)) * 1e-6
        quality = "ok"
        if watts > self._max_watts:
            self.glitches_rejected += 1
            quality = "rejected"
            watts = self._last[1] if self._last is not None else self._max_watts
        if self._last is not None:
            t_prev, w_prev = self._last
            # This backend IS the hardware integrator being emulated.
            self._joules += (  # audit-lint: allow[float-energy-accumulation]
                0.5 * (w_prev + watts) * (t - t_prev)
            )
        self._last = (t, watts)
        return State(
            timestamp=t,
            measurements=(
                Measurement(
                    name=self._name,
                    joules=self._joules,
                    watts=watts,
                    quality=quality,
                ),
            ),
        )
