"""Tests for the terminal chart renderers."""

import pytest

from repro.analysis.ascii_plot import bar_chart, line_chart, share_bars
from repro.errors import AnalysisError


class TestBarChart:
    def test_longest_bar_is_max(self):
        text = bar_chart([("a", 10.0), ("b", 5.0)], width=20)
        lines = text.split("\n")
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_labels_aligned(self):
        text = bar_chart([("short", 1.0), ("muchlonger", 2.0)])
        lines = text.split("\n")
        assert lines[0].index("|") == lines[1].index("|")

    def test_values_printed(self):
        assert "12.5" in bar_chart([("x", 12.5)])

    def test_reference_scaling(self):
        text = bar_chart([("x", 50.0)], width=10, reference=100.0)
        assert text.count("#") == 5

    def test_unit_suffix(self):
        assert "50%" in bar_chart([("x", 50.0)], unit="%")

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            bar_chart([])

    def test_zero_scale_rejected(self):
        with pytest.raises(AnalysisError):
            bar_chart([("x", 0.0)])

    def test_overflow_clipped_to_width(self):
        text = bar_chart([("x", 300.0)], width=10, reference=100.0)
        assert text.count("#") == 10


class TestLineChart:
    def test_marks_present_per_series(self):
        text = line_chart(
            {
                "A": {1.0: 1.0, 2.0: 2.0},
                "B": {1.0: 2.0, 2.0: 1.0},
            }
        )
        assert "o" in text and "x" in text
        assert "o=A" in text and "x=B" in text

    def test_axis_labels(self):
        text = line_chart({"A": {0.0: 0.5, 10.0: 1.5}})
        assert "1.5" in text
        assert "0.5" in text
        assert "10" in text

    def test_flat_series_does_not_crash(self):
        text = line_chart({"A": {1.0: 1.0, 2.0: 1.0}})
        assert "o" in text

    def test_single_point(self):
        text = line_chart({"A": {1.0: 1.0}})
        assert "o" in text

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            line_chart({})

    def test_monotone_series_renders_monotone(self):
        """Higher y values occupy higher rows."""
        text = line_chart({"A": {0.0: 0.0, 1.0: 1.0}}, height=10, width=20)
        rows = [
            k for k, line in enumerate(text.split("\n")) if "o" in line
        ]
        cols = [
            line.index("o") for line in text.split("\n") if "o" in line
        ]
        # The later (higher-x) point is in a higher row (smaller index).
        assert rows[0] < rows[-1]
        assert cols[0] > cols[-1]


class TestShareBars:
    def test_percent_rendering(self):
        text = share_bars({"GPU": 0.75, "CPU": 0.10})
        assert "GPU" in text and "75" in text
        assert "%" in text
