"""Energy-accounting audit layer.

Three cooperating pieces keep the energy books honest:

* :mod:`repro.audit.invariants` — pure checkers for the accounting
  identities (function/device partitions, PMT-vs-Slurm, store
  conservation);
* :mod:`repro.audit.hooks` — the opt-in runtime
  :class:`~repro.audit.hooks.EnergyAuditor` that watches profilers and
  samplers live and reconciles at end of run;
* :mod:`repro.audit.lint` — the AST lint that keeps the bug classes the
  auditor exists to catch out of the source tree.
"""

from repro.audit.findings import (
    INVARIANTS,
    SEVERITIES,
    AuditFinding,
    AuditReport,
)
from repro.audit.hooks import (
    AUDIT_ENV,
    AuditSettings,
    EnergyAuditor,
    audit_campaign_result,
)
from repro.audit.invariants import (
    check_device_partition,
    check_function_partition,
    check_pmt_vs_slurm,
    check_store_conservation,
)
from repro.audit.lint import LintFinding, lint_paths, lint_source
from repro.audit.tolerances import (
    PER_SYSTEM,
    AuditTolerances,
    strictened,
    tolerances_for,
)

__all__ = [
    "AUDIT_ENV",
    "INVARIANTS",
    "PER_SYSTEM",
    "SEVERITIES",
    "AuditFinding",
    "AuditReport",
    "AuditSettings",
    "AuditTolerances",
    "EnergyAuditor",
    "LintFinding",
    "audit_campaign_result",
    "check_device_partition",
    "check_function_partition",
    "check_pmt_vs_slurm",
    "check_store_conservation",
    "lint_paths",
    "lint_source",
    "strictened",
    "tolerances_for",
]
