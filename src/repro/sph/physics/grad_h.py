"""Grad-h (Omega) correction terms (Springel & Hernquist 2002).

With adaptive smoothing lengths the kernel sums depend on h, and energy
conservation requires the correction factor ::

    Omega_i = 1 + (h_i / (3 rho_i)) * sum_j m_j dW_ij/dh_i

entering the momentum and energy equations as ``P_i / (Omega_i rho_i^2)``.
For the cubic spline, with W = sigma/h^3 w(q) and q = r/h ::

    dW/dh = -(sigma / h^4) * (3 w(q) + q w'(q))

Omega ~= 1 for uniform particle distributions and deviates near strong
density gradients (shocks, the Evrard center), where the correction
measurably improves energy conservation — covered by the tests.
"""

from __future__ import annotations

import numpy as np

from repro.sph.kernels.cubic_spline import CubicSplineKernel, _SIGMA_3D
from repro.sph.neighbors import PairList
from repro.sph.pair_cache import CsrStepContext, StepContext, scatter_sum_sym
from repro.sph.particles import ParticleSet


def kernel_dh(r: np.ndarray, h: np.ndarray, kernel=CubicSplineKernel) -> np.ndarray:
    """``dW/dh`` of the cubic spline, vectorized."""
    h = np.asarray(h, dtype=np.float64)
    q = np.asarray(r, dtype=np.float64) / h
    return -(_SIGMA_3D / h**4) * (3.0 * kernel.w(q) + q * kernel.dw(q))


def compute_omega(
    ps: ParticleSet, pairs: PairList | StepContext, kernel=CubicSplineKernel
) -> np.ndarray:
    """The grad-h correction factor per particle (requires ``ps.rho``).

    Clamped to [0.4, 2.5]: in pathological neighbour configurations the
    raw estimate can stray far from 1, and production codes clamp it the
    same way to keep the equations well-posed.
    """
    if isinstance(pairs, CsrStepContext):
        terms = pairs.gather(ps.mass, "col", "ph_ghm")
        terms *= pairs.dwdh_own
        sums = pairs.reduce_sum(terms)
        kernel = pairs.kernel
    elif isinstance(pairs, StepContext):
        hp = pairs.pairs
        # Each end sums dW/dh at its own smoothing length (memoized).
        sums = scatter_sum_sym(
            hp.i,
            hp.j,
            ps.mass[hp.j] * pairs.dwdh_i,
            ps.mass[hp.i] * pairs.dwdh_j,
            ps.n,
        )
        kernel = pairs.kernel
    else:
        dwdh = kernel_dh(pairs.r, ps.h[pairs.i], kernel)
        sums = np.bincount(
            pairs.i, weights=ps.mass[pairs.j] * dwdh, minlength=ps.n
        ).astype(np.float64)
    # Self-contribution: dW/dh at r = 0 is -3 sigma / h^4 * w(0).
    sums += ps.mass * kernel_dh(np.zeros(ps.n), ps.h, kernel)
    omega = 1.0 + ps.h / (3.0 * np.maximum(ps.rho, 1e-300)) * sums
    return np.clip(omega, 0.4, 2.5)
