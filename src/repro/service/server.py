"""The asyncio telemetry service: multi-tenant ingest + query tier.

One :class:`TelemetryService` owns a :class:`~repro.service.tenants.
TenantRegistry` and exposes it on two loopback-friendly listeners:

* a **stream port** speaking the length-prefixed frame protocol
  (:mod:`repro.service.protocol`) — the high-rate ingest path.  A
  ``wait``-mode session gets real backpressure: while its tenant's write
  queue is saturated the server simply stops reading the socket, so the
  TCP window fills and the publisher blocks.  A ``shed``-mode session
  (kHz sources that must never block) is never paused; saturated batches
  are shed *with accounting* and the counters travel back in every ack;
* an **HTTP port** for the query tier: time-range and energy queries
  (served off the store's energy-preserving cumulative-joules knots),
  the multi-tenant Prometheus scrape, tenant accounting snapshots, JSON
  ingest for low-rate publishers, and an SSE live-watch stream the
  ``watch --url`` CLI attaches to.

A single drainer task applies queued batches to the tiered stores in
bounded chunks, yielding between chunks so query latency stays flat
under sustained ingest.  Range/energy queries serve the *applied* state
(the ack contract is per-session: a ``sync`` ack drains its tenant
fully, so anything a publisher has had acked is visible); the ledger
views (``/tenants``, ``/metrics``) drain first, trading scrape latency
for an exact snapshot.

The service never reads a host clock: sample timestamps arrive on the
wire, and scheduling uses events, not time — a scripted feed produces a
byte-identical accounting summary on every run.
"""

from __future__ import annotations

import asyncio
import json
import threading
from urllib.parse import parse_qs, urlsplit

from repro.errors import ConfigurationError
from repro.service import protocol
from repro.service.tenants import (
    Tenant,
    TenantConfig,
    TenantRegistry,
    batch_samples,
)
from repro.timeseries.collect import TimeseriesCollector
from repro.timeseries.export import prometheus_text_multi
from repro.timeseries.live import LiveView

#: Batches applied per tenant per drainer pass.  Small on purpose: the
#: drainer yields between passes, so this bounds the longest stretch the
#: event loop spends applying samples before a queued query handler runs
#: — the knob that keeps p99 query latency flat under kHz-class ingest.
DRAIN_CHUNK_BATCHES = 8

#: Ceiling on one HTTP request head + body.
MAX_HTTP_BYTES = 32 * 1024 * 1024

#: Pending live-watch frames per SSE subscriber before frames are dropped
#: (with accounting — a slow watcher terminal must not stall ingest).
WATCH_QUEUE_FRAMES = 64


class _Watcher:
    """One SSE subscription to a tenant's live frames."""

    def __init__(self, tenant: str, every_samples: int, width: int) -> None:
        self.tenant = tenant
        self.every_samples = max(1, int(every_samples))
        self.width = int(width)
        self.queue: asyncio.Queue[str] = asyncio.Queue(maxsize=WATCH_QUEUE_FRAMES)
        self.samples_since_frame = 0
        self.frames_sent = 0
        self.frames_dropped = 0


class TelemetryService:
    """Asyncio ingest/query service over per-tenant tiered stores.

    Parameters
    ----------
    registry:
        The tenant registry (created with ``tenant_config`` when omitted).
    host:
        Bind address for both listeners (default loopback).
    port / http_port:
        Stream / HTTP listen ports; ``0`` binds an ephemeral port
        (read back from :attr:`port` / :attr:`http_port` after start).
    """

    def __init__(
        self,
        registry: TenantRegistry | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        http_port: int = 0,
        tenant_config: TenantConfig | None = None,
    ) -> None:
        self.registry = (
            registry if registry is not None else TenantRegistry(tenant_config)
        )
        self.host = host
        self._want_port = int(port)
        self._want_http_port = int(http_port)
        self._stream_server: asyncio.AbstractServer | None = None
        self._http_server: asyncio.AbstractServer | None = None
        self._drainer: asyncio.Task | None = None
        self._work: asyncio.Event | None = None
        self._drained: asyncio.Condition | None = None
        self._watchers: dict[str, list[_Watcher]] = {}
        self._sse_tasks: set[asyncio.Task] = set()
        #: Frames/requests processed (the serve CLI's idle detector).
        self.activity = 0
        #: Per-tenant live-watch frame ledger (sent/dropped), by name.
        self.watch_frames_sent: dict[str, int] = {}
        self.watch_frames_dropped: dict[str, int] = {}
        #: Errors swallowed to keep the drainer alive (surfaced on /tenants).
        self.drain_errors = 0
        self.last_drain_error: str | None = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        if self._stream_server is None:
            raise ConfigurationError("service is not started")
        return self._stream_server.sockets[0].getsockname()[1]

    @property
    def http_port(self) -> int:
        if self._http_server is None:
            raise ConfigurationError("service is not started")
        return self._http_server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._work = asyncio.Event()
        self._drained = asyncio.Condition()
        self._stream_server = await asyncio.start_server(
            self._handle_stream, self.host, self._want_port
        )
        self._http_server = await asyncio.start_server(
            self._handle_http, self.host, self._want_http_port
        )
        self._drainer = asyncio.create_task(self._drain_loop())

    async def stop(self) -> None:
        for server in (self._stream_server, self._http_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        # SSE handlers park on their frame queue; cancel them explicitly so
        # nothing survives the loop.
        for task in list(self._sse_tasks):
            task.cancel()
        if self._sse_tasks:
            await asyncio.gather(*self._sse_tasks, return_exceptions=True)
        self._sse_tasks.clear()
        if self._drainer is not None:
            self._drainer.cancel()
            try:
                await self._drainer
            except asyncio.CancelledError:
                pass
        self._stream_server = self._http_server = self._drainer = None

    # -- drainer -------------------------------------------------------------

    async def _drain_loop(self) -> None:
        assert self._work is not None and self._drained is not None
        while True:
            await self._work.wait()
            self._work.clear()
            # An escaping exception must never kill the drainer: ingest
            # would stop being applied and wait-mode publishers would
            # block forever in _wait_capacity.  Record it and carry on;
            # waiters are notified no matter what.
            try:
                applied = self.registry.drain_all(DRAIN_CHUNK_BATCHES)
                if any(applied.values()):
                    self._push_watch_frames(applied)
            except Exception as exc:  # noqa: BLE001 - drainer must survive
                self._record_drain_error(exc)
            finally:
                async with self._drained:
                    self._drained.notify_all()
            if any(
                self.registry.get(name).pending_batches
                for name in self.registry.names()
            ):
                self._work.set()
                # Yield so queries interleave with a deep backlog.
                await asyncio.sleep(0)

    async def _drain_tenant(self, tenant: Tenant) -> None:
        """Apply everything queued for ``tenant`` (queries call this)."""
        while tenant.pending_batches:
            applied = tenant.drain(DRAIN_CHUNK_BATCHES)
            if applied:
                try:
                    self._push_watch_frames({tenant.name: applied})
                except Exception as exc:  # noqa: BLE001 - see _drain_loop
                    self._record_drain_error(exc)
            async with self._drained:
                self._drained.notify_all()
            await asyncio.sleep(0)

    def _record_drain_error(self, exc: BaseException) -> None:
        self.drain_errors += 1
        self.last_drain_error = f"{type(exc).__name__}: {exc}"

    def _kick(self) -> None:
        if self._work is not None:
            self._work.set()

    async def _wait_capacity(self, tenant: Tenant, num_samples: int) -> None:
        """Block (backpressure) until ``num_samples`` more samples fit.

        A batch larger than the queue bound itself can never "fit"; for
        that case waiting ends once the queue is fully drained, and the
        caller force-enqueues (one-batch overshoot) — wait mode is
        lossless, so such a batch must land, not shed.
        """
        assert self._drained is not None
        while (
            tenant.pending_samples > 0
            and tenant.pending_samples + num_samples
            > tenant.config.max_pending_samples
        ):
            self._kick()
            async with self._drained:
                await self._drained.wait()

    # -- live watch ----------------------------------------------------------

    def _push_watch_frames(self, applied_by_tenant: dict[str, int]) -> None:
        """Credit each tenant's watchers with that tenant's applied samples.

        A watcher's ``every`` cadence counts only its own tenant's ingest
        — tenant B's traffic must not make tenant A's watcher emit.
        """
        for name, applied in applied_by_tenant.items():
            watchers = self._watchers.get(name)
            if not applied or not watchers:
                continue
            tenant = self.registry.get(name)
            for watcher in watchers:
                watcher.samples_since_frame += applied
                if watcher.samples_since_frame < watcher.every_samples:
                    continue
                watcher.samples_since_frame = 0
                frame = self._render_frame(tenant, watcher.width)
                try:
                    watcher.queue.put_nowait(frame)
                    watcher.frames_sent += 1
                    self.watch_frames_sent[name] = (
                        self.watch_frames_sent.get(name, 0) + 1
                    )
                except asyncio.QueueFull:
                    watcher.frames_dropped += 1
                    self.watch_frames_dropped[name] = (
                        self.watch_frames_dropped.get(name, 0) + 1
                    )

    @staticmethod
    def _render_frame(tenant: Tenant, width: int) -> str:
        """One SSE payload: the tenant's live dashboard frame as JSON."""
        view = LiveView(TimeseriesCollector(store=tenant.store), width=width)
        return json.dumps(
            {
                "tenant": tenant.name,
                "samples": tenant.store.num_samples,
                "channels": len(tenant.store),
                "frame": view.render(),
            },
            sort_keys=True,
        )

    # -- stream protocol -----------------------------------------------------

    async def _handle_stream(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        decoder = protocol.FrameDecoder()
        tenant: Tenant | None = None
        backpressure = "wait"
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                try:
                    messages = decoder.feed(data)
                except protocol.ProtocolError as exc:
                    await self._send_frame(
                        writer, {"kind": "error", "message": str(exc)}
                    )
                    break
                for message in messages:
                    self.activity += 1
                    kind = message.get("kind")
                    if kind == "hello":
                        try:
                            tenant, backpressure = self._on_hello(message)
                        except protocol.ProtocolError as exc:
                            await self._send_frame(
                                writer, {"kind": "error", "message": str(exc)}
                            )
                            return
                    elif kind == "batch":
                        if tenant is None:
                            await self._send_frame(
                                writer,
                                {"kind": "error", "message": "hello first"},
                            )
                            return
                        await self._on_batch(tenant, backpressure, message)
                        # Yield between batches so query handlers interleave
                        # at batch granularity under sustained ingest.
                        await asyncio.sleep(0)
                    elif kind == "sync":
                        if tenant is not None:
                            await self._drain_tenant(tenant)
                        await self._send_frame(writer, self._ack(tenant))
                    elif kind == "bye":
                        if tenant is not None:
                            await self._drain_tenant(tenant)
                        await self._send_frame(writer, self._ack(tenant))
                        return
                    else:
                        await self._send_frame(
                            writer,
                            {"kind": "error", "message": f"unknown kind {kind!r}"},
                        )
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    def _on_hello(self, message: dict) -> tuple[Tenant, str]:
        if message.get("protocol") != protocol.PROTOCOL_VERSION:
            raise protocol.ProtocolError(
                f"protocol version {message.get('protocol')!r} != "
                f"{protocol.PROTOCOL_VERSION}"
            )
        backpressure = message.get("backpressure", "wait")
        if backpressure not in protocol.BACKPRESSURE_MODES:
            raise protocol.ProtocolError(
                f"unknown backpressure mode {backpressure!r}"
            )
        name = str(message.get("tenant", ""))
        if not name:
            raise protocol.ProtocolError("hello carries no tenant")
        return self.registry.get_or_create(name), backpressure

    async def _on_batch(
        self, tenant: Tenant, backpressure: str, message: dict
    ) -> None:
        try:
            node, channels = protocol.parse_batch(message)
        except protocol.ProtocolError as exc:
            tenant.reject(str(exc), protocol.batch_num_samples(message))
            return
        if backpressure == "wait":
            # Lossless contract: block until this batch *fits* (not
            # merely until the queue is unsaturated — a batch straddling
            # the remaining space would be shed), then enqueue
            # unconditionally.
            await self._wait_capacity(tenant, batch_samples(channels))
            tenant.offer(node, channels, force=True)
        else:
            tenant.offer(node, channels)
        self._kick()

    def _ack(self, tenant: Tenant | None) -> dict:
        if tenant is None:
            return {"kind": "ack", "tenant": None}
        return {"kind": "ack", **tenant.snapshot()}

    @staticmethod
    async def _send_frame(writer: asyncio.StreamWriter, message: dict) -> None:
        writer.write(protocol.encode_frame(message))
        await writer.drain()

    # -- HTTP ----------------------------------------------------------------

    async def _handle_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                head = await reader.readuntil(b"\r\n\r\n")
            except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
                return
            request_line, _, header_block = head.partition(b"\r\n")
            try:
                method, target, _version = (
                    request_line.decode("latin-1").split(" ", 2)
                )
            except ValueError:
                await self._respond(writer, 400, "malformed request line")
                return
            headers = {}
            for line in header_block.decode("latin-1").split("\r\n"):
                key, sep, value = line.partition(":")
                if sep:
                    headers[key.strip().lower()] = value.strip()
            body = b""
            length = int(headers.get("content-length", "0") or 0)
            if length > MAX_HTTP_BYTES:
                await self._respond(writer, 413, "body too large")
                return
            if length:
                body = await reader.readexactly(length)
            self.activity += 1
            await self._route(writer, method, target, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _route(
        self, writer: asyncio.StreamWriter, method: str, target: str, body: bytes
    ) -> None:
        parts = urlsplit(target)
        path = parts.path
        query = {k: v[-1] for k, v in parse_qs(parts.query).items()}
        try:
            if method == "GET" and path == "/healthz":
                await self._respond(writer, 200, "ok")
            elif method == "GET" and path == "/metrics":
                await self._drain_known(query.get("tenant"))
                text = prometheus_text_multi(self.registry.stores())
                await self._respond(
                    writer, 200, text, "text/plain; version=0.0.4"
                )
            elif method == "GET" and path == "/tenants":
                await self._drain_known(None)
                payload = {
                    "tenants": self.registry.snapshot(),
                    "watch_frames_sent": dict(
                        sorted(self.watch_frames_sent.items())
                    ),
                    "watch_frames_dropped": dict(
                        sorted(self.watch_frames_dropped.items())
                    ),
                    "drain_errors": self.drain_errors,
                    "last_drain_error": self.last_drain_error,
                }
                await self._respond_json(writer, 200, payload)
            elif method == "GET" and path == "/query/range":
                await self._query_range(writer, query)
            elif method == "GET" and path == "/query/energy":
                await self._query_energy(writer, query)
            elif method == "POST" and path == "/ingest":
                await self._http_ingest(writer, query, body)
            elif method == "GET" and path == "/watch":
                await self._watch_sse(writer, query)
            else:
                await self._respond(writer, 404, f"no route {method} {path}")
        except ConfigurationError as exc:
            await self._respond(writer, 400, str(exc))

    async def _drain_known(self, tenant_name: str | None) -> None:
        if tenant_name is not None:
            await self._drain_tenant(self.registry.get(tenant_name))
            return
        for name in self.registry.names():
            await self._drain_tenant(self.registry.get(name))

    def _series(self, query: dict):
        tenant = self.registry.get(query.get("tenant", ""))
        try:
            node = int(query["node"])
            channel = query["channel"]
        except (KeyError, ValueError):
            raise ConfigurationError(
                "range/energy queries need tenant, node and channel"
            ) from None
        key = (node, channel)
        if key not in tenant.store:
            raise ConfigurationError(
                f"tenant {tenant.name!r} has no channel {key!r}"
            )
        return tenant, tenant.store.channel(node, channel)

    @staticmethod
    def _query_number(query: dict, key: str, default, convert):
        """``convert(query[key])`` or ``default``; a typed 400 on junk."""
        raw = query.get(key)
        if raw is None:
            return default
        try:
            return convert(raw)
        except ValueError:
            raise ConfigurationError(
                f"query parameter {key}={raw!r} is not a number"
            ) from None

    @classmethod
    def _bounds(cls, query: dict, series) -> tuple[float, float]:
        pts = series.points()
        t_lo = float(pts["t"][0]) if len(pts["t"]) else 0.0
        t_hi = float(pts["t"][-1]) if len(pts["t"]) else 0.0
        t0 = cls._query_number(query, "t0", t_lo, float)
        t1 = cls._query_number(query, "t1", t_hi, float)
        return t0, t1

    async def _query_range(self, writer: asyncio.StreamWriter, query: dict) -> None:
        # Range/energy queries serve the *applied* state: a batch is only
        # guaranteed visible once its session synced (which drains fully),
        # so skipping the inline drain keeps query latency flat under
        # sustained ingest without weakening the ack contract.
        tenant, series = self._series(query)
        t0, t1 = self._bounds(query, series)
        pts = series.range_query(t0, t1)
        await self._respond_json(
            writer,
            200,
            {
                "tenant": tenant.name,
                "t0": t0,
                "t1": t1,
                "n": int(len(pts["t"])),
                "t": [float(v) for v in pts["t"]],
                "watts": [float(v) for v in pts["watts"]],
                "joules": [float(v) for v in pts["joules"]],
                "tier": [int(v) for v in pts["tier"]],
            },
        )

    async def _query_energy(self, writer: asyncio.StreamWriter, query: dict) -> None:
        tenant, series = self._series(query)
        t0, t1 = self._bounds(query, series)
        await self._respond_json(
            writer,
            200,
            {
                "tenant": tenant.name,
                "t0": t0,
                "t1": t1,
                "joules": series.energy_between(t0, t1),
            },
        )

    async def _http_ingest(
        self, writer: asyncio.StreamWriter, query: dict, body: bytes
    ) -> None:
        tenant = self.registry.get_or_create(query.get("tenant", "") or "default")
        try:
            doc = json.loads(body)
        except ValueError as exc:
            tenant.reject(f"body not JSON: {exc}")
            await self._respond(writer, 400, "body is not JSON")
            return
        batches = doc.get("batches", [doc]) if isinstance(doc, dict) else doc
        accepted = shed = rejected = 0
        for message in batches:
            self.activity += 1
            try:
                node, channels = protocol.parse_batch(message)
            except protocol.ProtocolError as exc:
                tenant.reject(str(exc), protocol.batch_num_samples(message))
                rejected += 1
                continue
            if tenant.offer(node, channels):
                accepted += 1
            else:
                shed += 1
        self._kick()
        await self._drain_tenant(tenant)
        await self._respond_json(
            writer,
            200,
            {
                "accepted": accepted,
                "shed": shed,
                "rejected": rejected,
                **tenant.snapshot(),
            },
        )

    async def _watch_sse(self, writer: asyncio.StreamWriter, query: dict) -> None:
        name = query.get("tenant", "")
        if not name:
            raise ConfigurationError("watch needs a tenant")
        tenant = self.registry.get_or_create(name)
        watcher = _Watcher(
            name,
            every_samples=self._query_number(query, "every", 1, int),
            width=self._query_number(query, "width", 48, int),
        )
        self._watchers.setdefault(name, []).append(watcher)
        task = asyncio.current_task()
        if task is not None:
            self._sse_tasks.add(task)
        try:
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/event-stream\r\n"
                b"Cache-Control: no-cache\r\n"
                b"Connection: close\r\n\r\n"
            )
            # An immediate first frame so an attaching watcher renders the
            # current state without waiting for the next ingest round.
            writer.write(
                f"data: {self._render_frame(tenant, watcher.width)}\n\n".encode()
            )
            await writer.drain()
            while True:
                frame = await watcher.queue.get()
                writer.write(f"data: {frame}\n\n".encode())
                await writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            self._watchers[name].remove(watcher)
            if task is not None:
                self._sse_tasks.discard(task)

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        body: str,
        content_type: str = "text/plain",
    ) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found", 413: "Too Large"}
        data = body.encode()
        writer.write(
            (
                f"HTTP/1.1 {status} {reason.get(status, 'Status')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(data)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode()
            + data
        )
        await writer.drain()

    @classmethod
    async def _respond_json(
        cls, writer: asyncio.StreamWriter, status: int, payload: dict | list
    ) -> None:
        await cls._respond(
            writer,
            status,
            json.dumps(payload, sort_keys=True),
            "application/json",
        )


class ServiceThread:
    """Run a :class:`TelemetryService` on a daemon thread's event loop.

    The simulation side of this codebase is synchronous (the virtual
    clock advances inline), so tests, benchmarks and the ``publish`` CLI
    host the service here and talk to it over loopback sockets exactly
    like a remote service.
    """

    def __init__(self, service: TelemetryService | None = None, **kwargs) -> None:
        self.service = service if service is not None else TelemetryService(**kwargs)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def start(self) -> "ServiceThread":
        if self._thread is not None:
            raise ConfigurationError("service thread already started")
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise ConfigurationError(
                f"service failed to start: {self._startup_error}"
            )
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.service.start())
        except BaseException as exc:  # noqa: BLE001 - reported to starter
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.service.stop())
            loop.close()

    @property
    def port(self) -> int:
        return self.service.port

    @property
    def http_port(self) -> int:
        return self.service.http_port

    @property
    def host(self) -> str:
        return self.service.host

    def stop(self) -> None:
        if self._loop is None or self._thread is None:
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._loop = self._thread = None
