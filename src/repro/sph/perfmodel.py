"""Roofline performance/power model for paper-scale SPH runs.

Maps one loop function at ``n`` particles per rank onto a simulated GPU as
an execution time plus device-load levels, splitting the function into a
**kernel sub-phase** (GPU busy) and an optional **communication sub-phase**
(GPU idle, NIC busy).

Time model (per function, per rank)::

    sat      = n / (n + SATURATION_PARTICLES)          # throughput-bound share
    t_work   = (flops n / eff_f) [ sat / F(f) + (1 - sat) / F(f_nom) ]
    t_mem    = bytes n / (B eff_b)                     # compute-clock insensitive
    t_kernel = max(t_work, t_mem)

Only the *saturated* part of the compute time scales with the clock: at
small n, kernels are latency-bound and down-clocking barely slows them.

Power model::

    occupancy = t_work / t_kernel
    u_c = occupancy * (stall_floor + (1 - stall_floor) * sat) * U_peak
    u_m = U_mem * t_mem / t_kernel

Resident-but-stalled warps burn ``stall_floor`` of full dynamic compute
power — this is why memory-/latency-bound phases shed a lot of power when
the clock drops (their EDP improves, Figures 4/5) while compute-bound
kernels stretch in time and do not benefit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.hardware.gpu import GpuDevice
from repro.mpi.costmodel import CommCostModel
from repro.sph import calibration as cal
from repro.sph.calibration import FUNCTION_COSTS, FunctionCost


@dataclass(frozen=True)
class FunctionPhases:
    """One rank's modelled execution of one function."""

    name: str
    kernel_seconds: float
    comm_seconds: float
    gpu_compute: float
    gpu_memory: float
    cpu_share: float
    mem_share: float
    nic_share: float

    @property
    def total_seconds(self) -> float:
        """Kernel plus (non-overlapped) communication time."""
        return self.kernel_seconds + self.comm_seconds


class SphPerformanceModel:
    """Evaluates :class:`FunctionPhases` for ranks of a placed job."""

    def __init__(
        self,
        cost_model: CommCostModel,
        particles_per_rank: float,
        jitter: float = cal.DURATION_JITTER,
        seed: int = 0,
    ) -> None:
        if particles_per_rank <= 0:
            raise SimulationError("particles_per_rank must be positive")
        self.cost_model = cost_model
        self.n = float(particles_per_rank)
        self.jitter = jitter
        self.seed = seed

    # -- helpers ----------------------------------------------------------------

    def _jitter_factor(self, function: str, rank: int, step: int) -> float:
        """Deterministic +-jitter from a stable hash (load imbalance)."""
        if self.jitter == 0:
            return 1.0
        digest = hashlib.blake2s(
            f"{self.seed}:{function}:{rank}:{step}".encode(), digest_size=8
        ).digest()
        unit = int.from_bytes(digest, "little") / 2**64  # [0, 1)
        return 1.0 + self.jitter * (2.0 * unit - 1.0)

    def _comm_seconds(
        self, cost: FunctionCost, rank: int, kernel_seconds: float
    ) -> float:
        if cost.comm == "none":
            return 0.0
        if cost.comm == "allreduce":
            return self.cost_model.allreduce_time(cost.comm_payload_bytes)
        # "domain": tree metadata allgather + particle redistribution +
        # halo exchange with the SFC-adjacent ranks.
        meta = self.cost_model.allgather_time(32_768.0)
        moved = cal.REDISTRIBUTION_FRACTION * self.n * cal.HALO_BYTES_PER_PARTICLE
        p = self.cost_model.size
        redistribute = self.cost_model.alltoallv_time(
            rank,
            {
                (rank + 1) % p: 0.5 * moved,
                (rank - 1) % p: 0.5 * moved,
            }
            if p > 1
            else {},
        )
        surface = 6.0 * cal.HALO_LAYER_SPACINGS * self.n ** (2.0 / 3.0)
        halo_bytes = surface * cal.HALO_BYTES_PER_PARTICLE
        halos = self.cost_model.halo_exchange_time(
            rank,
            {
                (rank + 1) % p: 0.5 * halo_bytes,
                (rank - 1) % p: 0.5 * halo_bytes,
            }
            if p > 1
            else {},
        )
        host_side = cal.DOMAIN_SYNC_HOST_FRACTION * kernel_seconds
        return meta + redistribute + halos + host_side

    # -- main entry ---------------------------------------------------------------

    def phases(
        self, function: str, gpu: GpuDevice, rank: int, step: int
    ) -> FunctionPhases:
        """Model one rank's execution of ``function`` at this step."""
        try:
            cost = FUNCTION_COSTS[function]
        except KeyError:
            raise SimulationError(f"no cost model for function {function!r}") from None
        eff = cal.efficiency(gpu.spec.vendor, function)

        f_now = gpu.peak_flops_now() * eff.flop_efficiency
        f_nom = gpu.spec.peak_flops * eff.flop_efficiency
        bw = gpu.peak_bandwidth * eff.bandwidth_efficiency

        sat = self.n / (self.n + cal.SATURATION_PARTICLES)
        work_flops = cost.flops_per_particle * self.n
        t_work = work_flops * (sat / f_now + (1.0 - sat) / f_nom)
        t_mem = cost.bytes_per_particle * self.n / bw
        t_kernel = max(t_work, t_mem, 1e-6)

        occupancy = min(t_work / t_kernel, 1.0)
        stall = cost.stall_power_floor
        u_c = min(
            cal.PEAK_COMPUTE_UTILIZATION
            * occupancy
            * (stall + (1.0 - stall) * sat),
            1.0,
        )
        u_m = min(cal.PEAK_MEMORY_UTILIZATION * t_mem / t_kernel, 1.0)

        jit = self._jitter_factor(function, rank, step)
        return FunctionPhases(
            name=function,
            kernel_seconds=t_kernel * jit,
            comm_seconds=self._comm_seconds(cost, rank, t_kernel),
            gpu_compute=u_c,
            gpu_memory=u_m,
            cpu_share=cost.cpu_share,
            mem_share=cost.mem_share,
            nic_share=0.6 if cost.comm != "none" else 0.02,
        )
