"""Smoothing-length adaptation (the ``UpdateSmoothingLength`` function).

SPH-EXA's fixed-point update toward a target neighbour count::

    h <- h * 0.5 * (1 + (n_target / n_current)^(1/3))

The cube root reflects neighbour count scaling as h^3; the 0.5 averaging
damps oscillations.  Counts of zero are treated as one so isolated
particles grow their support instead of dividing by zero.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.sph.particles import ParticleSet

DEFAULT_NEIGHBOR_TARGET = 100


def update_smoothing_length(
    ps: ParticleSet,
    n_target: int = DEFAULT_NEIGHBOR_TARGET,
    h_max: float | None = None,
) -> None:
    """Adapt ``ps.h`` toward the target neighbour count (uses ``ps.nc``)."""
    if n_target <= 0:
        raise SimulationError("neighbour target must be positive")
    counts = np.maximum(ps.nc, 1)
    ps.h = ps.h * 0.5 * (1.0 + np.cbrt(n_target / counts))
    if h_max is not None:
        np.minimum(ps.h, h_max, out=ps.h)
