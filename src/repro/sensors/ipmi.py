"""IPMI/BMC node-level power telemetry.

Non-Cray systems (CSCS-A100, miniHPC) expose node power through the
baseboard management controller, read via IPMI.  The BMC is slow (~1 Hz)
and coarse (integer watts with a few watts of sensor error), but it sees
the *whole node* — which is what Slurm's ``AcctGatherEnergy/ipmi`` plugin
integrates for job energy accounting.
"""

from __future__ import annotations

from repro.hardware.node import Node
from repro.sensors.base import SampledEnergyCounter, SensorReading

#: BMC sensor refresh period.
IPMI_PERIOD_S = 1.0


class IpmiNode:
    """The BMC's node-power sensor."""

    def __init__(self, node: Node, seed: int = 0) -> None:
        self.node = node
        self.counter = SampledEnergyCounter(
            node.trace,
            refresh_period_s=IPMI_PERIOD_S,
            watts_quantum=1.0,
            energy_quantum=1.0,
            noise_sigma_watts=2.0,
            seed=seed + 500,
            # BMCs accumulate since power-on; nonzero base (see base.py).
            initial_joules=float((seed * 733 + 17) % 250_000_000),
        )

    def read(self, t: float) -> SensorReading:
        """Node power/energy as the BMC sees it at time ``t``."""
        return self.counter.read(t)
