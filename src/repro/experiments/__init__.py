"""Experiment runners reproducing every table and figure of the paper."""

from repro.experiments.breakdowns import figure2_breakdowns, figure3_breakdowns
from repro.experiments.frequency import (
    figure4_series,
    figure4_spec,
    figure5_series,
    figure5_spec,
)
from repro.experiments.runner import ExperimentResult, run_scaled_experiment
from repro.experiments.scaling import (
    weak_scaling_series,
    weak_scaling_spec,
    weak_scaling_table,
)
from repro.experiments.tables import table1_text
from repro.experiments.validation import figure1_series, figure1_spec

__all__ = [
    "ExperimentResult",
    "run_scaled_experiment",
    "figure1_series",
    "figure1_spec",
    "figure2_breakdowns",
    "figure3_breakdowns",
    "figure4_series",
    "figure4_spec",
    "figure5_series",
    "figure5_spec",
    "table1_text",
    "weak_scaling_series",
    "weak_scaling_spec",
    "weak_scaling_table",
]
