"""Simulated power/energy sensors.

Sensors observe the ground-truth power traces of :mod:`repro.hardware`
imperfectly, reproducing the measurement realities the paper's methodology
deals with:

* finite refresh cadence (pm_counters ~10 Hz, NVML ~20 Hz, IPMI ~1 Hz);
* quantization (integer watts/joules on Cray, mW on NVML, 15.3 uJ on RAPL);
* counter wraparound (RAPL 32-bit microjoule accumulators);
* attribution granularity (per *card*, not per GCD, on MI250X);
* sensor noise (NVML board-power estimation error).

Each concrete sensor family also exposes its native *file format* through a
:class:`~repro.sensors.sysfs.VirtualSysfs`, so the PMT backends read strings
from paths exactly the way the real toolkit reads ``/sys`` files.
"""

from repro.sensors.base import SampledEnergyCounter, SensorReading
from repro.sensors.sysfs import VirtualSysfs
from repro.sensors.pm_counters import PmCounters
from repro.sensors.rapl import RaplPackage
from repro.sensors.nvml import NvmlGpu
from repro.sensors.rocm import RocmCard
from repro.sensors.ipmi import IpmiNode
from repro.sensors.telemetry import NodeTelemetry
from repro.sensors.resilient import ResilientSensor, SensorHealth
from repro.sensors.inject import FAULT_KINDS, inject_fault

__all__ = [
    "SampledEnergyCounter",
    "SensorReading",
    "VirtualSysfs",
    "PmCounters",
    "RaplPackage",
    "NvmlGpu",
    "RocmCard",
    "IpmiNode",
    "NodeTelemetry",
    "ResilientSensor",
    "SensorHealth",
    "FAULT_KINDS",
    "inject_fault",
]
