"""Ablation: the step-pipeline pair cache (Verlet skin + half pairs).

Sweeps the Verlet skin width on a turbulence box and reports, per skin
setting, the achieved steps/sec, undirected pairs processed per second,
and the neighbor-list rebuild fraction.  ``skin = 0`` is the pre-cache
behaviour (a fresh neighbor search every step); widening the skin trades
a few percent more candidate pairs for amortizing ``FindNeighbors`` —
the dominant cost of the solver step — across many steps.

The physics is identical for every skin width (the Verlet query re-filters
candidates to the exact per-pair cutoff), which the run asserts.
"""

import time

import numpy as np
from conftest import write_result

from repro.sph.initial_conditions import make_turbulence
from repro.sph.propagator import Propagator
from repro.sph.simulation import Simulation

SKIN_FACTORS = (0.0, 0.15, 0.3, 0.5)


def _sweep(n_side: int, steps: int, skins=SKIN_FACTORS):
    rows = []
    for skin in skins:
        ps, box = make_turbulence(n_side=n_side, seed=19)
        rng = np.random.default_rng(19)
        ps.vel = rng.normal(0.0, 0.08, size=ps.vel.shape)
        # Pinned to the pairlist engine: this ablation isolates the Verlet
        # skin of the half-pair pipeline; the CSR engine's scaling has its
        # own sweep in bench_ablation_neighbor_scaling.py.
        prop = Propagator(box, skin_factor=skin, engine="pairlist")
        sim = Simulation(ps, prop)
        t0 = time.perf_counter()
        history = sim.run(steps)
        elapsed = time.perf_counter() - t0
        pairs_done = sum(s.n_pairs for s in history)
        rows.append(
            {
                "skin": skin,
                "steps_per_sec": steps / elapsed,
                "pairs_per_sec": pairs_done / elapsed,
                "rebuild_fraction": prop.neighbor_list.rebuild_fraction,
                "final_u": float(np.sum(ps.mass * ps.u)),
                "n_pairs_last": history[-1].n_pairs,
            }
        )
    return rows


def _check_and_format(rows, n_side, steps):
    base = rows[0]
    assert base["skin"] == 0.0
    assert base["rebuild_fraction"] == 1.0  # no cache without a skin

    for row in rows[1:]:
        # Exactness: the cached runs traverse the same pair sets and land
        # on the same state (round-off-level differences only).
        assert row["n_pairs_last"] == base["n_pairs_last"]
        assert abs(row["final_u"] - base["final_u"]) <= 1e-9 * abs(
            base["final_u"]
        )
        # A skin must actually amortize rebuilds.
        assert row["rebuild_fraction"] < 1.0

    lines = [
        f"pair-cache ablation: turbulence n={n_side ** 3}, {steps} steps",
        f"{'skin':>6} {'steps/s':>10} {'pairs/s':>12} {'rebuilds':>9}",
    ]
    for row in rows:
        lines.append(
            f"{row['skin']:>6.2f} {row['steps_per_sec']:>10.3f} "
            f"{row['pairs_per_sec']:>12.3e} {row['rebuild_fraction']:>9.2f}"
        )
    best = max(rows, key=lambda r: r["steps_per_sec"])
    lines.append(
        f"best: skin={best['skin']:.2f} at "
        f"{best['steps_per_sec'] / base['steps_per_sec']:.2f}x the "
        "skin=0 throughput"
    )
    return "\n".join(lines)


def bench_pair_cache_ablation(results_dir):
    rows = _sweep(n_side=12, steps=10)
    text = _check_and_format(rows, n_side=12, steps=10)
    write_result(results_dir, "ablation_pair_cache", text)
    # At this size the cached runs should never lose to skin=0 by more
    # than measurement noise.
    base = rows[0]["steps_per_sec"]
    assert max(r["steps_per_sec"] for r in rows[1:]) > 0.9 * base


def bench_smoke_pair_cache(results_dir):
    """Tiny CI-sized variant of the sweep (`make bench-smoke`).

    The smoke result records only the deterministic quantities (rebuild
    fraction, pair counts, final energy) so the determinism CI gate can
    diff it byte-for-byte; wall-clock throughput stays in the full run.
    """
    rows = _sweep(n_side=8, steps=4, skins=(0.0, 0.3))
    base = rows[0]
    assert base["rebuild_fraction"] == 1.0
    for row in rows[1:]:
        assert row["n_pairs_last"] == base["n_pairs_last"]
        assert abs(row["final_u"] - base["final_u"]) <= 1e-9 * abs(
            base["final_u"]
        )
        assert row["rebuild_fraction"] < 1.0

    lines = [
        "pair-cache smoke: turbulence n=512, 4 steps",
        f"{'skin':>6} {'rebuilds':>9} {'last pairs':>11}",
    ]
    for row in rows:
        lines.append(
            f"{row['skin']:>6.2f} {row['rebuild_fraction']:>9.2f} "
            f"{row['n_pairs_last']:>11}"
        )
    lines.append(f"final energy (all skins): {base['final_u']:.9e}")
    write_result(results_dir, "ablation_pair_cache_smoke", "\n".join(lines))
