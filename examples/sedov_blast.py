#!/usr/bin/env python
"""Sedov-Taylor blast wave with the real solver, validated against the
self-similar solution.

A point explosion in cold gas: the blast front must follow
R(t) = 1.152 (E t^2 / rho0)^(1/5).  This is the classic shock-capturing
test (one of SPH-EXA's stock cases) and exercises the artificial
viscosity at its hardest.

Run:  python examples/sedov_blast.py
"""

import numpy as np

from repro.sph import Simulation
from repro.sph.initial_conditions import make_sedov, sedov_front_radius
from repro.sph.propagator import Propagator


def shock_radius(ps) -> float:
    r = np.linalg.norm(ps.pos, axis=1)
    bins = np.linspace(0.0, 0.5, 26)
    idx = np.digitize(r, bins)
    profile = np.array(
        [
            ps.rho[idx == i].mean() if np.any(idx == i) else 0.0
            for i in range(1, len(bins))
        ]
    )
    k = int(np.argmax(profile))
    return 0.5 * (bins[k] + bins[k + 1])


def main() -> None:
    n_side = 12
    ps, box = make_sedov(n_side=n_side, energy=1.0, seed=3)
    sim = Simulation(ps, Propagator(box, av_alpha=1.5, courant=0.15))

    print(f"Sedov blast: {ps.n} particles, E = 1, rho0 = 1")
    print(f"{'step':>5} {'t':>9} {'R_shock':>9} {'R_analytic':>11} {'max rho':>8}")
    for k in range(24):
        sim.step()
        if (k + 1) % 4 == 0:
            measured = shock_radius(ps)
            analytic = sedov_front_radius(sim.time)
            print(
                f"{k + 1:>5} {sim.time:>9.4f} {measured:>9.3f} "
                f"{analytic:>11.3f} {ps.rho.max():>8.2f}"
            )

    measured = shock_radius(ps)
    analytic = sedov_front_radius(sim.time)
    err = abs(measured - analytic) / analytic
    print(f"\nFront-position error vs self-similar solution: {err:.1%}")
    totals = sim.history[-1].totals
    print(
        f"Energy budget: E_kin + E_int = "
        f"{totals.kinetic + totals.internal:.4f} (injected 1.0)"
    )


if __name__ == "__main__":
    main()
