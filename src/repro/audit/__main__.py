"""``python -m repro.audit [paths...]`` runs the energy-accounting lint."""

import sys

from repro.audit.lint import main

sys.exit(main())
