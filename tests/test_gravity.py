"""Tests for Barnes-Hut gravity against the direct-sum oracle."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sph.gravity import (
    BarnesHutGravity,
    direct_sum_acceleration,
    direct_sum_potential,
)


def random_cluster(n, seed=0):
    rng = np.random.default_rng(seed)
    pos = rng.normal(0.0, 1.0, size=(n, 3))
    mass = rng.uniform(0.5, 1.5, size=n) / n
    return pos, mass


class TestDirectSum:
    def test_two_body_acceleration(self):
        pos = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        mass = np.array([1.0, 2.0])
        acc = direct_sum_acceleration(pos, mass)
        assert acc[0] == pytest.approx([2.0, 0.0, 0.0])
        assert acc[1] == pytest.approx([-1.0, 0.0, 0.0])

    def test_newton_third_law(self):
        pos, mass = random_cluster(50, seed=1)
        acc = direct_sum_acceleration(pos, mass)
        net_force = np.sum(mass[:, None] * acc, axis=0)
        assert np.allclose(net_force, 0.0, atol=1e-12)

    def test_softening_caps_close_forces(self):
        pos = np.array([[0.0, 0.0, 0.0], [1e-6, 0.0, 0.0]])
        mass = np.array([1.0, 1.0])
        hard = direct_sum_acceleration(pos, mass, eps=0.0)
        soft = direct_sum_acceleration(pos, mass, eps=0.1)
        assert np.abs(soft).max() < np.abs(hard).max()

    def test_two_body_potential(self):
        pos = np.array([[0.0, 0.0, 0.0], [2.0, 0.0, 0.0]])
        mass = np.array([1.0, 3.0])
        assert direct_sum_potential(pos, mass) == pytest.approx(-1.5)

    def test_potential_negative(self):
        pos, mass = random_cluster(30, seed=2)
        assert direct_sum_potential(pos, mass, eps=0.01) < 0


class TestBarnesHut:
    def test_matches_direct_sum_small_theta(self):
        pos, mass = random_cluster(300, seed=3)
        tree = BarnesHutGravity(pos, mass, theta=0.3, eps=0.05)
        bh = tree.acceleration()
        ds = direct_sum_acceleration(pos, mass, eps=0.05)
        rel = np.linalg.norm(bh - ds, axis=1) / np.maximum(
            np.linalg.norm(ds, axis=1), 1e-12
        )
        assert np.median(rel) < 0.01
        assert rel.max() < 0.10

    def test_accuracy_improves_with_smaller_theta(self):
        pos, mass = random_cluster(300, seed=4)
        ds = direct_sum_acceleration(pos, mass, eps=0.05)

        def err(theta):
            bh = BarnesHutGravity(pos, mass, theta=theta, eps=0.05).acceleration()
            return float(
                np.mean(
                    np.linalg.norm(bh - ds, axis=1)
                    / np.maximum(np.linalg.norm(ds, axis=1), 1e-12)
                )
            )

        assert err(0.2) < err(0.9)

    def test_theta_zero_limit_is_direct(self):
        """With huge leaves the tree degenerates to direct summation."""
        pos, mass = random_cluster(64, seed=5)
        tree = BarnesHutGravity(pos, mass, theta=0.5, eps=0.02, leaf_size=64)
        assert np.allclose(
            tree.acceleration(),
            direct_sum_acceleration(pos, mass, eps=0.02),
            rtol=1e-12,
        )

    def test_external_targets(self):
        pos, mass = random_cluster(200, seed=6)
        far = np.array([[50.0, 0.0, 0.0]])
        tree = BarnesHutGravity(pos, mass, theta=0.5)
        acc = tree.acceleration(far)
        # At 50 sigma the cluster is a point mass at its center of mass.
        total_m = mass.sum()
        com = np.sum(pos * mass[:, None], axis=0) / total_m
        d = com - far[0]
        expected = total_m * d / np.linalg.norm(d) ** 3
        assert np.allclose(acc[0], expected, rtol=1e-3)

    def test_node_count_reasonable(self):
        pos, mass = random_cluster(1000, seed=7)
        tree = BarnesHutGravity(pos, mass, leaf_size=16)
        assert 1000 / 16 < tree.num_nodes < 8000

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(SimulationError):
            BarnesHutGravity(np.zeros((3, 3)), np.ones(2))

    def test_invalid_theta_rejected(self):
        pos, mass = random_cluster(10)
        with pytest.raises(SimulationError):
            BarnesHutGravity(pos, mass, theta=0.0)

    def test_momentum_conserved_by_tree_forces(self):
        pos, mass = random_cluster(400, seed=8)
        acc = BarnesHutGravity(pos, mass, theta=0.5, eps=0.05).acceleration()
        net = np.sum(mass[:, None] * acc, axis=0)
        # Monopole approximation breaks exact pairwise symmetry, but the
        # residual must be far below the typical force scale.
        typical = np.mean(np.abs(mass[:, None] * acc))
        assert np.abs(net).max() < 0.05 * typical
