"""Online energy-aware DVFS governor (closed-loop per-function clocks).

The optimizer in :mod:`repro.tuning.optimizer` replays an *offline*
oracle: sweep first, decide afterwards.  The governor closes the loop at
runtime instead — it rides along a single instrumented run, learns each
function's time/energy response from the profiler's own region
measurements, and steers :class:`~repro.tuning.dynamic.DynamicDvfsApplication`
through its normal switch-latency machinery.  Nothing about the
measurement pipeline changes: the governor is a passive observer of
values the profiler already read, plus a :class:`FrequencyPolicy` the
application consults at function boundaries.

Three policies:

``min-energy``
    Per function, the explored candidate with the lowest mean GPU energy
    per call.

``min-edp``
    Per function, the candidate with the lowest mean energy x time
    product per call (the paper's figure of merit).

``power-cap``
    CEEC-style budget compliance: a rolling mean of node power (from the
    :class:`~repro.pmt.sampler.PmtSampler` tick stream) is held under
    ``power_cap_watts``.  The governor starts at the lowest candidate
    clock and only raises the ceiling after one full step cycle has been
    observed there, when a pessimistic projection of the next step up
    (quadratic clock-power prior, then a doubled-increment secant through
    the observed clock-power curve) still clears the cap — so the budget
    holds for the *whole* run, not just after the first overshoot.

Determinism: exploration order is a :func:`hashlib.blake2s` permutation
keyed by (seed, function) — seeded from the RunKey, never from wall
clock or global RNG state — and every model update is driven by the
virtual-clock-ordered profiler/sampler event stream, so a governed run
is bit-reproducible like every other run in the repo.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.config import SystemConfig
from repro.errors import ConfigurationError
from repro.hardware.dvfs import snap_to_supported
from repro.timeseries.rolling import RollingMean
from repro.tuning.dynamic import SWITCH_FUNCTION
from repro.tuning.policy import FunctionSweepPoint

#: The selectable governor policies (the CLI choices).
GOVERNOR_POLICIES = ("min-energy", "min-edp", "power-cap")

#: Default fraction of the node's nominal peak power used as the cap
#: when ``power-cap`` is selected without an explicit budget.
DEFAULT_CAP_FRACTION = 0.8

#: Safety margin applied when projecting power for a ceiling raise.
DEFAULT_CAP_SAFETY = 0.97


@dataclass(frozen=True)
class GovernorConfig:
    """Everything that determines a governor's behaviour.

    The config is part of the campaign cache identity (via the policy
    name on the :class:`~repro.campaign.keys.RunKey` plus the config
    content the runner derives), so every field here must stay a plain
    hashable value.
    """

    policy: str
    #: Clock candidates the governor may choose from (MHz).  ``None``
    #: resolves to a system-dependent spread at runtime.
    candidates_mhz: tuple[float, ...] | None = None
    #: Functions whose mean call time is below this never earn a switch.
    dwell_s: float = 0.2
    #: Minimum fractional score improvement required to leave the
    #: currently running clock (switch damping).
    hysteresis: float = 0.02
    #: Observations required per (function, candidate) before the
    #: governor trusts the model and stops exploring that candidate.
    explore_visits: int = 1
    #: Rolling node-power budget in watts (``power-cap`` only).
    power_cap_watts: float | None = None
    #: Trailing window of the rolling power mean.
    rolling_window_s: float = 5.0
    #: Fraction of the cap a projected raise must clear.
    cap_safety: float = DEFAULT_CAP_SAFETY
    #: Exploration-order seed; campaigns pass the RunKey seed.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.policy not in GOVERNOR_POLICIES:
            raise ConfigurationError(
                f"unknown governor policy {self.policy!r}; "
                f"available: {GOVERNOR_POLICIES}"
            )
        if self.candidates_mhz is not None and not self.candidates_mhz:
            raise ConfigurationError("candidates_mhz must not be empty")
        if self.dwell_s < 0:
            raise ConfigurationError("dwell_s must be >= 0")
        if not 0 <= self.hysteresis < 1:
            raise ConfigurationError("hysteresis must be in [0, 1)")
        if self.explore_visits < 1:
            raise ConfigurationError("explore_visits must be >= 1")
        if self.rolling_window_s <= 0:
            raise ConfigurationError("rolling_window_s must be positive")
        if not 0 < self.cap_safety <= 1:
            raise ConfigurationError("cap_safety must be in (0, 1]")
        if self.policy == "power-cap":
            if self.power_cap_watts is None or self.power_cap_watts <= 0:
                raise ConfigurationError(
                    "power-cap policy requires a positive power_cap_watts"
                )

    @classmethod
    def for_system(
        cls,
        policy: str,
        system: SystemConfig,
        seed: int = 0,
        power_cap_watts: float | None = None,
    ) -> GovernorConfig:
        """The default governor for one system.

        Candidates are a five-point spread over the GPU's supported
        range (min, quartiles, nominal); the default cap is
        ``DEFAULT_CAP_FRACTION`` of the node's nominal peak power.
        """
        spec = system.node_spec
        supported = sorted(f / 1e6 for f in spec.gpu.supported_freqs_hz)
        picks = {
            supported[0],
            supported[len(supported) // 4],
            supported[len(supported) // 2],
            supported[(3 * len(supported)) // 4],
            spec.gpu.nominal_freq_hz / 1e6,
        }
        cap = power_cap_watts
        if policy == "power-cap" and cap is None:
            cap = DEFAULT_CAP_FRACTION * spec.peak_watts
        return cls(
            policy=policy,
            candidates_mhz=tuple(sorted(picks, reverse=True)),
            power_cap_watts=cap,
            seed=seed,
        )


@dataclass(frozen=True)
class GovernorReport:
    """What the governor did during one run."""

    policy: str
    #: ``frequency_for`` consultations (one per function boundary).
    decisions: int
    #: Actual clock transitions the application performed.
    switches: int
    #: Function -> the clock (MHz) the governor settled on.
    clock_table: dict[str, float] = field(default_factory=dict)
    #: GPU energy attributed to the ``dvfs-switch`` transitions.
    switch_joules: float = 0.0
    power_cap_watts: float | None = None
    #: Highest rolling node-power mean observed on any node.
    max_rolling_watts: float = 0.0
    #: Sampler ticks whose rolling mean exceeded the cap (0 = compliant).
    cap_violation_ticks: int = 0


class _FreqStats:
    """Online time/energy accumulator for one (function, candidate)."""

    __slots__ = ("calls", "seconds", "gpu_joules")

    def __init__(self) -> None:
        self.calls = 0
        self.seconds = 0.0
        self.gpu_joules = 0.0

    def add(self, seconds: float, gpu_joules: float) -> None:
        self.calls += 1
        self.seconds += seconds
        self.gpu_joules += gpu_joules

    @property
    def mean_seconds(self) -> float:
        return self.seconds / self.calls if self.calls else 0.0

    @property
    def mean_joules(self) -> float:
        return self.gpu_joules / self.calls if self.calls else 0.0


class EnergyAwareGovernor:
    """A :class:`~repro.tuning.policy.FrequencyPolicy` that learns online.

    Parameters
    ----------
    config:
        The governor configuration.
    supported_hz:
        The GPU frequency domain's supported set; candidates are snapped
        onto it so every decision is directly applicable.
    nominal_mhz:
        The clock the run starts at (exploration's reference point).
    """

    def __init__(
        self,
        config: GovernorConfig,
        supported_hz: tuple[float, ...],
        nominal_mhz: float,
    ) -> None:
        self.config = config
        raw = (
            config.candidates_mhz
            if config.candidates_mhz is not None
            else tuple(f / 1e6 for f in supported_hz)
        )
        snapped = {
            snap_to_supported(supported_hz, f * 1e6) / 1e6 for f in raw
        }
        #: Candidate clocks in MHz, fastest first.
        self.candidates = tuple(sorted(snapped, reverse=True))
        #: The clock a cold run starts at: the budget-safe floor under a
        #: power cap, the fastest candidate otherwise.
        self.default_mhz = (
            self.candidates[-1]
            if config.policy == "power-cap"
            else snap_to_supported(supported_hz, nominal_mhz * 1e6) / 1e6
        )
        self._clock_mhz = self.default_mhz
        self._stats: dict[str, dict[float, _FreqStats]] = {}
        self._explore: dict[str, tuple[float, ...]] = {}
        self.decisions = 0
        self.switch_joules = 0.0
        # -- power-cap state --
        self._rolling: dict[int, RollingMean] = {}
        self.max_rolling_watts = 0.0
        self.cap_violation_ticks = 0
        # Ceiling index into self.candidates (0 = fastest).  Under a cap
        # the run starts clamped to the slowest candidate and earns its
        # way up; other policies never clamp.
        self._ceiling_index = (
            len(self.candidates) - 1 if config.policy == "power-cap" else 0
        )
        self._last_change_t: float | None = None
        # Highest rolling peak seen since the ceiling last moved: raises
        # are projected from the worst phase observed at the current
        # clock, not from whatever quiet phase the raise tick lands in.
        self._peak_since_change = 0.0
        #: Worst rolling peak ever observed while each ceiling clock was
        #: active — the empirical clock -> power curve the raise
        #: projection extrapolates from.
        self._peak_at_clock: dict[float, float] = {}
        # The first function whose region completes on rank 0 marks the
        # application's step cycle; two sightings since the last ceiling
        # change prove one full phase mix ran at the current clock.
        self._marker: str | None = None
        self._marker_seen = 0

    # -- model updates (profiler region hook) -------------------------------

    def observe_region(
        self,
        rank: int,
        function: str,
        t0: float,
        t1: float,
        deltas: dict[str, float],
    ) -> None:
        """Profiler region-completion tap: one rank's measured call."""
        gpu = deltas.get("gpu", 0.0)
        if function == SWITCH_FUNCTION:
            self.switch_joules += gpu
            return
        if rank == 0:
            if self._marker is None:
                self._marker = function
            if function == self._marker:
                self._marker_seen += 1
        per_freq = self._stats.setdefault(function, {})
        stats = per_freq.get(self._clock_mhz)
        if stats is None:
            stats = per_freq[self._clock_mhz] = _FreqStats()
        stats.add(t1 - t0, gpu)

    def warm_start(self, points: list[FunctionSweepPoint]) -> None:
        """Seed the model from an offline optimizer sweep.

        Each point registers as ``explore_visits`` synthetic
        observations, so a fully-swept candidate set skips online
        exploration entirely.  Points are comparable among themselves
        (same sweep scale), which is all scoring needs; pass a sweep
        covering every candidate or none of a function's points at all.
        """
        for point in points:
            freq = min(
                self.candidates, key=lambda f: (abs(f - point.freq_mhz), f)
            )
            per_freq = self._stats.setdefault(point.function, {})
            stats = per_freq.get(freq)
            if stats is None:
                stats = per_freq[freq] = _FreqStats()
            for _ in range(self.config.explore_visits):
                stats.add(point.seconds, point.joules)

    # -- telemetry updates (sampler tick hook) -------------------------------

    def on_tick(self, node_index: int, tick) -> None:
        """Sampler tick tap: maintain rolling node power and the ceiling."""
        rolling = self._rolling.get(node_index)
        if rolling is None:
            rolling = self._rolling[node_index] = RollingMean(
                self.config.rolling_window_s
            )
        rolling.add(tick.timestamp, tick.watts)
        peak = max(r.mean for r in self._rolling.values())
        if peak > self.max_rolling_watts:
            self.max_rolling_watts = peak
        cap = self.config.power_cap_watts
        if self.config.policy != "power-cap" or cap is None:
            return
        if self._last_change_t is None:
            # Treat run start as a ceiling change: no raise until a full
            # settle window has sampled the workload's phase mix.
            self._last_change_t = tick.timestamp
        if peak > self._peak_since_change:
            self._peak_since_change = peak
        f_now = self.candidates[self._ceiling_index]
        if peak > self._peak_at_clock.get(f_now, 0.0):
            self._peak_at_clock[f_now] = peak
        if peak > cap:
            # A true budget excess; the pre-emptive clamp below should
            # make this unreachable, but count it honestly if it happens.
            self.cap_violation_ticks += 1
        if peak > self.config.cap_safety * cap:
            # Pre-emptive clamp: back off while the safety margin is
            # being eaten, *before* the budget itself is crossed.  The
            # rolling mean moves one sample at a time, so reacting at
            # ``cap_safety * cap`` leaves the margin to absorb the drift
            # until the lower clock takes effect at the next boundary.
            if self._ceiling_index < len(self.candidates) - 1:
                self._ceiling_index += 1
                self._last_change_t = tick.timestamp
                self._peak_since_change = peak
                self._marker_seen = 0
        elif self._ceiling_index > 0:
            # Raise only when the *projected* power at the next step up
            # still clears the cap with margin.  Three safeguards make an
            # overshoot structurally hard:
            #
            # 1. The projection starts from the worst rolling peak seen
            #    at the current ceiling, not the instantaneous mean a
            #    quiet phase deflates.
            # 2. That peak must cover one full step cycle (two marker
            #    sightings), so the workload's heaviest phase is in it.
            # 3. The increase is extrapolated pessimistically: a
            #    quadratic clock-power prior before any curve data
            #    exists, then a secant through the two highest observed
            #    clocks with the power increment doubled.
            f_up = self.candidates[self._ceiling_index - 1]
            settled = (
                tick.timestamp - self._last_change_t
                >= self.config.rolling_window_s
            )
            p_now = max(
                self._peak_since_change, self._peak_at_clock.get(f_now, 0.0)
            )
            lower = [
                (f, p)
                for f, p in self._peak_at_clock.items()
                if f < f_now and p > 0.0
            ]
            projected = p_now * (f_up / f_now) ** 2
            if lower:
                f_lo, p_lo = max(lower)
                slope = (p_now - p_lo) / (f_now - f_lo)
                if slope > 0:
                    projected = min(
                        projected, p_now + 2.0 * slope * (f_up - f_now)
                    )
            if (
                settled
                and self._marker_seen >= 2
                and projected <= self.config.cap_safety * cap
            ):
                self._ceiling_index -= 1
                self._last_change_t = tick.timestamp
                self._peak_since_change = peak
                self._marker_seen = 0

    # -- the policy interface -------------------------------------------------

    def _explore_order(self, function: str) -> tuple[float, ...]:
        order = self._explore.get(function)
        if order is None:
            order = tuple(
                sorted(
                    self.candidates,
                    key=lambda f: hashlib.blake2s(
                        f"{self.config.seed}:{function}:{f:.3f}".encode()
                    ).digest(),
                )
            )
            self._explore[function] = order
        return order

    def _score(self, stats: _FreqStats) -> float:
        if self.config.policy == "min-energy":
            return stats.mean_joules
        return stats.mean_joules * stats.mean_seconds  # min-edp

    def frequency_for(self, function: str) -> float | None:
        if function == SWITCH_FUNCTION:
            return None
        self.decisions += 1
        if self.config.policy == "power-cap":
            # Run as fast as the budget allows; the tick hook moves the
            # ceiling.  Dwell still applies so sub-dwell functions never
            # thrash the clock.
            per_freq = self._stats.get(function)
            if per_freq is not None and self._too_short(per_freq):
                return None
            target = self.candidates[self._ceiling_index]
            self._clock_mhz = target
            return target
        per_freq = self._stats.get(function)
        if per_freq is None:
            return None  # first sighting: observe at the running clock
        if self._too_short(per_freq):
            return None
        for cand in self._explore_order(function):
            visits = per_freq.get(cand)
            if visits is None or visits.calls < self.config.explore_visits:
                self._clock_mhz = cand
                return cand
        scored = {
            freq: self._score(stats)
            for freq, stats in per_freq.items()
            if stats.calls and freq in self.candidates
        }
        best = min(scored, key=lambda f: (scored[f], f))
        current = self._clock_mhz
        if best == current:
            return None
        cur_score = scored.get(current)
        if (
            cur_score is not None
            and cur_score > 0
            and scored[best] >= (1.0 - self.config.hysteresis) * cur_score
        ):
            return None  # improvement too small to earn a switch
        self._clock_mhz = best
        return best

    def _too_short(self, per_freq: dict[float, _FreqStats]) -> bool:
        calls = sum(s.calls for s in per_freq.values())
        seconds = sum(s.seconds for s in per_freq.values())
        if not calls:
            return False
        return seconds / calls < self.config.dwell_s

    # -- reporting -------------------------------------------------------------

    def clock_table(self) -> dict[str, float]:
        """Function -> the clock the governor currently favours (MHz)."""
        table = {}
        for function, per_freq in sorted(self._stats.items()):
            if function == SWITCH_FUNCTION or self._too_short(per_freq):
                continue
            if self.config.policy == "power-cap":
                table[function] = self.candidates[self._ceiling_index]
                continue
            scored = {
                freq: self._score(stats)
                for freq, stats in per_freq.items()
                if stats.calls and freq in self.candidates
            }
            if scored:
                table[function] = min(scored, key=lambda f: (scored[f], f))
        return table

    def report(self, switches: int = 0) -> GovernorReport:
        """Summarize the run (``switches`` from the application)."""
        return GovernorReport(
            policy=self.config.policy,
            decisions=self.decisions,
            switches=switches,
            clock_table=self.clock_table(),
            switch_joules=self.switch_joules,
            power_cap_watts=self.config.power_cap_watts,
            max_rolling_watts=self.max_rolling_watts,
            cap_violation_ticks=self.cap_violation_ticks,
        )
