"""Virtual simulation clock.

All hardware, sensors, the Slurm scheduler and the MPI runtime share one
:class:`VirtualClock`.  Time only moves forward and only when the simulation
driver advances it; this makes every experiment fully deterministic and
independent of wall-clock time.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ClockError


class VirtualClock:
    """A monotonically non-decreasing simulated clock.

    Parameters
    ----------
    start:
        Initial simulated time in seconds (default ``0.0``).
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ClockError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)
        self._listeners: list[Callable[[float], None]] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, dt: float) -> float:
        """Advance the clock by ``dt`` seconds and return the new time.

        ``dt`` must be non-negative; a zero advance is allowed (it is used
        for instantaneous events such as back-to-back sensor reads).
        """
        if dt < 0:
            raise ClockError(f"cannot advance clock by negative dt {dt!r}")
        if dt > 0:
            self._now += dt
            for listener in self._listeners:
                listener(self._now)
        return self._now

    def advance_to(self, t: float) -> float:
        """Advance the clock to absolute time ``t`` (must be >= now)."""
        if t < self._now:
            raise ClockError(
                f"cannot move clock backwards from {self._now!r} to {t!r}"
            )
        return self.advance(t - self._now)

    def on_advance(self, listener: Callable[[float], None]) -> None:
        """Register a callback invoked with the new time after each advance.

        Used by free-running samplers (e.g. the Slurm energy plugin) that
        must take periodic readings regardless of who advances time.
        """
        self._listeners.append(listener)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"VirtualClock(now={self._now:.6f})"
