"""Tests for rank placement, communication costs, and the SPMD engine."""

import pytest

from repro.config import CSCS_A100, LUMI_G, MINIHPC
from repro.errors import CommunicatorError, SimulationError
from repro.hardware import Cluster, VirtualClock
from repro.mpi import CommCostModel, RankPlacement, RankWork, SpmdEngine

def make_cluster(system, num_nodes):
    clock = VirtualClock()
    return Cluster("c", clock, system.node_spec, num_nodes, system.network)


class TestRankPlacement:
    def test_lumi_size(self):
        placement = RankPlacement(make_cluster(LUMI_G, 2))
        assert placement.size == 16

    def test_location_fields(self):
        placement = RankPlacement(make_cluster(LUMI_G, 2))
        loc = placement.location(9)
        assert loc.node_index == 1
        assert loc.local_rank == 1
        assert loc.gpu_index == 1
        assert loc.card_index == 0

    def test_gcd_within_card(self):
        placement = RankPlacement(make_cluster(LUMI_G, 1))
        assert placement.location(0).gcd_within_card == 0
        assert placement.location(1).gcd_within_card == 1
        assert placement.location(2).gcd_within_card == 0

    def test_cscs_one_rank_per_card(self):
        placement = RankPlacement(make_cluster(CSCS_A100, 1))
        groups = placement.sensor_sharing_groups()
        assert groups == [[0], [1], [2], [3]]

    def test_lumi_two_ranks_per_card(self):
        placement = RankPlacement(make_cluster(LUMI_G, 1))
        groups = placement.sensor_sharing_groups()
        assert groups == [[0, 1], [2, 3], [4, 5], [6, 7]]

    def test_ranks_on_node(self):
        placement = RankPlacement(make_cluster(CSCS_A100, 3))
        assert placement.ranks_on_node(1) == [4, 5, 6, 7]

    def test_same_node(self):
        placement = RankPlacement(make_cluster(CSCS_A100, 2))
        assert placement.same_node(0, 3)
        assert not placement.same_node(0, 4)

    def test_gpu_and_card_accessors(self):
        cluster = make_cluster(LUMI_G, 1)
        placement = RankPlacement(cluster)
        assert placement.gpu_of(3) is cluster.nodes[0].gpus[3]
        assert placement.card_of(3) is cluster.nodes[0].cards[1]

    def test_bad_rank(self):
        placement = RankPlacement(make_cluster(MINIHPC, 1))
        with pytest.raises(CommunicatorError):
            placement.location(99)


class TestCommCostModel:
    @pytest.fixture
    def cost(self):
        placement = RankPlacement(make_cluster(CSCS_A100, 4))
        return CommCostModel(CSCS_A100.network, placement)

    def test_barrier_log_rounds(self, cost):
        assert cost.barrier_time() == pytest.approx(4 * CSCS_A100.network.latency_s)

    def test_allreduce_single_rank_free(self):
        cost = CommCostModel(MINIHPC.network, RankPlacement(make_cluster(MINIHPC, 1)))
        # 2 ranks on the single miniHPC node -> nonzero but tiny
        assert cost.allreduce_time(8) > 0

    def test_allreduce_scales_with_bytes(self, cost):
        assert cost.allreduce_time(1e6) > cost.allreduce_time(8)

    def test_allgather_scales_with_ranks(self):
        net = CSCS_A100.network
        small = CommCostModel(net, RankPlacement(make_cluster(CSCS_A100, 2)))
        large = CommCostModel(net, RankPlacement(make_cluster(CSCS_A100, 8)))
        assert large.allgather_time(1e4) > small.allgather_time(1e4)

    def test_p2p_intra_node_faster(self, cost):
        intra = cost.p2p_time(0, 1, 1e6)
        inter = cost.p2p_time(0, 4, 1e6)
        assert intra < inter

    def test_halo_exchange_bounded_by_max_message(self, cost):
        msgs = {1: 1e6, 4: 1e6, 5: 1e6}
        t = cost.halo_exchange_time(0, msgs)
        assert t >= cost.p2p_time(0, 4, 1e6)
        assert t <= sum(cost.p2p_time(0, r, b) for r, b in msgs.items())

    def test_halo_exchange_empty(self, cost):
        assert cost.halo_exchange_time(0, {}) == 0.0

    def test_alltoallv_sums_sends(self, cost):
        t = cost.alltoallv_time(0, {1: 1e6, 4: 2e6})
        expected = cost.p2p_time(0, 1, 1e6) + cost.p2p_time(0, 4, 2e6)
        assert t == pytest.approx(expected)

    def test_negative_bytes_rejected(self, cost):
        with pytest.raises(CommunicatorError):
            cost.allreduce_time(-1)
        with pytest.raises(CommunicatorError):
            cost.allgather_time(-1)
        with pytest.raises(CommunicatorError):
            cost.p2p_time(0, 1, -1)


class TestSpmdEngine:
    @pytest.fixture
    def setup(self):
        cluster = make_cluster(CSCS_A100, 1)
        placement = RankPlacement(cluster)
        return cluster, placement, SpmdEngine(placement)

    def test_phase_advances_to_slowest_rank(self, setup):
        cluster, placement, engine = setup
        works = [RankWork(duration=float(d), gpu_compute=0.9) for d in (1, 2, 3, 4)]
        result = engine.run_phase(works)
        assert cluster.clock.now == 4.0
        assert result.t_start == 0.0
        assert result.t_end == 4.0
        assert result.duration_of(2) == 3.0

    def test_gpus_busy_then_idle(self, setup):
        cluster, placement, engine = setup
        works = [RankWork(duration=2.0, gpu_compute=1.0, gpu_memory=1.0)] * 4
        engine.run_phase(works)
        node = cluster.nodes[0]
        busy_power = node.gpus[0].trace.power_at(1.0)
        idle_power = node.gpus[0].trace.power_at(3.0)
        assert busy_power > idle_power

    def test_straggler_burns_idle_energy_on_others(self, setup):
        """Fast ranks idle while the slowest finishes (load imbalance)."""
        cluster, placement, engine = setup
        works = [RankWork(duration=1.0, gpu_compute=1.0)] * 3 + [
            RankWork(duration=5.0, gpu_compute=1.0)
        ]
        engine.run_phase(works)
        gpu0 = cluster.nodes[0].gpus[0]
        idle = gpu0.power_model.idle_watts_nominal
        # gpu0 idles from t=1 to t=5.
        assert gpu0.energy_between(1.0, 5.0) == pytest.approx(idle * 4.0)

    def test_on_end_fires_at_rank_time(self, setup):
        cluster, placement, engine = setup
        seen = {}
        works = [RankWork(duration=float(d)) for d in (4, 3, 2, 1)]
        engine.run_phase(works, on_end=lambda r: seen.setdefault(r, cluster.clock.now))
        assert seen == {0: 4.0, 1: 3.0, 2: 2.0, 3: 1.0}

    def test_on_start_fires_for_all(self, setup):
        _, _, engine = setup
        started = []
        engine.run_phase([RankWork(duration=1.0)] * 4, on_start=started.append)
        assert started == [0, 1, 2, 3]

    def test_shared_cpu_load_aggregates(self, setup):
        cluster, placement, engine = setup
        node = cluster.nodes[0]
        works = [RankWork(duration=2.0, cpu_share=0.25)] * 4
        engine.run_phase(works)
        # During the phase the CPU ran at full aggregated share.
        busy = node.cpu.trace.power_at(1.0)
        assert busy > node.cpu.power_model.idle_watts_nominal

    def test_shared_load_decays_as_ranks_finish(self, setup):
        cluster, placement, engine = setup
        node = cluster.nodes[0]
        works = [
            RankWork(duration=1.0, cpu_share=0.25),
            RankWork(duration=1.0, cpu_share=0.25),
            RankWork(duration=1.0, cpu_share=0.25),
            RankWork(duration=4.0, cpu_share=0.25),
        ]
        engine.run_phase(works)
        assert node.cpu.trace.power_at(0.5) > node.cpu.trace.power_at(2.0)
        assert node.cpu.trace.power_at(2.0) > node.cpu.trace.power_at(5.0)

    def test_zero_duration_phase(self, setup):
        cluster, _, engine = setup
        result = engine.run_phase([RankWork(duration=0.0)] * 4)
        assert result.t_start == result.t_end == cluster.clock.now

    def test_wrong_work_count_rejected(self, setup):
        _, _, engine = setup
        with pytest.raises(SimulationError):
            engine.run_phase([RankWork(duration=1.0)] * 3)

    def test_invalid_work_rejected(self):
        with pytest.raises(SimulationError):
            RankWork(duration=-1.0)
        with pytest.raises(SimulationError):
            RankWork(duration=1.0, gpu_compute=1.5)

    def test_run_idle(self, setup):
        cluster, _, engine = setup
        engine.run_idle(10.0)
        assert cluster.clock.now == 10.0
        node = cluster.nodes[0]
        assert node.power_at(5.0) == pytest.approx(node.idle_power())

    def test_consecutive_phases_accumulate_time(self, setup):
        cluster, _, engine = setup
        engine.run_phase([RankWork(duration=1.0)] * 4)
        result = engine.run_phase([RankWork(duration=2.0)] * 4)
        assert result.t_start == 1.0
        assert cluster.clock.now == 3.0
