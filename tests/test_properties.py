"""Cross-layer property-based tests (hypothesis).

Invariants that must hold across arbitrary inputs: energy bookkeeping
consistency between layers, performance-model monotonicity, placement
bijectivity, PMT interval additivity.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.pmt as pmt
from repro.config import CSCS_A100, LUMI_G, MINIHPC
from repro.hardware import Cluster, VirtualClock
from repro.mpi import CommCostModel, RankPlacement, RankWork, SpmdEngine
from repro.pmt import PMT
from repro.sensors import NodeTelemetry
from repro.sph.perfmodel import SphPerformanceModel
from repro.sph.propagator import TURBULENCE_FUNCTIONS
from repro.units import mhz


class TestEnergyBookkeeping:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=5.0),   # duration
                st.floats(min_value=0.0, max_value=1.0),   # gpu compute
                st.floats(min_value=0.0, max_value=1.0),   # gpu memory
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_node_energy_equals_sum_of_parts(self, phases):
        """Ground truth: node trace == devices + constant, whatever runs."""
        clock = VirtualClock()
        cluster = Cluster("c", clock, CSCS_A100.node_spec, 1, CSCS_A100.network)
        engine = SpmdEngine(RankPlacement(cluster))
        for duration, u_c, u_m in phases:
            works = [
                RankWork(duration=duration, gpu_compute=u_c, gpu_memory=u_m,
                         cpu_share=0.1, mem_share=0.1)
                for _ in range(4)
            ]
            engine.run_phase(works)
        node = cluster.nodes[0]
        t1 = clock.now
        parts = (
            node.cpu.energy_between(0, t1)
            + node.memory.energy_between(0, t1)
            + node.nic.energy_between(0, t1)
            + sum(g.energy_between(0, t1) for g in node.gpus)
            + node.spec.aux_watts * t1
        )
        assert node.energy_between(0, t1) == pytest.approx(parts, rel=1e-9)

    @given(
        st.floats(min_value=1.0, max_value=60.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_pmt_interval_additivity(self, duration, load):
        """joules(a, c) == joules(a, b) + joules(b, c) for any split."""
        clock = VirtualClock()
        cluster = Cluster("c", clock, LUMI_G.node_spec, 1, LUMI_G.network)
        telemetry = NodeTelemetry(cluster.nodes[0], LUMI_G, clock)
        meter = pmt.create("cray", telemetry=telemetry)
        a = meter.read()
        cluster.nodes[0].gpus[0].set_load(load, load)
        clock.advance(duration * 0.4)
        b = meter.read()
        clock.advance(duration * 0.6)
        c = meter.read()
        assert PMT.joules(a, c) == pytest.approx(
            PMT.joules(a, b) + PMT.joules(b, c), abs=1e-9
        )

    @given(st.floats(min_value=0.5, max_value=50.0))
    @settings(max_examples=15, deadline=None)
    def test_sensor_never_exceeds_truth_by_much(self, duration):
        """Quantized counters stay within cadence+quantum of ground truth."""
        clock = VirtualClock()
        cluster = Cluster("c", clock, LUMI_G.node_spec, 1, LUMI_G.network)
        telemetry = NodeTelemetry(cluster.nodes[0], LUMI_G, clock)
        base = telemetry.pm_counters.read_node(0.0).joules
        cluster.nodes[0].gpus[0].set_load(0.7, 0.7)
        clock.advance(duration)
        measured = telemetry.pm_counters.read_node(clock.now).joules - base
        truth = cluster.nodes[0].energy_between(0, clock.now)
        max_power = 4000.0  # generous node ceiling
        tolerance = 0.1 * max_power + 1.0 + 0.02 * truth
        assert abs(measured - truth) <= tolerance


class TestPerfModelProperties:
    def _model(self, system, particles):
        clock = VirtualClock()
        cluster = Cluster("c", clock, system.node_spec, 1, system.network)
        placement = RankPlacement(cluster)
        return cluster, SphPerformanceModel(
            CommCostModel(system.network, placement), particles, jitter=0.0
        )

    @given(
        st.sampled_from(sorted(TURBULENCE_FUNCTIONS)),
        st.floats(min_value=1e6, max_value=2e8),
        st.floats(min_value=1.5, max_value=8.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_time_monotone_in_particles(self, function, n, factor):
        cluster, small = self._model(CSCS_A100, n)
        _, large = self._model(CSCS_A100, n * factor)
        gpu = cluster.nodes[0].gpus[0]
        assert (
            large.phases(function, gpu, 0, 0).kernel_seconds
            > small.phases(function, gpu, 0, 0).kernel_seconds
        )

    @given(
        st.sampled_from(sorted(TURBULENCE_FUNCTIONS)),
        st.sampled_from([1365, 1230, 1095, 1005]),
    )
    @settings(max_examples=30, deadline=None)
    def test_downclock_never_speeds_up(self, function, freq):
        cluster, model = self._model(MINIHPC, 450.0**3)
        gpu = cluster.nodes[0].gpus[0]
        nominal = model.phases(function, gpu, 0, 0).kernel_seconds
        gpu.set_frequency(mhz(freq))
        low = model.phases(function, gpu, 0, 0).kernel_seconds
        assert low >= nominal * (1 - 1e-9)

    @given(st.sampled_from(sorted(TURBULENCE_FUNCTIONS)))
    @settings(max_examples=15, deadline=None)
    def test_busy_power_drops_with_frequency(self, function):
        """Whatever the function, the modelled GPU power at its load is
        lower at the reduced clock."""
        cluster, model = self._model(MINIHPC, 450.0**3)
        gpu = cluster.nodes[0].gpus[0]

        def busy_watts():
            ph = model.phases(function, gpu, 0, 0)
            return gpu.power_model.power(
                gpu.frequency.ratio, ph.gpu_compute, ph.gpu_memory
            )

        at_nominal = busy_watts()
        gpu.set_frequency(mhz(1005))
        assert busy_watts() < at_nominal


class TestPlacementProperties:
    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=8, deadline=None)
    def test_rank_to_gpu_bijection(self, num_nodes):
        clock = VirtualClock()
        cluster = Cluster("c", clock, LUMI_G.node_spec, num_nodes, LUMI_G.network)
        placement = RankPlacement(cluster)
        gpus = {id(placement.gpu_of(r)) for r in range(placement.size)}
        assert len(gpus) == placement.size == cluster.total_gpu_units

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=6, deadline=None)
    def test_sensor_groups_partition_ranks(self, num_nodes):
        clock = VirtualClock()
        cluster = Cluster("c", clock, LUMI_G.node_spec, num_nodes, LUMI_G.network)
        placement = RankPlacement(cluster)
        groups = placement.sensor_sharing_groups()
        flattened = [r for group in groups for r in group]
        assert sorted(flattened) == list(range(placement.size))
        assert all(len(g) == 2 for g in groups)  # MI250X pairs
