"""Simulated MPI runtime.

The paper's methodology is MPI-shaped: one rank per GPU unit (per GCD on
LUMI-G, per card on A100 systems), per-rank measurements throughout the
run, and a gather at the end of execution.  This package provides:

* :class:`~repro.mpi.mapping.RankPlacement` — the rank -> (node, GPU unit,
  card) assignment, including which ranks *share* a power sensor (the
  MI250X half-card situation);
* :class:`~repro.mpi.costmodel.CommCostModel` — latency/bandwidth costs
  for the collectives and halo exchanges SPH-EXA performs;
* :class:`~repro.mpi.engine.SpmdEngine` — the lockstep phase executor that
  applies device loads, advances the virtual clock through per-rank
  completion times, and fires instrumentation callbacks exactly when each
  rank would take its measurements.
"""

from repro.mpi.mapping import RankPlacement, RankLocation
from repro.mpi.costmodel import CommCostModel
from repro.mpi.engine import RankWork, PhaseResult, SpmdEngine

__all__ = [
    "RankPlacement",
    "RankLocation",
    "CommCostModel",
    "RankWork",
    "PhaseResult",
    "SpmdEngine",
]
