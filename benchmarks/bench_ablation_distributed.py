"""Ablation: distributed solver correctness and halo-traffic scaling.

Runs the real solver in rank-decomposed mode at several rank counts,
verifies bit-level-ish agreement with the serial run (the halo machinery
is exact), and reports how halo particle counts and exchanged bytes grow
with the rank count — the surface-to-volume behaviour domain
decomposition is supposed to show.
"""

import numpy as np
from conftest import write_result

from repro.sph.distributed import DistributedHydro
from repro.sph.initial_conditions import make_turbulence

RANK_COUNTS = (1, 2, 4, 8)
STEPS = 3
N_SIDE = 10


def _run(n_ranks):
    ps, box = make_turbulence(n_side=N_SIDE, seed=23)
    rng = np.random.default_rng(23)
    ps.vel = rng.normal(0.0, 0.08, size=ps.vel.shape)
    dist = DistributedHydro(box, n_ranks=n_ranks)
    for _ in range(STEPS):
        dist.step(ps)
    comm = dist.comm_history[-1]
    return ps, sum(comm.halo_particles), comm.halo_bytes


def _sweep():
    return {ranks: _run(ranks) for ranks in RANK_COUNTS}


def bench_distributed_solver(benchmark, results_dir):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    serial_ps = results[1][0]
    lines = [
        f"Distributed real solver, {N_SIDE**3} particles, {STEPS} steps",
        f"{'ranks':>6} {'halo particles':>15} {'halo KB/step':>13} "
        f"{'max |drho|':>12}",
    ]
    for ranks in RANK_COUNTS:
        ps, halo_particles, halo_bytes = results[ranks]
        drho = float(np.abs(ps.rho - serial_ps.rho).max())
        lines.append(
            f"{ranks:>6} {halo_particles:>15} {halo_bytes / 1024:>13.1f} "
            f"{drho:>12.2e}"
        )
        # Correctness: every rank count reproduces the serial state.
        assert np.allclose(ps.pos, serial_ps.pos, rtol=1e-7, atol=1e-10)
        assert np.allclose(ps.rho, serial_ps.rho, rtol=1e-7)

    # Halo traffic grows with rank count (more surface per volume).
    halos = [results[r][1] for r in RANK_COUNTS]
    assert halos[0] == 0
    assert halos[1] < halos[2] < halos[3]

    lines.append("")
    lines.append(
        "Distributed execution is exact vs serial; halo traffic grows "
        "with rank count as surface/volume predicts."
    )
    write_result(results_dir, "ablation_distributed", "\n".join(lines))


def bench_smoke_distributed_solver(results_dir):
    def run(n_ranks, n_side=8, steps=2):
        ps, box = make_turbulence(n_side=n_side, seed=23)
        rng = np.random.default_rng(23)
        ps.vel = rng.normal(0.0, 0.08, size=ps.vel.shape)
        dist = DistributedHydro(box, n_ranks=n_ranks)
        for _ in range(steps):
            dist.step(ps)
        comm = dist.comm_history[-1]
        return ps, sum(comm.halo_particles), comm.halo_bytes

    serial_ps, _, _ = run(1)
    dist_ps, halo_particles, halo_bytes = run(2)

    # Distributed execution reproduces the serial state.
    assert np.allclose(dist_ps.pos, serial_ps.pos, rtol=1e-7, atol=1e-10)
    assert np.allclose(dist_ps.rho, serial_ps.rho, rtol=1e-7)
    assert halo_particles > 0

    lines = [
        "Distributed smoke: 512 particles, 2 steps, 2 ranks vs serial",
        f"halo particles: {halo_particles}   halo KB/step: "
        f"{halo_bytes / 1024:.1f}",
        "2-rank state matches serial run",
    ]
    write_result(results_dir, "ablation_distributed_smoke", "\n".join(lines))
