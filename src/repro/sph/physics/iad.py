"""Integral approach to derivatives (the ``IADVelocityDivCurl`` function).

Garcia-Senz et al. (2012), as used by SPH-EXA/SPHYNX: per particle, the
moment matrix ::

    tau_ab,i = sum_j (m_j / rho_j) (x_a,j - x_a,i)(x_b,j - x_b,i) W_ij(h_i)

is inverted to give the IAD correction matrix ``C_i = tau_i^{-1}``; the
corrected kernel-gradient estimate for pair (i, j) is then ::

    A_i,ij = C_i (x_j - x_i) W_ij(h_i)      (plays the role of grad_i W_ij)

This module also computes the velocity divergence and curl with the same
corrected gradients (they feed the Balsara viscosity switch), matching
SPH-EXA's fused ``IADVelocityDivCurl`` kernel.

With a :class:`~repro.sph.pair_cache.StepContext`, every sum runs over
the half-pair list with symmetric scatter-adds (the moment matrix kernel
term is even under i <-> j; the div/curl terms pick up the sign flips of
``x_j - x_i`` and ``v_j - v_i`` together), and the gradient vectors
computed here are memoized for ``MomentumEnergy`` to reuse.
"""

from __future__ import annotations

import numpy as np

from repro.sph import csolver
from repro.sph.kernels.cubic_spline import _SIGMA_3D, CubicSplineKernel
from repro.sph.neighbors import PairList
from repro.sph.pair_cache import (
    CsrStepContext,
    StepContext,
    scatter_sum,
    scatter_sum_rows,
    scatter_sum_sym,
    scatter_sum_sym_rows,
)
from repro.sph.particles import ParticleSet


def iad_vectors(
    ps: ParticleSet, pairs: PairList, kernel=CubicSplineKernel
) -> tuple[np.ndarray, np.ndarray]:
    """The corrected gradient vectors ``A_i,ij`` and ``A_j,ij`` per pair.

    ``A_i`` uses particle i's matrix and smoothing length; ``A_j`` uses
    particle j's (both along ``x_j - x_i``).  Requires ``ps.c_iad``.
    """
    d = -pairs.dx  # x_j - x_i
    w_hi = kernel.value(pairs.r, ps.h[pairs.i])
    w_hj = kernel.value(pairs.r, ps.h[pairs.j])
    a_i = np.einsum("kab,kb->ka", ps.c_iad[pairs.i], d) * w_hi[:, None]
    a_j = np.einsum("kab,kb->ka", ps.c_iad[pairs.j], d) * w_hj[:, None]
    return a_i, a_j


def _invert_tau(tau: np.ndarray) -> np.ndarray:
    """Regularize near-singular moment matrices, then invert.

    Isolated particles and collinear neighbour sets produce singular
    ``tau``; a small multiple of the trace-scaled identity keeps the
    inversion well-posed.
    """
    trace = np.trace(tau, axis1=1, axis2=2)
    scale = np.maximum(trace / 3.0, 1e-30)
    eye = np.eye(3)[None, :, :]
    det = np.linalg.det(tau)
    bad = np.abs(det) < (1e-10 * scale**3)
    tau[bad] += (1e-6 * scale[bad])[:, None, None] * eye
    return np.linalg.inv(tau)


def _assemble_tau(entries: np.ndarray, n: int) -> np.ndarray:
    """The symmetric ``(n, 3, 3)`` tau matrices from their six entries."""
    tau = np.empty((n, 3, 3), dtype=np.float64)
    tau[:, 0, 0] = entries[:, 0]
    tau[:, 0, 1] = tau[:, 1, 0] = entries[:, 1]
    tau[:, 0, 2] = tau[:, 2, 0] = entries[:, 2]
    tau[:, 1, 1] = entries[:, 3]
    tau[:, 1, 2] = tau[:, 2, 1] = entries[:, 4]
    tau[:, 2, 2] = entries[:, 5]
    return tau


def _iad_and_divcurl_csr(ps: ParticleSet, ctx: CsrStepContext) -> None:
    if ctx.cfast is not None:
        entries = csolver.tau(ctx.cfast, ctx, ps.mass, ps.rho, _SIGMA_3D)
        ps.c_iad = csolver.tau_invert(ctx.cfast, entries)
        ps.div_v, curl = csolver.divcurl(
            ctx.cfast, ctx, ps.mass, ps.rho, ps.vel, ps.c_iad, _SIGMA_3D
        )
        ps.curl_v = np.linalg.norm(curl, axis=1)
        return

    d = ctx.d  # x_col - x_row

    # Volume-weighted kernel value per entry, then the six unique tau
    # entries in one (nnz, 6) buffer and one float64 segment reduction.
    vol_w = ctx.gather(ps.mass, "col", "ph_vw")
    vol_w /= ctx.gather(ps.rho, "col", "ph_rj")
    vol_w *= ctx.w_own
    geom = ctx.scratch("ph_geom", 6)
    np.multiply(d[:, 0], d[:, 0], out=geom[:, 0])
    np.multiply(d[:, 0], d[:, 1], out=geom[:, 1])
    np.multiply(d[:, 0], d[:, 2], out=geom[:, 2])
    np.multiply(d[:, 1], d[:, 1], out=geom[:, 3])
    np.multiply(d[:, 1], d[:, 2], out=geom[:, 4])
    np.multiply(d[:, 2], d[:, 2], out=geom[:, 5])
    geom *= vol_w[:, None]
    ps.c_iad = _invert_tau(_assemble_tau(ctx.reduce_sum_rows(geom), ps.n))

    # Velocity divergence and curl with corrected gradients.
    a_own, _ = ctx.iad_vectors(ps.c_iad)
    v_ji = ctx.gather_rows(ps.vel, "col", "ph_vji")
    v_ji -= ctx.gather_rows(ps.vel, "row", "ph_vrow")
    m_over_rho = ctx.gather(ps.mass, "col", "ph_mor")
    m_over_rho /= ctx.gather(ps.rho, "row", "ph_ri")
    div_terms = ctx.scratch("ph_divt")
    np.einsum("ka,ka->k", v_ji, a_own, out=div_terms)
    div_terms *= m_over_rho
    ps.div_v = ctx.reduce_sum(div_terms)
    curl = ctx.scratch("ph_curl", 3)
    np.multiply(v_ji[:, 1], a_own[:, 2], out=curl[:, 0])
    curl[:, 0] -= v_ji[:, 2] * a_own[:, 1]
    np.multiply(v_ji[:, 2], a_own[:, 0], out=curl[:, 1])
    curl[:, 1] -= v_ji[:, 0] * a_own[:, 2]
    np.multiply(v_ji[:, 0], a_own[:, 1], out=curl[:, 2])
    curl[:, 2] -= v_ji[:, 1] * a_own[:, 0]
    curl *= m_over_rho[:, None]
    ps.curl_v = np.linalg.norm(ctx.reduce_sum_rows(curl), axis=1)


def _iad_and_divcurl_cached(ps: ParticleSet, ctx: StepContext) -> None:
    hp = ctx.pairs
    i, j = hp.i, hp.j
    d = -hp.dx  # x_j - x_i

    # The six unique tau entries as (n_pairs, 6) rows, one symmetric
    # scatter: the geometric factor d_a d_b is even under i <-> j, only
    # the volume-weighted kernel value differs per side.
    vol_w_i = (ps.mass[j] / ps.rho[j]) * ctx.w_i  # gathers onto i
    vol_w_j = (ps.mass[i] / ps.rho[i]) * ctx.w_j  # gathers onto j
    geom = np.stack(
        [
            d[:, 0] * d[:, 0],
            d[:, 0] * d[:, 1],
            d[:, 0] * d[:, 2],
            d[:, 1] * d[:, 1],
            d[:, 1] * d[:, 2],
            d[:, 2] * d[:, 2],
        ],
        axis=1,
    )
    entries = scatter_sum_sym_rows(
        i, j, geom * vol_w_i[:, None], geom * vol_w_j[:, None], ps.n
    )
    ps.c_iad = _invert_tau(_assemble_tau(entries, ps.n))

    # Velocity divergence and curl with corrected gradients.  For the
    # mirrored pair both v_ji and A flip sign, so each target's term
    # keeps the same form with its own gradient vector.
    a_i, a_j = ctx.iad_vectors(ps.c_iad)
    v_ji = ps.vel[j] - ps.vel[i]
    m_over_rho_i = ps.mass[j] / ps.rho[i]
    m_over_rho_j = ps.mass[i] / ps.rho[j]
    ps.div_v = scatter_sum_sym(
        i,
        j,
        m_over_rho_i * np.einsum("ka,ka->k", v_ji, a_i),
        m_over_rho_j * np.einsum("ka,ka->k", v_ji, a_j),
        ps.n,
    )
    curl = scatter_sum_sym_rows(
        i,
        j,
        np.cross(v_ji, a_i) * m_over_rho_i[:, None],
        np.cross(v_ji, a_j) * m_over_rho_j[:, None],
        ps.n,
    )
    ps.curl_v = np.linalg.norm(curl, axis=1)


def compute_iad_and_divcurl(
    ps: ParticleSet, pairs: PairList | StepContext, kernel=CubicSplineKernel
) -> None:
    """Fill ``ps.c_iad``, ``ps.div_v`` and ``ps.curl_v``."""
    if isinstance(pairs, CsrStepContext):
        _iad_and_divcurl_csr(ps, pairs)
        return
    if isinstance(pairs, StepContext):
        _iad_and_divcurl_cached(ps, pairs)
        return
    d = -pairs.dx  # x_j - x_i
    w = kernel.value(pairs.r, ps.h[pairs.i])
    vol = ps.mass[pairs.j] / ps.rho[pairs.j]
    weight = vol * w

    # Six unique entries of the symmetric tau matrix, accumulated per i.
    tau = np.zeros((ps.n, 3, 3), dtype=np.float64)
    for a in range(3):
        for b in range(a, 3):
            entry = scatter_sum(pairs.i, weight * d[:, a] * d[:, b], ps.n)
            tau[:, a, b] = entry
            tau[:, b, a] = entry
    ps.c_iad = _invert_tau(tau)

    # Velocity divergence and curl with corrected gradients.
    a_i = np.einsum("kab,kb->ka", ps.c_iad[pairs.i], d) * w[:, None]
    v_ji = ps.vel[pairs.j] - ps.vel[pairs.i]
    m_over_rho_i = ps.mass[pairs.j] / ps.rho[pairs.i]
    div_terms = m_over_rho_i * np.einsum("ka,ka->k", v_ji, a_i)
    ps.div_v = scatter_sum(pairs.i, div_terms, ps.n)
    curl_vec = np.cross(v_ji, a_i) * m_over_rho_i[:, None]
    curl = scatter_sum_rows(pairs.i, curl_vec, ps.n)
    ps.curl_v = np.linalg.norm(curl, axis=1)
