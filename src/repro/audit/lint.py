"""AST-based energy-accounting lint for the repro source tree.

The runtime auditor catches invariant violations *when they happen*; the
lint keeps the classes of bugs that caused them from being written in the
first place.  Four rules, each born from a latent bug this audit layer's
dry run found:

``wallclock``
    Wall-clock time sources (``time.time``/``monotonic``/
    ``perf_counter``/``process_time``, ``datetime.now``/``utcnow``/
    ``today``) are forbidden: all simulated measurement flows from the
    shared :class:`~repro.hardware.clock.VirtualClock`, and a stray host
    clock read silently breaks determinism and energy attribution.

``raw-random``
    Module-level ``random.*`` calls and legacy ``numpy.random.*`` global
    functions are forbidden: randomness must come from an explicitly
    seeded ``numpy.random.default_rng`` (or ``Generator``) so runs are
    reproducible and campaign cache keys stay honest.

``float-energy-accumulation``
    ``joules += watts * dt``-style running sums over sample streams are
    forbidden: the pipeline's counters and the tiered store keep
    *cumulative-joule knots* precisely so energy is differenced, not
    re-integrated sample by sample (where float accumulation drifts and
    dropped ticks silently lose energy).

``unguarded-wrap-subtraction``
    Direct subtraction of raw wrapping-register reads (``energy_uj`` /
    ``*raw*_uj`` values) outside :meth:`RaplPackage.unwrap` is
    forbidden: a wrapped counter difference must go through the
    wrap-aware helper or it undercounts by whole register ranges.

Legitimate exceptions are annotated in-line::

    something()  # audit-lint: allow[wallclock] host-overhead timing

The suppression names the rule it waives, so a blanket comment cannot
hide an unrelated regression on the same line.

Run as a module (the CI job and ``make audit`` do)::

    python -m repro.audit.lint src/repro
"""

from __future__ import annotations

import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path

#: The rule names, in report order.
RULES = (
    "wallclock",
    "raw-random",
    "float-energy-accumulation",
    "unguarded-wrap-subtraction",
)

_WALLCLOCK_CALLS = {
    ("time", "time"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "process_time"),
    ("time", "process_time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("date", "today"),
}

#: Explicitly-seeded numpy entry points that remain allowed.
_NP_RANDOM_ALLOWED = {"default_rng", "Generator", "SeedSequence", "PCG64"}

_ALLOW_RE = re.compile(r"#\s*audit-lint:\s*allow\[([a-z-]+)\]")

_RAW_UJ_RE = re.compile(r"(^|[._])raw\w*_uj|energy_uj", re.IGNORECASE)

_ENERGY_NAME_RE = re.compile(r"joule|energy", re.IGNORECASE)
_WATT_NAME_RE = re.compile(r"watt|power", re.IGNORECASE)


@dataclass(frozen=True)
class LintFinding:
    """One lint violation."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _names_in(node: ast.AST) -> list[str]:
    out = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            out.append(sub.id)
        elif isinstance(sub, ast.Attribute):
            out.append(sub.attr)
    return out


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, source_lines: list[str]) -> None:
        self.path = path
        self.lines = source_lines
        self.findings: list[LintFinding] = []
        self._function_stack: list[str] = []

    # -- helpers --------------------------------------------------------------

    def _allowed(self, lineno: int, rule: str) -> bool:
        if 1 <= lineno <= len(self.lines):
            for match in _ALLOW_RE.finditer(self.lines[lineno - 1]):
                if match.group(1) == rule:
                    return True
        return False

    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        lineno = getattr(node, "lineno", 1)
        if not self._allowed(lineno, rule):
            self.findings.append(
                LintFinding(self.path, lineno, rule, message)
            )

    # -- rule: wallclock / raw-random ----------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None:
            parts = dotted.split(".")
            if len(parts) >= 2 and (parts[-2], parts[-1]) in _WALLCLOCK_CALLS:
                self._emit(
                    node,
                    "wallclock",
                    f"wall-clock call {dotted}(): simulated code must "
                    "read the shared VirtualClock",
                )
            if "random" in parts[:-1]:
                fn = parts[-1]
                after_random = parts[parts.index("random") + 1 :]
                if (
                    fn not in _NP_RANDOM_ALLOWED
                    and not set(after_random[:-1]) & _NP_RANDOM_ALLOWED
                ):
                    self._emit(
                        node,
                        "raw-random",
                        f"unseeded random call {dotted}(): use an "
                        "explicitly seeded numpy default_rng",
                    )
        self.generic_visit(node)

    # -- rule: float-energy-accumulation --------------------------------------

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.op, ast.Add):
            target_names = _names_in(node.target)
            if any(_ENERGY_NAME_RE.search(n) for n in target_names):
                has_power_product = any(
                    isinstance(sub, ast.BinOp)
                    and isinstance(sub.op, ast.Mult)
                    and any(
                        _WATT_NAME_RE.search(n) for n in _names_in(sub)
                    )
                    for sub in ast.walk(node.value)
                )
                if has_power_product:
                    self._emit(
                        node,
                        "float-energy-accumulation",
                        "running float sum of power x time over a sample "
                        "stream: difference cumulative-joule counters/"
                        "knots instead",
                    )
        self.generic_visit(node)

    # -- rule: unguarded-wrap-subtraction --------------------------------------

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.Sub) and "unwrap" not in self._function_stack:
            for side in (node.left, node.right):
                rendered = ast.unparse(side)
                if _RAW_UJ_RE.search(rendered):
                    self._emit(
                        node,
                        "unguarded-wrap-subtraction",
                        f"raw wrapping-register value {rendered!r} "
                        "differenced directly: go through "
                        "RaplPackage.unwrap",
                    )
                    break
        self.generic_visit(node)

    # -- function-context tracking ---------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()


def lint_source(source: str, path: str = "<string>") -> list[LintFinding]:
    """Lint one module's source text."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            LintFinding(
                path, exc.lineno or 1, "wallclock", f"unparseable: {exc.msg}"
            )
        ]
    visitor = _Visitor(path, source.splitlines())
    visitor.visit(tree)
    return sorted(visitor.findings, key=lambda f: (f.path, f.line, f.rule))


def lint_paths(paths: list[str | Path]) -> list[LintFinding]:
    """Lint files and/or directory trees of ``*.py`` files."""
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    findings: list[LintFinding] = []
    for f in files:
        findings.extend(lint_source(f.read_text(), str(f)))
    return findings


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        args = ["src/repro"]
    findings = lint_paths(args)
    for finding in findings:
        print(finding.render())
    print(
        f"audit-lint: {len(findings)} finding(s) over "
        f"{len(args)} path(s)"
    )
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
