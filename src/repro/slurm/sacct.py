"""``sacct``-style reporting.

The paper notes that ``sacct`` is how users access the accounting data at
the end of a job; we render the same fields (JobID, JobName, NNodes,
Elapsed, ConsumedEnergy) with Slurm's energy suffix convention
(``24.40M`` = 24.4 megajoules).
"""

from __future__ import annotations

from repro.slurm.job import JobAccounting

def format_consumed_energy(joules: float) -> str:
    """Render energy the way sacct does (K/M/G suffixes, 2 decimals)."""
    for factor, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "K")):
        if abs(joules) >= factor:
            return f"{joules / factor:.2f}{suffix}"
    return f"{joules:.0f}"


def _format_elapsed(seconds: float) -> str:
    whole = int(seconds)
    hours, rem = divmod(whole, 3600)
    minutes, secs = divmod(rem, 60)
    return f"{hours:02d}:{minutes:02d}:{secs:02d}"


def sacct_report(jobs: list[JobAccounting]) -> str:
    """A multi-job sacct table."""
    header = (
        f"{'JobID':>10} {'JobName':>24} {'NNodes':>7} "
        f"{'Elapsed':>10} {'ConsumedEnergy':>15}"
    )
    rows = [header, "-" * len(header)]
    for job in jobs:
        rows.append(
            f"{job.job_id:>10} {job.name[:24]:>24} {job.num_nodes:>7} "
            f"{_format_elapsed(job.elapsed):>10} "
            f"{format_consumed_energy(job.consumed_energy_joules):>15}"
        )
    return "\n".join(rows)
