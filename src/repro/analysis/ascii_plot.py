"""Terminal-rendered charts for the reproduced figures.

Pure-text plotting so the CLI and the benchmark artifacts can show the
figure *shapes* without any plotting dependency: grouped horizontal bars
for breakdowns (Figures 2/3) and multi-series line charts for the
validation and EDP curves (Figures 1/4/5).
"""

from __future__ import annotations

from repro.errors import AnalysisError

#: Characters used to distinguish overlapping series in line charts.
SERIES_MARKS = "ox+*#@%&"

#: Eight-level block ramp for sparklines (low to high).
SPARK_LEVELS = "▁▂▃▄▅▆▇█"

def sparkline(
    values: list[float],
    lo: float | None = None,
    hi: float | None = None,
) -> str:
    """One-line block-character rendering of a value sequence.

    ``lo``/``hi`` pin the scale (so successive frames of a live view don't
    re-normalize); they default to the data's own range.  A flat series
    renders at the lowest level.
    """
    if not values:
        raise AnalysisError("sparkline needs at least one value")
    v_lo = lo if lo is not None else min(values)
    v_hi = hi if hi is not None else max(values)
    span = v_hi - v_lo
    if span <= 0:
        return SPARK_LEVELS[0] * len(values)
    top = len(SPARK_LEVELS) - 1
    chars = []
    for v in values:
        frac = (v - v_lo) / span
        level = int(round(frac * top))
        chars.append(SPARK_LEVELS[min(max(level, 0), top)])
    return "".join(chars)


def bar_chart(
    items: list[tuple[str, float]],
    width: int = 48,
    unit: str = "",
    reference: float | None = None,
) -> str:
    """Horizontal bars scaled to the maximum (or ``reference``) value."""
    if not items:
        raise AnalysisError("bar chart needs at least one item")
    top = reference if reference is not None else max(v for _, v in items)
    if top <= 0:
        raise AnalysisError("bar chart needs a positive scale")
    label_width = max(len(name) for name, _ in items)
    lines = []
    for name, value in items:
        filled = int(round(width * max(value, 0.0) / top))
        filled = min(filled, width)
        bar = "#" * filled
        lines.append(f"{name:>{label_width}} |{bar:<{width}} {value:g}{unit}")
    return "\n".join(lines)


def line_chart(
    series: dict[str, dict[float, float]],
    height: int = 12,
    width: int = 60,
    y_label: str = "",
) -> str:
    """Multi-series scatter/line chart on a character grid.

    ``series`` maps a series name to its ``{x: y}`` points.  All series
    share the axes; each gets a mark character, listed in the legend.
    """
    if not series:
        raise AnalysisError("line chart needs at least one series")
    xs = sorted({x for points in series.values() for x in points})
    ys = [y for points in series.values() for y in points.values()]
    if not xs or not ys:
        raise AnalysisError("line chart needs data points")
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if y_max == y_min:
        y_max = y_min + 1.0
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, points) in enumerate(series.items()):
        mark = SERIES_MARKS[idx % len(SERIES_MARKS)]
        for x, y in points.items():
            col = int(round((x - x_min) / (x_max - x_min) * (width - 1)))
            row = int(round((y - y_min) / (y_max - y_min) * (height - 1)))
            grid[height - 1 - row][col] = mark

    lines = []
    for k, row in enumerate(grid):
        if k == 0:
            axis = f"{y_max:8.3g} "
        elif k == height - 1:
            axis = f"{y_min:8.3g} "
        else:
            axis = " " * 9
        lines.append(axis + "|" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        " " * 10
        + f"{x_min:<.6g}"
        + " " * max(1, width - len(f"{x_min:<.6g}") - len(f"{x_max:.6g}"))
        + f"{x_max:.6g}"
    )
    legend = "  ".join(
        f"{SERIES_MARKS[idx % len(SERIES_MARKS)]}={name}"
        for idx, name in enumerate(series)
    )
    lines.append(f"{y_label}  [{legend}]")
    return "\n".join(lines)


def share_bars(shares: dict[str, float], width: int = 40) -> str:
    """Bars for a fraction dictionary (device shares), in percent."""
    items = [(name, 100.0 * value) for name, value in shares.items()]
    return bar_chart(items, width=width, unit="%", reference=100.0)
