"""SPH-EXA-style smoothed particle hydrodynamics framework.

This package is the application substrate of the reproduction: a genuine
(small-N, NumPy-vectorized) SPH solver with the same functional structure
as SPH-EXA — the function names of Figures 3 and 5 are the hook regions of
the time-stepping loop here:

``DomainDecompAndSync``, ``FindNeighbors``, ``Density``,
``EquationOfState``, ``IADVelocityDivCurl``, ``MomentumEnergy``,
``Gravity`` (Evrard), ``TurbulenceDriving`` (turbulence), ``Timestep``,
``UpdateQuantities``, ``UpdateSmoothingLength``, ``EnergyConservation``.

The solver is real physics (cubic-spline kernels, IAD gradients, Monaghan
artificial viscosity, Barnes-Hut gravity over a cornerstone-style octree,
Ornstein-Uhlenbeck turbulence driving); the *paper-scale* runs use
:mod:`repro.sph.perfmodel` to map the same function sequence onto the
simulated GPUs at billions of particles.
"""

from repro.sph.particles import ParticleSet
from repro.sph.box import Box
from repro.sph.hooks import ProfilingHooks
from repro.sph.simulation import Simulation

__all__ = ["ParticleSet", "Box", "ProfilingHooks", "Simulation"]
