"""Live run observability: rolling per-node power sparklines.

Renders the collector's retained timeline as a compact text frame — one
sparkline per node over the newest power samples, the current power and
energy readings, per-channel quality flags, and the function-region
annotation of the node's ranks.  ``python -m repro watch`` re-renders a
frame every N sampler ticks, so a long run can be watched as it executes
(in simulated time, ticks arrive exactly as a wall-clock watcher would
see them).
"""

from __future__ import annotations

from typing import Callable

from repro.analysis.ascii_plot import sparkline
from repro.timeseries.collect import TimeseriesCollector


class LiveView:
    """Rolling text dashboard over one collector.

    Parameters
    ----------
    collector:
        The collector being watched.
    width:
        Sparkline width in characters (newest samples shown).
    rank_of_node:
        Optional ``{node_index: [ranks...]}`` used for the current-region
        annotation; without it the view annotates from span data alone.
    """

    def __init__(
        self,
        collector: TimeseriesCollector,
        width: int = 48,
        rank_of_node: dict[int, list[int]] | None = None,
    ) -> None:
        self.collector = collector
        self.width = int(width)
        self.rank_of_node = rank_of_node or {}

    def _node_annotation(self, node: int) -> str:
        spans = self.collector.spans
        ranks = self.rank_of_node.get(node)
        if ranks is None:
            ranks = sorted(
                {s.rank for s in spans.spans if s.node_index == node}
            )
        for rank in ranks:
            note = spans.current_annotation(rank)
            if note:
                return note
        return "-"

    def render(self) -> str:
        """One frame of the dashboard."""
        store = self.collector.store
        nodes = self.collector.nodes()
        if not nodes:
            return "(no samples yet)"
        lines: list[str] = []
        latest_t = 0.0
        rows: list[tuple[int, str, list[float], float, float, str]] = []
        # Shared power scale across nodes so sparklines are comparable.
        p_lo, p_hi = float("inf"), 0.0
        for node in nodes:
            key = self.collector.node_power_channel(node)
            if key is None:
                continue
            series = store.channel(*key)
            pts = series.points()
            watts = [float(w) for w in pts["watts"][-self.width:]]
            t, w_now, joules, quality = series.latest
            latest_t = max(latest_t, t)
            p_lo = min(p_lo, min(watts))
            p_hi = max(p_hi, max(watts))
            rows.append((node, key[1], watts, w_now, joules, quality))
        lines.append(
            f"t={latest_t:.1f}s  "
            f"samples={store.num_samples}  "
            f"channels={len(store)}  "
            f"spans={len(self.collector.spans)}"
        )
        for node, channel, watts, w_now, joules, quality in rows:
            spark = sparkline(watts, lo=p_lo, hi=p_hi)
            flag = "" if quality == "ok" else f" [{quality}]"
            note = self._node_annotation(node)
            lines.append(
                f"node{node:<2} {channel:>6} |{spark:<{self.width}}| "
                f"{w_now:8.1f} W {joules / 1e6:9.3f} MJ{flag}  {note}"
            )
        return "\n".join(lines)


def attach_live_printer(
    collector: TimeseriesCollector,
    every_ticks: int = 50,
    width: int = 48,
    rank_of_node: dict[int, list[int]] | None = None,
    print_fn: Callable[[str], None] = print,
) -> LiveView:
    """Print a dashboard frame every ``every_ticks`` stored ticks.

    Hooks the collector's ``on_sample`` callback; frames are separated by
    a blank line (plain stdout, no terminal control sequences — safe under
    pipes and CI logs).
    """
    if every_ticks < 1:
        raise ValueError("every_ticks must be >= 1")
    view = LiveView(collector, width=width, rank_of_node=rank_of_node)
    counter = {"ticks": 0}

    def _on_sample(node_index: int, tick) -> None:
        counter["ticks"] += 1
        if counter["ticks"] % every_ticks == 0:
            print_fn(view.render())
            print_fn("")

    collector.on_sample = _on_sample
    return view
