"""Power-profile analysis over PMT sampler dumps.

The toolkit's background sampler (:class:`repro.pmt.PmtSampler`) produces
``timestamp joules watts`` rows; this module turns them into the views a
user wants after a run: summary statistics, energy cross-checks (counter
difference vs power integration), and a terminal timeline chart showing
the step structure (compute plateaus, communication dips).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.ascii_plot import line_chart
from repro.errors import AnalysisError
from repro.pmt.sampler import SampleRow


@dataclass(frozen=True)
class ProfileStats:
    """Summary of one power profile."""

    duration_s: float
    mean_watts: float
    max_watts: float
    min_watts: float
    #: Energy from the counter difference (first to last row).
    counter_joules: float
    #: Energy from trapezoidal integration of the sampled power.
    integrated_joules: float

    @property
    def integration_error(self) -> float:
        """Relative disagreement between the two energy estimates."""
        if self.counter_joules <= 0:
            raise AnalysisError("counter energy must be positive")
        return abs(self.integrated_joules - self.counter_joules) / self.counter_joules


def profile_stats(rows: list[SampleRow]) -> ProfileStats:
    """Compute summary statistics of a sampler dump."""
    if len(rows) < 2:
        raise AnalysisError("a power profile needs at least two samples")
    times = np.array([r.timestamp for r in rows])
    watts = np.array([r.watts for r in rows])
    if np.any(np.diff(times) < 0):
        raise AnalysisError("sampler rows must be time-ordered")
    duration = float(times[-1] - times[0])
    if duration <= 0:
        raise AnalysisError("profile spans zero time")
    integrated = float(np.trapezoid(watts, times))
    return ProfileStats(
        duration_s=duration,
        mean_watts=float(watts.mean()),
        max_watts=float(watts.max()),
        min_watts=float(watts.min()),
        counter_joules=rows[-1].joules - rows[0].joules,
        integrated_joules=integrated,
    )


def power_timeline_chart(
    rows: list[SampleRow], height: int = 10, width: int = 70, label: str = "node"
) -> str:
    """Render the sampled power as a terminal timeline."""
    if len(rows) < 2:
        raise AnalysisError("a power timeline needs at least two samples")
    series = {label: {r.timestamp: r.watts for r in rows}}
    return line_chart(series, height=height, width=width, y_label="watts vs seconds")
