"""One-stop experiment runner: cluster + Slurm + instrumented scaled run.

Assembles the full stack for one job — simulated cluster of the requested
size, per-node telemetry, rank placement, Slurm controller with energy
accounting, PMT profiler, performance model — runs the instrumented
application inside the Slurm job lifecycle, and returns both views of the
energy (Slurm accounting and PMT measurements).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig, TestCaseConfig
from repro.hardware.cluster import Cluster
from repro.hardware.clock import VirtualClock
from repro.instrumentation.profiler import EnergyProfiler
from repro.instrumentation.records import RunMeasurements
from repro.mpi.costmodel import CommCostModel
from repro.mpi.engine import SpmdEngine
from repro.mpi.mapping import RankPlacement
from repro.sensors.telemetry import NodeTelemetry
from repro.slurm.job import JobAccounting, JobDescriptor
from repro.slurm.scheduler import SlurmController
from repro.sph.perfmodel import SphPerformanceModel
from repro.sph.propagator import GRAVITY_FUNCTIONS, TURBULENCE_FUNCTIONS
from repro.sph.scaled import ScaledSphApplication
from repro.units import mhz


@dataclass(frozen=True)
class ExperimentResult:
    """Everything one experiment produced."""

    system: SystemConfig
    test_case: TestCaseConfig
    num_cards: int
    gpu_freq_mhz: float
    accounting: JobAccounting
    run: RunMeasurements
    #: Per-node PMT samplers (power profiles), when sampling was requested.
    power_samplers: tuple = ()
    #: Retained telemetry timeline (``timeseries=True`` / collector given).
    timeseries: object | None = None
    #: :class:`~repro.audit.findings.AuditReport` when auditing was on.
    audit: object | None = None
    #: :class:`~repro.tuning.governor.GovernorReport` for governed runs.
    governor: object | None = None


def functions_for(test_case: TestCaseConfig) -> tuple[str, ...]:
    """The propagator function sequence of a test case."""
    if test_case.has_gravity:
        return GRAVITY_FUNCTIONS
    if test_case.has_driving:
        return TURBULENCE_FUNCTIONS
    from repro.sph.propagator import HYDRO_FUNCTIONS

    return HYDRO_FUNCTIONS


def _node_meter(telemetry, resilient: bool = True):
    """A whole-node PMT meter: cray where available, else a composite of
    the NVML devices plus the RAPL package.

    With ``resilient`` (the default), every leaf meter is wrapped in the
    degradation-ladder backend so the composite sums extrapolated child
    values instead of aborting when one sensor fails mid-run; the
    composite's own per-child isolation remains the backstop for children
    that fail before their first good read.
    """
    import repro.pmt as pmt
    from repro.sensors.resilient import GLITCH_MARGIN

    spec = telemetry.node.spec
    if telemetry.pm_counters is not None:
        meter = pmt.create("cray", telemetry=telemetry)
        if resilient:
            meter = pmt.create(
                "resilient",
                inner=meter,
                label="cray",
                plausible_max_watts=GLITCH_MARGIN * spec.peak_watts,
            )
        return meter
    card_bound = GLITCH_MARGIN * spec.card_peak_watts
    children = {
        f"gpu{i}": pmt.create("nvml", telemetry=telemetry, device_index=i)
        for i in range(len(telemetry.nvml))
    }
    children["cpu"] = pmt.create("rapl", telemetry=telemetry)
    if resilient:
        # The RAPL child gets no glitch bound: its watts are derived by
        # differencing energy reads and legitimately alias above any
        # physical ceiling at sub-refresh read spacing.
        bounds: dict[str, float | None] = {name: card_bound for name in children}
        bounds["cpu"] = None
        children = {
            name: pmt.create(
                "resilient",
                inner=child,
                label=name,
                plausible_max_watts=bounds[name],
            )
            for name, child in children.items()
        }
    return pmt.create("composite", meters=children)


def run_scaled_experiment(
    system: SystemConfig,
    test_case: TestCaseConfig,
    num_cards: int,
    gpu_freq_mhz: float | None = None,
    num_steps: int | None = None,
    particles_per_rank: float | None = None,
    seed: int = 0,
    privileged_dvfs: bool = False,
    power_sample_interval_s: float | None = None,
    resilient: bool = True,
    inject_fault: str | None = None,
    fault_target: str = "gpu0",
    fault_node: int = 0,
    fault_kwargs: dict | None = None,
    timeseries: bool = False,
    collector=None,
    audit: bool | str | None = None,
    governor=None,
) -> ExperimentResult:
    """Run one paper-scale instrumented job.

    ``gpu_freq_mhz`` requests a frequency change before the run; on
    systems whose GPU frequency is not user controllable this raises
    (as on the real LUMI-G / CSCS-A100) unless ``privileged_dvfs`` is set.

    ``resilient`` (default) runs the measurement pipeline through the
    fault-tolerant layer; ``inject_fault`` breaks one sensor
    (``freeze``/``dropout``/``glitch``, see :mod:`repro.sensors.inject`)
    of node ``fault_node`` at ``fault_target`` before the job starts —
    the fault-injection ablation measures the attribution error this
    causes under the resilient layer.  ``fault_kwargs`` forwards timing
    parameters (``freeze_at``, ``outage_start``/``outage_end``,
    ``probability``/``magnitude_watts``/``seed``) to the fault wrapper,
    e.g. to place the fault inside the instrumented window.

    ``timeseries`` (or an explicit
    :class:`~repro.timeseries.collect.TimeseriesCollector` via
    ``collector``) retains the full telemetry timeline: one per-node
    sampler streams every tick into the collector's store, and the
    profiler's region marks are recorded as spans.  The collector's
    samplers own *separate* meter and telemetry-counter instances (same
    ground-truth traces and noise seeds), so measured per-region energies
    are bit-identical with the collector on or off.  The sampling
    period defaults to ``power_sample_interval_s`` (or 1 s when unset).

    ``audit`` attaches an :class:`~repro.audit.hooks.EnergyAuditor` to
    the whole stack: ``True``/``"record"`` records invariant violations
    into ``ExperimentResult.audit``, ``"strict"`` raises
    :class:`~repro.errors.AuditError` on the first error-severity
    finding, ``None`` (default) defers to the ``REPRO_AUDIT``
    environment variable, ``False`` forces auditing off.  The auditor
    only observes values the pipeline already read, so audited energies
    are bit-identical to unaudited ones.

    ``governor`` runs the job under the online DVFS governor: a policy
    name (``min-energy``/``min-edp``/``power-cap``, resolved with the
    system defaults) or a full
    :class:`~repro.tuning.governor.GovernorConfig`.  The governor taps
    the profiler's region completions and the per-node sampler tick
    stream, and re-clocks through the dynamic-DVFS application with
    site privileges (it models a system-operated runtime service — the
    one entity that owns the clocks on LUMI-G/CSCS-A100).  The outcome
    lands in ``ExperimentResult.governor``.
    """
    from repro.audit.hooks import AuditSettings, EnergyAuditor

    audit_settings = AuditSettings.resolve(audit)
    auditor = (
        EnergyAuditor(system=system, strict=audit_settings.strict)
        if audit_settings.enabled
        else None
    )
    governor_obj = None
    if governor is not None:
        from repro.tuning.governor import EnergyAwareGovernor, GovernorConfig

        gov_config = (
            GovernorConfig.for_system(governor, system, seed=seed)
            if isinstance(governor, str)
            else governor
        )
        governor_obj = EnergyAwareGovernor(
            gov_config,
            system.node_spec.gpu.supported_freqs_hz,
            nominal_mhz=(
                gpu_freq_mhz
                if gpu_freq_mhz is not None
                else system.node_spec.gpu.nominal_freq_hz / 1e6
            ),
        )
    num_nodes = system.nodes_for_cards(num_cards)
    clock = VirtualClock()
    cluster = Cluster(
        system.name.lower(), clock, system.node_spec, num_nodes, system.network
    )
    if governor_obj is not None:
        # The governor owns the clocks (a site-level service): the run
        # starts at its preferred clock, privileged like its switches.
        cluster.set_gpu_frequency(mhz(governor_obj.default_mhz), privileged=True)
    elif gpu_freq_mhz is not None:
        cluster.set_gpu_frequency(mhz(gpu_freq_mhz), privileged=privileged_dvfs)

    telemetries = [
        NodeTelemetry(node, system, clock, seed=seed + i)
        for i, node in enumerate(cluster.nodes)
    ]
    if inject_fault is not None:
        from repro.sensors.inject import inject_fault as install_fault

        install_fault(
            telemetries[fault_node],
            inject_fault,
            fault_target,
            **(fault_kwargs or {}),
        )
    placement = RankPlacement(cluster)
    engine = SpmdEngine(placement)
    cost_model = CommCostModel(system.network, placement)

    n_per_rank = (
        particles_per_rank
        if particles_per_rank is not None
        else test_case.particles_per_gpu
    )
    steps = num_steps if num_steps is not None else test_case.num_steps

    perfmodel = SphPerformanceModel(cost_model, n_per_rank, seed=seed)
    profiler = EnergyProfiler(placement, telemetries, system, resilient=resilient)
    if timeseries or collector is not None:
        if collector is None:
            from repro.timeseries import TimeseriesCollector

            collector = TimeseriesCollector()
        profiler.span_recorder = collector.spans
    profiler.auditor = auditor
    if governor_obj is not None:
        from repro.tuning.dynamic import DynamicDvfsApplication

        profiler.region_listener = governor_obj.observe_region
        app: ScaledSphApplication = DynamicDvfsApplication(
            engine=engine,
            profiler=profiler,
            perfmodel=perfmodel,
            functions=functions_for(test_case),
            num_steps=steps,
            test_case_name=test_case.name,
            policy=governor_obj,
            privileged=True,
        )
    else:
        app = ScaledSphApplication(
            engine=engine,
            profiler=profiler,
            perfmodel=perfmodel,
            functions=functions_for(test_case),
            num_steps=steps,
            test_case_name=test_case.name,
        )

    samplers = ()
    if (
        power_sample_interval_s is not None
        or collector is not None
        or governor_obj is not None
    ):
        from repro.pmt.sampler import PmtSampler

        interval = (
            power_sample_interval_s if power_sample_interval_s is not None else 1.0
        )
        sampled_telemetries = telemetries
        if collector is not None or governor_obj is not None:
            # The collector's samplers read *replica* telemetry: separate
            # counter instances over the same ground-truth traces and noise
            # seeds.  Sensor counters extend their cached integral lazily at
            # read time, so an extra observer on the shared instances would
            # re-chunk that accumulation and shift profiler readings in the
            # last bit; replicas keep measured per-region energies
            # bit-identical with the collector on or off.
            sampled_telemetries = [
                NodeTelemetry(node, system, clock, seed=seed + i)
                for i, node in enumerate(cluster.nodes)
            ]
            if inject_fault is not None:
                install_fault(
                    sampled_telemetries[fault_node],
                    inject_fault,
                    fault_target,
                    **(fault_kwargs or {}),
                )
        samplers = tuple(
            PmtSampler(
                _node_meter(tel, resilient=resilient),
                interval_s=interval,
            )
            for tel in sampled_telemetries
        )
        if collector is not None:
            for node_index, sampler in enumerate(samplers):
                collector.attach(node_index, sampler)
        if governor_obj is not None:
            from functools import partial

            for node_index, sampler in enumerate(samplers):
                sampler.add_listener(
                    partial(governor_obj.on_tick, node_index)
                )
        if auditor is not None:
            for node_index, sampler in enumerate(samplers):
                auditor.watch_sampler(node_index, sampler)
        for sampler in samplers:
            sampler.start()

    controller = SlurmController(engine, telemetries, system)
    job = JobDescriptor(
        name=f"{test_case.name.replace(' ', '-').lower()}-{num_cards}c",
        num_nodes=num_nodes,
        particles_per_rank=n_per_rank,
    )
    accounting = controller.run_job(job, app.run)
    run: RunMeasurements = accounting.app_result

    for sampler in samplers:
        sampler.stop()

    audit_report = None
    if auditor is not None:
        auditor.audit_run(run)
        auditor.audit_accounting(run, accounting)
        if collector is not None:
            auditor.audit_store(collector.store)
        audit_report = auditor.report()

    governor_report = None
    if governor_obj is not None:
        governor_report = governor_obj.report(switches=app.switch_count)

    return ExperimentResult(
        system=system,
        test_case=test_case,
        num_cards=num_cards,
        gpu_freq_mhz=run.gpu_freq_mhz,
        accounting=accounting,
        run=run,
        power_samplers=samplers,
        timeseries=collector,
        audit=audit_report,
        governor=governor_report,
    )
