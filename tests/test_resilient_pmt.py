"""Fault × backend matrix: every failure mode from :mod:`repro.sensors.faults`
against every PMT backend behind the resilient layer.

Each test builds two identical single-node stacks on one shared clock — a
clean one and a sabotaged one — drives the same load on both, and checks
that the resilient meter (a) never raises — not even when an outage covers
the very first read (it bottoms out at a zero-baseline state),
(b) keeps the reported energy within the documented bound of the clean
meter, and (c) accounts for every mitigation in its health record.
"""

import pytest

import repro.pmt as pmt
from repro.config import CSCS_A100, LUMI_G
from repro.errors import SensorError
from repro.hardware import Node, VirtualClock
from repro.sensors import NodeTelemetry
from repro.sensors.inject import inject_fault
from repro.sensors.resilient import GLITCH_MARGIN


def _pair(system):
    """Two identical nodes + telemetries sharing one clock."""
    clock = VirtualClock()
    clean = Node("clean", clock, system.node_spec)
    fault = Node("fault", clock, system.node_spec)
    return (
        clock,
        (clean, NodeTelemetry(clean, system, clock)),
        (fault, NodeTelemetry(fault, system, clock)),
    )


def _load(node):
    for gpu in node.gpus:
        gpu.set_load(0.8, 0.6)
    node.cpu.set_load(0.7, 0.5)


def _drive(clock, meters, steps=60, dt=0.5):
    """Advance in lockstep, reading every meter each step; return the last
    state of each meter."""
    last = None
    for _ in range(steps):
        clock.advance(dt)
        last = [m.read() for m in meters]
    return last


def _resilient(backend, tel, *, label, bound, **kwargs):
    inner = pmt.create(backend, telemetry=tel, **kwargs)
    return pmt.create(
        "resilient", inner=inner, label=label, plausible_max_watts=bound
    )


class TestNvmlResilient:
    """NVML (CSCS-A100): counter-difference energy path."""

    def test_freeze_detected_and_extrapolated(self):
        clock, (cn, ct), (fn, ft) = _pair(CSCS_A100)
        inject_fault(ft, "freeze", "gpu0", freeze_at=10.0)
        spec = CSCS_A100.node_spec
        bound = GLITCH_MARGIN * spec.card_peak_watts
        clean = pmt.create("nvml", telemetry=ct, device_index=0)
        res = _resilient("nvml", ft, label="gpu0", bound=bound, device_index=0)
        _load(cn)
        _load(fn)
        (s_clean, s_fault) = _drive(clock, [clean, res])
        assert res.health.stuck_detections == 1
        assert res.health.degraded
        # Constant load: extrapolation from the freeze point is near exact.
        assert s_fault.joules == pytest.approx(s_clean.joules, rel=0.02)
        assert s_fault.primary.quality == "extrapolated"

    def test_dropout_interpolated(self):
        clock, (cn, ct), (fn, ft) = _pair(CSCS_A100)
        inject_fault(ft, "dropout", "gpu0", outage_start=10.0, outage_end=20.0)
        clean = pmt.create("nvml", telemetry=ct, device_index=0)
        res = _resilient("nvml", ft, label="gpu0", bound=None, device_index=0)
        _load(cn)
        _load(fn)
        (s_clean, s_fault) = _drive(clock, [clean, res])
        # 20 reads in [10, 20) at 0.5 s spacing, each retried to exhaustion.
        assert res.health.gaps_interpolated == 20
        assert res.health.retries == 20 * res.max_retries
        assert res.health.gap_seconds == pytest.approx(10.0)
        assert res.health.degraded
        # The counter resumes at the true value, so the final read recovers.
        assert s_fault.joules == pytest.approx(s_clean.joules, rel=0.01)

    def test_glitch_rejected_energy_untouched(self):
        clock, (cn, ct), (fn, ft) = _pair(CSCS_A100)
        inject_fault(
            ft, "glitch", "gpu0", probability=1.0, magnitude_watts=50_000.0
        )
        spec = CSCS_A100.node_spec
        bound = GLITCH_MARGIN * spec.card_peak_watts
        clean = pmt.create("nvml", telemetry=ct, device_index=0)
        res = _resilient("nvml", ft, label="gpu0", bound=bound, device_index=0)
        _load(cn)
        _load(fn)
        (s_clean, s_fault) = _drive(clock, [clean, res])
        assert res.health.glitches_rejected == res.health.reads
        # Glitches live in the power register only; energy is exact.
        assert s_fault.joules == s_clean.joules
        assert s_fault.watts <= bound
        # Glitch rejection alone does not degrade the meter.
        assert res.health.status == "ok"


class TestRaplResilient:
    """RAPL (CSCS-A100): unwrapped-register energy, derived watts."""

    def test_freeze_detected_and_extrapolated(self):
        clock, (cn, ct), (fn, ft) = _pair(CSCS_A100)
        inject_fault(ft, "freeze", "cpu", freeze_at=10.0)
        clean = pmt.create("rapl", telemetry=ct)
        res = _resilient("rapl", ft, label="cpu", bound=None)
        _load(cn)
        _load(fn)
        (s_clean, s_fault) = _drive(clock, [clean, res])
        assert res.health.stuck_detections == 1
        # Anchor watts are the last healthy derived power: near-exact
        # extrapolation under constant load.
        assert s_fault.joules == pytest.approx(s_clean.joules, rel=0.05)

    def test_dropout_interpolated_then_recovers(self):
        clock, (cn, ct), (fn, ft) = _pair(CSCS_A100)
        inject_fault(ft, "dropout", "cpu", outage_start=10.0, outage_end=20.0)
        clean = pmt.create("rapl", telemetry=ct)
        res = _resilient("rapl", ft, label="cpu", bound=None)
        _load(cn)
        _load(fn)
        (s_clean, s_fault) = _drive(clock, [clean, res])
        assert res.health.gaps_interpolated == 20
        assert res.health.degraded
        # The register kept counting through the outage; the first read
        # after recovery unwraps the whole 10.5 s interval (below the
        # max safe single-wrap bound), so the total is exact again.
        assert res.inner.suspect_intervals == 0
        assert s_fault.joules == pytest.approx(s_clean.joules, rel=0.01)

    def test_glitch_cannot_corrupt_rapl(self):
        # RAPL has no power register: its watts are derived by differencing
        # energy reads, so a spiked counter power register never enters the
        # measurement — which is also why production wrappers give RAPL no
        # plausibility bound (derived watts legitimately alias high at
        # sub-refresh read spacing).
        clock, (cn, ct), (fn, ft) = _pair(CSCS_A100)
        inject_fault(
            ft, "glitch", "cpu", probability=1.0, magnitude_watts=50_000.0
        )
        clean = pmt.create("rapl", telemetry=ct)
        res = _resilient("rapl", ft, label="cpu", bound=None)
        _load(cn)
        _load(fn)
        (s_clean, s_fault) = _drive(clock, [clean, res])
        assert res.health.glitches_rejected == 0
        assert s_fault.joules == s_clean.joules
        assert s_fault.watts == s_clean.watts


class TestRocmResilient:
    """ROCm (LUMI-G): polling-integration energy path."""

    def test_glitch_clamped_before_integration(self):
        # The clamp must live inside RocmPMT: a glitched power reading
        # would otherwise be integrated into the energy accumulator before
        # any outer wrapper could reject it.
        clock, (cn, ct), (fn, ft) = _pair(LUMI_G)
        clean = pmt.create("rocm", telemetry=ct, device_index=0)
        faulty = pmt.create("rocm", telemetry=ft, device_index=0)
        _load(cn)
        _load(fn)
        clock.advance(0.5)
        clean.read(), faulty.read()  # seed last-good power pre-fault
        inject_fault(
            ft, "glitch", "rocm0", probability=0.3,
            magnitude_watts=100_000.0, seed=1,
        )
        (s_clean, s_fault) = _drive(clock, [clean, faulty])
        assert faulty.glitches_rejected > 0
        assert s_fault.joules == pytest.approx(s_clean.joules, rel=0.05)

    def test_freeze_is_bounded_under_steady_load(self):
        # A frozen power register is undetectable to the accumulator-based
        # stuck detector (the integral keeps growing), but the error stays
        # bounded by the power drift since the freeze — zero here.
        clock, (cn, ct), (fn, ft) = _pair(LUMI_G)
        inject_fault(ft, "freeze", "rocm0", freeze_at=10.0)
        clean = pmt.create("rocm", telemetry=ct, device_index=0)
        res = _resilient("rocm", ft, label="gpu0", bound=None, device_index=0)
        _load(cn)
        _load(fn)
        (s_clean, s_fault) = _drive(clock, [clean, res])
        assert s_fault.joules == pytest.approx(s_clean.joules, rel=0.05)

    def test_dropout_interpolated_then_bridged(self):
        clock, (cn, ct), (fn, ft) = _pair(LUMI_G)
        inject_fault(ft, "dropout", "rocm0", outage_start=10.0, outage_end=20.0)
        clean = pmt.create("rocm", telemetry=ct, device_index=0)
        res = _resilient("rocm", ft, label="gpu0", bound=None, device_index=0)
        _load(cn)
        _load(fn)
        (s_clean, s_fault) = _drive(clock, [clean, res])
        assert res.health.gaps_interpolated == 20
        assert res.health.degraded
        # After recovery the trapezoid spans the whole outage at constant
        # power, so the integral is bridged almost exactly.
        assert s_fault.joules == pytest.approx(s_clean.joules, rel=0.05)


class TestCrayResilient:
    """Cray pm_counters (LUMI-G): multi-measurement single meter."""

    def test_freeze_on_node_counter_isolated_per_measurement(self):
        clock, (cn, ct), (fn, ft) = _pair(LUMI_G)
        inject_fault(ft, "freeze", "node", freeze_at=10.0)
        spec = LUMI_G.node_spec
        bound = GLITCH_MARGIN * spec.peak_watts
        clean = pmt.create("cray", telemetry=ct)
        res = _resilient("cray", ft, label="cray", bound=bound)
        _load(cn)
        _load(fn)
        (s_clean, s_fault) = _drive(clock, [clean, res])
        # Only the node accumulator froze; stuck detection is per
        # measurement, so the accel counters stay pristine.
        assert res.health.stuck_detections == 1
        assert s_fault.joules_of("accel0") == s_clean.joules_of("accel0")
        assert s_fault.measurement("accel0").quality == "ok"
        assert s_fault.measurement("node").quality == "extrapolated"
        assert s_fault.joules_of("node") == pytest.approx(
            s_clean.joules_of("node"), rel=0.05
        )

    def test_dropout_on_accel_interpolates_whole_state(self):
        clock, (cn, ct), (fn, ft) = _pair(LUMI_G)
        inject_fault(ft, "dropout", "gpu0", outage_start=10.0, outage_end=20.0)
        clean = pmt.create("cray", telemetry=ct)
        res = _resilient("cray", ft, label="cray", bound=None)
        _load(cn)
        _load(fn)
        (s_clean, s_fault) = _drive(clock, [clean, res])
        # One meter serves all counters: a failing accel file takes the
        # whole read down, so every measurement is interpolated in-window.
        assert res.health.gaps_interpolated == 20
        assert res.health.degraded
        assert s_fault.joules == pytest.approx(s_clean.joules, rel=0.02)

    def test_glitch_on_node_power_rejected(self):
        clock, (cn, ct), (fn, ft) = _pair(LUMI_G)
        spec = LUMI_G.node_spec
        bound = GLITCH_MARGIN * spec.peak_watts
        inject_fault(
            ft, "glitch", "node", probability=1.0,
            magnitude_watts=10.0 * bound,
        )
        clean = pmt.create("cray", telemetry=ct)
        res = _resilient("cray", ft, label="cray", bound=bound)
        _load(cn)
        _load(fn)
        (s_clean, s_fault) = _drive(clock, [clean, res])
        assert res.health.glitches_rejected == res.health.reads
        assert s_fault.joules_of("node") == s_clean.joules_of("node")
        assert s_fault.watts_of("node") <= bound
        assert res.health.status == "ok"


class TestCompositeResilient:
    """Composite over resilient children (the production NVML/RAPL stack)."""

    @staticmethod
    def _meters(ct, ft, resilient=True):
        from repro.experiments.runner import _node_meter

        return _node_meter(ct, resilient=resilient), _node_meter(
            ft, resilient=resilient
        )

    def test_dropout_child_interpolated_not_degraded(self):
        clock, (cn, ct), (fn, ft) = _pair(CSCS_A100)
        inject_fault(ft, "dropout", "gpu0", outage_start=10.0, outage_end=20.0)
        clean, faulty = self._meters(ct, ft)
        _load(cn)
        _load(fn)
        for _ in range(30):  # into the outage window
            clock.advance(0.5)
            s_clean, s_fault = clean.read(), faulty.read()
        # The resilient child absorbed the outage, so the composite never
        # saw a failure: the child is interpolated, not excluded.
        assert s_fault.measurement("gpu0.gpu0").quality == "interpolated"
        assert faulty.degraded_children == ()
        for _ in range(30):
            clock.advance(0.5)
            s_clean, s_fault = clean.read(), faulty.read()
        assert s_fault.joules == pytest.approx(s_clean.joules, rel=0.01)

    def test_dropout_without_resilient_hits_composite_backstop(self):
        clock, (cn, ct), (fn, ft) = _pair(CSCS_A100)
        inject_fault(ft, "dropout", "gpu0", outage_start=10.0, outage_end=20.0)
        clean, faulty = self._meters(ct, ft, resilient=False)
        _load(cn)
        _load(fn)
        clock.advance(5.0)
        clean.read(), faulty.read()  # held state before the outage
        clock.advance(10.0)  # t = 15, inside the window
        s_fault = faulty.read()
        assert faulty.degraded_children == ("gpu0",)
        assert s_fault.measurement("gpu0.gpu0").quality == "degraded"
        assert s_fault.primary.quality == "degraded"
        # Held values are visible but excluded from the primary sum.
        s_clean = clean.read()
        assert s_fault.joules < s_clean.joules

    def test_freeze_child_extrapolated(self):
        clock, (cn, ct), (fn, ft) = _pair(CSCS_A100)
        inject_fault(ft, "freeze", "gpu0", freeze_at=10.0)
        clean, faulty = self._meters(ct, ft)
        _load(cn)
        _load(fn)
        (s_clean, s_fault) = _drive(clock, [clean, faulty])
        assert s_fault.measurement("gpu0.gpu0").quality == "extrapolated"
        assert s_fault.joules == pytest.approx(s_clean.joules, rel=0.02)

    def test_glitch_child_rejected(self):
        clock, (cn, ct), (fn, ft) = _pair(CSCS_A100)
        inject_fault(
            ft, "glitch", "gpu0", probability=1.0, magnitude_watts=50_000.0
        )
        clean, faulty = self._meters(ct, ft)
        _load(cn)
        _load(fn)
        (s_clean, s_fault) = _drive(clock, [clean, faulty])
        assert s_fault.measurement("gpu0.gpu0").quality == "rejected"
        assert s_fault.joules == s_clean.joules

    def test_failure_before_first_read_serves_zero_baseline(self):
        # An outage covering the very first read cannot crash the stack:
        # the resilient child serves a zero-power, zero-energy state in
        # its declared shape, so the composite keeps reading and the gap
        # stays on the child's books.
        clock, (cn, ct), (fn, ft) = _pair(CSCS_A100)
        inject_fault(ft, "dropout", "gpu0", outage_start=0.0, outage_end=1e9)
        _, faulty = self._meters(ct, ft)
        clock.advance(1.0)
        state = faulty.read()
        assert state.measurement("gpu0.gpu0").quality == "interpolated"
        assert state.joules_of("gpu0.gpu0") == 0.0
        assert faulty.degraded_children == ()
