"""RAPL PMT backend: CPU package energy via powercap sysfs.

RAPL registers wrap around (32-bit microjoule accumulators), so the backend
keeps an *unwrapped* running total: each ``read()`` diffs the raw register
against the previous raw value modulo ``max_energy_range_uj``.  Two raw
values can only witness one wraparound — at a 200 W package draw the
register wraps every ~21 s, so a longer read interval can silently lose a
whole wrap period.  The backend checks every interval against
:meth:`RaplPackage.max_safe_read_interval_s` (at the CPU's peak plausible
power) and flags violating reads ``suspect`` with a warning instead of
trusting them; ``suspect_intervals`` counts them for the health report.

RAPL has no power register; instantaneous watts are estimated from the
last two reads.
"""

from __future__ import annotations

import warnings

from repro.errors import BackendError, SensorError
from repro.pmt.base import PMT
from repro.pmt.registry import register_backend
from repro.pmt.state import Measurement, State
from repro.sensors.rapl import RAPL_DIR, RaplPackage
from repro.sensors.telemetry import NodeTelemetry


@register_backend("rapl")
class RaplPMT(PMT):
    """PMT over the RAPL package domain of the node's CPU."""

    def __init__(self, telemetry: NodeTelemetry, package_index: int = 0) -> None:
        if telemetry.rapl is None:
            raise BackendError(
                f"node {telemetry.node.name} exposes no RAPL domain"
            )
        super().__init__(telemetry.node.clock)
        self._sysfs = telemetry.sysfs
        self._base = f"{RAPL_DIR}/intel-rapl:{package_index}"
        if not self._sysfs.exists(f"{self._base}/energy_uj"):
            raise BackendError(f"no RAPL package {package_index} on this node")
        self._max_uj = int(self._sysfs.read(f"{self._base}/max_energy_range_uj"))
        # Worst-case package draw bounds the safe read interval; the spec's
        # peak is the tightest bound the platform can justify.
        self._max_watts = telemetry.node.cpu.spec.power_model.peak_watts_nominal
        self._last_raw_uj: int | None = None
        self._last_raw_t: float | None = None
        self._unwrapped_uj = 0
        self._last_read: tuple[float, int] | None = None  # (t, unwrapped_uj)
        #: Reads whose interval exceeded the max safe (single-wrap) bound.
        self.suspect_intervals = 0
        #: Reads that landed exactly on the wrap boundary (raw register
        #: unchanged over an interval long enough that it must have
        #: wrapped) — disambiguated from a stuck sensor and credited one
        #: full register range.
        self.wrap_boundary_landings = 0
        self._safe_interval_s = RaplPackage.max_safe_read_interval_s(
            self._max_watts
        )

    def _raw_uj(self) -> int:
        return int(self._sysfs.read(f"{self._base}/energy_uj"))

    def measurement_names(self) -> tuple[str, ...]:
        return ("package-0",)

    def read_state(self) -> State:
        t = self.clock.now
        raw = self._raw_uj()
        quality = "ok"
        if self._last_raw_uj is not None:
            elapsed = (
                t - self._last_raw_t if self._last_raw_t is not None else None
            )
            try:
                delta = RaplPackage.unwrap(
                    self._last_raw_uj,
                    raw,
                    elapsed_s=elapsed,
                    max_power_watts=self._max_watts,
                )
            except SensorError as exc:
                # Keep the run alive: unwrap without the interval check,
                # but mark the value suspect — it may undercount by one or
                # more full register ranges.
                self.suspect_intervals += 1
                quality = "suspect"
                warnings.warn(str(exc), stacklevel=2)
                delta = RaplPackage.unwrap(self._last_raw_uj, raw)
            if delta > 0 and raw == self._last_raw_uj:
                # Exact wrap-boundary landing: the register reproduced its
                # previous value but the interval proves it wrapped.  One
                # wrap was credited (the minimum consistent history); past
                # twice the safe interval more wraps are possible, so the
                # read joins the suspect (possibly-undercounting) class.
                self.wrap_boundary_landings += 1
                if elapsed is not None and elapsed > 2 * self._safe_interval_s:
                    self.suspect_intervals += 1
                    quality = "suspect"
            self._unwrapped_uj += delta
        self._last_raw_uj = raw
        self._last_raw_t = t

        watts = 0.0
        if self._last_read is not None:
            t_prev, uj_prev = self._last_read
            if t > t_prev:
                watts = (self._unwrapped_uj - uj_prev) * 1e-6 / (t - t_prev)
        self._last_read = (t, self._unwrapped_uj)

        return State(
            timestamp=t,
            measurements=(
                Measurement(
                    name="package-0",
                    joules=self._unwrapped_uj * 1e-6,
                    watts=watts,
                    quality=quality,
                ),
            ),
        )
