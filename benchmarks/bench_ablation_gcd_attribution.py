"""Ablation: per-rank GPU energy error from per-card sensors (MI250X).

Section 3.1 notes that "two GCDs on one GPU card still creates certain
measurement inaccuracies": the per-card counter cannot split energy
between its two ranks, so the analysis divides it evenly.  This ablation
quantifies the residual per-rank error against the simulator's ground
truth (per-GCD traces — information no real sensor provides) as a
function of the load imbalance between card-mates.
"""

import numpy as np
from conftest import write_result

from repro.config import LUMI_G
from repro.hardware import Cluster, VirtualClock
from repro.instrumentation import EnergyProfiler
from repro.mpi import RankPlacement, RankWork, SpmdEngine
from repro.sensors import NodeTelemetry

IMBALANCES = (0.0, 0.05, 0.15, 0.30)
STEPS = 40


def _run_with_imbalance(imbalance: float):
    clock = VirtualClock()
    cluster = Cluster("c", clock, LUMI_G.node_spec, 1, LUMI_G.network)
    telemetries = [NodeTelemetry(cluster.nodes[0], LUMI_G, clock)]
    placement = RankPlacement(cluster)
    engine = SpmdEngine(placement)
    profiler = EnergyProfiler(placement, telemetries, LUMI_G)
    rng = np.random.default_rng(3)

    profiler.start_app()
    truth = np.zeros(placement.size)
    for _ in range(STEPS):
        durations = 2.0 * (
            1.0 + imbalance * rng.uniform(-1.0, 1.0, size=placement.size)
        )
        works = [
            RankWork(duration=float(d), gpu_compute=0.9, gpu_memory=0.6)
            for d in durations
        ]
        starts = {r: clock.now for r in range(placement.size)}
        for r in range(placement.size):
            profiler.begin(r)
        t0 = clock.now
        result = engine.run_phase(works)
        for r in range(placement.size):
            # Close each rank's region at phase end (post-hoc; energies
            # were accumulated against per-rank end in the scaled app, but
            # for the ablation a shared end keeps the bookkeeping simple).
            profiler.end(r, "Kernel")
            truth[r] += placement.gpu_of(r).energy_between(
                t0, float(result.end_times[r])
            )
            # Ground truth also owns the idle tail until the barrier.
            truth[r] += placement.gpu_of(r).energy_between(
                float(result.end_times[r]), result.t_end
            )
    profiler.end_app()
    run = profiler.gather("ablation", STEPS, 1e6)

    errors = []
    for r in range(placement.size):
        raw = run.record(r, "Kernel").joules["gpu"]
        attributed = raw / run.gcds_per_card
        errors.append(abs(attributed - truth[r]) / truth[r])
    return float(np.mean(errors)), float(np.max(errors))


def bench_gcd_attribution_ablation(benchmark, results_dir):
    def sweep():
        return {imb: _run_with_imbalance(imb) for imb in IMBALANCES}

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Per-rank GPU energy error from even per-card attribution (LUMI-G)",
        f"{'imbalance':>10} {'mean err':>9} {'max err':>9}",
    ]
    for imb, (mean_err, max_err) in rows.items():
        lines.append(f"{imb:>10.2f} {mean_err:>9.2%} {max_err:>9.2%}")

    # Balanced card-mates attribute almost exactly; imbalance hurts.
    assert rows[0.0][0] < 0.02
    assert rows[0.30][1] > rows[0.0][1]
    assert rows[0.30][1] > 0.02

    lines.append("")
    lines.append(
        "Conclusion: even split per card is exact for balanced SPMD ranks "
        "and degrades with card-internal load imbalance — the residual "
        "inaccuracy Section 3.1 describes."
    )
    write_result(results_dir, "ablation_gcd_attribution", "\n".join(lines))


def bench_smoke_gcd_attribution(results_dir):
    balanced = _run_with_imbalance(0.0)
    imbalanced = _run_with_imbalance(0.30)

    # Even per-card split is (near) exact for balanced card-mates and
    # degrades under imbalance.
    assert balanced[0] < 0.02
    assert imbalanced[1] > balanced[1]

    lines = [
        "Per-rank GPU energy attribution error smoke (LUMI-G)",
        f"{'imbalance':>10} {'mean err':>9} {'max err':>9}",
        f"{0.0:>10.2f} {balanced[0]:>9.2%} {balanced[1]:>9.2%}",
        f"{0.30:>10.2f} {imbalanced[0]:>9.2%} {imbalanced[1]:>9.2%}",
    ]
    write_result(results_dir, "ablation_gcd_attribution_smoke", "\n".join(lines))
