"""Optional compiled fast path for the CSR hot loops.

The O(nnz) inner loops of the solver step — the exact neighbor filter
and the Density / IADVelocityDivCurl / MomentumEnergy per-entry kernels
— are also implemented as a small C library, compiled on demand with the
host toolchain (``cc``/``gcc``/``clang``) and loaded through
:mod:`ctypes`.  No third-party package is involved: when no compiler is
available (or ``REPRO_SPH_CFAST=0``), every caller silently uses the
pure-NumPy implementations, which remain the reference path.

Numerical contract
------------------
The C code mirrors the NumPy implementations operation for operation
(same expressions, same association, compiled with ``-ffp-contract=off``
so no fused multiply-adds change the rounding):

* the *neighbor filter* is bitwise identical to the NumPy filter — it
  performs the identical IEEE-754 double operations in the identical
  order, so enabling it cannot change any committed artifact;
* the *physics kernels* accumulate per CSR segment in entry order
  (matching ``np.add.reduceat``) and agree with the NumPy path to the
  1e-12 oracle tolerance (tiny 3-term dot products may associate
  differently than ``np.einsum``), which ``tests/test_csolver.py``
  asserts.  They are therefore opt-in per propagator (``accel=``), not
  ambient.

The compiled library is cached in the system temp directory keyed by a
hash of the C source, so each source revision compiles exactly once per
machine.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

_ENV_GATE = "REPRO_SPH_CFAST"

_C_SOURCE = r"""
#define _GNU_SOURCE
#include <math.h>

/* Branchless cubic spline with the constants 1/h and sigma/h^3 hoisted
   into per-particle tables, mirroring CsrStepContext._kernel_value:
   w(q) = [0.25 max(2-q,0)^3 - max(1-q,0)^3] * sigma / h^3.  The tables
   turn ~2 divisions per candidate into loads; the r*inv_h form differs
   from r/h by one rounding, inside the 1e-12 physics oracle.          */
static double w_cubic_hoisted(double r, double inv_h, double sig_h3)
{
    double q = r * inv_h;
    double t1 = 1.0 - q;
    if (t1 < 0.0) t1 = 0.0;
    t1 = t1 * (t1 * t1);
    double t2 = 2.0 - q;
    if (t2 < 0.0) t2 = 0.0;
    t2 = t2 * (t2 * t2);
    t2 *= 0.25;
    return (t2 - t1) * sig_h3;
}

/* Exact union-cutoff candidate filter; mirrors _filter_candidates
   (same subtraction order, same minimum-image expression, same strict
   r2 < (support*max(h))^2 comparison) entry for entry.  Writes the
   compacted survivors to out_* (aliasing row/cand is safe: the write
   cursor never passes the read index) and per-label counts to counts
   (indexed by count_idx when non-NULL, by row otherwise).  ``label``,
   when non-NULL, maps the stored build labels to current particle
   indices on the fly (the Verlet cache's relabeling map), replacing
   the two O(nnz) gather passes the NumPy path materializes.           */
long long csr_filter(long long nnz, const double *pos, const double *h,
                     double length, int periodic, double support,
                     const int *row, const int *cand, const int *label,
                     const int *count_idx, int exclude_self,
                     int want_geometry, long long *counts, int *out_row,
                     int *out_cand, double *out_dx, double *out_r)
{
    double inv_len = 1.0 / length;
    double neg_len = -length;
    long long cur = 0;
    for (long long k = 0; k < nnz; k++) {
        int a = label ? label[row[k]] : row[k];
        int b = label ? label[cand[k]] : cand[k];
        double d0 = pos[3 * a] - pos[3 * b];
        double d1 = pos[3 * a + 1] - pos[3 * b + 1];
        double d2 = pos[3 * a + 2] - pos[3 * b + 2];
        if (periodic) {
            d0 += neg_len * nearbyint(d0 * inv_len);
            d1 += neg_len * nearbyint(d1 * inv_len);
            d2 += neg_len * nearbyint(d2 * inv_len);
        }
        double r2 = 0.0;
        r2 += d0 * d0;
        r2 += d1 * d1;
        r2 += d2 * d2;
        double hm = h[a] > h[b] ? h[a] : h[b];
        hm *= support;
        hm *= hm;
        if (r2 < hm && !(exclude_self && a == b)) {
            counts[count_idx ? count_idx[k] : a] += 1;
            out_row[cur] = a;
            out_cand[cur] = b;
            if (want_geometry) {
                out_dx[3 * cur] = d0;
                out_dx[3 * cur + 1] = d1;
                out_dx[3 * cur + 2] = d2;
                out_r[cur] = sqrt(r2);
            }
            cur++;
        }
    }
    return cur;
}

/* Stencil offsets along one axis, mirroring _axis_offsets (periodic
   grids of one or two cells deduplicate aliased neighbors).           */
static int axis_offsets(long long nc, int periodic, int *offs)
{
    if (periodic && nc == 1) { offs[0] = 0; return 1; }
    if (periodic && nc == 2) { offs[0] = 0; offs[1] = 1; return 2; }
    offs[0] = -1; offs[1] = 0; offs[2] = 1;
    return 3;
}

/* Fused cell-stencil candidate generation + exact cutoff filter: for
   each particle, walk the occupants of its 27-stencil cells (offsets
   nested x/y/z, occupants in cell-sorted order — the exact emission
   order of _csr_candidates) and keep survivors of the same IEEE keep
   test as csr_filter, so the output is bitwise identical to running
   the NumPy generation + filter while never materializing the raw
   O(27 nnz) candidate arrays.  counts (when non-NULL) receives the
   per-particle surviving count.                                       */
long long cell_filter(long long n, const double *pos, const double *h,
                      double length, int periodic, double support,
                      long long nc0, long long nc1, long long nc2,
                      const long long *flat, const int *order,
                      const long long *cellstart, const long long *occ,
                      int exclude_self, int want_geometry,
                      long long *counts, int *out_row, int *out_cand,
                      double *out_dx, double *out_r)
{
    double inv_len = 1.0 / length;
    double neg_len = -length;
    int offs0[3], offs1[3], offs2[3];
    int m0 = axis_offsets(nc0, periodic, offs0);
    int m1 = axis_offsets(nc1, periodic, offs1);
    int m2 = axis_offsets(nc2, periodic, offs2);
    long long cur = 0;
    for (long long i = 0; i < n; i++) {
        long long f = flat[i];
        long long cz = f % nc2;
        long long cy = (f / nc2) % nc1;
        long long cx = f / (nc2 * nc1);
        double p0 = pos[3 * i], p1 = pos[3 * i + 1], p2 = pos[3 * i + 2];
        double ha = h[i];
        long long cnt = 0;
        for (int a = 0; a < m0; a++) {
            long long nx = cx + offs0[a];
            if (periodic) nx = (nx + nc0) % nc0;
            else if (nx < 0 || nx >= nc0) continue;
            for (int b = 0; b < m1; b++) {
                long long ny = cy + offs1[b];
                if (periodic) ny = (ny + nc1) % nc1;
                else if (ny < 0 || ny >= nc1) continue;
                for (int c = 0; c < m2; c++) {
                    long long nz = cz + offs2[c];
                    if (periodic) nz = (nz + nc2) % nc2;
                    else if (nz < 0 || nz >= nc2) continue;
                    long long cell = (nx * nc1 + ny) * nc2 + nz;
                    long long s = cellstart[cell], e = s + occ[cell];
                    for (long long k = s; k < e; k++) {
                        int j = order[k];
                        if (exclude_self && j == (int) i) continue;
                        double d0 = p0 - pos[3 * j];
                        double d1 = p1 - pos[3 * j + 1];
                        double d2 = p2 - pos[3 * j + 2];
                        if (periodic) {
                            d0 += neg_len * nearbyint(d0 * inv_len);
                            d1 += neg_len * nearbyint(d1 * inv_len);
                            d2 += neg_len * nearbyint(d2 * inv_len);
                        }
                        double r2 = 0.0;
                        r2 += d0 * d0;
                        r2 += d1 * d1;
                        r2 += d2 * d2;
                        double hm = ha > h[j] ? ha : h[j];
                        hm *= support;
                        hm *= hm;
                        if (r2 < hm) {
                            cnt++;
                            out_row[cur] = (int) i;
                            out_cand[cur] = j;
                            if (want_geometry) {
                                out_dx[3 * cur] = d0;
                                out_dx[3 * cur + 1] = d1;
                                out_dx[3 * cur + 2] = d2;
                                out_r[cur] = sqrt(r2);
                            }
                            cur++;
                        }
                    }
                }
            }
        }
        if (counts) counts[i] = cnt;
    }
    return cur;
}

/* Density: rho[t] = sum_j m_j W(r, h_t) per segment (self term added by
   the caller).  Accumulation is sequential in entry order, matching
   np.add.reduceat.                                                    */
void csr_density(long long nseg, const long long *off, const int *row,
                 const int *cand, const double *r, const double *h,
                 const double *mass, double sigma, double *out)
{
    for (long long s = 0; s < nseg; s++) {
        long long a = off[s], b = off[s + 1];
        if (a == b) continue;
        int t = row[a];
        double ht = h[t];
        double inv_h = 1.0 / ht;
        double sig_h3 = sigma / (ht * (ht * ht));
        double acc = 0.0;
        for (long long k = a; k < b; k++)
            acc += mass[cand[k]] * w_cubic_hoisted(r[k], inv_h, sig_h3);
        out[t] = acc;
    }
}

/* The six unique tau entries per particle (IAD moment matrix), with
   d = x_col - x_row = -dx and the volume-weighted own-h kernel value. */
void csr_tau(long long nseg, const long long *off, const int *row,
             const int *cand, const double *dx, const double *r,
             const double *h, const double *mass, const double *rho,
             double sigma, double *out6)
{
    for (long long s = 0; s < nseg; s++) {
        long long a = off[s], b = off[s + 1];
        if (a == b) continue;
        int t = row[a];
        double ht = h[t];
        double inv_h = 1.0 / ht;
        double sig_h3 = sigma / (ht * (ht * ht));
        double t0 = 0.0, t1 = 0.0, t2 = 0.0, t3 = 0.0, t4 = 0.0, t5 = 0.0;
        for (long long k = a; k < b; k++) {
            int c = cand[k];
            double vw = mass[c];
            vw /= rho[c];
            vw *= w_cubic_hoisted(r[k], inv_h, sig_h3);
            double d0 = -dx[3 * k];
            double d1 = -dx[3 * k + 1];
            double d2 = -dx[3 * k + 2];
            t0 += (d0 * d0) * vw;
            t1 += (d0 * d1) * vw;
            t2 += (d0 * d2) * vw;
            t3 += (d1 * d1) * vw;
            t4 += (d1 * d2) * vw;
            t5 += (d2 * d2) * vw;
        }
        out6[6 * t] = t0;
        out6[6 * t + 1] = t1;
        out6[6 * t + 2] = t2;
        out6[6 * t + 3] = t3;
        out6[6 * t + 4] = t4;
        out6[6 * t + 5] = t5;
    }
}

/* Velocity divergence and curl with the IAD-corrected gradients
   A_own = (C_row d) W(r, h_row), d = x_col - x_row.                   */
void csr_divcurl(long long nseg, const long long *off, const int *row,
                 const int *cand, const double *dx, const double *r,
                 const double *h, const double *mass, const double *rho,
                 const double *vel, const double *ciad, double sigma,
                 double *div_out, double *curl_out)
{
    for (long long s = 0; s < nseg; s++) {
        long long a = off[s], b = off[s + 1];
        if (a == b) continue;
        int t = row[a];
        double ht = h[t];
        double inv_h = 1.0 / ht;
        double sig_h3 = sigma / (ht * (ht * ht));
        double rho_t = rho[t];
        const double *C = ciad + 9 * (long long) t;
        double v0 = vel[3 * t], v1 = vel[3 * t + 1], v2 = vel[3 * t + 2];
        double dv = 0.0, c0 = 0.0, c1 = 0.0, c2 = 0.0;
        for (long long k = a; k < b; k++) {
            int c = cand[k];
            double d0 = -dx[3 * k];
            double d1 = -dx[3 * k + 1];
            double d2 = -dx[3 * k + 2];
            double w = w_cubic_hoisted(r[k], inv_h, sig_h3);
            double a0 = (C[0] * d0 + C[1] * d1 + C[2] * d2) * w;
            double a1 = (C[3] * d0 + C[4] * d1 + C[5] * d2) * w;
            double a2 = (C[6] * d0 + C[7] * d1 + C[8] * d2) * w;
            double vj0 = vel[3 * c] - v0;
            double vj1 = vel[3 * c + 1] - v1;
            double vj2 = vel[3 * c + 2] - v2;
            double mor = mass[c] / rho_t;
            dv += (vj0 * a0 + vj1 * a1 + vj2 * a2) * mor;
            c0 += (vj1 * a2 - vj2 * a1) * mor;
            c1 += (vj2 * a0 - vj0 * a2) * mor;
            c2 += (vj0 * a1 - vj1 * a0) * mor;
        }
        div_out[t] = dv;
        curl_out[3 * t] = c0;
        curl_out[3 * t + 1] = c1;
        curl_out[3 * t + 2] = c2;
    }
}

/* Momentum + energy + signal velocity, one fused pass.  pr is the
   per-particle P/(Omega rho^2); bal the Balsara factors (NULL when the
   switch is off); v_sig_out receives the per-segment maximum (caller
   combines with the particle's own sound speed).                      */
void csr_momentum(long long nseg, const long long *off, const int *row,
                  const int *cand, const double *dx, const double *r,
                  const double *inv_hs, const double *sig_h3s,
                  const double *mass, const double *rho,
                  const double *pr, const double *snd, const double *bal,
                  const double *vel, const double *ciad,
                  double av_alpha, double *acc_out, double *du_out,
                  double *vsig_out)
{
    double neg_half_alpha = -0.5 * av_alpha;
    for (long long s = 0; s < nseg; s++) {
        long long a = off[s], b = off[s + 1];
        if (a == b) continue;
        int t = row[a];
        double inv_h = inv_hs[t];
        double sig_h3 = sig_h3s[t];
        double pr_t = pr[t];
        double c_t = snd[t];
        double rho_t = rho[t];
        double bal_t = bal ? bal[t] : 0.0;
        const double *Ct = ciad + 9 * (long long) t;
        double v0 = vel[3 * t], v1 = vel[3 * t + 1], v2 = vel[3 * t + 2];
        double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0;
        double du = 0.0, vs_max = 0.0;
        for (long long k = a; k < b; k++) {
            int c = cand[k];
            double x0 = dx[3 * k];
            double x1 = dx[3 * k + 1];
            double x2 = dx[3 * k + 2];
            double d0 = -x0, d1 = -x1, d2 = -x2;
            double rk = r[k];
            double w_own = w_cubic_hoisted(rk, inv_h, sig_h3);
            double w_oth = w_cubic_hoisted(rk, inv_hs[c], sig_h3s[c]);
            const double *Cc = ciad + 9 * (long long) c;
            double ao0 = (Ct[0] * d0 + Ct[1] * d1 + Ct[2] * d2) * w_own;
            double ao1 = (Ct[3] * d0 + Ct[4] * d1 + Ct[5] * d2) * w_own;
            double ao2 = (Ct[6] * d0 + Ct[7] * d1 + Ct[8] * d2) * w_own;
            double ac0 = (Cc[0] * d0 + Cc[1] * d1 + Cc[2] * d2) * w_oth;
            double ac1 = (Cc[3] * d0 + Cc[4] * d1 + Cc[5] * d2) * w_oth;
            double ac2 = (Cc[6] * d0 + Cc[7] * d1 + Cc[8] * d2) * w_oth;
            double ab0 = 0.5 * (ao0 + ac0);
            double ab1 = 0.5 * (ao1 + ac1);
            double ab2 = 0.5 * (ao2 + ac2);
            double vi0 = v0 - vel[3 * c];
            double vi1 = v1 - vel[3 * c + 1];
            double vi2 = v2 - vel[3 * c + 2];
            double rs = rk > 1e-300 ? rk : 1e-300;
            double w_pair = (vi0 * x0 + vi1 * x1 + vi2 * x2) / rs;
            double v_sig = c_t + snd[c] - 3.0 * w_pair;
            double rho_bar = 0.5 * (rho_t + rho[c]);
            double visc = v_sig * w_pair;
            visc *= neg_half_alpha;
            if (bal) {
                double xi = 0.5 * (bal_t + bal[c]);
                visc *= xi;
            }
            visc /= rho_bar;
            if (w_pair >= 0.0) visc = 0.0;
            double pr_c = pr[c];
            double t0 = pr_t * ao0 + pr_c * ac0 + visc * ab0;
            double t1 = pr_t * ao1 + pr_c * ac1 + visc * ab1;
            double t2 = pr_t * ao2 + pr_c * ac2 + visc * ab2;
            double m_c = mass[c];
            acc0 -= m_c * t0;
            acc1 -= m_c * t1;
            acc2 -= m_c * t2;
            double gdo = vi0 * ao0 + vi1 * ao1 + vi2 * ao2;
            double gdb = vi0 * ab0 + vi1 * ab1 + vi2 * ab2;
            gdb *= visc;
            gdb *= 0.5;
            double du_k = gdo * pr_t;
            du_k += gdb;
            du += du_k * m_c;
            if (k == a || v_sig > vs_max) vs_max = v_sig;
        }
        acc_out[3 * t] = acc0;
        acc_out[3 * t + 1] = acc1;
        acc_out[3 * t + 2] = acc2;
        du_out[t] = du;
        vsig_out[t] = vs_max;
    }
}

/* Regularized symmetric 3x3 inversion of the tau moment matrices,
   mirroring _invert_tau: a near-singular matrix (|det| below
   1e-10 scale^3, scale = max(trace/3, 1e-30)) gets 1e-6 scale added
   to its diagonal, then the closed-form adjugate inverse.  Agrees
   with np.linalg.inv to LU-vs-adjugate round-off.                     */
void tau_invert(long long n, const double *e6, double *out9)
{
    for (long long i = 0; i < n; i++) {
        const double *t = e6 + 6 * i;
        double a = t[0], b = t[1], c = t[2];
        double d = t[3], e = t[4], f = t[5];
        double trace = a + d + f;
        double scale = trace / 3.0;
        if (scale < 1e-30) scale = 1e-30;
        double c00 = d * f - e * e;
        double c01 = c * e - b * f;
        double c02 = b * e - c * d;
        double det = a * c00 + b * c01 + c * c02;
        double s3 = scale * (scale * scale);
        if (fabs(det) < 1e-10 * s3) {
            double reg = 1e-6 * scale;
            a += reg; d += reg; f += reg;
            c00 = d * f - e * e;
            c01 = c * e - b * f;
            c02 = b * e - c * d;
            det = a * c00 + b * c01 + c * c02;
        }
        double inv_det = 1.0 / det;
        double i00 = c00 * inv_det;
        double i01 = c01 * inv_det;
        double i02 = c02 * inv_det;
        double i11 = (a * f - c * c) * inv_det;
        double i12 = (b * c - a * e) * inv_det;
        double i22 = (a * d - b * b) * inv_det;
        double *o = out9 + 9 * i;
        o[0] = i00; o[1] = i01; o[2] = i02;
        o[3] = i01; o[4] = i11; o[5] = i12;
        o[6] = i02; o[7] = i12; o[8] = i22;
    }
}

/* Turbulence-driving mode sum: acc_i = sum_j Re(e^{i k_j.x_i} amp_j)
   = sum_j cos(th) Re(amp_j) - sin(th) Im(amp_j), without the O(n m)
   complex phase matrix the NumPy path materializes.                   */
void driving_accel(long long n, long long m, const double *pos,
                   const double *kvec, const double *amp_re,
                   const double *amp_im, double *acc)
{
    for (long long i = 0; i < n; i++) {
        double p0 = pos[3 * i], p1 = pos[3 * i + 1], p2 = pos[3 * i + 2];
        double a0 = 0.0, a1 = 0.0, a2 = 0.0;
        for (long long j = 0; j < m; j++) {
            double th = p0 * kvec[3 * j] + p1 * kvec[3 * j + 1]
                        + p2 * kvec[3 * j + 2];
            double s, c;
            sincos(th, &s, &c);
            a0 += c * amp_re[3 * j] - s * amp_im[3 * j];
            a1 += c * amp_re[3 * j + 1] - s * amp_im[3 * j + 1];
            a2 += c * amp_re[3 * j + 2] - s * amp_im[3 * j + 2];
        }
        acc[3 * i] = a0;
        acc[3 * i + 1] = a1;
        acc[3 * i + 2] = a2;
    }
}
"""

_I64 = ctypes.c_longlong
_F64 = ctypes.c_double
_P = ctypes.c_void_p

_SIGNATURES = {
    "csr_filter": (
        _I64,
        [_I64, _P, _P, _F64, ctypes.c_int, _F64, _P, _P, _P, _P,
         ctypes.c_int, ctypes.c_int, _P, _P, _P, _P, _P],
    ),
    "cell_filter": (
        _I64,
        [_I64, _P, _P, _F64, ctypes.c_int, _F64, _I64, _I64, _I64,
         _P, _P, _P, _P, ctypes.c_int, ctypes.c_int, _P, _P, _P, _P, _P],
    ),
    "tau_invert": (None, [_I64, _P, _P]),
    "csr_density": (None, [_I64, _P, _P, _P, _P, _P, _P, _F64, _P]),
    "csr_tau": (None, [_I64, _P, _P, _P, _P, _P, _P, _P, _P, _F64, _P]),
    "csr_divcurl": (
        None, [_I64, _P, _P, _P, _P, _P, _P, _P, _P, _P, _P, _F64, _P, _P],
    ),
    "csr_momentum": (
        None,
        [_I64, _P, _P, _P, _P, _P, _P, _P, _P, _P, _P, _P, _P, _P, _P,
         _F64, _P, _P, _P],
    ),
    "driving_accel": (None, [_I64, _I64, _P, _P, _P, _P, _P]),
}

_CFLAGS = ["-O3", "-fPIC", "-shared", "-ffp-contract=off", "-fno-math-errno"]

#: Preferred extra flags, dropped if the toolchain rejects them.  On
#: baseline x86-64 (SSE2) ``nearbyint`` is a libm call per component in
#: the filter's min-image wrap; ``-march=native`` lets the compiler
#: inline it as a single round instruction.  Bitwise-safe alongside
#: ``-ffp-contract=off``: IEEE add/mul/div/sqrt and round-to-nearest are
#: exact regardless of instruction selection, and contraction stays off.
_CFLAGS_OPT = ["-march=native"]

_lib: ctypes.CDLL | None = None
_load_attempted = False


def _find_compiler() -> str | None:
    for cc in ("cc", "gcc", "clang"):
        path = shutil.which(cc)
        if path:
            return path
    return None


def _compile() -> ctypes.CDLL | None:
    cc = _find_compiler()
    if cc is None:
        return None
    tag = _C_SOURCE + "\x00" + " ".join(_CFLAGS + _CFLAGS_OPT)
    digest = hashlib.sha256(tag.encode()).hexdigest()[:16]
    cache = Path(tempfile.gettempdir()) / f"repro-csolver-{digest}"
    so_path = cache / "libcsolver.so"
    if not so_path.exists():
        try:
            cache.mkdir(parents=True, exist_ok=True)
            src = cache / "csolver.c"
            src.write_text(_C_SOURCE)
            tmp_so = cache / f"libcsolver-{os.getpid()}.so"
            try:
                subprocess.run(
                    [cc, *_CFLAGS, *_CFLAGS_OPT, str(src), "-o",
                     str(tmp_so), "-lm"],
                    check=True, capture_output=True, timeout=120,
                )
            except subprocess.SubprocessError:
                subprocess.run(
                    [cc, *_CFLAGS, str(src), "-o", str(tmp_so), "-lm"],
                    check=True, capture_output=True, timeout=120,
                )
            os.replace(tmp_so, so_path)  # atomic under concurrent builds
        except (OSError, subprocess.SubprocessError):
            return None
    try:
        lib = ctypes.CDLL(str(so_path))
    except OSError:
        return None
    for name, (restype, argtypes) in _SIGNATURES.items():
        fn = getattr(lib, name)
        fn.restype = restype
        fn.argtypes = argtypes
    return lib


def load() -> ctypes.CDLL | None:
    """The compiled library, or ``None`` when unavailable/disabled."""
    global _lib, _load_attempted
    if os.environ.get(_ENV_GATE, "1") in ("0", "never", "off"):
        return None
    if not _load_attempted:
        _load_attempted = True
        _lib = _compile()
    return _lib


def resolve(accel: str):
    """Map a propagator ``accel`` mode to a library handle (or ``None``).

    ``"numpy"`` never compiles; ``"auto"`` uses the library when it is
    available; ``"c"`` demands it (raises when it cannot be built).
    """
    from repro.errors import SimulationError

    if accel == "numpy":
        return None
    if accel not in ("auto", "c"):
        raise SimulationError(
            f"accel must be 'numpy', 'auto' or 'c', got {accel!r}"
        )
    lib = load()
    if lib is None and accel == "c":
        raise SimulationError(
            "accel='c' requested but no C toolchain is available "
            "(install cc/gcc, or use accel='auto' to fall back)"
        )
    return lib


def _ptr(arr: np.ndarray | None):
    if arr is None:
        return None
    return arr.ctypes.data


def _c64(arr: np.ndarray) -> np.ndarray:
    """A C-contiguous float64 view/copy (no-op for conforming arrays).

    Callers must keep the returned array referenced until after the
    foreign call: passing ``_ptr(_c64(x))`` inline would free a copy
    before C reads through the pointer.
    """
    return np.ascontiguousarray(arr, dtype=np.float64)


def filter_candidates(
    lib,
    pos: np.ndarray,
    h: np.ndarray,
    length: float,
    periodic: bool,
    support: float,
    row: np.ndarray,
    cand: np.ndarray,
    counts: np.ndarray,
    out_row: np.ndarray,
    out_cand: np.ndarray,
    out_dx: np.ndarray | None,
    out_r: np.ndarray | None,
    count_idx: np.ndarray | None,
    exclude_self: bool,
    label: np.ndarray | None = None,
) -> int:
    """Run the compiled exact filter; returns the surviving entry count.

    ``label``, when given, maps the build-time labels in ``row``/``cand``
    to current particle indices inside the loop, replacing the NumPy
    path's two materialized ``np.take`` translation passes.
    """
    return lib.csr_filter(
        len(cand), _ptr(pos), _ptr(h), length, int(periodic), support,
        _ptr(row), _ptr(cand), _ptr(label), _ptr(count_idx),
        int(exclude_self), int(out_dx is not None), _ptr(counts),
        _ptr(out_row), _ptr(out_cand), _ptr(out_dx), _ptr(out_r),
    )


def cell_filter(
    lib,
    pos: np.ndarray,
    h: np.ndarray,
    length: float,
    periodic: bool,
    support: float,
    ncell: np.ndarray,
    flat: np.ndarray,
    order: np.ndarray,
    cellstart: np.ndarray,
    occ: np.ndarray,
    counts: np.ndarray | None,
    out_row: np.ndarray,
    out_cand: np.ndarray,
    out_dx: np.ndarray | None,
    out_r: np.ndarray | None,
    exclude_self: bool,
) -> int:
    """Run the fused stencil walk + exact filter; returns the kept count."""
    return lib.cell_filter(
        len(pos), _ptr(pos), _ptr(h), length, int(periodic), support,
        int(ncell[0]), int(ncell[1]), int(ncell[2]),
        _ptr(flat), _ptr(order), _ptr(cellstart), _ptr(occ),
        int(exclude_self), int(out_dx is not None), _ptr(counts),
        _ptr(out_row), _ptr(out_cand), _ptr(out_dx), _ptr(out_r),
    )


def tau_invert(lib, entries: np.ndarray) -> np.ndarray:
    """Regularized inverses of the six-entry symmetric tau matrices."""
    n = len(entries)
    out = np.empty((n, 3, 3))
    entries_c = _c64(entries)
    lib.tau_invert(n, _ptr(entries_c), _ptr(out))
    return out


def density(lib, ctx, mass: np.ndarray, sigma: float) -> np.ndarray:
    csr = ctx.csr
    out = np.zeros(ctx.n_particles)
    h_c, mass_c = _c64(ctx.h), _c64(mass)
    lib.csr_density(
        len(csr.offsets) - 1, _ptr(csr.offsets), _ptr(csr.row),
        _ptr(csr.indices), _ptr(csr.r), _ptr(h_c), _ptr(mass_c),
        sigma, _ptr(out),
    )
    return out


def tau(lib, ctx, mass, rho, sigma: float) -> np.ndarray:
    csr = ctx.csr
    out = np.zeros((ctx.n_particles, 6))
    h_c, mass_c, rho_c = _c64(ctx.h), _c64(mass), _c64(rho)
    lib.csr_tau(
        len(csr.offsets) - 1, _ptr(csr.offsets), _ptr(csr.row),
        _ptr(csr.indices), _ptr(csr.dx), _ptr(csr.r), _ptr(h_c),
        _ptr(mass_c), _ptr(rho_c), sigma, _ptr(out),
    )
    return out


def divcurl(
    lib, ctx, mass, rho, vel, c_iad, sigma: float
) -> tuple[np.ndarray, np.ndarray]:
    csr = ctx.csr
    div_out = np.zeros(ctx.n_particles)
    curl_out = np.zeros((ctx.n_particles, 3))
    h_c, mass_c, rho_c = _c64(ctx.h), _c64(mass), _c64(rho)
    vel_c, ciad_c = _c64(vel), _c64(c_iad)
    lib.csr_divcurl(
        len(csr.offsets) - 1, _ptr(csr.offsets), _ptr(csr.row),
        _ptr(csr.indices), _ptr(csr.dx), _ptr(csr.r), _ptr(h_c),
        _ptr(mass_c), _ptr(rho_c), _ptr(vel_c),
        _ptr(ciad_c), sigma, _ptr(div_out), _ptr(curl_out),
    )
    return div_out, curl_out


def momentum(
    lib, ctx, mass, rho, pr, snd, bal, vel, c_iad, sigma: float,
    av_alpha: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    csr = ctx.csr
    acc_out = np.zeros((ctx.n_particles, 3))
    du_out = np.zeros(ctx.n_particles)
    vsig_out = np.zeros(ctx.n_particles)
    h_c, mass_c, rho_c = _c64(ctx.h), _c64(mass), _c64(rho)
    pr_c, snd_c, vel_c, ciad_c = _c64(pr), _c64(snd), _c64(vel), _c64(c_iad)
    bal_c = _c64(bal) if bal is not None else None
    # Hoisted spline tables: 1/h and sigma/h^3 per particle (both sides
    # of every pair read them, so the kernel's inner loop is division
    # free for the spline).
    inv_hs = _c64(1.0 / h_c)
    sig_h3s = _c64(sigma / (h_c * (h_c * h_c)))
    lib.csr_momentum(
        len(csr.offsets) - 1, _ptr(csr.offsets), _ptr(csr.row),
        _ptr(csr.indices), _ptr(csr.dx), _ptr(csr.r),
        _ptr(inv_hs), _ptr(sig_h3s),
        _ptr(mass_c), _ptr(rho_c), _ptr(pr_c), _ptr(snd_c),
        _ptr(bal_c), _ptr(vel_c),
        _ptr(ciad_c), av_alpha, _ptr(acc_out), _ptr(du_out),
        _ptr(vsig_out),
    )
    return acc_out, du_out, vsig_out


def driving_accel(
    lib, pos: np.ndarray, k_vec: np.ndarray, amp: np.ndarray
) -> np.ndarray:
    """The unnormalized driving mode sum ``Re(e^{i x.k} amp)`` per particle."""
    n = len(pos)
    out = np.empty((n, 3))
    pos_c, k_c = _c64(pos), _c64(k_vec)
    re_c, im_c = _c64(np.real(amp)), _c64(np.imag(amp))
    lib.driving_accel(
        n, len(k_vec), _ptr(pos_c), _ptr(k_c),
        _ptr(re_c), _ptr(im_c), _ptr(out),
    )
    return out
