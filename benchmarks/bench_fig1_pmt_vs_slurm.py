"""Figure 1: PMT-measured vs Slurm-reported energy, 8-48 GPU cards.

Paper shape to reproduce: PMT < Slurm at every scale on both systems
(Slurm integrates from job submission, PMT from the first time-step), and
the relative underestimation is larger on LUMI-G than on CSCS-A100.
"""

from conftest import write_result

from repro.config import CSCS_A100, LUMI_G
from repro.experiments.validation import (
    FIGURE1_CARD_COUNTS,
    figure1_series,
    figure1_table,
)

#: Full paper fidelity: 100 time-steps per run.
NUM_STEPS = 100

#: Smoke variant: two scales, a handful of steps (CI, `make bench-smoke`).
SMOKE_CARD_COUNTS = (8, 16)
SMOKE_STEPS = 6


def _run_both_systems():
    lumi = figure1_series(LUMI_G, FIGURE1_CARD_COUNTS, num_steps=NUM_STEPS)
    cscs = figure1_series(CSCS_A100, FIGURE1_CARD_COUNTS, num_steps=NUM_STEPS)
    return lumi, cscs


def bench_figure1(benchmark, results_dir):
    lumi, cscs = benchmark.pedantic(_run_both_systems, rounds=1, iterations=1)

    for point in lumi + cscs:
        assert point.pmt_joules < point.slurm_joules, (
            f"PMT must underestimate vs Slurm at {point.num_cards} cards "
            f"on {point.system_name}"
        )
        assert point.ratio > 0.6, "PMT should capture the bulk of the job"

    # LUMI-G underestimates more at every scale.
    for l, c in zip(lumi, cscs):
        assert l.ratio < c.ratio, (
            f"LUMI-G gap must exceed CSCS-A100 gap at {l.num_cards} cards"
        )

    # Energy grows with scale.
    for series in (lumi, cscs):
        slurm = [p.slurm_joules for p in series]
        assert slurm == sorted(slurm)

    text = "\n\n".join(figure1_table(series) for series in (lumi, cscs))
    write_result(results_dir, "fig1_pmt_vs_slurm", text)


def bench_smoke_figure1(results_dir):
    lumi = figure1_series(LUMI_G, SMOKE_CARD_COUNTS, num_steps=SMOKE_STEPS)
    cscs = figure1_series(CSCS_A100, SMOKE_CARD_COUNTS, num_steps=SMOKE_STEPS)

    for point in lumi + cscs:
        assert point.pmt_joules < point.slurm_joules
        assert point.ratio > 0.0
    # LUMI-G underestimates more than CSCS-A100 at every scale.
    for l, c in zip(lumi, cscs):
        assert l.ratio < c.ratio

    text = "\n\n".join(figure1_table(series) for series in (lumi, cscs))
    write_result(results_dir, "fig1_pmt_vs_slurm_smoke", text)
