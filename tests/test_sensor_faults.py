"""Failure-injection tests: frozen counters, dropouts, glitches, and the
corresponding detectors/mitigations."""

import numpy as np
import pytest

from repro.errors import SensorError
from repro.hardware import PowerTrace
from repro.sensors import SampledEnergyCounter
from repro.sensors.base import SensorReading
from repro.sensors.faults import (
    DropoutFault,
    FrozenCounterFault,
    GlitchFault,
    detect_frozen_counter,
    detect_glitches,
    interpolate_energy_across_dropout,
)


@pytest.fixture
def counter():
    trace = PowerTrace(initial_watts=200.0)
    return SampledEnergyCounter(trace, refresh_period_s=0.1)


class TestFrozenCounter:
    def test_normal_before_freeze(self, counter):
        faulty = FrozenCounterFault(counter, freeze_at=10.0)
        assert faulty.read(5.0).joules == counter.read(5.0).joules

    def test_frozen_after(self, counter):
        faulty = FrozenCounterFault(counter, freeze_at=10.0)
        at_freeze = faulty.read(10.0)
        later = faulty.read(100.0)
        assert later.joules == at_freeze.joules
        assert later.timestamp == at_freeze.timestamp

    def test_region_across_freeze_reads_zero_energy(self, counter):
        """The dangerous failure mode: silently missing energy."""
        faulty = FrozenCounterFault(counter, freeze_at=10.0)
        start = faulty.read(10.0)
        end = faulty.read(20.0)
        assert end.joules - start.joules == 0.0

    def test_detector_fires(self, counter):
        faulty = FrozenCounterFault(counter, freeze_at=10.0)
        times = [0.0, 5.0, 10.0, 15.0, 20.0]
        readings = [faulty.read(t) for t in times]
        assert detect_frozen_counter(times, readings)

    def test_detector_quiet_on_healthy_sensor(self, counter):
        times = [0.0, 5.0, 10.0, 15.0]
        readings = [counter.read(t) for t in times]
        assert not detect_frozen_counter(times, readings)

    def test_invalid_freeze_time(self, counter):
        with pytest.raises(SensorError):
            FrozenCounterFault(counter, freeze_at=-1.0)


class TestDropout:
    def test_reads_fail_in_window(self, counter):
        faulty = DropoutFault(counter, 5.0, 8.0)
        faulty.read(4.9)
        with pytest.raises(SensorError):
            faulty.read(6.0)
        faulty.read(8.0)

    def test_interpolation_recovers_energy(self, counter):
        faulty = DropoutFault(counter, 5.0, 8.0)
        before = faulty.read(4.9)
        after = faulty.read(8.1)
        estimated = interpolate_energy_across_dropout(before, after, 6.5)
        truth = counter.read(6.5).joules
        # Constant power: linear interpolation is near exact.
        assert estimated == pytest.approx(truth, rel=0.05)

    def test_interpolation_rejects_out_of_range(self, counter):
        before = counter.read(1.0)
        after = counter.read(2.0)
        with pytest.raises(SensorError):
            interpolate_energy_across_dropout(before, after, 5.0)

    def test_invalid_window(self, counter):
        with pytest.raises(SensorError):
            DropoutFault(counter, 5.0, 5.0)


class TestGlitch:
    def test_glitches_only_touch_power(self, counter):
        faulty = GlitchFault(counter, probability=1.0, magnitude_watts=9e9)
        reading = faulty.read(3.0)
        clean = counter.read(3.0)
        assert reading.watts == 9e9
        assert reading.joules == clean.joules

    def test_zero_probability_is_transparent(self, counter):
        faulty = GlitchFault(counter, probability=0.0)
        assert faulty.read(3.0) == counter.read(3.0)

    def test_deterministic_given_seed(self, counter):
        a = GlitchFault(counter, probability=0.3, seed=5)
        b = GlitchFault(counter, probability=0.3, seed=5)
        times = np.linspace(0, 10, 50)
        assert [a.read(t).watts for t in times] == [
            b.read(t).watts for t in times
        ]

    def test_detector_finds_them(self, counter):
        faulty = GlitchFault(
            counter, probability=0.3, magnitude_watts=10_000.0, seed=1
        )
        readings = [faulty.read(t) for t in np.linspace(0, 10, 60)]
        flagged = detect_glitches(readings, plausible_max_watts=1_000.0)
        assert len(flagged) > 0
        for k in flagged:
            assert readings[k].watts == 10_000.0

    def test_invalid_probability(self, counter):
        with pytest.raises(SensorError):
            GlitchFault(counter, probability=1.5)


class TestDetectorEdgeCases:
    def test_empty_readings(self):
        assert not detect_frozen_counter([], [])
        assert detect_glitches([], 100.0) == []

    def test_same_time_pairs_ignored(self):
        r = SensorReading(timestamp=1.0, watts=100.0, joules=50.0)
        assert not detect_frozen_counter([1.0, 1.0], [r, r])

    def test_length_mismatch_rejected(self):
        with pytest.raises(SensorError):
            detect_frozen_counter([1.0], [])
