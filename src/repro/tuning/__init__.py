"""Energy-aware dynamic frequency tuning (the paper's future work).

The conclusion of the paper: *"Future work includes the utilization of the
gathered data per-function and employing a variety of dynamic approaches
from the literature that trade-off high performance and energy
consumption."*  This package implements that step on top of the
measurement infrastructure:

* :mod:`repro.tuning.policy` — frequency policies: static, and a
  per-function oracle built from a measured frequency sweep;
* :mod:`repro.tuning.dynamic` — an instrumented application that switches
  the GPU clock at function boundaries (with a switching-latency cost);
* :mod:`repro.tuning.optimizer` — the end-to-end loop: sweep, build the
  per-function policy, run it, and report savings against the static
  baseline;
* :mod:`repro.tuning.governor` — the *online* closed loop: a governor
  that learns per-function clocks from streaming telemetry during a
  single run (min-energy, min-EDP, or power-cap compliance).
"""

from repro.tuning.policy import (
    FrequencyPolicy,
    PerFunctionPolicy,
    StaticPolicy,
    build_oracle_policy,
)
from repro.tuning.dynamic import (
    DVFS_SWITCH_LATENCY_S,
    SWITCH_FUNCTION,
    DynamicDvfsApplication,
)
from repro.tuning.governor import (
    GOVERNOR_POLICIES,
    EnergyAwareGovernor,
    GovernorConfig,
    GovernorReport,
)
from repro.tuning.optimizer import TuningReport, sweep_points, tune_per_function

__all__ = [
    "FrequencyPolicy",
    "StaticPolicy",
    "PerFunctionPolicy",
    "build_oracle_policy",
    "DynamicDvfsApplication",
    "DVFS_SWITCH_LATENCY_S",
    "SWITCH_FUNCTION",
    "EnergyAwareGovernor",
    "GovernorConfig",
    "GovernorReport",
    "GOVERNOR_POLICIES",
    "TuningReport",
    "sweep_points",
    "tune_per_function",
]
