"""Backend factory: ``pmt.create("cray", ...)``.

Backends self-register via the :func:`register_backend` decorator at import
time, so adding a platform never touches application code — the property
the paper leans on to instrument SPH-EXA once and run on three systems.
"""

from __future__ import annotations

from typing import Callable, Type

from repro.errors import BackendError
from repro.pmt.base import PMT

_REGISTRY: dict[str, Type[PMT]] = {}


def register_backend(name: str) -> Callable[[Type[PMT]], Type[PMT]]:
    """Class decorator registering a PMT backend under ``name``."""

    def decorator(cls: Type[PMT]) -> Type[PMT]:
        if name in _REGISTRY:
            raise BackendError(f"backend {name!r} already registered")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def available_backends() -> tuple[str, ...]:
    """Sorted names of all registered backends."""
    return tuple(sorted(_REGISTRY))


def create(name: str, **kwargs) -> PMT:
    """Instantiate the backend registered under ``name``.

    Keyword arguments are backend specific (e.g. ``telemetry=`` for
    ``cray``, ``telemetry=`` and ``device_index=`` for ``nvml``).
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise BackendError(
            f"unknown PMT backend {name!r}; available: {available_backends()}"
        ) from None
    return cls(**kwargs)
