"""Tests for the analysis layer: attribution, breakdowns, EDP, validation."""

import pytest

from repro.analysis import (
    DeviceBreakdown,
    attributed_joules,
    device_breakdown,
    edp,
    function_breakdown,
    function_edp,
    normalized_edp_series,
    run_edp,
    sensor_sharing_factor,
    validate_pmt_against_slurm,
)
from repro.analysis.aggregate import function_totals
from repro.analysis.validation import pmt_total_joules
from repro.errors import AnalysisError
from repro.instrumentation.records import (
    FunctionEnergyRecord,
    NodeWindowRecord,
    RunMeasurements,
)
from repro.slurm.job import JobAccounting


def make_run(system="LUMI-G", gcds_per_card=2, ranks=4, nodes=1, memory=True):
    records = []
    for rank in range(ranks):
        for fn, (sec, gpu, cpu) in {
            "MomentumEnergy": (10.0, 2000.0, 400.0),
            "Density": (5.0, 800.0, 200.0),
        }.items():
            joules = {"gpu": gpu, "cpu": cpu, "node": gpu + cpu + 100.0}
            if memory:
                joules["memory"] = 50.0
            records.append(
                FunctionEnergyRecord(
                    rank=rank, function=fn, calls=1, seconds=sec, joules=joules
                )
            )
    windows = [
        NodeWindowRecord(
            node_index=i,
            node_joules=10_000.0,
            cpu_joules=1_500.0,
            memory_joules=500.0 if memory else None,
            card_joules=[3_000.0, 3_200.0],
        )
        for i in range(nodes)
    ]
    return RunMeasurements(
        system_name=system,
        test_case="Subsonic Turbulence",
        num_ranks=ranks,
        num_nodes=nodes,
        gcds_per_card=gcds_per_card,
        gpu_freq_mhz=1700.0,
        num_steps=10,
        particles_per_rank=1e6,
        app_start=0.0,
        app_end=20.0,
        records=records,
        node_windows=windows,
    )


class TestAttribution:
    def test_sharing_factors(self):
        run = make_run()
        assert sensor_sharing_factor(run, "gpu") == 2
        assert sensor_sharing_factor(run, "cpu") == 4
        assert sensor_sharing_factor(run, "node") == 4

    def test_unknown_counter(self):
        with pytest.raises(AnalysisError):
            sensor_sharing_factor(make_run(), "nic")

    def test_gpu_attribution_divides_by_gcds(self):
        run = make_run()
        rec = run.record(0, "MomentumEnergy")
        assert attributed_joules(run, rec, "gpu") == pytest.approx(1000.0)

    def test_cpu_attribution_divides_by_ranks(self):
        run = make_run()
        rec = run.record(0, "MomentumEnergy")
        assert attributed_joules(run, rec, "cpu") == pytest.approx(100.0)

    def test_missing_counter(self):
        run = make_run(memory=False)
        rec = run.record(0, "MomentumEnergy")
        with pytest.raises(AnalysisError):
            attributed_joules(run, rec, "memory")

    def test_function_totals_sum_once(self):
        """Attributed sums reproduce the physical total exactly once."""
        run = make_run()
        totals = function_totals(run, "gpu")
        # 4 ranks * 2000 J raw, 2 ranks per card sensor -> 4000 J physical.
        assert totals["MomentumEnergy"] == pytest.approx(4000.0)

    def test_memory_totals_skip_absent_platform(self):
        run = make_run(memory=False)
        assert function_totals(run, "memory") == {}


class TestDeviceBreakdown:
    def test_categories_with_memory(self):
        bd = device_breakdown(make_run())
        assert list(bd.joules) == ["GPU", "CPU", "Memory", "Other"]
        assert bd.joules["GPU"] == pytest.approx(6200.0)
        assert bd.joules["Other"] == pytest.approx(10000 - 6200 - 1500 - 500)
        assert bd.total_joules == pytest.approx(10000.0)

    def test_memory_folded_into_other_when_unmeasured(self):
        bd = device_breakdown(make_run(memory=False))
        assert "Memory" not in bd.joules
        assert bd.joules["Other"] == pytest.approx(10000 - 6200 - 1500)

    def test_shares_sum_to_one(self):
        bd = device_breakdown(make_run())
        assert sum(bd.shares.values()) == pytest.approx(1.0)

    def test_empty_run_rejected(self):
        run = make_run()
        run.node_windows.clear()
        with pytest.raises(AnalysisError):
            device_breakdown(run)

    def test_zero_total_rejected(self):
        bd = DeviceBreakdown(joules={"GPU": 0.0}, total_joules=0.0)
        with pytest.raises(AnalysisError):
            bd.shares


class TestFunctionBreakdown:
    def test_sorted_by_energy(self):
        rows = function_breakdown(make_run(), "gpu")
        assert rows[0].function == "MomentumEnergy"
        assert rows[0].joules > rows[1].joules

    def test_attributed_values(self):
        rows = function_breakdown(make_run(), "gpu")
        assert rows[0].joules == pytest.approx(4000.0)
        assert rows[0].seconds == pytest.approx(10.0)


class TestEdp:
    def test_edp_product(self):
        assert edp(100.0, 2.0) == 200.0

    def test_edp_rejects_negative(self):
        with pytest.raises(AnalysisError):
            edp(-1.0, 2.0)

    def test_run_edp_uses_gpu_energy_and_time(self):
        run = make_run()
        # gpu totals: ME 4000 + Density 1600 = 5600 J, app window 20 s.
        assert run_edp(run) == pytest.approx(5600.0 * 20.0)

    def test_function_edp(self):
        values = function_edp(make_run())
        assert values["MomentumEnergy"] == pytest.approx(4000.0 * 10.0)

    def test_normalized_series(self):
        series = {1410.0: 100.0, 1200.0: 90.0, 1005.0: 80.0}
        norm = normalized_edp_series(series, 1410.0)
        assert norm[1410.0] == 1.0
        assert norm[1005.0] == pytest.approx(0.8)

    def test_normalized_missing_baseline(self):
        with pytest.raises(AnalysisError):
            normalized_edp_series({1200.0: 1.0}, 1410.0)


class TestValidation:
    def make_accounting(self, consumed):
        return JobAccounting(
            job_id=1,
            name="j",
            num_nodes=1,
            num_ranks=4,
            submit_time=0.0,
            start_time=0.0,
            app_start_time=30.0,
            app_end_time=50.0,
            end_time=55.0,
            consumed_energy_joules=consumed,
        )

    def test_pmt_total(self):
        assert pmt_total_joules(make_run()) == pytest.approx(10000.0)

    def test_validation_point(self):
        point = validate_pmt_against_slurm(make_run(), self.make_accounting(12500.0), 8)
        assert point.ratio == pytest.approx(0.8)
        assert point.gap_joules == pytest.approx(2500.0)
        assert point.num_cards == 8

    def test_zero_slurm_rejected(self):
        point = validate_pmt_against_slurm(make_run(), self.make_accounting(0.0), 8)
        with pytest.raises(AnalysisError):
            point.ratio
