"""Figure 4: normalized EDP vs GPU compute frequency on miniHPC.

Paper shape to reproduce: as the A100 compute clock drops from 1410 to
1005 MHz, time-to-solution increases but the EDP *decreases* for every
problem size; the smallest problem (200^3 particles per GPU, under-
utilized GPUs) drops the most.
"""

from conftest import write_result

from repro.config import A100_SWEEP_FREQS_MHZ
from repro.experiments.frequency import FIGURE4_CUBE_SIDES, figure4_series

NUM_STEPS = 100


def bench_figure4(benchmark, results_dir):
    series = benchmark.pedantic(
        figure4_series, kwargs={"num_steps": NUM_STEPS}, rounds=1, iterations=1
    )

    freqs = sorted((float(f) for f in A100_SWEEP_FREQS_MHZ), reverse=True)
    lines = [
        "Normalized EDP (baseline 1410 MHz), Subsonic Turbulence on miniHPC",
        "side^3/GPU " + " ".join(f"{f:>7.0f}" for f in freqs),
    ]
    for side in FIGURE4_CUBE_SIDES:
        norm = series[side]
        lines.append(
            f"{side:>7}^3  " + " ".join(f"{norm[f]:>7.3f}" for f in freqs)
        )
        assert norm[1410.0] == 1.0
        # EDP decreases when frequency is reduced.
        assert norm[1005.0] < 0.98, f"{side}^3 EDP should drop at 1005 MHz"
        # Broadly monotone: the lowest frequency gives (near) minimal EDP.
        assert norm[1005.0] <= min(norm.values()) + 0.03

    # The under-utilized 200^3 case drops the most (paper's green curve).
    assert series[200][1005.0] < series[450][1005.0] - 0.02
    assert series[200][1005.0] == min(s[1005.0] for s in series.values())

    write_result(results_dir, "fig4_edp_frequency", "\n".join(lines))


SMOKE_SIDES = (200, 300)
SMOKE_FREQS = (1410.0, 1230.0, 1005.0)


def bench_smoke_figure4(results_dir):
    series = figure4_series(
        cube_sides=SMOKE_SIDES, freqs_mhz=SMOKE_FREQS, num_steps=6
    )

    freqs = sorted(SMOKE_FREQS, reverse=True)
    lines = [
        "Normalized EDP (baseline 1410 MHz), smoke sweep on miniHPC",
        "side^3/GPU " + " ".join(f"{f:>7.0f}" for f in freqs),
    ]
    for side in SMOKE_SIDES:
        norm = series[side]
        lines.append(
            f"{side:>7}^3  " + " ".join(f"{norm[f]:>7.3f}" for f in freqs)
        )
        assert norm[1410.0] == 1.0
        assert norm[1005.0] < 1.0, f"{side}^3 EDP should drop at 1005 MHz"

    # The under-utilized 200^3 case still drops the most.
    assert series[200][1005.0] < series[300][1005.0]

    write_result(results_dir, "fig4_edp_frequency_smoke", "\n".join(lines))
