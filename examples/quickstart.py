#!/usr/bin/env python
"""Quickstart: measure a workload's energy with the PMT API.

This is the 'hello world' of the library: build one simulated GPU node,
create PMT meters through the same ``create(backend)`` factory the paper's
instrumentation uses, run a synthetic workload, and read device-level
energy — including the counter arithmetic (``PMT.seconds / joules /
watts``) that mirrors the original toolkit.

Run:  python examples/quickstart.py
"""

import repro.pmt as pmt
from repro.config import CSCS_A100
from repro.hardware import Node, VirtualClock
from repro.sensors import NodeTelemetry
from repro.units import format_energy, format_power


def main() -> None:
    # One CSCS-A100 node: EPYC 7713 + 4x A100-SXM4-80GB on a shared
    # virtual clock.  Sensors (NVML per card, RAPL for the CPU, IPMI for
    # the node) observe the ground-truth power traces imperfectly, just
    # like real telemetry.
    clock = VirtualClock()
    node = Node("node0", clock, CSCS_A100.node_spec)
    telemetry = NodeTelemetry(node, CSCS_A100, clock)

    print("Available PMT backends:", ", ".join(pmt.available_backends()))

    gpu_meter = pmt.create("nvml", telemetry=telemetry, device_index=0)
    cpu_meter = pmt.create("rapl", telemetry=telemetry)

    # Instrument a synthetic 'kernel': GPU 0 fully busy for 30 seconds.
    gpu_start = gpu_meter.read()
    cpu_start = cpu_meter.read()

    node.gpus[0].set_load(0.95, 0.80)   # compute + memory utilization
    node.cpu.set_load(0.10, 0.05)       # host driving the GPU
    clock.advance(30.0)
    node.all_idle()

    gpu_end = gpu_meter.read()
    cpu_end = cpu_meter.read()

    seconds = pmt.PMT.seconds(gpu_start, gpu_end)
    gpu_joules = pmt.PMT.joules(gpu_start, gpu_end)
    cpu_joules = pmt.PMT.joules(cpu_start, cpu_end)

    print(f"\nRegion length : {seconds:.1f} s")
    print(
        f"GPU 0         : {format_energy(gpu_joules)} "
        f"({format_power(pmt.PMT.watts(gpu_start, gpu_end))} average)"
    )
    print(
        f"CPU package   : {format_energy(cpu_joules)} "
        f"({format_power(pmt.PMT.watts(cpu_start, cpu_end))} average)"
    )

    # Ground truth is available in simulation (never on real hardware):
    truth = node.cards[0].energy_between(0.0, 30.0)
    error = abs(gpu_joules - truth) / truth
    print(f"\nGround-truth GPU energy: {format_energy(truth)}")
    print(f"NVML measurement error : {error:.2%} (sensor noise + cadence)")


if __name__ == "__main__":
    main()
