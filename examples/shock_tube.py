#!/usr/bin/env python
"""Sod shock tube: the SPH solver graded against the exact Riemann solution.

Runs the classic Riemann problem (rho, p = 1, 1 | 0.125, 0.1) and prints
the binned density profile next to the exact solution from the library's
Riemann solver — shock, contact and rarefaction in one ASCII table.

Run:  python examples/shock_tube.py
"""

import numpy as np

from repro.sph import Simulation
from repro.sph.initial_conditions import make_sod
from repro.sph.propagator import Propagator
from repro.sph.riemann import SOD_LEFT, SOD_RIGHT, sample_solution, solve_star_region


def main() -> None:
    ps, box = make_sod(nx_left=20, seed=5)
    sim = Simulation(ps, Propagator(box, av_alpha=1.5, courant=0.2))
    print(f"Sod shock tube: {ps.n} particles (gamma = 5/3)")
    p_star, u_star = solve_star_region(SOD_LEFT, SOD_RIGHT)
    print(f"Exact star region: p* = {p_star:.4f}, u* = {u_star:.4f}\n")

    while sim.time < 0.09:
        sim.step()
    t = sim.time
    print(f"t = {t:.4f} after {len(sim.history)} steps\n")

    x = ps.pos[:, 0]
    bins = np.linspace(-0.4, 0.4, 21)
    print(f"{'x':>7} {'rho_SPH':>8} {'rho_exact':>10} {'v_SPH':>7} {'v_exact':>8}")
    errors = []
    for lo, hi in zip(bins[:-1], bins[1:]):
        mask = (x >= lo) & (x < hi)
        if not np.any(mask):
            continue
        center = 0.5 * (lo + hi)
        rho_e, u_e, _ = sample_solution(
            SOD_LEFT, SOD_RIGHT, np.array([center / t])
        )
        rho_sph = float(np.mean(ps.rho[mask]))
        v_sph = float(np.mean(ps.vel[mask, 0]))
        errors.append(abs(rho_sph - rho_e[0]) / rho_e[0])
        print(
            f"{center:>7.2f} {rho_sph:>8.3f} {rho_e[0]:>10.3f} "
            f"{v_sph:>7.3f} {u_e[0]:>8.3f}"
        )
    print(f"\nMean density error vs exact solution: {np.mean(errors):.1%}")


if __name__ == "__main__":
    main()
