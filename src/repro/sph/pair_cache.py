"""The per-step pair pipeline cache (Verlet skin list + kernel memoization).

Two generations of reuse layers sit between the neighbor search and the
physics kernels, mirroring how SPH-EXA earns its throughput:

* **The CSR/SoA engine** (:class:`CsrVerletList` + :class:`CsrStepContext`)
  — the production hot path.  Neighbors live in a flat CSR structure
  (:class:`~repro.sph.neighbors.CsrNeighborList`); per-pair kernel values
  and IAD gradient vectors are evaluated once per step into preallocated,
  reused buffers; per-particle sums run as *segment reductions*
  (``np.add.reduceat`` over the CSR offsets) instead of scatter-adds.
  The skin-cached candidate structure survives the SFC relabeling of
  ``DomainDecompAndSync`` by composing the per-step permutation into a
  build-label -> current-label map — an O(N) update — rather than
  re-sorting the O(N k) flat arrays.  Optionally the per-pair arrays are
  held in float32 while every segment reduction still accumulates in
  float64 (``pair_dtype="float32"``); the float64 default is gated by the
  1e-12 physics-oracle tolerance the tests enforce.
* **Half-pair lists** (:class:`VerletList` + :class:`StepContext`) — the
  previous generation, kept as the ablation baseline (`engine="pairlist"`)
  and exercised by the equivalence tests.  Undirected pairs stored once;
  consumers accumulate both gather targets with symmetric scatter-adds.

Both Verlet lists implement the same caching contract: the neighbor
search runs with an inflated cutoff ``2 max(h_i, h_j) + skin`` and the
candidate list is reused until particles have moved (or smoothing
lengths have grown) enough to possibly change the answer — the classic
``max_disp > skin/2`` criterion, extended with an ``h``-growth term so
adaptive smoothing lengths can never invalidate the cache silently.
Each query re-filters the cached candidates against the *exact* per-pair
cutoff, so the returned neighbor set is identical to a fresh search (the
property tests assert this).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.sph.box import Box
from repro.sph.kernels.cubic_spline import (
    _SIGMA_3D,
    SUPPORT_RADIUS,
    CubicSplineKernel,
)
from repro.sph.neighbors import (
    BufferPool,
    CsrNeighborList,
    HalfPairList,
    _csr_candidates,
    _csr_filtered_fused,
    _filter_candidates,
    _pair_geometry,
    csr_neighbors,
    find_neighbors,
)

#: Default Verlet skin, as a fraction of the mean kernel support.
DEFAULT_SKIN_FACTOR = 0.3

#: Pair-array dtypes the CSR engine accepts.
_PAIR_DTYPES = {"float64": np.float64, "float32": np.float32}


# -- symmetric scatter-add helpers ---------------------------------------------


def scatter_sum(idx: np.ndarray, weights: np.ndarray, n: int) -> np.ndarray:
    """Sum ``weights`` into ``n`` scalar bins at ``idx`` (vectorized)."""
    return np.bincount(idx, weights=weights, minlength=n)


def scatter_sum_rows(idx: np.ndarray, rows: np.ndarray, n: int) -> np.ndarray:
    """Sum ``(k, m)`` rows into an ``(n, m)`` array at row indices ``idx``.

    One flattened ``bincount`` over ``idx * m + column`` — the shared
    replacement for the per-axis Python loops the physics kernels used to
    carry (and much faster than ``np.add.at``, which is not vectorized).
    """
    k, m = rows.shape
    flat_idx = (idx[:, None] * m + np.arange(m)).ravel()
    out = np.bincount(flat_idx, weights=rows.ravel(), minlength=n * m)
    return out.reshape(n, m)


def scatter_sum_sym(
    i: np.ndarray,
    j: np.ndarray,
    terms_i: np.ndarray,
    terms_j: np.ndarray,
    n: int,
) -> np.ndarray:
    """Half-pair scalar accumulation: ``terms_i`` onto ``i``, ``terms_j``
    onto ``j``, in a single pass."""
    return np.bincount(
        np.concatenate([i, j]),
        weights=np.concatenate([terms_i, terms_j]),
        minlength=n,
    )


def scatter_sum_sym_rows(
    i: np.ndarray,
    j: np.ndarray,
    rows_i: np.ndarray,
    rows_j: np.ndarray,
    n: int,
) -> np.ndarray:
    """Half-pair row accumulation: ``rows_i`` onto ``i``, ``rows_j`` onto
    ``j``, in a single flattened pass."""
    return scatter_sum_rows(
        np.concatenate([i, j]), np.concatenate([rows_i, rows_j]), n
    )


# -- segment-reduction helpers -------------------------------------------------


def _nonempty_starts(offsets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Start positions of the non-empty CSR segments and their numbers.

    ``np.add.reduceat`` returns ``values[start]`` (not 0) for an empty
    segment, so reductions run over non-empty segments only and scatter
    the results to their segment numbers.
    """
    starts = offsets[:-1]
    nonempty = starts < offsets[1:]
    return starts[nonempty], np.flatnonzero(nonempty)


def segment_sum(
    values: np.ndarray, offsets: np.ndarray, n: int,
    targets: np.ndarray | None = None,
) -> np.ndarray:
    """Sum CSR segments into ``n`` float64 bins (empty segments -> 0).

    ``targets`` maps segment number to output bin (identity if None).
    Accumulation is always float64, regardless of the pair dtype.
    """
    idx, seg = _nonempty_starts(offsets)
    out = np.zeros(n, dtype=np.float64)
    if len(idx):
        res = np.add.reduceat(values, idx, dtype=np.float64)
        out[seg if targets is None else targets[seg]] = res
    return out


def segment_sum_rows(
    values: np.ndarray, offsets: np.ndarray, n: int,
    targets: np.ndarray | None = None,
) -> np.ndarray:
    """Sum CSR segments of ``(nnz, m)`` rows into ``(n, m)`` float64."""
    idx, seg = _nonempty_starts(offsets)
    out = np.zeros((n, values.shape[1]), dtype=np.float64)
    if len(idx):
        res = np.add.reduceat(values, idx, axis=0, dtype=np.float64)
        out[seg if targets is None else targets[seg]] = res
    return out


def segment_max(
    values: np.ndarray, offsets: np.ndarray, n: int,
    targets: np.ndarray | None = None,
) -> np.ndarray:
    """Per-segment maximum into ``n`` bins (empty segments -> 0)."""
    idx, seg = _nonempty_starts(offsets)
    out = np.zeros(n, dtype=np.float64)
    if len(idx):
        res = np.maximum.reduceat(values, idx)
        out[seg if targets is None else targets[seg]] = res
    return out


# -- the Verlet skin list (legacy half-pair generation) ------------------------


class VerletList:
    """Amortized neighbor search with a skin-inflated candidate cache.

    Parameters
    ----------
    box:
        Simulation box (periodic displacement handling).
    skin_factor:
        Skin width as a fraction of the mean kernel support
        (``skin = skin_factor * 2 * mean(h)`` at build time).  ``0``
        disables caching: every query is a fresh search.

    Notes
    -----
    The rebuild criterion tracks, per particle, an *effective* drift ::

        e_i = |x_i - x_i^build| + 2 * max(h_i - h_i^build, 0)

    and rebuilds when ``max_i e_i > skin / 2``.  The displacement term is
    the textbook Verlet condition (two particles approaching each other
    contribute ``skin/2`` each); the second term accounts for per-pair
    cutoff growth when smoothing lengths adapt, so the criterion subsumes
    "``h`` grew past the cached cutoff" exactly rather than via the
    global maximum.  Shrinking ``h`` never forces a rebuild.

    A query against a valid cache re-filters the candidates by the exact
    per-pair cutoff ``2 max(h_i, h_j)``, so the returned
    :class:`~repro.sph.neighbors.HalfPairList` always equals a fresh
    search's, independent of when the last rebuild happened.
    """

    def __init__(self, box: Box, skin_factor: float = DEFAULT_SKIN_FACTOR) -> None:
        if skin_factor < 0:
            raise SimulationError(
                f"skin factor must be non-negative, got {skin_factor!r}"
            )
        self.box = box
        self.skin_factor = skin_factor
        #: Number of candidate-list (re)builds performed.
        self.n_builds = 0
        #: Number of queries served (builds + cache reuses).
        self.n_queries = 0
        self._cand_i: np.ndarray | None = None
        self._cand_j: np.ndarray | None = None
        self._ref_pos: np.ndarray | None = None
        self._ref_h: np.ndarray | None = None
        self._skin = 0.0

    @property
    def rebuild_fraction(self) -> float:
        """Builds per query (1.0 = no amortization yet)."""
        return self.n_builds / self.n_queries if self.n_queries else 0.0

    def invalidate(self) -> None:
        """Drop the cached candidate list (next query rebuilds)."""
        self._cand_i = None
        self._cand_j = None
        self._ref_pos = None
        self._ref_h = None

    def reorder(self, order: np.ndarray) -> None:
        """Follow a particle permutation (``new[k] = old[order[k]]``).

        The SFC sort in ``DomainDecompAndSync`` relabels particles every
        step; remapping the cached candidate indices through the inverse
        permutation keeps the cache valid across sorts.
        """
        if self._cand_i is None:
            return
        if len(order) != len(self._ref_pos):
            self.invalidate()
            return
        inverse = np.empty_like(order)
        inverse[order] = np.arange(len(order), dtype=order.dtype)
        i = inverse[self._cand_i]
        j = inverse[self._cand_j]
        # Keep the i < j half-pair orientation after relabeling.
        self._cand_i = np.minimum(i, j)
        self._cand_j = np.maximum(i, j)
        self._ref_pos = self._ref_pos[order]
        self._ref_h = self._ref_h[order]

    def query(self, pos: np.ndarray, h: np.ndarray) -> HalfPairList:
        """Exact half-pair list for the current positions and supports."""
        self.n_queries += 1
        if self._needs_rebuild(pos, h):
            self._build(pos, h)
        i, j, dx, r = _pair_geometry(pos, h, self.box, self._cand_i, self._cand_j)
        return HalfPairList(i=i, j=j, dx=dx, r=r, n_particles=len(pos))

    def _needs_rebuild(self, pos: np.ndarray, h: np.ndarray) -> bool:
        if self._cand_i is None or len(pos) != len(self._ref_pos):
            return True
        if self._skin <= 0.0:
            return True
        drift = self.box.displacement(pos - self._ref_pos)
        effective = np.sqrt(np.einsum("ij,ij->i", drift, drift))
        effective += SUPPORT_RADIUS * np.maximum(h - self._ref_h, 0.0)
        return bool(effective.max() > 0.5 * self._skin)

    def _build(self, pos: np.ndarray, h: np.ndarray) -> None:
        self.n_builds += 1
        self._skin = self.skin_factor * SUPPORT_RADIUS * float(np.mean(h))
        # Inflating every h by skin/2h-units makes the per-pair candidate
        # cutoff exactly 2 max(h_i, h_j) + skin.
        h_search = h + self._skin / SUPPORT_RADIUS
        candidates = find_neighbors(pos, h_search, self.box, half=True)
        self._cand_i = candidates.i
        self._cand_j = candidates.j
        self._ref_pos = pos.copy()
        self._ref_h = h.copy()


# -- the CSR Verlet skin list --------------------------------------------------


class CsrVerletList:
    """Skin-cached CSR neighbor lists over preallocated, reused buffers.

    Same caching contract as :class:`VerletList` (see its notes for the
    rebuild criterion), but the candidate structure is flat CSR and every
    query compacts the exact survivors into pooled buffers — steady-state
    queries perform no O(pairs) allocations.

    The candidate arrays are stored in *build labels*.  Each
    ``reorder(order)`` composes the step's SFC permutation into a
    build-label -> current-label map (O(N)); queries translate the
    candidate indices through that map (two flat gathers, only after a
    relabeling) and publish the segment-to-particle map as
    ``CsrNeighborList.targets``.  This keeps the skin cache valid across
    the per-step relabelings without ever re-sorting the flat arrays.

    ``cfast`` optionally routes both the build filter and the per-query
    exact filter through the compiled fast path (bitwise identical; see
    :mod:`repro.sph.csolver`).
    """

    def __init__(
        self,
        box: Box,
        skin_factor: float = DEFAULT_SKIN_FACTOR,
        cfast=None,
    ) -> None:
        if skin_factor < 0:
            raise SimulationError(
                f"skin factor must be non-negative, got {skin_factor!r}"
            )
        self.box = box
        self.skin_factor = skin_factor
        self.cfast = cfast
        #: Number of candidate-structure (re)builds performed.
        self.n_builds = 0
        #: Number of queries served (builds + cache reuses).
        self.n_queries = 0
        self.pool = BufferPool()
        self._row: np.ndarray | None = None  # build labels, per entry
        self._cand: np.ndarray | None = None  # build labels, per entry
        self._ref_pos: np.ndarray | None = None  # build order
        self._ref_h: np.ndarray | None = None  # build order
        self._cur_label: np.ndarray | None = None  # None = identity
        self._row_cur: np.ndarray | None = None
        self._cand_cur: np.ndarray | None = None
        self._trans_dirty = True
        self._skin = 0.0
        self._n = 0

    @property
    def rebuild_fraction(self) -> float:
        """Builds per query (1.0 = no amortization yet)."""
        return self.n_builds / self.n_queries if self.n_queries else 0.0

    def invalidate(self) -> None:
        """Drop the cached candidate structure (next query rebuilds)."""
        self._row = None
        self._cand = None
        self._ref_pos = None
        self._ref_h = None
        self._cur_label = None
        self._trans_dirty = True

    def reorder(self, order: np.ndarray) -> None:
        """Follow a particle permutation (``new[k] = old[order[k]]``).

        O(N): the inverse permutation is composed into the label map;
        the O(N k) candidate arrays are not touched.
        """
        if self._row is None:
            return
        if len(order) != self._n:
            self.invalidate()
            return
        inverse = np.empty(self._n, dtype=np.int32)
        inverse[order] = np.arange(self._n, dtype=np.int32)
        if self._cur_label is None:
            self._cur_label = inverse
        else:
            self._cur_label = inverse[self._cur_label]
        self._trans_dirty = True

    def query(self, pos: np.ndarray, h: np.ndarray) -> CsrNeighborList:
        """Exact CSR neighbor list for the current positions and supports.

        The returned arrays are views into this list's buffer pool,
        valid until the next query.
        """
        self.n_queries += 1
        if self.skin_factor == 0.0:
            # No skin: every query is a fresh exact search.
            self.n_builds += 1
            return csr_neighbors(pos, h, self.box, self.pool, cfast=self.cfast)
        if self._needs_rebuild(pos, h):
            self._build(pos, h)
        label = None
        if self._cur_label is None:
            row_cur, cand_cur, count_idx, targets = self._row, self._cand, None, None
        elif self.cfast is not None:
            # The compiled filter translates build labels on the fly, so
            # the two O(nnz) np.take gather passes are never materialized.
            row_cur, cand_cur, label = self._row, self._cand, self._cur_label
            count_idx, targets = self._row, self._cur_label
        else:
            if self._trans_dirty:
                nnz = len(self._cand)
                self._row_cur = self.pool.get("vl_rowc", nnz, np.int32)
                self._cand_cur = self.pool.get("vl_candc", nnz, np.int32)
                np.take(self._cur_label, self._row, out=self._row_cur, mode="clip")
                np.take(self._cur_label, self._cand, out=self._cand_cur, mode="clip")
                self._trans_dirty = False
            row_cur, cand_cur = self._row_cur, self._cand_cur
            count_idx, targets = self._row, self._cur_label
        counts, qrow, qcand, qdx, qr = _filter_candidates(
            pos, h, self.box, row_cur, cand_cur, self.pool,
            exclude_self=False, out_prefix="vl_q", in_place=False,
            want_geometry=True, count_idx=count_idx, cfast=self.cfast,
            label=label,
        )
        offsets = self.pool.get("vl_qoff", self._n + 1, np.int64)
        offsets[0] = 0
        np.cumsum(counts, out=offsets[1:])
        return CsrNeighborList(
            offsets=offsets, indices=qcand, row=qrow, dx=qdx, r=qr,
            n_particles=self._n, targets=targets,
        )

    def _needs_rebuild(self, pos: np.ndarray, h: np.ndarray) -> bool:
        if self._row is None or len(pos) != self._n:
            return True
        if self._cur_label is None:
            pos_b, h_b = pos, h
        else:
            pos_b = pos[self._cur_label]
            h_b = h[self._cur_label]
        drift = self.box.displacement(pos_b - self._ref_pos)
        effective = np.sqrt(np.einsum("ij,ij->i", drift, drift))
        effective += SUPPORT_RADIUS * np.maximum(h_b - self._ref_h, 0.0)
        return bool(effective.max() > 0.5 * self._skin)

    def _build(self, pos: np.ndarray, h: np.ndarray) -> None:
        self.n_builds += 1
        self._n = len(pos)
        self._skin = self.skin_factor * SUPPORT_RADIUS * float(np.mean(h))
        # Inflating every h by skin/2h-units makes the per-pair candidate
        # cutoff exactly 2 max(h_i, h_j) + skin.
        h_search = h + self._skin / SUPPORT_RADIUS
        if self.cfast is not None:
            _, self._row, self._cand, _, _ = _csr_filtered_fused(
                pos, h_search, self.box, self.pool, self.cfast,
                want_geometry=False, out_prefix="vl_b",
            )
        else:
            _, row, cand = _csr_candidates(pos, h_search, self.box, self.pool)
            _, self._row, self._cand, _, _ = _filter_candidates(
                pos, h_search, self.box, row, cand, self.pool,
                exclude_self=True, out_prefix="vl_b", in_place=True,
                want_geometry=False,
            )
        self._ref_pos = pos.copy()
        self._ref_h = h.copy()
        self._cur_label = None
        self._trans_dirty = True


# -- the per-step kernel cache (legacy half-pair generation) -------------------


class StepContext:
    """Memoized per-pair kernel quantities for one propagator step.

    Wraps a :class:`~repro.sph.neighbors.HalfPairList` plus the smoothing
    lengths the step runs with, and lazily evaluates (once each):

    ``w_i``/``w_j``
        ``W(r, h_i)`` and ``W(r, h_j)`` per pair — shared by ``Density``,
        ``IADVelocityDivCurl`` and the IAD gradient vectors.
    ``dwdh_i``/``dwdh_j``
        ``dW/dh`` per pair, for the grad-h (Omega) correction.
    :meth:`iad_vectors`
        The corrected gradient vectors ``A_i``/``A_j``, keyed on the
        identity of the ``c_iad`` matrix array so the cache can never
        serve vectors computed from stale matrices (the distributed
        driver refreshes halo matrices between IAD and MomentumEnergy,
        producing a new array and therefore a recompute).
    """

    def __init__(
        self,
        pairs: HalfPairList,
        h: np.ndarray,
        kernel=CubicSplineKernel,
    ) -> None:
        self.pairs = pairs
        self.h = h
        self.kernel = kernel
        self._w_i: np.ndarray | None = None
        self._w_j: np.ndarray | None = None
        self._dwdh_i: np.ndarray | None = None
        self._dwdh_j: np.ndarray | None = None
        self._iad_key: np.ndarray | None = None
        self._iad: tuple[np.ndarray, np.ndarray] | None = None

    @property
    def n_particles(self) -> int:
        return self.pairs.n_particles

    @property
    def w_i(self) -> np.ndarray:
        """``W(r, h_i)`` per half pair (memoized)."""
        if self._w_i is None:
            self._w_i = self.kernel.value(self.pairs.r, self.h[self.pairs.i])
        return self._w_i

    @property
    def w_j(self) -> np.ndarray:
        """``W(r, h_j)`` per half pair (memoized)."""
        if self._w_j is None:
            self._w_j = self.kernel.value(self.pairs.r, self.h[self.pairs.j])
        return self._w_j

    @property
    def dwdh_i(self) -> np.ndarray:
        """``dW/dh`` at ``h_i`` per half pair (memoized)."""
        if self._dwdh_i is None:
            from repro.sph.physics.grad_h import kernel_dh

            self._dwdh_i = kernel_dh(self.pairs.r, self.h[self.pairs.i], self.kernel)
        return self._dwdh_i

    @property
    def dwdh_j(self) -> np.ndarray:
        """``dW/dh`` at ``h_j`` per half pair (memoized)."""
        if self._dwdh_j is None:
            from repro.sph.physics.grad_h import kernel_dh

            self._dwdh_j = kernel_dh(self.pairs.r, self.h[self.pairs.j], self.kernel)
        return self._dwdh_j

    def iad_vectors(self, c_iad: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``A_i,ij`` and ``A_j,ij`` per half pair (memoized per matrix set).

        Both vectors point along ``x_j - x_i``; the mirrored pair's
        vectors are their exact negatives, which is what makes the
        symmetric momentum scatter conserve to round-off.
        """
        # Keyed by array *identity* (holding the reference, so a freed
        # array's address can never be recycled into a false cache hit).
        if self._iad is None or self._iad_key is not c_iad:
            d = -self.pairs.dx  # x_j - x_i
            a_i = np.einsum("kab,kb->ka", c_iad[self.pairs.i], d)
            a_i *= self.w_i[:, None]
            a_j = np.einsum("kab,kb->ka", c_iad[self.pairs.j], d)
            a_j *= self.w_j[:, None]
            self._iad = (a_i, a_j)
            self._iad_key = c_iad
        return self._iad


# -- the CSR/SoA kernel engine -------------------------------------------------


class CsrStepContext:
    """SoA kernel engine over one step's CSR neighbor list.

    The CSR analogue of :class:`StepContext`: wraps a
    :class:`~repro.sph.neighbors.CsrNeighborList` and lazily evaluates,
    once per step into pooled buffers, the per-entry kernel values
    (``w_own`` = ``W(r, h_row)``, ``w_other`` = ``W(r, h_col)``), the
    ``dW/dh`` values, and the IAD gradient vectors.  Per-particle sums
    run as float64 segment reductions over the CSR offsets
    (:meth:`reduce_sum` / :meth:`reduce_sum_rows` / :meth:`reduce_max`),
    scattered through the segment-to-particle map when the list's
    segments are in build order.

    ``pair_dtype`` selects the dtype of the per-entry arrays.  float32
    halves pair-array bandwidth while reductions still accumulate in
    float64; the float64 default is what the 1e-12 oracle-equivalence
    tests gate on (float32 agrees only to ~1e-4 relative).

    For :class:`~repro.sph.kernels.cubic_spline.CubicSplineKernel` the
    kernel shape is evaluated branchlessly in the buffers via ::

        w(q)  = 0.25 max(2-q, 0)^3 - max(1-q, 0)^3
        w'(q) = -0.75 max(2-q, 0)^2 + 3 max(1-q, 0)^2

    (algebraically identical to the piecewise definition on [0, 2] and
    zero beyond); other kernels fall back to their ``value`` method.
    """

    def __init__(
        self,
        csr: CsrNeighborList,
        h: np.ndarray,
        kernel=CubicSplineKernel,
        pool: BufferPool | None = None,
        pair_dtype: str | np.dtype = "float64",
        cfast=None,
    ) -> None:
        if isinstance(pair_dtype, str):
            if pair_dtype not in _PAIR_DTYPES:
                raise SimulationError(
                    f"pair_dtype must be one of {sorted(_PAIR_DTYPES)}, "
                    f"got {pair_dtype!r}"
                )
            pair_dtype = _PAIR_DTYPES[pair_dtype]
        self.csr = csr
        self.h = h
        self.kernel = kernel
        self.pool = pool if pool is not None else BufferPool()
        self.fdtype = np.dtype(pair_dtype)
        # The compiled physics kernels hardcode the float64 cubic spline;
        # any other configuration silently stays on the NumPy path.
        self.cfast = (
            cfast
            if self.fdtype == np.float64 and kernel is CubicSplineKernel
            else None
        )
        self.nnz = csr.n_pairs
        # Reduction plan: non-empty segments and their output particles,
        # shared by every reduction this step.
        idx, seg = _nonempty_starts(csr.offsets)
        self._red_idx = idx
        self._out_rows = seg if csr.targets is None else csr.targets[seg]
        self._dx_f: np.ndarray | None = None
        self._r_f: np.ndarray | None = None
        self._d: np.ndarray | None = None
        self._w_own: np.ndarray | None = None
        self._w_other: np.ndarray | None = None
        self._dwdh_own: np.ndarray | None = None
        self._dwdh_other: np.ndarray | None = None
        self._iad_key: np.ndarray | None = None
        self._iad: tuple[np.ndarray, np.ndarray] | None = None

    @property
    def n_particles(self) -> int:
        return self.csr.n_particles

    @property
    def row(self) -> np.ndarray:
        """Gather-target particle index per CSR entry."""
        return self.csr.row

    @property
    def col(self) -> np.ndarray:
        """Neighbor particle index per CSR entry."""
        return self.csr.indices

    @property
    def dx_f(self) -> np.ndarray:
        """``dx`` in the pair dtype (a cast buffer for float32)."""
        if self.fdtype == np.float64:
            return self.csr.dx
        if self._dx_f is None:
            buf = self.pool.rows("ct_dx32", self.nnz, 3, self.fdtype)
            buf[:] = self.csr.dx
            self._dx_f = buf
        return self._dx_f

    @property
    def r_f(self) -> np.ndarray:
        """``r`` in the pair dtype (a cast buffer for float32)."""
        if self.fdtype == np.float64:
            return self.csr.r
        if self._r_f is None:
            buf = self.pool.get("ct_r32", self.nnz, self.fdtype)
            buf[:] = self.csr.r
            self._r_f = buf
        return self._r_f

    @property
    def d(self) -> np.ndarray:
        """``x_col - x_row`` per entry (``-dx``), the IAD direction."""
        if self._d is None:
            buf = self.pool.rows("ct_d", self.nnz, 3, self.fdtype)
            np.negative(self.dx_f, out=buf)
            self._d = buf
        return self._d

    # -- gathers ---------------------------------------------------------------

    def _idx(self, side: str) -> np.ndarray:
        return self.csr.row if side == "row" else self.csr.indices

    def _cast(self, arr: np.ndarray) -> np.ndarray:
        return arr if arr.dtype == self.fdtype else arr.astype(self.fdtype)

    def gather(self, arr: np.ndarray, side: str, name: str) -> np.ndarray:
        """Per-entry gather ``arr[row]`` or ``arr[col]`` into a pooled buffer."""
        buf = self.pool.get(name, self.nnz, self.fdtype)
        np.take(self._cast(arr), self._idx(side), out=buf, mode="clip")
        return buf

    def gather_rows(self, arr: np.ndarray, side: str, name: str) -> np.ndarray:
        """Per-entry gather of ``(n, m)`` rows into a pooled buffer."""
        m = arr.shape[1]
        buf = self.pool.rows(name, self.nnz, m, self.fdtype)
        np.take(self._cast(arr), self._idx(side), axis=0, out=buf, mode="clip")
        return buf

    def scratch(self, name: str, width: int = 1) -> np.ndarray:
        """A pooled per-entry scratch array in the pair dtype."""
        if width == 1:
            return self.pool.get(name, self.nnz, self.fdtype)
        return self.pool.rows(name, self.nnz, width, self.fdtype)

    # -- kernel evaluations ----------------------------------------------------

    def _kernel_value(self, side: str, name: str) -> np.ndarray:
        """``W(r, h_side)`` per entry into the named buffer."""
        hb = self.gather(self.h, side, name + "_h")
        out = self.pool.get(name, self.nnz, self.fdtype)
        if self.kernel is CubicSplineKernel:
            t1 = self.pool.get(name + "_t", self.nnz, self.fdtype)
            q = out
            np.divide(self.r_f, hb, out=q)
            np.subtract(1.0, q, out=t1)
            np.maximum(t1, 0.0, out=t1)
            t1 *= t1 * t1
            np.subtract(2.0, q, out=q)
            np.maximum(q, 0.0, out=q)
            q *= q * q
            q *= 0.25
            q -= t1
            hb *= hb * hb
            q /= hb
            q *= _SIGMA_3D
            return q
        out[:] = self.kernel.value(self.csr.r, np.take(self.h, self._idx(side)))
        return out

    def _kernel_dh(self, side: str, name: str) -> np.ndarray:
        """``dW/dh`` per entry into the named buffer."""
        out = self.pool.get(name, self.nnz, self.fdtype)
        if self.kernel is not CubicSplineKernel:
            from repro.sph.physics.grad_h import kernel_dh

            out[:] = kernel_dh(
                self.csr.r, np.take(self.h, self._idx(side)), self.kernel
            )
            return out
        hb = self.gather(self.h, side, name + "_h")
        q = self.pool.get(name + "_q", self.nnz, self.fdtype)
        t1 = self.pool.get(name + "_t1", self.nnz, self.fdtype)
        t2 = self.pool.get(name + "_t2", self.nnz, self.fdtype)
        np.divide(self.r_f, hb, out=q)
        np.subtract(1.0, q, out=t1)
        np.maximum(t1, 0.0, out=t1)
        np.subtract(2.0, q, out=t2)
        np.maximum(t2, 0.0, out=t2)
        t1s = t1 * t1
        t2s = t2 * t2
        # dw = -0.75 t2^2 + 3 t1^2 ; w = 0.25 t2^3 - t1^3
        np.multiply(t1s, 3.0, out=out)
        out -= 0.75 * t2s
        out *= q  # q * dw
        t2s *= t2
        t2s *= 0.25
        t1s *= t1
        t2s -= t1s  # w
        t2s *= 3.0
        out += t2s  # 3 w + q dw
        hb *= hb
        hb *= hb  # h^4
        out /= hb
        out *= -_SIGMA_3D
        return out

    @property
    def w_own(self) -> np.ndarray:
        """``W(r, h_row)`` per entry (memoized)."""
        if self._w_own is None:
            self._w_own = self._kernel_value("row", "ct_wown")
        return self._w_own

    @property
    def w_other(self) -> np.ndarray:
        """``W(r, h_col)`` per entry (memoized)."""
        if self._w_other is None:
            self._w_other = self._kernel_value("col", "ct_woth")
        return self._w_other

    @property
    def dwdh_own(self) -> np.ndarray:
        """``dW/dh`` at ``h_row`` per entry (memoized)."""
        if self._dwdh_own is None:
            self._dwdh_own = self._kernel_dh("row", "ct_dhown")
        return self._dwdh_own

    def iad_vectors(self, c_iad: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``A_row,k`` and ``A_col,k`` per entry (memoized per matrix set).

        Both point along ``x_col - x_row``, matching the directed-oracle
        convention; mirrored entries produce exactly negated vectors.
        """
        if self._iad is None or self._iad_key is not c_iad:
            d = self.d
            c_src = self._cast(c_iad).reshape(len(c_iad), 9)
            a_own = self.pool.rows("ct_aown", self.nnz, 3, self.fdtype)
            a_oth = self.pool.rows("ct_aoth", self.nnz, 3, self.fdtype)
            cb = self.pool.rows("ct_cb", self.nnz, 9, self.fdtype)
            np.take(c_src, self.csr.row, axis=0, out=cb, mode="clip")
            np.einsum(
                "kab,kb->ka", cb.reshape(self.nnz, 3, 3), d, out=a_own
            )
            a_own *= self.w_own[:, None]
            np.take(c_src, self.csr.indices, axis=0, out=cb, mode="clip")
            np.einsum(
                "kab,kb->ka", cb.reshape(self.nnz, 3, 3), d, out=a_oth
            )
            a_oth *= self.w_other[:, None]
            self._iad = (a_own, a_oth)
            self._iad_key = c_iad
        return self._iad

    # -- segment reductions ----------------------------------------------------

    def reduce_sum(self, values: np.ndarray) -> np.ndarray:
        """Float64 segment sum to per-particle bins (empty rows -> 0)."""
        out = np.zeros(self.n_particles, dtype=np.float64)
        if len(self._red_idx):
            out[self._out_rows] = np.add.reduceat(
                values, self._red_idx, dtype=np.float64
            )
        return out

    def reduce_sum_rows(self, values: np.ndarray) -> np.ndarray:
        """Float64 segment sum of ``(nnz, m)`` rows to ``(n, m)``."""
        out = np.zeros((self.n_particles, values.shape[1]), dtype=np.float64)
        if len(self._red_idx):
            out[self._out_rows] = np.add.reduceat(
                values, self._red_idx, axis=0, dtype=np.float64
            )
        return out

    def reduce_max(self, values: np.ndarray) -> np.ndarray:
        """Per-particle segment maximum (empty rows -> 0)."""
        out = np.zeros(self.n_particles, dtype=np.float64)
        if len(self._red_idx):
            out[self._out_rows] = np.maximum.reduceat(values, self._red_idx)
        return out
