"""Compute-node assembly.

A :class:`Node` wires up one CPU socket, a set of GPU units grouped into
cards, the DRAM subsystem, a NIC and an always-on auxiliary draw.  The node
power trace is the sum of everything — it is what the node-level sensor
(pm_counters ``power`` file / Slurm's accounting source) observes, and what
the paper's "Other" category is computed against::

    other = node - gpus - cpu - memory
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareError
from repro.hardware.clock import VirtualClock
from repro.hardware.cpu import CpuDevice
from repro.hardware.gpu import GpuCard, GpuDevice
from repro.hardware.memory import MemoryDevice
from repro.hardware.nic import NicDevice
from repro.hardware.specs import CpuSpec, GpuSpec, MemorySpec, NicSpec
from repro.hardware.trace import SummedPowerTrace


@dataclass(frozen=True)
class NodeSpec:
    """Everything needed to build one node."""

    cpu: CpuSpec
    gpu: GpuSpec
    num_gpu_units: int
    memory: MemorySpec
    nic: NicSpec
    aux_watts: float
    card_overhead_watts: float = 0.0
    gpu_freq_user_controllable: bool = True

    def __post_init__(self) -> None:
        if self.num_gpu_units <= 0:
            raise HardwareError("a node needs at least one GPU unit")
        if self.num_gpu_units % self.gpu.gcds_per_card != 0:
            raise HardwareError(
                f"{self.num_gpu_units} GPU units do not form whole cards of "
                f"{self.gpu.gcds_per_card} GCD(s)"
            )
        if self.aux_watts < 0 or self.card_overhead_watts < 0:
            raise HardwareError("auxiliary powers must be >= 0")

    @property
    def num_cards(self) -> int:
        """Number of physical GPU cards (the sensor granularity)."""
        return self.num_gpu_units // self.gpu.gcds_per_card

    @property
    def peak_watts(self) -> float:
        """The node's maximum plausible draw, all components at peak."""
        return (
            self.cpu.power_model.peak_watts_nominal
            + self.memory.power_model.peak_watts_nominal
            + self.nic.power_model.peak_watts_nominal
            + self.gpu.power_model.peak_watts_nominal * self.num_gpu_units
            + self.aux_watts
            + self.card_overhead_watts * self.num_cards
        )

    @property
    def card_peak_watts(self) -> float:
        """One GPU card's maximum plausible draw (all its GCDs at peak)."""
        return (
            self.gpu.power_model.peak_watts_nominal * self.gpu.gcds_per_card
            + self.card_overhead_watts
        )


class Node:
    """One compute node: CPU + GPUs + memory + NIC + auxiliary draw."""

    def __init__(self, name: str, clock: VirtualClock, spec: NodeSpec) -> None:
        self.name = name
        self.clock = clock
        self.spec = spec

        self.cpu = CpuDevice(f"{name}.cpu", clock, spec.cpu)
        self.gpus: list[GpuDevice] = [
            GpuDevice(
                f"{name}.gpu{i}",
                clock,
                spec.gpu,
                user_controllable_freq=spec.gpu_freq_user_controllable,
            )
            for i in range(spec.num_gpu_units)
        ]
        per_card = spec.gpu.gcds_per_card
        self.cards: list[GpuCard] = [
            GpuCard(
                f"{name}.card{c}",
                self.gpus[c * per_card : (c + 1) * per_card],
                card_overhead_watts=spec.card_overhead_watts,
            )
            for c in range(spec.num_cards)
        ]
        self.memory = MemoryDevice(f"{name}.mem", clock, spec.memory)
        self.nic = NicDevice(f"{name}.nic", clock, spec.nic)

        device_traces = [self.cpu.trace, self.memory.trace, self.nic.trace]
        device_traces += [g.trace for g in self.gpus]
        # Card overheads are part of the node draw but not of any GCD trace.
        total_overhead = spec.card_overhead_watts * spec.num_cards
        self.trace = SummedPowerTrace(
            device_traces, constant_watts=spec.aux_watts + total_overhead
        )

    # -- convenience ---------------------------------------------------------

    @property
    def num_gpu_units(self) -> int:
        """Number of schedulable GPU units (ranks the node can host)."""
        return len(self.gpus)

    @property
    def num_cards(self) -> int:
        """Number of physical GPU cards."""
        return len(self.cards)

    def card_of(self, gpu_index: int) -> GpuCard:
        """The card holding GPU unit ``gpu_index``."""
        return self.cards[gpu_index // self.spec.gpu.gcds_per_card]

    def set_gpu_frequency(self, freq_hz: float, privileged: bool = False) -> None:
        """Set the compute frequency of every GPU unit on the node."""
        for gpu in self.gpus:
            gpu.set_frequency(freq_hz, privileged=privileged)

    def all_idle(self) -> None:
        """Drop every device to idle at the current time."""
        self.cpu.set_idle()
        self.memory.set_idle()
        self.nic.set_idle()
        for gpu in self.gpus:
            gpu.set_idle()

    # -- ground-truth observation ---------------------------------------------

    def power_at(self, t: float) -> float:
        """Ground-truth node power at time ``t`` (all devices + aux)."""
        return self.trace.power_at(t)

    def energy_between(self, t0: float, t1: float) -> float:
        """Ground-truth node energy over ``[t0, t1]``."""
        return self.trace.energy_between(t0, t1)

    def idle_power(self) -> float:
        """Node power with every device idle at nominal frequency."""
        idle = (
            self.spec.cpu.power_model.idle_watts_nominal
            + self.spec.memory.power_model.idle_watts_nominal
            + self.spec.nic.power_model.idle_watts_nominal
            + sum(g.power_model.idle_watts_nominal for g in self.gpus)
        )
        return idle + self.trace.constant_watts
