"""The time-stepping loop (SPH-EXA's propagator).

One :meth:`Propagator.step` runs the full function sequence of Figures 3
and 5, each call wrapped in a profiling hook region::

    DomainDecompAndSync -> FindNeighbors -> Density -> EquationOfState
    -> IADVelocityDivCurl -> MomentumEnergy [-> Gravity | TurbulenceDriving]
    -> Timestep -> UpdateQuantities -> UpdateSmoothingLength
    -> EnergyConservation

The hydro propagator (turbulence) includes driving; the gravity propagator
(Evrard) includes Barnes-Hut self-gravity.

The step pipeline runs over the pair cache layer
(:mod:`repro.sph.pair_cache`): ``FindNeighbors`` queries a Verlet skin
list (rebuilt only when particle drift or smoothing-length growth demands
it, so its cost amortizes across steps) and hands the physics kernels a
per-step context in which kernel values and IAD gradient vectors are each
evaluated once and shared by every consumer.  The default ``engine="csr"``
runs the flat CSR/SoA pipeline (:class:`~repro.sph.pair_cache.CsrVerletList`
+ :class:`~repro.sph.pair_cache.CsrStepContext`) whose kernel buffers
persist across steps; ``engine="pairlist"`` keeps the previous half-pair
generation for ablation comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.sph.box import Box
from repro.sph.cornerstone.domain import DomainDecomposition
from repro.sph.driving import TurbulenceDriver
from repro.sph.gravity import BarnesHutGravity
from repro.sph.hooks import ProfilingHooks
from repro.sph.kernels.cubic_spline import CubicSplineKernel
from repro.sph.neighbors import BufferPool
from repro.sph.pair_cache import (
    DEFAULT_SKIN_FACTOR,
    CsrStepContext,
    CsrVerletList,
    StepContext,
    VerletList,
)
from repro.sph.particles import ParticleSet
from repro.sph.physics import (
    compute_density,
    compute_iad_and_divcurl,
    compute_momentum_energy,
    compute_timestep,
    energy_conservation,
    ideal_gas_eos,
    update_quantities,
    update_smoothing_length,
)
from repro.sph.physics.conservation import ConservationTotals
from repro.sph.physics.eos import DEFAULT_GAMMA

#: Canonical function inventory (paper Figures 3 and 5).
HYDRO_FUNCTIONS = (
    "DomainDecompAndSync",
    "FindNeighbors",
    "Density",
    "EquationOfState",
    "IADVelocityDivCurl",
    "MomentumEnergy",
    "Timestep",
    "UpdateQuantities",
    "UpdateSmoothingLength",
    "EnergyConservation",
)

TURBULENCE_FUNCTIONS = (
    HYDRO_FUNCTIONS[:6] + ("TurbulenceDriving",) + HYDRO_FUNCTIONS[6:]
)
GRAVITY_FUNCTIONS = HYDRO_FUNCTIONS[:6] + ("Gravity",) + HYDRO_FUNCTIONS[6:]


@dataclass(frozen=True)
class StepStats:
    """Diagnostics of one completed step."""

    step: int
    dt: float
    n_pairs: int
    mean_neighbors: float
    totals: ConservationTotals
    #: Whether this step rebuilt the Verlet candidate list (always True
    #: for drivers without a skin cache, e.g. the distributed path).
    neighbors_rebuilt: bool = True


class Propagator:
    """Time integrator over a particle set.

    Parameters
    ----------
    box:
        Simulation box.
    n_ranks:
        Rank count for the domain decomposition (1 for serial runs).
    driver:
        Optional turbulence driver (Subsonic Turbulence case).
    gravity:
        Whether to include Barnes-Hut self-gravity (Evrard case).
    skin_factor:
        Verlet skin width as a fraction of the mean kernel support; 0
        rebuilds the neighbor list every step (the pre-cache behaviour).
    engine:
        ``"csr"`` (default) runs the flat CSR/SoA kernel engine;
        ``"pairlist"`` the previous half-pair generation (ablations).
    pair_dtype:
        Dtype of the CSR engine's per-pair arrays (``"float64"`` or
        ``"float32"``); segment reductions accumulate in float64 either
        way.  The float64 default is gated by the 1e-12 oracle tolerance.
    accel:
        ``"numpy"`` (default) runs the pure-NumPy kernels; ``"auto"``
        additionally compiles the :mod:`repro.sph.csolver` C fast path
        when a toolchain is available (falling back silently); ``"c"``
        requires it.  The compiled neighbor filter is bitwise identical
        to NumPy's; the compiled physics kernels agree to the 1e-12
        oracle tolerance (associativity of tiny dot products differs),
        which is why the portable default stays ``"numpy"``.
    """

    def __init__(
        self,
        box: Box,
        n_ranks: int = 1,
        gamma: float = DEFAULT_GAMMA,
        av_alpha: float = 1.0,
        n_target: int = 100,
        courant: float = 0.2,
        driver: TurbulenceDriver | None = None,
        gravity: bool = False,
        gravity_theta: float = 0.6,
        gravity_eps: float = 0.02,
        use_grad_h: bool = False,
        kernel=CubicSplineKernel,
        skin_factor: float = DEFAULT_SKIN_FACTOR,
        engine: str = "csr",
        pair_dtype: str = "float64",
        accel: str = "numpy",
    ) -> None:
        if engine not in ("csr", "pairlist"):
            raise SimulationError(
                f"engine must be 'csr' or 'pairlist', got {engine!r}"
            )
        from repro.sph import csolver

        self.accel = accel
        self._cfast = csolver.resolve(accel) if engine == "csr" else None
        self.box = box
        self.domain = DomainDecomposition(box, n_ranks)
        self.gamma = gamma
        self.av_alpha = av_alpha
        self.n_target = n_target
        self.courant = courant
        self.driver = driver
        self.gravity = gravity
        self.gravity_theta = gravity_theta
        self.gravity_eps = gravity_eps
        self.use_grad_h = use_grad_h
        self.kernel = kernel
        self.engine = engine
        self.pair_dtype = pair_dtype
        if engine == "csr":
            self.neighbor_list = CsrVerletList(box, skin_factor, cfast=self._cfast)
            # Kernel-engine buffers persist across steps (and substeps):
            # each step's context reuses them instead of reallocating.
            self._kernel_pool: BufferPool | None = BufferPool()
        else:
            self.neighbor_list = VerletList(box, skin_factor)
            self._kernel_pool = None
        self._step = 0
        self._dt_prev: float | None = None

    @property
    def function_sequence(self) -> tuple[str, ...]:
        """The loop functions this propagator runs, in order."""
        if self.driver is not None:
            return TURBULENCE_FUNCTIONS
        if self.gravity:
            return GRAVITY_FUNCTIONS
        return HYDRO_FUNCTIONS

    def step(self, ps: ParticleSet, hooks: ProfilingHooks) -> StepStats:
        """Advance the particle set by one time step."""
        with hooks.region("DomainDecompAndSync"):
            sync = self.domain.sync(ps)

        with hooks.region("FindNeighbors"):
            builds_before = self.neighbor_list.n_builds
            if sync.order is not None:
                self.neighbor_list.reorder(sync.order)
            pairs = self.neighbor_list.query(ps.pos, ps.h)
            if self.engine == "csr":
                ctx = CsrStepContext(
                    pairs, ps.h, self.kernel,
                    pool=self._kernel_pool, pair_dtype=self.pair_dtype,
                    cfast=self._cfast,
                )
            else:
                ctx = StepContext(pairs, ps.h, self.kernel)
            ps.nc = pairs.neighbor_counts()
            rebuilt = self.neighbor_list.n_builds > builds_before

        with hooks.region("Density"):
            compute_density(ps, ctx)

        with hooks.region("EquationOfState"):
            ideal_gas_eos(ps, self.gamma)

        with hooks.region("IADVelocityDivCurl"):
            compute_iad_and_divcurl(ps, ctx)

        with hooks.region("MomentumEnergy"):
            omega = None
            if self.use_grad_h:
                from repro.sph.physics.grad_h import compute_omega

                omega = compute_omega(ps, ctx)
            compute_momentum_energy(
                ps, ctx, av_alpha=self.av_alpha, omega=omega
            )

        potential = 0.0
        if self.gravity:
            with hooks.region("Gravity"):
                tree = BarnesHutGravity(
                    ps.pos,
                    ps.mass,
                    theta=self.gravity_theta,
                    eps=self.gravity_eps,
                )
                ps.acc = ps.acc + tree.acceleration()
                # Diagnostic potential from the same tree — the former
                # per-step O(N^2) direct sum survives only as the oracle
                # in the gravity tests.
                potential = tree.potential()

        if self.driver is not None:
            with hooks.region("TurbulenceDriving"):
                dt_drive = self._dt_prev if self._dt_prev else 1e-3
                self.driver.step(dt_drive)
                ps.acc = ps.acc + self.driver.acceleration(
                    ps.pos, cfast=self._cfast
                )

        with hooks.region("Timestep"):
            dt = compute_timestep(ps, self._dt_prev, courant=self.courant)

        with hooks.region("UpdateQuantities"):
            update_quantities(ps, dt, self.box)

        with hooks.region("UpdateSmoothingLength"):
            # Periodic minimum-image convention requires the kernel support
            # (2h) to stay below half the box; open boxes need no cap.
            h_max = 0.99 * self.box.length / 4.0 if self.box.periodic else None
            update_smoothing_length(ps, self.n_target, h_max=h_max)

        with hooks.region("EnergyConservation"):
            totals = energy_conservation(ps, potential=potential)

        self._dt_prev = dt
        self._step += 1
        # CSR stores directed entries; report undirected pairs like the
        # half-pair engine so stats are comparable across engines.
        n_pairs = pairs.n_pairs // 2 if self.engine == "csr" else pairs.n_pairs
        return StepStats(
            step=self._step,
            dt=dt,
            n_pairs=n_pairs,
            mean_neighbors=float(np.mean(ps.nc)),
            totals=totals,
            neighbors_rebuilt=rebuilt,
        )
