"""Sharded campaign engine with a content-addressed result cache.

The campaign layer turns the paper's headline experiments — frequency ×
test-case × system sweeps of independent instrumented runs — into one
shared execution substrate:

* :mod:`~repro.campaign.spec` — declarative :class:`CampaignSpec` axes,
  expanded to fully-resolved :class:`RunKey` points;
* :mod:`~repro.campaign.keys` — run identity and the content-addressed
  cache hash (config content + code version);
* :mod:`~repro.campaign.store` — atomic on-disk result cache, so
  re-running a campaign only executes misses and a killed sweep resumes;
* :mod:`~repro.campaign.executor` — serial or ``multiprocessing``-sharded
  execution with deterministic per-run seeding;
* :mod:`~repro.campaign.merge` — order-independent merges back into the
  exact structures the serial experiment functions return;
* :mod:`~repro.campaign.report` — execution stats and per-shard
  telemetry health.
"""

from repro.campaign.executor import (
    CampaignStats,
    ProgressFn,
    execute,
    execute_key,
)
from repro.campaign.keys import (
    CACHE_SCHEMA_VERSION,
    CODE_VERSION,
    RunKey,
    canonical_payload,
    run_key_hash,
    sort_key,
)
from repro.campaign.merge import (
    merge_figure1,
    merge_figure4,
    merge_figure5,
    merge_weak_scaling,
)
from repro.campaign.report import campaign_summary
from repro.campaign.spec import CampaignSpec, expand
from repro.campaign.store import (
    AccountingSummary,
    CampaignResult,
    ResultStore,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CODE_VERSION",
    "AccountingSummary",
    "CampaignResult",
    "CampaignSpec",
    "CampaignStats",
    "ProgressFn",
    "ResultStore",
    "RunKey",
    "campaign_summary",
    "canonical_payload",
    "execute",
    "execute_key",
    "expand",
    "merge_figure1",
    "merge_figure4",
    "merge_figure5",
    "merge_weak_scaling",
    "run_key_hash",
    "sort_key",
]
