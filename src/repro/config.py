"""System and simulation configurations reproducing Table 1 of the paper.

Three systems are modelled:

* **LUMI-G** — HPE/Cray EX blades: 1x 64-core AMD EPYC 7A53 (512 GB), 4x AMD
  MI250X cards = 8 GCDs per node (one MPI rank drives one GCD), Slingshot-11
  fabric, HPE/Cray ``pm_counters`` telemetry with a *memory* power sensor,
  GPU frequency **not** user controllable.
* **CSCS-A100** — 1x 64-core AMD EPYC 7713, 4x NVIDIA A100-SXM4-80GB per
  node, NVML telemetry (no separate memory sensor), GPU frequency **not**
  user controllable.
* **miniHPC** — 2x 28-core Intel Xeon Gold 6258R (modelled as one combined
  CPU complex, 1.5 TB), 2x NVIDIA A100-PCIE-40GB per node, NVML telemetry,
  GPU frequency user controllable (the frequency-sweep system of Figures
  4/5).

Power-model coefficients are calibrated from public TDP/idle figures for
these parts; they are documented inline and summarized in EXPERIMENTS.md.
The *shape* of every experiment (who wins, crossovers) depends on the
structure of the model rather than the exact coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.cluster import NetworkModel
from repro.hardware.node import NodeSpec
from repro.hardware.power_model import PowerModel
from repro.hardware.specs import CpuSpec, GpuSpec, MemorySpec, NicSpec
from repro.units import ghz, mhz

# ---------------------------------------------------------------------------
# GPU specifications
# ---------------------------------------------------------------------------

#: AMD MI250X, one GCD (the unit an MPI rank drives).  Full-card TDP 560 W
#: and ~90 W idle split across two GCDs plus card overhead; peak FP64 vector
#: 23.95 TFLOP/s and 1.6 TB/s HBM2e per GCD.
MI250X_GCD = GpuSpec(
    model="AMD MI250X (GCD)",
    vendor="amd",
    memory_gib=64.0,
    nominal_freq_hz=mhz(1700),
    memory_freq_hz=mhz(1600),
    supported_freqs_hz=tuple(
        mhz(f) for f in (800, 900, 1000, 1100, 1200, 1300, 1400, 1500, 1600, 1700)
    ),
    peak_flops=23.95e12,
    peak_bandwidth=1.6e12,
    power_model=PowerModel(
        static_watts=16.0,
        clock_watts=42.0,
        compute_watts=160.0,
        memory_watts=62.0,
        alpha=3.0,
    ),
    gcds_per_card=2,
)

#: Discrete frequencies used by the miniHPC sweep (paper Figures 4 and 5:
#: 1410 MHz baseline down to 1005 MHz).
A100_SWEEP_FREQS_MHZ = (1410, 1365, 1320, 1275, 1230, 1185, 1140, 1095, 1050, 1005)

_A100_SUPPORTED = tuple(mhz(f) for f in A100_SWEEP_FREQS_MHZ + (960, 900, 800, 700))

#: NVIDIA A100-SXM4-80GB: 400 W TDP, ~60 W idle, 9.7 TFLOP/s FP64 vector,
#: 2.04 TB/s HBM2e.
A100_SXM4_80GB = GpuSpec(
    model="NVIDIA A100-SXM4-80GB",
    vendor="nvidia",
    memory_gib=80.0,
    nominal_freq_hz=mhz(1410),
    memory_freq_hz=mhz(1593),
    supported_freqs_hz=_A100_SUPPORTED,
    peak_flops=9.7e12,
    peak_bandwidth=2.04e12,
    power_model=PowerModel(
        static_watts=20.0,
        clock_watts=42.0,
        compute_watts=255.0,
        memory_watts=83.0,
        alpha=3.0,
    ),
    gcds_per_card=1,
)

#: NVIDIA A100-PCIE-40GB: 250 W TDP, ~55 W idle, 9.7 TFLOP/s FP64,
#: 1.56 TB/s HBM2.
A100_PCIE_40GB = GpuSpec(
    model="NVIDIA A100-PCIE-40GB",
    vendor="nvidia",
    memory_gib=40.0,
    nominal_freq_hz=mhz(1410),
    memory_freq_hz=mhz(1593),
    supported_freqs_hz=_A100_SUPPORTED,
    peak_flops=9.7e12,
    peak_bandwidth=1.555e12,
    power_model=PowerModel(
        static_watts=17.0,
        clock_watts=39.0,
        compute_watts=142.0,
        memory_watts=52.0,
        alpha=3.0,
    ),
    gcds_per_card=1,
)

# ---------------------------------------------------------------------------
# CPU / memory / NIC specifications
# ---------------------------------------------------------------------------

#: AMD EPYC 7A53 "Trento" (LUMI-G host CPU): 64 cores, 280 W TDP.
EPYC_7A53 = CpuSpec(
    model="AMD EPYC 7A53",
    cores=64,
    nominal_freq_hz=ghz(2.0),
    peak_flops=2.0e12,
    power_model=PowerModel(
        static_watts=58.0, clock_watts=32.0, compute_watts=150.0, memory_watts=40.0
    ),
)

#: AMD EPYC 7713 (CSCS-A100 host CPU; Table 1 prints "7113"): 64 cores, 225 W.
EPYC_7713 = CpuSpec(
    model="AMD EPYC 7713",
    cores=64,
    nominal_freq_hz=ghz(2.0),
    peak_flops=2.0e12,
    power_model=PowerModel(
        static_watts=52.0, clock_watts=28.0, compute_watts=110.0, memory_watts=35.0
    ),
)

#: 2x Intel Xeon Gold 6258R modelled as one combined complex: 56 cores,
#: 2 x 205 W TDP.
XEON_6258R_DUAL = CpuSpec(
    model="2x Intel Xeon Gold 6258R",
    cores=56,
    nominal_freq_hz=ghz(2.7),
    peak_flops=4.8e12,
    power_model=PowerModel(
        static_watts=96.0, clock_watts=54.0, compute_watts=200.0, memory_watts=60.0
    ),
)

MEMORY_512GB = MemorySpec(
    capacity_gib=512.0,
    peak_bandwidth=400e9,
    power_model=PowerModel(
        static_watts=34.0, clock_watts=6.0, compute_watts=0.0, memory_watts=70.0
    ),
)

MEMORY_1_5TB = MemorySpec(
    capacity_gib=1536.0,
    peak_bandwidth=280e9,
    power_model=PowerModel(
        static_watts=44.0, clock_watts=6.0, compute_watts=0.0, memory_watts=58.0
    ),
)

SLINGSHOT_NIC = NicSpec(
    model="HPE Slingshot-11",
    bandwidth_bytes_per_s=25e9,
    latency_s=1.8e-6,
    power_model=PowerModel(
        static_watts=14.0, clock_watts=2.0, compute_watts=0.0, memory_watts=12.0
    ),
)

HDR_NIC = NicSpec(
    model="Mellanox HDR-200",
    bandwidth_bytes_per_s=25e9,
    latency_s=1.5e-6,
    power_model=PowerModel(
        static_watts=12.0, clock_watts=2.0, compute_watts=0.0, memory_watts=10.0
    ),
)

EDR_NIC = NicSpec(
    model="Mellanox EDR-100",
    bandwidth_bytes_per_s=12.5e9,
    latency_s=1.6e-6,
    power_model=PowerModel(
        static_watts=10.0, clock_watts=2.0, compute_watts=0.0, memory_watts=8.0
    ),
)

# ---------------------------------------------------------------------------
# System configurations
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SlurmTimingModel:
    """How long the non-application phases of a job take on a system.

    These phases are what Slurm's energy accounting sees but PMT (which
    starts at the first time-step) does not — the source of the Figure 1
    validation gap.  Times grow with node count: launching and wiring up
    more ranks takes longer.
    """

    #: Fixed prolog + srun launch time in seconds.
    launch_base_s: float
    #: Additional launch seconds per node.
    launch_per_node_s: float
    #: Application init (IC generation, allocation, host-to-device copy)
    #: in seconds per (million particles per rank).
    init_s_per_mparticle: float
    #: Fixed application init overhead in seconds.
    init_base_s: float
    #: Job epilog / teardown seconds.
    teardown_s: float


@dataclass(frozen=True)
class SystemConfig:
    """One of the paper's three systems."""

    name: str
    node_spec: NodeSpec
    network: NetworkModel
    pmt_backend: str
    has_memory_sensor: bool
    slurm_timing: SlurmTimingModel
    max_nodes: int

    def __post_init__(self) -> None:
        if self.pmt_backend not in ("cray", "nvml", "rocm", "rapl", "dummy"):
            raise ConfigurationError(
                f"unknown PMT backend {self.pmt_backend!r} for {self.name!r}"
            )
        if self.max_nodes <= 0:
            raise ConfigurationError("max_nodes must be positive")

    @property
    def ranks_per_node(self) -> int:
        """One MPI rank per schedulable GPU unit."""
        return self.node_spec.num_gpu_units

    @property
    def cards_per_node(self) -> int:
        """Physical GPU cards per node (power-sensor granularity)."""
        return self.node_spec.num_cards

    def nodes_for_cards(self, num_cards: int) -> int:
        """Nodes needed to provide ``num_cards`` GPU cards."""
        per_node = self.cards_per_node
        if num_cards <= 0 or num_cards % per_node:
            raise ConfigurationError(
                f"{self.name}: card count {num_cards} is not a multiple of "
                f"{per_node} cards/node"
            )
        nodes = num_cards // per_node
        if nodes > self.max_nodes:
            raise ConfigurationError(
                f"{self.name}: {num_cards} cards needs {nodes} nodes, "
                f"max is {self.max_nodes}"
            )
        return nodes


LUMI_G = SystemConfig(
    name="LUMI-G",
    node_spec=NodeSpec(
        cpu=EPYC_7A53,
        gpu=MI250X_GCD,
        num_gpu_units=8,
        memory=MEMORY_512GB,
        nic=SLINGSHOT_NIC,
        aux_watts=330.0,
        card_overhead_watts=16.0,
        gpu_freq_user_controllable=False,
    ),
    network=NetworkModel(
        latency_s=1.8e-6, bandwidth_bytes_per_s=25e9, intra_node_factor=6.0
    ),
    pmt_backend="cray",
    has_memory_sensor=True,
    slurm_timing=SlurmTimingModel(
        launch_base_s=62.0,
        launch_per_node_s=3.4,
        init_s_per_mparticle=0.85,
        init_base_s=18.0,
        teardown_s=12.0,
    ),
    max_nodes=1024,
)

CSCS_A100 = SystemConfig(
    name="CSCS-A100",
    node_spec=NodeSpec(
        cpu=EPYC_7713,
        gpu=A100_SXM4_80GB,
        num_gpu_units=4,
        memory=MEMORY_512GB,
        nic=HDR_NIC,
        aux_watts=245.0,
        card_overhead_watts=0.0,
        gpu_freq_user_controllable=False,
    ),
    network=NetworkModel(
        latency_s=1.5e-6, bandwidth_bytes_per_s=25e9, intra_node_factor=5.0
    ),
    pmt_backend="nvml",
    has_memory_sensor=False,
    slurm_timing=SlurmTimingModel(
        launch_base_s=17.0,
        launch_per_node_s=1.2,
        init_s_per_mparticle=0.30,
        init_base_s=9.0,
        teardown_s=6.0,
    ),
    max_nodes=128,
)

MINIHPC = SystemConfig(
    name="miniHPC",
    node_spec=NodeSpec(
        cpu=XEON_6258R_DUAL,
        gpu=A100_PCIE_40GB,
        num_gpu_units=2,
        memory=MEMORY_1_5TB,
        nic=EDR_NIC,
        aux_watts=170.0,
        card_overhead_watts=0.0,
        gpu_freq_user_controllable=True,
    ),
    network=NetworkModel(
        latency_s=1.6e-6, bandwidth_bytes_per_s=12.5e9, intra_node_factor=3.0
    ),
    pmt_backend="nvml",
    has_memory_sensor=False,
    slurm_timing=SlurmTimingModel(
        launch_base_s=8.0,
        launch_per_node_s=0.8,
        init_s_per_mparticle=0.34,
        init_base_s=5.0,
        teardown_s=4.0,
    ),
    max_nodes=1,
)

SYSTEMS: dict[str, SystemConfig] = {
    s.name: s for s in (LUMI_G, CSCS_A100, MINIHPC)
}


def get_system(name: str) -> SystemConfig:
    """Look up a system configuration by its Table 1 name."""
    try:
        return SYSTEMS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown system {name!r}; available: {sorted(SYSTEMS)}"
        ) from None


# ---------------------------------------------------------------------------
# Simulation (test-case) configurations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TestCaseConfig:
    """One of the paper's two production test cases."""

    name: str
    #: Particles per GPU unit (per MPI rank) in the paper-scale runs.
    particles_per_gpu: float
    #: Number of time-steps (``-s 100`` in Table 1).
    num_steps: int
    #: Whether the case needs self-gravity (Evrard) or driving (turbulence).
    has_gravity: bool
    has_driving: bool
    #: Table 1 global particle counts in billions (for reference/reporting).
    global_particles_billions: tuple[float, ...] = ()


SUBSONIC_TURBULENCE = TestCaseConfig(
    name="Subsonic Turbulence",
    particles_per_gpu=150e6,
    num_steps=100,
    has_gravity=False,
    has_driving=True,
    global_particles_billions=(0.6, 1.2, 2.4, 7.4, 9.2, 14.7),
)

EVRARD_COLLAPSE = TestCaseConfig(
    name="Evrard Collapse",
    particles_per_gpu=80e6,
    num_steps=100,
    has_gravity=True,
    has_driving=False,
    global_particles_billions=(0.6, 1.2, 2.4, 3.2, 4.8, 7.7),
)

#: Pure-hydro blast demo case used by the observability commands
#: (``export-trace`` / ``watch``).  Not part of Table 1 — the paper's
#: production cases stay the only entries in :data:`TEST_CASES`.
SEDOV_BLAST = TestCaseConfig(
    name="Sedov Blast",
    particles_per_gpu=125e6,
    num_steps=100,
    has_gravity=False,
    has_driving=False,
    global_particles_billions=(1.0, 2.0, 4.0),
)

TEST_CASES: dict[str, TestCaseConfig] = {
    c.name: c for c in (SUBSONIC_TURBULENCE, EVRARD_COLLAPSE)
}

#: Cases the observability commands accept: the paper cases plus Sedov.
OBSERVABILITY_CASES: dict[str, TestCaseConfig] = {
    **TEST_CASES,
    SEDOV_BLAST.name: SEDOV_BLAST,
}


# ---------------------------------------------------------------------------
# Campaign execution settings
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CampaignSettings:
    """Execution defaults of the campaign engine (``repro campaign``).

    These are deliberately *cosmetic* with respect to results: none of
    them enters the content-addressed run identity, so changing the
    cache location, the worker count, or any federation tunable can
    never invalidate (or corrupt) a cached result.  Environment
    overrides: ``REPRO_CACHE_DIR``, ``REPRO_CAMPAIGN_WORKERS``,
    ``REPRO_LEASE_TTL_S``, ``REPRO_MAX_ATTEMPTS``, and
    ``REPRO_WORKER_SYSTEMS`` (comma-separated system names this worker
    prefers to execute, for federated placement).
    """

    #: Root directory of the content-addressed result cache.
    cache_dir: str = ".repro-cache"
    #: Worker shards executing cache misses; 1 is the serial reference
    #: path (bit-identical to any sharded execution by construction).
    workers: int = 1
    #: Federated lease time-to-live: a lease whose heartbeat is older
    #: than this is considered abandoned and may be stolen.
    lease_ttl_s: float = 30.0
    #: Failed attempts per key before it is quarantined as poisoned.
    max_attempts: int = 3
    #: System names this worker advertises as preferred (federated
    #: placement); empty means no preference.
    worker_systems: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError("campaign workers must be >= 1")
        if not self.cache_dir:
            raise ConfigurationError("campaign cache_dir must be non-empty")
        if self.lease_ttl_s <= 0:
            raise ConfigurationError("campaign lease_ttl_s must be > 0")
        if self.max_attempts < 1:
            raise ConfigurationError("campaign max_attempts must be >= 1")

    def federation(self):
        """The :class:`~repro.campaign.queue.FederationConfig` view."""
        from repro.campaign.queue import FederationConfig

        return FederationConfig(
            lease_ttl_s=self.lease_ttl_s,
            heartbeat_s=min(
                FederationConfig.heartbeat_s, self.lease_ttl_s / 3.0
            ),
            max_attempts=self.max_attempts,
        )

    @classmethod
    def from_env(cls) -> "CampaignSettings":
        """Settings with environment overrides applied."""
        import os

        def _number(name, default, parse):
            text = os.environ.get(name, "")
            if not text:
                return default
            try:
                return parse(text)
            except ValueError:
                raise ConfigurationError(
                    f"{name}={text!r} is not a number"
                ) from None

        systems_text = os.environ.get("REPRO_WORKER_SYSTEMS", "")
        worker_systems = tuple(
            name.strip() for name in systems_text.split(",") if name.strip()
        )
        return cls(
            cache_dir=os.environ.get("REPRO_CACHE_DIR", cls.cache_dir),
            workers=_number("REPRO_CAMPAIGN_WORKERS", cls.workers, int),
            lease_ttl_s=_number("REPRO_LEASE_TTL_S", cls.lease_ttl_s, float),
            max_attempts=_number("REPRO_MAX_ATTEMPTS", cls.max_attempts, int),
            worker_systems=worker_systems,
        )


#: Built-in campaign defaults (no environment applied).
DEFAULT_CAMPAIGN = CampaignSettings()
