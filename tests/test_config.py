"""Tests for the Table 1 system and test-case configurations."""

import pytest

from repro.config import (
    A100_SWEEP_FREQS_MHZ,
    CSCS_A100,
    EVRARD_COLLAPSE,
    LUMI_G,
    MINIHPC,
    SUBSONIC_TURBULENCE,
    SYSTEMS,
    TEST_CASES,
    get_system,
)
from repro.errors import ConfigurationError
from repro.units import mhz


class TestSystems:
    def test_three_systems(self):
        assert set(SYSTEMS) == {"LUMI-G", "CSCS-A100", "miniHPC"}

    def test_get_system(self):
        assert get_system("LUMI-G") is LUMI_G

    def test_get_unknown_system(self):
        with pytest.raises(ConfigurationError):
            get_system("frontier")

    def test_lumi_table1_row(self):
        assert LUMI_G.node_spec.cpu.cores == 64
        assert LUMI_G.node_spec.num_gpu_units == 8
        assert LUMI_G.node_spec.gpu.gcds_per_card == 2
        assert LUMI_G.node_spec.gpu.memory_gib == 64.0
        assert LUMI_G.node_spec.gpu.nominal_freq_hz == mhz(1700)
        assert LUMI_G.node_spec.gpu.memory_freq_hz == mhz(1600)
        assert LUMI_G.pmt_backend == "cray"
        assert LUMI_G.has_memory_sensor

    def test_cscs_table1_row(self):
        assert CSCS_A100.node_spec.num_gpu_units == 4
        assert CSCS_A100.node_spec.gpu.memory_gib == 80.0
        assert CSCS_A100.node_spec.gpu.nominal_freq_hz == mhz(1410)
        assert CSCS_A100.node_spec.gpu.memory_freq_hz == mhz(1593)
        assert not CSCS_A100.has_memory_sensor
        assert not CSCS_A100.node_spec.gpu_freq_user_controllable

    def test_minihpc_table1_row(self):
        assert MINIHPC.node_spec.num_gpu_units == 2
        assert MINIHPC.node_spec.gpu.memory_gib == 40.0
        assert MINIHPC.node_spec.gpu_freq_user_controllable
        assert MINIHPC.max_nodes == 1

    def test_ranks_per_node_is_gpu_units(self):
        assert LUMI_G.ranks_per_node == 8
        assert CSCS_A100.ranks_per_node == 4

    def test_cards_per_node(self):
        assert LUMI_G.cards_per_node == 4
        assert CSCS_A100.cards_per_node == 4
        assert MINIHPC.cards_per_node == 2

    def test_nodes_for_cards(self):
        assert LUMI_G.nodes_for_cards(48) == 12
        assert CSCS_A100.nodes_for_cards(8) == 2

    def test_nodes_for_cards_invalid(self):
        with pytest.raises(ConfigurationError):
            LUMI_G.nodes_for_cards(6)  # not a multiple of 4 cards/node
        with pytest.raises(ConfigurationError):
            MINIHPC.nodes_for_cards(4)  # exceeds the single node

    def test_sweep_frequencies_span_paper_range(self):
        assert max(A100_SWEEP_FREQS_MHZ) == 1410
        assert min(A100_SWEEP_FREQS_MHZ) == 1005
        for f in A100_SWEEP_FREQS_MHZ:
            assert mhz(f) in MINIHPC.node_spec.gpu.supported_freqs_hz


class TestTestCases:
    def test_two_cases(self):
        assert set(TEST_CASES) == {"Subsonic Turbulence", "Evrard Collapse"}

    def test_turbulence_parameters(self):
        assert SUBSONIC_TURBULENCE.particles_per_gpu == 150e6
        assert SUBSONIC_TURBULENCE.num_steps == 100
        assert SUBSONIC_TURBULENCE.has_driving
        assert not SUBSONIC_TURBULENCE.has_gravity

    def test_evrard_parameters(self):
        assert EVRARD_COLLAPSE.particles_per_gpu == 80e6
        assert EVRARD_COLLAPSE.has_gravity
        assert not EVRARD_COLLAPSE.has_driving

    def test_global_particle_counts_from_table1(self):
        assert SUBSONIC_TURBULENCE.global_particles_billions == (
            0.6, 1.2, 2.4, 7.4, 9.2, 14.7,
        )
        assert EVRARD_COLLAPSE.global_particles_billions == (
            0.6, 1.2, 2.4, 3.2, 4.8, 7.7,
        )
