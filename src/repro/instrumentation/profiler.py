"""The PMT energy profiler attached to the SPH-EXA hooks.

Per rank, the profiler snapshots the relevant PMT counters when a
function-call region begins and when *that rank's* call completes, and
accumulates the deltas into per-(rank, function) records.  Counter
sources per platform:

* **Cray (LUMI-G)** — one ``cray`` PMT meter per node delivers node, CPU,
  memory and per-card accelerator counters in a single read; a rank's
  ``gpu`` counter is its card's ``accelN`` (shared with its card-mate GCD).
* **NVML systems (CSCS-A100, miniHPC)** — a per-rank ``nvml`` meter for
  the GPU, a shared per-node ``rapl`` meter for the CPU, and the IPMI node
  sensor for the node counter.  No memory counter exists (Figure 2's
  "Other" therefore absorbs memory on these systems).

Reads at identical simulated timestamps are cached per node, matching the
fact that co-located ranks reading the same counter at the same instant
see the same value.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.errors import MeasurementError
from repro.instrumentation.records import (
    FunctionEnergyRecord,
    NodeWindowRecord,
    RunMeasurements,
)
from repro.mpi.mapping import RankPlacement
from repro.pmt.backends.cray import CrayPMT
from repro.pmt.backends.nvml import NvmlPMT
from repro.pmt.backends.rapl import RaplPMT
from repro.sensors.telemetry import NodeTelemetry


class EnergyProfiler:
    """Per-rank, per-function PMT measurement collection."""

    def __init__(
        self,
        placement: RankPlacement,
        telemetries: list[NodeTelemetry],
        system: SystemConfig,
    ) -> None:
        if len(telemetries) != placement.cluster.num_nodes:
            raise MeasurementError("one telemetry per node required")
        self.placement = placement
        self.telemetries = telemetries
        self.system = system
        self.clock = placement.cluster.clock

        self._cray: list[CrayPMT | None] = [None] * len(telemetries)
        self._rapl: list[RaplPMT | None] = [None] * len(telemetries)
        self._nvml: dict[int, NvmlPMT] = {}
        if system.pmt_backend == "cray":
            self._cray = [CrayPMT(telemetry=tel) for tel in telemetries]
        else:
            self._rapl = [RaplPMT(telemetry=tel) for tel in telemetries]
            for rank in range(placement.size):
                loc = placement.location(rank)
                self._nvml[rank] = NvmlPMT(
                    telemetry=telemetries[loc.node_index],
                    device_index=loc.card_index,
                )

        self._node_cache: dict[tuple[int, float], dict[str, float]] = {}
        self._open: dict[int, tuple[float, dict[str, float]]] = {}
        self._records: dict[tuple[int, str], FunctionEnergyRecord] = {}
        self._app_window: tuple[float, list[dict[str, float]]] | None = None
        self._app_end: tuple[float, list[dict[str, float]]] | None = None

    # -- snapshots --------------------------------------------------------------

    def _node_counters(self, node_index: int) -> dict[str, float]:
        """Node-shared counters (cached by simulated timestamp)."""
        key = (node_index, self.clock.now)
        cached = self._node_cache.get(key)
        if cached is not None:
            return cached
        tel = self.telemetries[node_index]
        out: dict[str, float] = {}
        cray = self._cray[node_index]
        if cray is not None:
            state = cray.read()
            out["node"] = state.joules_of("node")
            out["cpu"] = state.joules_of("cpu")
            if "memory" in state.names():
                out["memory"] = state.joules_of("memory")
            for i in range(len(tel.node.cards)):
                out[f"accel{i}"] = state.joules_of(f"accel{i}")
        else:
            rapl = self._rapl[node_index]
            assert rapl is not None
            out["cpu"] = rapl.read().joules
            out["node"] = tel.slurm_energy_reading(self.clock.now).joules
        # Only keep the freshest timestamp per node to bound memory.
        self._node_cache = {
            k: v for k, v in self._node_cache.items() if k[0] != node_index
        }
        self._node_cache[key] = out
        return out

    def snapshot(self, rank: int) -> dict[str, float]:
        """This rank's canonical counters (joules) right now."""
        loc = self.placement.location(rank)
        shared = self._node_counters(loc.node_index)
        out = {"node": shared["node"], "cpu": shared["cpu"]}
        if "memory" in shared:
            out["memory"] = shared["memory"]
        if self.system.pmt_backend == "cray":
            out["gpu"] = shared[f"accel{loc.card_index}"]
        else:
            out["gpu"] = self._nvml[rank].read().joules
        return out

    # -- region instrumentation ----------------------------------------------------

    def begin(self, rank: int) -> None:
        """Called when a rank enters an instrumented function region."""
        if rank in self._open:
            raise MeasurementError(f"rank {rank} already has an open region")
        self._open[rank] = (self.clock.now, self.snapshot(rank))

    def end(self, rank: int, function: str) -> None:
        """Called when a rank's function call completes (its own end time)."""
        try:
            t0, start = self._open.pop(rank)
        except KeyError:
            raise MeasurementError(
                f"rank {rank} has no open region to end"
            ) from None
        end = self.snapshot(rank)
        deltas = {name: end[name] - start[name] for name in start}
        key = (rank, function)
        record = self._records.get(key)
        if record is None:
            record = FunctionEnergyRecord(rank=rank, function=function)
            self._records[key] = record
        record.accumulate(self.clock.now - t0, deltas)

    # -- run window -----------------------------------------------------------------

    def _window_snapshots(self) -> list[dict[str, float]]:
        snaps = []
        for node_index, tel in enumerate(self.telemetries):
            counters = dict(self._node_counters(node_index))
            if self.system.pmt_backend != "cray":
                for i in range(len(tel.node.cards)):
                    counters[f"accel{i}"] = (
                        tel.nvml[i].total_energy_consumption_mj(self.clock.now)
                        / 1e3
                    )
            snaps.append(counters)
        return snaps

    def start_app(self) -> None:
        """Mark the start of the instrumented window (first time-step)."""
        self._app_window = (self.clock.now, self._window_snapshots())

    def end_app(self) -> None:
        """Mark the end of the instrumented window (last time-step)."""
        if self._app_window is None:
            raise MeasurementError("end_app() without start_app()")
        self._app_end = (self.clock.now, self._window_snapshots())

    # -- gather -----------------------------------------------------------------------

    def gather(
        self,
        test_case: str,
        num_steps: int,
        particles_per_rank: float,
    ) -> RunMeasurements:
        """Collect all per-rank records (the end-of-run MPI gather)."""
        if self._app_window is None or self._app_end is None:
            raise MeasurementError("gather() requires a completed app window")
        t_start, snaps_start = self._app_window
        t_end, snaps_end = self._app_end

        windows: list[NodeWindowRecord] = []
        for node_index, tel in enumerate(self.telemetries):
            s0, s1 = snaps_start[node_index], snaps_end[node_index]
            cards = [
                s1[f"accel{i}"] - s0[f"accel{i}"]
                for i in range(len(tel.node.cards))
            ]
            windows.append(
                NodeWindowRecord(
                    node_index=node_index,
                    node_joules=s1["node"] - s0["node"],
                    cpu_joules=s1["cpu"] - s0["cpu"],
                    memory_joules=(
                        s1["memory"] - s0["memory"] if "memory" in s0 else None
                    ),
                    card_joules=cards,
                )
            )

        gpu_freq = self.placement.gpu_of(0).frequency.current_hz / 1e6
        return RunMeasurements(
            system_name=self.system.name,
            test_case=test_case,
            num_ranks=self.placement.size,
            num_nodes=self.placement.cluster.num_nodes,
            gcds_per_card=self.placement.cluster.node_spec.gpu.gcds_per_card,
            gpu_freq_mhz=gpu_freq,
            num_steps=num_steps,
            particles_per_rank=particles_per_rank,
            app_start=t_start,
            app_end=t_end,
            records=sorted(
                self._records.values(), key=lambda r: (r.rank, r.function)
            ),
            node_windows=windows,
        )
