"""Property tests for the pair-cache layer.

The half-pair + StepContext pipeline and the Verlet skin list must be
*exact* reformulations of the directed brute-force oracle: identical pair
sets after arbitrary movement, physics fields equal to <= 1e-12 relative
error, and momentum conservation to round-off — across turbulence and
Sedov configurations, periodic and open boxes, serial and distributed
drivers.
"""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sph.box import Box
from repro.sph.distributed import DistributedHydro
from repro.sph.initial_conditions import make_sedov, make_turbulence
from repro.sph.neighbors import brute_force_pairs, find_neighbors
from repro.sph.pair_cache import (
    StepContext,
    VerletList,
    scatter_sum_rows,
    scatter_sum_sym,
    scatter_sum_sym_rows,
)
from repro.sph.particles import ParticleSet
from repro.sph.physics import (
    compute_density,
    compute_iad_and_divcurl,
    compute_momentum_energy,
    ideal_gas_eos,
)
from repro.sph.physics.grad_h import compute_omega
from repro.sph.propagator import Propagator
from repro.sph.simulation import Simulation

RTOL = 1e-12


def clone(ps: ParticleSet) -> ParticleSet:
    out = ParticleSet(ps.n)
    for name in ps._VEC_FIELDS + ps._SCALAR_FIELDS + ("c_iad", "nc"):
        setattr(out, name, getattr(ps, name).copy())
    return out


def pair_set(pairs):
    """Order-insensitive undirected pair set."""
    lo = np.minimum(pairs.i, pairs.j)
    hi = np.maximum(pairs.i, pairs.j)
    return set(zip(lo.tolist(), hi.tolist()))


def make_case(name):
    """(particles-with-velocities, box) for a named configuration."""
    if name == "turbulence":
        ps, box = make_turbulence(n_side=7, seed=3)
    elif name == "sedov":
        ps, box = make_sedov(n_side=6, seed=4)
    elif name == "open":
        ps, box = make_turbulence(n_side=7, seed=5)
        box = Box(length=1.0, periodic=False)
    else:  # pragma: no cover - guard against typo'd parametrization
        raise ValueError(name)
    rng = np.random.default_rng(sum(ord(c) for c in name))
    ps.vel = ps.vel + rng.normal(0.0, 0.05, size=ps.vel.shape)
    return ps, box


def run_oracle(ps, box):
    """The directed-PairList physics chain (the historical formulation)."""
    pairs = find_neighbors(ps.pos, ps.h, box)
    ps.nc = pairs.neighbor_counts()
    compute_density(ps, pairs)
    ideal_gas_eos(ps)
    compute_iad_and_divcurl(ps, pairs)
    omega = compute_omega(ps, pairs)
    compute_momentum_energy(ps, pairs, omega=omega)
    return ps


def run_cached(ps, box):
    """The same chain through a StepContext over the half-pair list."""
    half = find_neighbors(ps.pos, ps.h, box, half=True)
    ctx = StepContext(half, ps.h)
    ps.nc = half.neighbor_counts()
    compute_density(ps, ctx)
    ideal_gas_eos(ps)
    compute_iad_and_divcurl(ps, ctx)
    omega = compute_omega(ps, ctx)
    compute_momentum_energy(ps, ctx, omega=omega)
    return ps


class TestHalfPairEquivalence:
    """StepContext physics == directed oracle physics, to <= 1e-12."""

    @pytest.mark.parametrize("case", ["turbulence", "sedov", "open"])
    def test_full_chain_matches_oracle(self, case):
        ps, box = make_case(case)
        oracle = run_oracle(clone(ps), box)
        cached = run_cached(clone(ps), box)

        assert np.array_equal(oracle.nc, cached.nc)
        for field in ("rho", "p", "c", "div_v", "curl_v", "du", "v_sig_max"):
            a, b = getattr(oracle, field), getattr(cached, field)
            assert np.allclose(a, b, rtol=RTOL, atol=1e-300), field
        scale = np.abs(oracle.acc).max()
        assert np.abs(oracle.acc - cached.acc).max() <= RTOL * scale
        assert np.allclose(oracle.c_iad, cached.c_iad, rtol=1e-10)

    @pytest.mark.parametrize("case", ["turbulence", "sedov", "open"])
    def test_momentum_conserved_to_roundoff(self, case):
        ps, box = make_case(case)
        cached = run_cached(ps, box)
        net = np.sum(cached.mass[:, None] * cached.acc, axis=0)
        scale = np.sum(np.abs(cached.mass[:, None] * cached.acc)) + 1e-300
        assert np.abs(net).max() < 1e-13 * scale * 10

    def test_half_list_is_half(self):
        ps, box = make_case("turbulence")
        full = find_neighbors(ps.pos, ps.h, box)
        half = find_neighbors(ps.pos, ps.h, box, half=True)
        assert 2 * half.n_pairs == full.n_pairs
        assert np.all(half.i < half.j)
        assert pair_set(half) == pair_set(full)
        assert np.array_equal(half.neighbor_counts(), full.neighbor_counts())


class TestVerletList:
    """The skin cache must reproduce the fresh search exactly, always."""

    def drift(self, ps, box, rng, sigma):
        ps.pos = box.wrap(ps.pos + rng.normal(0.0, sigma, size=ps.pos.shape))

    @pytest.mark.parametrize("case", ["turbulence", "sedov", "open"])
    def test_matches_oracle_after_movement(self, case):
        ps, box = make_case(case)
        nlist = VerletList(box)
        rng = np.random.default_rng(17)
        sigma = 0.002 * float(np.mean(ps.h))
        for _ in range(8):
            got = nlist.query(ps.pos, ps.h)
            want = brute_force_pairs(ps.pos, ps.h, box, half=True)
            assert pair_set(got) == pair_set(want)
            # Same geometry, not just the same index set.
            order_g = np.lexsort((got.j, got.i))
            order_w = np.lexsort((want.j, want.i))
            assert np.allclose(got.r[order_g], want.r[order_w], rtol=0, atol=0)
            assert np.allclose(
                got.dx[order_g], want.dx[order_w], rtol=0, atol=0
            )
            self.drift(ps, box, rng, sigma)
        # Small drifts must actually exercise the cache, not rebuild
        # every step.
        assert nlist.n_builds < nlist.n_queries
        assert nlist.rebuild_fraction < 1.0

    def test_large_moves_force_rebuild(self):
        ps, box = make_case("turbulence")
        nlist = VerletList(box)
        rng = np.random.default_rng(23)
        for _ in range(3):
            got = nlist.query(ps.pos, ps.h)
            want = brute_force_pairs(ps.pos, ps.h, box, half=True)
            assert pair_set(got) == pair_set(want)
            self.drift(ps, box, rng, 2.0 * float(np.mean(ps.h)))
        assert nlist.n_builds == nlist.n_queries

    def test_growing_h_stays_exact(self):
        """Smoothing-length growth beyond the skin cannot be missed."""
        ps, box = make_case("turbulence")
        nlist = VerletList(box)
        nlist.query(ps.pos, ps.h)
        ps.h = ps.h * 1.5  # new pairs appear without any movement
        got = nlist.query(ps.pos, ps.h)
        want = brute_force_pairs(ps.pos, ps.h, box, half=True)
        assert pair_set(got) == pair_set(want)
        assert nlist.n_builds == 2

    def test_shrinking_h_reuses_cache(self):
        ps, box = make_case("turbulence")
        nlist = VerletList(box)
        nlist.query(ps.pos, ps.h)
        ps.h = ps.h * 0.9
        got = nlist.query(ps.pos, ps.h)
        want = brute_force_pairs(ps.pos, ps.h, box, half=True)
        assert pair_set(got) == pair_set(want)
        assert nlist.n_builds == 1  # the cached candidates still cover it

    def test_reorder_preserves_cache(self):
        ps, box = make_case("turbulence")
        nlist = VerletList(box)
        nlist.query(ps.pos, ps.h)
        rng = np.random.default_rng(29)
        order = rng.permutation(ps.n)
        ps.reorder(order)
        nlist.reorder(order)
        got = nlist.query(ps.pos, ps.h)
        want = brute_force_pairs(ps.pos, ps.h, box, half=True)
        assert pair_set(got) == pair_set(want)
        assert nlist.n_builds == 1  # permutation alone never rebuilds

    def test_zero_skin_rebuilds_every_query(self):
        ps, box = make_case("turbulence")
        nlist = VerletList(box, skin_factor=0.0)
        for _ in range(3):
            nlist.query(ps.pos, ps.h)
        assert nlist.n_builds == 3

    def test_negative_skin_rejected(self):
        with pytest.raises(SimulationError):
            VerletList(Box(length=1.0), skin_factor=-0.1)

    def test_particle_count_change_invalidates(self):
        ps, box = make_case("turbulence")
        nlist = VerletList(box)
        nlist.query(ps.pos, ps.h)
        got = nlist.query(ps.pos[:-10], ps.h[:-10])
        want = brute_force_pairs(ps.pos[:-10], ps.h[:-10], box, half=True)
        assert pair_set(got) == pair_set(want)
        assert nlist.n_builds == 2


class TestScatterHelpers:
    def test_scatter_sum_rows_matches_add_at(self):
        rng = np.random.default_rng(31)
        idx = rng.integers(0, 50, size=400)
        rows = rng.normal(size=(400, 3))
        want = np.zeros((50, 3))
        np.add.at(want, idx, rows)
        assert np.allclose(scatter_sum_rows(idx, rows, 50), want, rtol=1e-14)

    def test_symmetric_scatter_matches_two_pass(self):
        rng = np.random.default_rng(37)
        i = rng.integers(0, 40, size=300)
        j = rng.integers(0, 40, size=300)
        ti = rng.normal(size=300)
        tj = rng.normal(size=300)
        want = np.bincount(i, weights=ti, minlength=40) + np.bincount(
            j, weights=tj, minlength=40
        )
        assert np.allclose(scatter_sum_sym(i, j, ti, tj, 40), want, rtol=1e-13)
        rows_i = rng.normal(size=(300, 3))
        rows_j = rng.normal(size=(300, 3))
        want_rows = np.zeros((40, 3))
        np.add.at(want_rows, i, rows_i)
        np.add.at(want_rows, j, rows_j)
        assert np.allclose(
            scatter_sum_sym_rows(i, j, rows_i, rows_j, 40), want_rows,
            rtol=1e-13,
        )


class TestPropagatorIntegration:
    def test_verlet_propagator_matches_no_skin(self):
        """Caching must not change the trajectory (same pair sets, so any
        difference is accumulation-order round-off)."""
        histories = {}
        for skin in (0.0, 0.3):
            ps, box = make_turbulence(n_side=6, seed=9)
            rng = np.random.default_rng(41)
            ps.vel = rng.normal(0.0, 0.05, size=ps.vel.shape)
            sim = Simulation(ps, Propagator(box, skin_factor=skin))
            sim.run(8)
            histories[skin] = (ps.pos.copy(), ps.u.copy(), sim.history)
        pos_a, u_a, hist_a = histories[0.0]
        pos_b, u_b, hist_b = histories[0.3]
        assert np.allclose(pos_a, pos_b, rtol=0, atol=1e-10)
        assert np.allclose(u_a, u_b, rtol=1e-9)
        # Identical pair sets every step.
        assert [s.n_pairs for s in hist_a] == [s.n_pairs for s in hist_b]
        assert all(s.neighbors_rebuilt for s in hist_a)
        assert not all(s.neighbors_rebuilt for s in hist_b)

    def test_propagator_amortizes_rebuilds(self):
        ps, box = make_turbulence(n_side=6, seed=10)
        prop = Propagator(box)
        Simulation(ps, prop).run(10)
        assert prop.neighbor_list.rebuild_fraction < 1.0

    def test_gravity_step_avoids_direct_sum_potential(self, monkeypatch):
        """Acceptance: the Evrard hot loop uses the tree potential."""
        import repro.sph.gravity as gravity_mod

        def boom(*a, **k):  # pragma: no cover - should never run
            raise AssertionError("direct_sum_potential called in hot loop")

        monkeypatch.setattr(gravity_mod, "direct_sum_potential", boom)
        from repro.sph.initial_conditions import make_evrard

        ps, box = make_evrard(500)
        sim = Simulation(ps, Propagator(box, gravity=True))
        stats = sim.run(2)
        assert stats[-1].totals.total_energy < 0  # bound collapse


class TestDistributedEquivalence:
    @pytest.mark.parametrize("n_ranks", [2, 3])
    def test_distributed_matches_serial_on_cached_path(self, n_ranks):
        def initial():
            ps, box = make_turbulence(n_side=6, seed=11)
            rng = np.random.default_rng(43)
            ps.vel = rng.normal(0.0, 0.05, size=ps.vel.shape)
            return ps, box

        ps_s, box = initial()
        serial = Propagator(box)
        from repro.sph.hooks import ProfilingHooks

        for _ in range(3):
            serial.step(ps_s, ProfilingHooks())

        ps_d, box = initial()
        dist = DistributedHydro(box, n_ranks=n_ranks)
        for _ in range(3):
            dist.step(ps_d)

        # Same SFC order on both sides, so fields align row-for-row.
        assert np.array_equal(ps_s.nc, ps_d.nc)
        assert np.allclose(ps_s.pos, ps_d.pos, rtol=0, atol=1e-9)
        assert np.allclose(ps_s.rho, ps_d.rho, rtol=1e-9)
        assert np.allclose(ps_s.u, ps_d.u, rtol=1e-8)
