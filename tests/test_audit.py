"""Tests for the energy-accounting audit layer.

Covers the typed findings, the tolerance sets, the pure invariant
checkers, the runtime ``EnergyAuditor`` hooks, audited end-to-end runs of
the three paper systems, audited campaigns, and the fault-injection
property: a sabotaged sensor either passes the auditor (the resilient
layer genuinely recovered the energy) or produces typed findings — never
a silent imbalance.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.audit import (
    AUDIT_ENV,
    INVARIANTS,
    AuditFinding,
    AuditReport,
    AuditSettings,
    AuditTolerances,
    EnergyAuditor,
    audit_campaign_result,
    check_device_partition,
    check_function_partition,
    check_pmt_vs_slurm,
    strictened,
    tolerances_for,
)
from repro.config import SYSTEMS, TEST_CASES
from repro.errors import AuditError
from repro.experiments.runner import run_scaled_experiment

CASE = TEST_CASES["Subsonic Turbulence"]


def run_audited(system_name, *, num_steps=8, **kwargs):
    system = SYSTEMS[system_name]
    kwargs.setdefault("audit", True)
    return run_scaled_experiment(
        system,
        CASE,
        system.node_spec.num_cards,
        num_steps=num_steps,
        **kwargs,
    )


class TestAuditFinding:
    def test_round_trip(self):
        f = AuditFinding(
            invariant="device-partition",
            scope="node 0",
            message="m",
            measured=2.0,
            expected=1.0,
            tolerance=0.02,
        )
        assert AuditFinding.from_dict(json.loads(json.dumps(f.to_dict()))) == f

    def test_unknown_invariant_rejected(self):
        with pytest.raises(ValueError):
            AuditFinding(invariant="made-up", scope="x", message="m")

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            AuditFinding(
                invariant="tick-order", scope="x", message="m", severity="fatal"
            )

    def test_render_carries_numbers(self):
        f = AuditFinding(
            invariant="pmt-vs-slurm",
            scope="run",
            message="too low",
            measured=0.4,
            expected=0.85,
            tolerance=0.85,
        )
        line = f.render()
        assert "pmt-vs-slurm" in line and "0.4" in line and "0.85" in line


class TestAuditReport:
    def test_empty_report_is_not_clean(self):
        report = AuditReport()
        assert report.ok  # no errors...
        assert "no checks ran" in report.render()  # ...but says so

    def test_ok_ignores_warnings(self):
        report = AuditReport(
            findings=(
                AuditFinding(
                    invariant="counter-monotone",
                    scope="n",
                    message="m",
                    severity="warning",
                ),
            ),
            checks={"counter-monotone": 3},
        )
        assert report.ok
        assert len(report.warnings) == 1 and not report.errors

    def test_round_trip(self):
        report = AuditReport(
            findings=(
                AuditFinding(invariant="tick-order", scope="n", message="m"),
            ),
            checks={"tick-order": 2},
        )
        restored = AuditReport.from_dict(
            json.loads(json.dumps(report.to_dict()))
        )
        assert restored == report

    def test_render_lists_findings(self):
        report = AuditReport(
            findings=(
                AuditFinding(invariant="tick-order", scope="n", message="oops"),
            ),
            checks={"tick-order": 2},
        )
        text = report.render()
        assert "1 errors" in text and "oops" in text


class TestTolerances:
    def test_paper_systems_have_calibrated_floors(self):
        for name in ("LUMI-G", "CSCS-A100", "miniHPC"):
            tol = tolerances_for(name)
            assert 0.0 < tol.pmt_slurm_ratio_min < 1.0

    def test_lumi_floor_is_loosest(self):
        # LUMI-G's launch/teardown gap is the largest of the three.
        assert (
            tolerances_for("LUMI-G").pmt_slurm_ratio_min
            < tolerances_for("CSCS-A100").pmt_slurm_ratio_min
        )

    def test_unknown_system_gets_defaults(self):
        assert tolerances_for("whatever") == AuditTolerances()
        assert tolerances_for(None) == AuditTolerances()

    def test_strictened(self):
        tight = strictened(AuditTolerances(), counter_slack_joules=0.0)
        assert tight.counter_slack_joules == 0.0
        assert tight.device_partition_max_excess == (
            AuditTolerances().device_partition_max_excess
        )


class TestAuditSettings:
    def test_env_off_by_default(self, monkeypatch):
        monkeypatch.delenv(AUDIT_ENV, raising=False)
        assert AuditSettings.from_env() == AuditSettings()

    @pytest.mark.parametrize("value", ["1", "record", "on", "true"])
    def test_env_record(self, monkeypatch, value):
        monkeypatch.setenv(AUDIT_ENV, value)
        assert AuditSettings.from_env() == AuditSettings(enabled=True)

    def test_env_strict(self, monkeypatch):
        monkeypatch.setenv(AUDIT_ENV, "strict")
        assert AuditSettings.from_env() == AuditSettings(
            enabled=True, strict=True
        )

    def test_resolve_overrides_env(self, monkeypatch):
        monkeypatch.setenv(AUDIT_ENV, "strict")
        assert AuditSettings.resolve(False) == AuditSettings()
        assert AuditSettings.resolve(True) == AuditSettings(enabled=True)
        assert AuditSettings.resolve(None).strict

    def test_resolve_strict_string(self, monkeypatch):
        monkeypatch.delenv(AUDIT_ENV, raising=False)
        assert AuditSettings.resolve("strict") == AuditSettings(
            enabled=True, strict=True
        )


class TestRuntimeHooks:
    def test_counter_monotone_violation(self):
        auditor = EnergyAuditor()
        auditor.on_counters(0, 1.0, {"cpu": 100.0})
        auditor.on_counters(0, 2.0, {"cpu": 50.0})
        assert [f.invariant for f in auditor.findings] == ["counter-monotone"]

    def test_counter_slack_tolerated(self):
        auditor = EnergyAuditor()
        auditor.on_counters(0, 1.0, {"cpu": 100.0})
        auditor.on_counters(0, 2.0, {"cpu": 99.5})  # within 1 J slack
        assert not auditor.findings

    def test_region_negative_delta(self):
        auditor = EnergyAuditor()
        auditor.on_region(3, "Density", 1.0, 2.0, {"gpu": -50.0})
        (finding,) = auditor.findings
        assert finding.invariant == "region-window"
        assert "rank 3" in finding.scope

    def test_region_reversed_window(self):
        auditor = EnergyAuditor()
        auditor.on_region(0, "IAD", 5.0, 4.0, {})
        assert auditor.findings[0].invariant == "region-window"

    def test_strict_raises_typed(self):
        auditor = EnergyAuditor(strict=True)
        auditor.on_counters(0, 1.0, {"cpu": 100.0})
        with pytest.raises(AuditError) as err:
            auditor.on_counters(0, 2.0, {"cpu": 10.0})
        assert isinstance(err.value.finding, AuditFinding)
        assert err.value.finding.invariant == "counter-monotone"

    def test_report_counts_checks(self):
        auditor = EnergyAuditor()
        auditor.on_counters(0, 1.0, {"cpu": 1.0, "node": 2.0})
        report = auditor.report()
        assert report.checks["counter-monotone"] == 2
        assert report.ok


class TestInvariantCheckers:
    @pytest.fixture(scope="class")
    def clean_run(self):
        return run_audited("CSCS-A100").run

    def test_clean_run_balances(self, clean_run):
        assert not check_function_partition(clean_run)
        assert not check_device_partition(clean_run)

    def test_device_overcount_detected(self, clean_run):
        import copy

        broken = copy.deepcopy(clean_run)
        broken.node_windows[0].node_joules /= 10.0
        findings = check_device_partition(broken)
        assert any(f.invariant == "device-partition" for f in findings)

    def test_negative_window_detected(self, clean_run):
        import copy

        broken = copy.deepcopy(clean_run)
        broken.node_windows[0].cpu_joules = -100.0
        findings = check_device_partition(broken)
        assert any(f.invariant == "counter-monotone" for f in findings)

    def test_function_double_count_detected(self, clean_run):
        import copy

        broken = copy.deepcopy(clean_run)
        for record in broken.records:
            for name in record.joules:
                record.joules[name] *= 3.0
        findings = check_function_partition(broken)
        assert any(
            f.invariant == "function-partition" and "double" in f.message
            for f in findings
        )

    def test_function_lost_energy_detected(self, clean_run):
        import copy

        broken = copy.deepcopy(clean_run)
        for record in broken.records:
            for name in record.joules:
                record.joules[name] *= 0.2
        findings = check_function_partition(broken)
        assert any(
            f.invariant == "function-partition" and "lost" in f.message
            for f in findings
        )

    def test_nonpositive_slurm_detected(self, clean_run):
        class FakeAccounting:
            consumed_energy_joules = 0.0
            start_time = 0.0
            end_time = 10.0

        findings = check_pmt_vs_slurm(clean_run, FakeAccounting())
        assert findings and findings[0].invariant == "pmt-vs-slurm"

    def test_pmt_exceeding_slurm_detected(self, clean_run):
        class FakeAccounting:
            consumed_energy_joules = 1.0  # absurdly low
            start_time = clean_run.app_start
            end_time = clean_run.app_end

        findings = check_pmt_vs_slurm(clean_run, FakeAccounting())
        assert any(
            "exceeds" in f.message and f.invariant == "pmt-vs-slurm"
            for f in findings
        )

    def test_ratio_floor_gated_on_window_fraction(self, clean_run):
        from repro.analysis.validation import pmt_total_joules

        pmt = pmt_total_joules(clean_run)

        class Dominated:
            # Window covers the whole job, PMT far below Slurm: floor fires.
            consumed_energy_joules = pmt * 10.0
            start_time = clean_run.app_start
            end_time = clean_run.app_end

        class OverheadRun(Dominated):
            # Same energies, but the job is mostly launch/teardown: no floor.
            start_time = clean_run.app_start - 100 * clean_run.app_seconds
            end_time = clean_run.app_end + 100 * clean_run.app_seconds

        tol = tolerances_for("CSCS-A100")
        assert any(
            "floor" in f.message
            for f in check_pmt_vs_slurm(clean_run, Dominated(), tol)
        )
        assert not check_pmt_vs_slurm(clean_run, OverheadRun(), tol)


class TestAuditedExperiments:
    @pytest.mark.parametrize("system", ["LUMI-G", "CSCS-A100", "miniHPC"])
    def test_strict_run_is_clean(self, system):
        result = run_audited(
            system,
            audit="strict",
            power_sample_interval_s=1.0,
            timeseries=True,
        )
        report = result.audit
        assert report.ok and not report.findings
        # Every invariant family actually ran.
        for invariant in INVARIANTS:
            assert report.checks.get(invariant, 0) > 0, invariant

    def test_audit_off_by_default(self, monkeypatch):
        monkeypatch.delenv(AUDIT_ENV, raising=False)
        result = run_audited("miniHPC", num_steps=2, audit=None)
        assert result.audit is None

    def test_audit_via_env(self, monkeypatch):
        monkeypatch.setenv(AUDIT_ENV, "record")
        result = run_audited("miniHPC", num_steps=2, audit=None)
        assert isinstance(result.audit, AuditReport)

    def test_audited_energies_identical(self):
        plain = run_audited("CSCS-A100", audit=False)
        audited = run_audited("CSCS-A100", audit="strict")
        assert plain.run.to_json() == audited.run.to_json()

    def test_injected_fault_produces_typed_findings(self):
        result = run_audited(
            "CSCS-A100",
            num_steps=10,
            resilient=False,
            inject_fault="freeze",
            fault_target="node",
            fault_kwargs={"freeze_at": 80.0},
        )
        report = result.audit
        assert not report.ok
        assert all(isinstance(f, AuditFinding) for f in report.findings)
        assert any(
            f.invariant == "device-partition" for f in report.findings
        )

    def test_strict_mode_raises_on_injected_fault(self):
        with pytest.raises(AuditError) as err:
            run_audited(
                "CSCS-A100",
                num_steps=10,
                audit="strict",
                resilient=False,
                inject_fault="freeze",
                fault_target="node",
                fault_kwargs={"freeze_at": 80.0},
            )
        assert err.value.finding.invariant in INVARIANTS


class TestCampaignAudit:
    def test_post_hoc_audit_of_campaign_results(self, tmp_path):
        from repro.campaign import ResultStore, execute, expand
        from repro.campaign.spec import CampaignSpec

        spec = CampaignSpec(
            name="audit-smoke",
            systems=("miniHPC",),
            test_cases=("Subsonic Turbulence",),
            card_counts=(2,),
            num_steps=4,
        )
        keys = expand(spec)
        store = ResultStore(str(tmp_path))
        results, stats = execute(keys, store=store, audit=True)
        assert stats.audit_reports is not None
        assert stats.audit_findings == 0
        assert stats.audit_checks > 0
        # Cache hits are audited too (post-hoc, from serialized records).
        _, stats2 = execute(keys, store=store, audit="strict")
        assert stats2.hits == len(keys)
        assert stats2.audit_reports is not None
        assert stats2.audit_findings == 0

    def test_audit_campaign_result_round_trips_store(self, tmp_path):
        from repro.campaign import ResultStore, execute, expand
        from repro.campaign.spec import CampaignSpec

        spec = CampaignSpec(
            name="audit-smoke-2",
            systems=("miniHPC",),
            test_cases=("Subsonic Turbulence",),
            card_counts=(2,),
            num_steps=4,
        )
        keys = expand(spec)
        store = ResultStore(str(tmp_path))
        results, _ = execute(keys, store=store)
        report = audit_campaign_result(results[keys[0]])
        assert isinstance(report, AuditReport)
        assert report.ok


#: Fault matrix: every backend family the sensors expose.
_FAULT_POINTS = [
    ("LUMI-G", "node"),    # cray pm_counters node file
    ("LUMI-G", "cpu"),     # cray pm_counters cpu file
    ("LUMI-G", "gpu0"),    # cray accel counter
    ("LUMI-G", "rocm0"),   # ROCm hwmon register
    ("CSCS-A100", "node"), # IPMI node sensor (composite window source)
    ("CSCS-A100", "cpu"),  # RAPL package
    ("CSCS-A100", "gpu0"), # NVML device
    ("miniHPC", "gpu0"),   # NVML on the 4-card system
]


class TestFaultInjectionProperty:
    @given(
        point=st.sampled_from(_FAULT_POINTS),
        kind=st.sampled_from(["freeze", "dropout", "glitch"]),
        start=st.floats(min_value=0.0, max_value=120.0),
    )
    @settings(max_examples=12, deadline=None)
    def test_no_silent_imbalance(self, point, kind, start):
        """A sabotaged sensor never corrupts the books silently.

        Under the resilient layer the run must complete, and the audit
        either passes (the mitigation recovered the energy) or explains
        itself through typed findings.
        """
        system, target = point
        fault_kwargs = {
            "freeze": {"freeze_at": start},
            "dropout": {"outage_start": start, "outage_end": start + 20.0},
            "glitch": {"probability": 0.1, "seed": int(start)},
        }[kind]
        result = run_audited(
            system,
            num_steps=4,
            inject_fault=kind,
            fault_target=target,
            fault_kwargs=fault_kwargs,
        )
        report = result.audit
        assert isinstance(report, AuditReport)
        assert report.checks_run > 0
        for finding in report.findings:
            assert isinstance(finding, AuditFinding)
            assert finding.invariant in INVARIANTS
        if not report.ok:
            assert report.errors  # non-ok always carries typed evidence
