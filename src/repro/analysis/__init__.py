"""Post-hoc analysis of gathered measurements.

The paper's analysis scripts "take the system's hardware configuration and
MPI rank-to-GPU assignment into consideration" (Section 2): per-card GPU
counters shared by two GCD ranks on MI250X, one CPU counter shared by all
node-local ranks, a memory counter that exists only on LUMI-G.  This
package implements that correction layer plus the derived quantities of
the evaluation: device breakdowns (Figure 2), per-function breakdowns
(Figure 3), energy-delay products (Figures 4/5) and the PMT-vs-Slurm
validation (Figure 1).
"""

from repro.analysis.aggregate import (
    attributed_joules,
    function_totals,
    sensor_sharing_factor,
)
from repro.analysis.breakdown import (
    DeviceBreakdown,
    FunctionRow,
    device_breakdown,
    function_breakdown,
)
from repro.analysis.edp import edp, function_edp, normalized_edp_series, run_edp
from repro.analysis.validation import ValidationPoint, validate_pmt_against_slurm

__all__ = [
    "attributed_joules",
    "function_totals",
    "sensor_sharing_factor",
    "DeviceBreakdown",
    "FunctionRow",
    "device_breakdown",
    "function_breakdown",
    "edp",
    "run_edp",
    "function_edp",
    "normalized_edp_series",
    "ValidationPoint",
    "validate_pmt_against_slurm",
]
