"""Subsonic-turbulence initial conditions.

A uniform periodic gas at rest: lattice positions with a small
deterministic jitter (avoids the pathological symmetry of a perfect
lattice), uniform density rho0, internal energy set from the desired
sound speed.  Driving then stirs the box (``TurbulenceDriving``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.sph.box import Box
from repro.sph.particles import ParticleSet
from repro.sph.physics.eos import DEFAULT_GAMMA

#: Jitter amplitude as a fraction of the lattice spacing.
_JITTER = 0.2


def smoothing_from_density(
    mass: np.ndarray, rho: np.ndarray, n_target: int
) -> np.ndarray:
    """h such that a sphere of radius 2h holds ~n_target neighbour masses."""
    return 0.5 * np.cbrt(3.0 * n_target * mass / (4.0 * np.pi * rho))


def make_turbulence(
    n_side: int,
    box_length: float = 1.0,
    rho0: float = 1.0,
    sound_speed: float = 1.0,
    gamma: float = DEFAULT_GAMMA,
    n_target: int = 100,
    seed: int = 42,
) -> tuple[ParticleSet, Box]:
    """Build an ``n_side^3``-particle uniform periodic gas at rest."""
    if n_side < 2:
        raise SimulationError("need at least 2 particles per side")
    if rho0 <= 0 or sound_speed <= 0:
        raise SimulationError("density and sound speed must be positive")
    box = Box(length=box_length, periodic=True)
    n = n_side**3
    spacing = box_length / n_side
    axis = box.lo + (np.arange(n_side) + 0.5) * spacing
    grid = np.stack(np.meshgrid(axis, axis, axis, indexing="ij"), axis=-1)
    pos = grid.reshape(n, 3)
    rng = np.random.default_rng(seed)
    pos = box.wrap(pos + rng.uniform(-_JITTER, _JITTER, size=pos.shape) * spacing)

    ps = ParticleSet(n)
    ps.pos = pos
    ps.mass[:] = rho0 * box_length**3 / n
    ps.rho[:] = rho0
    # c^2 = gamma (gamma - 1) u  ->  u = c^2 / (gamma (gamma - 1)).
    ps.u[:] = sound_speed**2 / (gamma * (gamma - 1.0))
    ps.h = smoothing_from_density(ps.mass, ps.rho, n_target)
    return ps, box
