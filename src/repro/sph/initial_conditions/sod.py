"""Sod shock-tube initial conditions in a 3D periodic box.

The classic Riemann problem (Sod 1978): density/pressure 1.0/1.0 on the
left half, 0.125/0.1 on the right, gas at rest.  Realized with
equal-mass particles on two lattices whose spacings differ by a factor 2
per axis (density ratio 8), as SPH shock tubes are normally set up.

The periodic box carries a mirrored second discontinuity at the x
boundary; comparisons against the exact solution must stay inside
``|x| < 0.5 L - c_max t`` where the two problems have not yet interacted.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.sph.box import Box
from repro.sph.initial_conditions.turbulence import smoothing_from_density
from repro.sph.particles import ParticleSet
from repro.sph.physics.eos import DEFAULT_GAMMA
from repro.sph.riemann import SOD_LEFT, SOD_RIGHT


def _lattice(n: tuple[int, int, int], lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    axes = [
        lo[d] + (np.arange(n[d]) + 0.5) * (hi[d] - lo[d]) / n[d]
        for d in range(3)
    ]
    grid = np.stack(np.meshgrid(*axes, indexing="ij"), axis=-1)
    return grid.reshape(-1, 3)


def make_sod(
    nx_left: int = 16,
    box_length: float = 1.0,
    gamma: float = DEFAULT_GAMMA,
    n_target: int = 100,
    jitter: float = 0.05,
    seed: int = 42,
):
    """Build the Sod tube; returns ``(particles, box)``.

    ``nx_left`` is the left lattice's x-resolution (must be even); the
    transverse resolutions follow to keep spacing isotropic, and the right
    lattice uses twice the spacing (density ratio 8 at equal mass).
    """
    if nx_left < 8 or nx_left % 2:
        raise SimulationError("nx_left must be an even integer >= 8")
    box = Box(length=box_length, periodic=True)
    half = 0.5 * box_length
    ny = nx_left // 2  # keeps the box reasonably thin transversally

    left = _lattice(
        (nx_left, ny, ny),
        np.array([-half, -half, -half]),
        np.array([0.0, half, half]),
    )
    right = _lattice(
        (nx_left // 2, ny // 2, ny // 2),
        np.array([0.0, -half, -half]),
        np.array([half, half, half]),
    )
    pos = np.concatenate([left, right])
    rng = np.random.default_rng(seed)
    spacing_left = half / nx_left * 2.0
    pos = box.wrap(pos + rng.uniform(-jitter, jitter, size=pos.shape) * spacing_left)

    n = len(pos)
    ps = ParticleSet(n)
    ps.pos = pos
    # Equal masses such that the left half has rho = 1.
    volume_left = half * box_length * box_length
    ps.mass[:] = SOD_LEFT.rho * volume_left / len(left)

    on_left = ps.pos[:, 0] < 0.0
    rho = np.where(on_left, SOD_LEFT.rho, SOD_RIGHT.rho)
    p = np.where(on_left, SOD_LEFT.p, SOD_RIGHT.p)
    ps.rho = rho
    ps.u = p / ((gamma - 1.0) * rho)
    ps.h = smoothing_from_density(ps.mass, ps.rho, n_target)
    return ps, box
